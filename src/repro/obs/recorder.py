"""The event sink: a ring-buffer recorder, contextvar-activated.

Mirrors the activation pattern of :class:`repro.exec.timing.Telemetry`:
instrumented code calls :func:`emit` (or checks :func:`current_recorder`
once and emits directly on hot paths), which is a no-op unless a
:class:`TraceRecorder` has been activated for the current context via
:func:`use_recorder` — so with tracing off, the only cost at every
instrumentation site is one contextvar read.

The buffer is a bounded ``deque``: a runaway run overwrites its oldest
events instead of exhausting memory, and ``dropped`` reports how many
were lost.  Events are stored in their canonical dict form (see
:mod:`repro.obs.events`) with two envelope fields added — ``seq``, a
monotone per-recorder sequence number, and ``run``, the label of the
enclosing :meth:`TraceRecorder.run_scope` — which makes worker batches
picklable and merges deterministic.

Parallel workers each activate a fresh recorder, ship
:meth:`TraceRecorder.snapshot` back with their result, and the parent
folds the batches in submission order via :meth:`TraceRecorder.extend`
— so a parallel run's merged event stream is stable across executions.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "DEFAULT_CAPACITY",
    "TraceRecorder",
    "current_recorder",
    "use_recorder",
    "emit",
]

#: Default ring-buffer size: generous for any quick run, bounded for all.
DEFAULT_CAPACITY = 1_000_000


class TraceRecorder:
    """Bounded, ordered store of emitted trace events."""

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._run = "run"
        self.dropped = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def run_label(self) -> str:
        """Label stamped on events emitted in the current scope."""
        return self._run

    @contextmanager
    def run_scope(self, label: str):
        """Stamp events emitted inside the block with ``label``.

        One scope per logical run (e.g. ``"conductor comd cap=40W"``)
        becomes one process group in the exported Chrome trace.
        """
        previous = self._run
        self._run = label
        try:
            yield self
        finally:
            self._run = previous

    def emit(self, event) -> None:
        """Append one typed event (see :mod:`repro.obs.events`)."""
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        doc = event.to_dict()
        doc["seq"] = self._seq
        doc["run"] = self._run
        self._seq += 1
        self._events.append(doc)

    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """The buffered events as picklable dicts, in emission order."""
        return list(self._events)

    def extend(self, batch: list[dict]) -> None:
        """Fold a worker's :meth:`snapshot` in, re-sequencing its events.

        Callers merge batches in submission order (the order
        :class:`~repro.exec.parallel.ParallelRunner` returns results),
        which keeps the merged stream — and any export of it —
        deterministic regardless of worker completion order.
        """
        for doc in batch:
            if self.capacity is not None and len(self._events) == self.capacity:
                self.dropped += 1
            merged = dict(doc)
            merged["seq"] = self._seq
            self._seq += 1
            self._events.append(merged)

    def events_for_run(self, label: str) -> list[dict]:
        return [e for e in self._events if e["run"] == label]


#: The active recorder for this context (None = tracing disabled).
_current: ContextVar[TraceRecorder | None] = ContextVar(
    "repro_trace_recorder", default=None
)


def current_recorder() -> TraceRecorder | None:
    """The recorder active in this context, or None when tracing is off."""
    return _current.get()


@contextmanager
def use_recorder(recorder: TraceRecorder):
    """Activate ``recorder`` for the duration of the with-block."""
    token = _current.set(recorder)
    try:
        yield recorder
    finally:
        _current.reset(token)


def emit(event) -> None:
    """Emit one event into the active recorder (no-op when disabled)."""
    recorder = _current.get()
    if recorder is not None:
        recorder.emit(event)
