"""Transport backends for the ordered fan-out driver.

:class:`~repro.exec.parallel.ParallelRunner` owns everything that makes
a sweep *correct* — submission-order results, seeded retries, submit-time
deadlines, batching, observability merging.  What it delegates is the
*transport*: how one task payload reaches a worker and how its result
(or its worker's death) comes back.  That contract is
:class:`~repro.exec.backends.base.ExecBackend`, and three transports
implement it:

``repro.exec.backends.inline``
    :class:`InlineBackend` — runs every task in the calling process.
    No pickling, no subprocesses; deadlines cannot be enforced.  The
    test and debugging transport.
``repro.exec.backends.pool``
    :class:`ProcessPoolBackend` — a ``ProcessPoolExecutor``, with the
    exact semantics the pre-backend ``ParallelRunner`` had: broken-pool
    detection, rebuild-and-resubmit, per-wait timeouts.  The default.
``repro.exec.backends.sockets``
    :class:`SocketWorkerBackend` — a fleet of worker processes serving
    over local TCP or UNIX-domain sockets with a versioned handshake,
    idle heartbeats, death detection, and respawn-and-reconnect.  The
    transport the always-on service (:mod:`repro.service`) runs on.

Every backend ships results as the same observability-bearing payload
(:func:`~repro.exec.backends.base.run_task`), so worker telemetry,
traces, audits, metrics, and profiles merge identically whatever the
transport — a parallel run's deterministic artifacts stay byte-identical
to a serial run's.
"""

from __future__ import annotations

from .base import (
    BackendTimeoutError,
    ExecBackend,
    TaskSpec,
    WorkerLostError,
    make_backend,
    run_task,
)
from .inline import InlineBackend
from .pool import ProcessPoolBackend
from .sockets import SocketWorkerBackend, WorkerDiedError

__all__ = [
    "BackendTimeoutError",
    "ExecBackend",
    "InlineBackend",
    "ProcessPoolBackend",
    "SocketWorkerBackend",
    "TaskSpec",
    "WorkerDiedError",
    "WorkerLostError",
    "make_backend",
    "run_task",
]
