"""repro.obs — structured observability: tracing, audit, metrics, provenance.

Several pillars, all contextvar-activated and zero-cost when disabled:

* **Event tracing** (:mod:`.events`, :mod:`.recorder`, :mod:`.export`) —
  the simulator engine, the Conductor runtime, RAPL, and the LP solver
  emit typed events into a ring-buffer :class:`TraceRecorder`; exporters
  render Chrome trace-event JSON (loadable in Perfetto) and JSONL.
* **Solver audit** (:mod:`.audit`) — every LP/MILP solve records model
  shape, iterations, status, objective, wall time, and provenance
  (cold / parametric re-solve / cache hit) into a :class:`SolveAudit`
  ledger.
* **Operational metrics** (:mod:`.metrics`) — counters, gauges, and
  fixed-bucket histograms with deterministic merge semantics, plus JSON
  and Prometheus text exporters; the deterministic subset is
  byte-identical serial vs. parallel.
* **Live progress** (:mod:`.progress`) — out-of-band sweep heartbeats
  (cells done/total, ETA, cache hit-rate) on a TTY-aware stderr line and
  a ``progress.jsonl`` stream.
* **Profiling** (:mod:`.profiling`) — per-cell cProfile aggregation into
  one fleet-wide top-N cumulative-time table.
* **Run provenance** (:mod:`.provenance`) — a :class:`RunManifest`
  (config hash, seed, model-layer version, package version, platform)
  stamped into saved artifacts and cache entries.

The package is stdlib-only and sits at the bottom of the layering,
beside :mod:`repro.exec.timing`: every other layer may import it.
See ``docs/observability.md`` for the event taxonomy and workflows.
"""

from .audit import (
    SolveAudit,
    SolveRecord,
    current_audit,
    note_cache,
    record_solve,
    use_audit,
)
from .events import (
    EVENT_KINDS,
    CapExceededEvent,
    CellFailureEvent,
    CollectiveEvent,
    CounterEvent,
    MpiWaitEvent,
    ReallocEvent,
    SolveEvent,
    TaskEvent,
)
from .export import (
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    validate_chrome_trace,
    validate_trace_file,
)
from .metrics import (
    METRICS_SCHEMA_VERSION,
    Histogram,
    Metrics,
    current_metrics,
    prometheus_text,
    use_metrics,
    validate_metrics_doc,
)
from .profiling import (
    ProfileCollector,
    current_profile,
    profile_block,
    use_profile,
)
from .progress import (
    PROGRESS_SCHEMA_VERSION,
    ProgressReporter,
    default_progress_stream,
)
from .provenance import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    collect_manifest,
    config_hash,
    read_manifest,
    write_manifest,
)
from .recorder import (
    DEFAULT_CAPACITY,
    TraceRecorder,
    current_recorder,
    emit,
    use_recorder,
)

__all__ = [
    "CapExceededEvent",
    "CellFailureEvent",
    "CollectiveEvent",
    "CounterEvent",
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "Histogram",
    "MANIFEST_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "Metrics",
    "MpiWaitEvent",
    "PROGRESS_SCHEMA_VERSION",
    "ProfileCollector",
    "ProgressReporter",
    "ReallocEvent",
    "RunManifest",
    "SolveAudit",
    "SolveEvent",
    "SolveRecord",
    "TaskEvent",
    "TraceRecorder",
    "chrome_trace",
    "collect_manifest",
    "config_hash",
    "current_audit",
    "current_metrics",
    "current_profile",
    "current_recorder",
    "default_progress_stream",
    "emit",
    "export_chrome_trace",
    "export_jsonl",
    "note_cache",
    "profile_block",
    "prometheus_text",
    "read_manifest",
    "record_solve",
    "use_audit",
    "use_metrics",
    "use_profile",
    "use_recorder",
    "validate_chrome_trace",
    "validate_metrics_doc",
    "validate_trace_file",
    "write_manifest",
]
