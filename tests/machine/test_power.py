"""Unit tests for the socket power model."""

import pytest

from repro.machine import (
    DEFAULT_POWER_PARAMS,
    PowerModelParams,
    SocketPowerModel,
    XEON_E5_2670,
)

FMAX = XEON_E5_2670.fmax_ghz
FMIN = XEON_E5_2670.fmin_ghz


class TestPowerModelParams:
    def test_defaults_valid(self):
        assert DEFAULT_POWER_PARAMS.freq_exponent == pytest.approx(2.4)

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            PowerModelParams(p_uncore_idle=-1.0)

    def test_sublinear_exponent_rejected(self):
        with pytest.raises(ValueError):
            PowerModelParams(freq_exponent=0.5)


class TestSocketPowerModel:
    def test_monotone_in_frequency(self, power_model):
        powers = [power_model.power(f, 8) for f in XEON_E5_2670.pstates]
        assert all(a > b for a, b in zip(powers, powers[1:]))

    def test_monotone_in_threads(self, power_model):
        powers = [power_model.power(FMAX, n) for n in range(1, 9)]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_monotone_in_activity_and_mem(self, power_model):
        assert power_model.power(FMAX, 8, activity=1.2) > power_model.power(
            FMAX, 8, activity=0.8
        )
        assert power_model.power(FMAX, 8, mem_intensity=0.9) > power_model.power(
            FMAX, 8, mem_intensity=0.1
        )

    def test_calibration_range_matches_paper_axis(self, power_model):
        """Figure 1's axis spans ~10-60 W; the cap sweep spans 30-80 W."""
        lo = power_model.power(FMIN, 1, activity=0.9, mem_intensity=0.0)
        hi = power_model.power(FMAX, 8, activity=1.0, mem_intensity=0.3)
        assert 8.0 < lo < 15.0
        assert 45.0 < hi < 60.0

    def test_duty_reduces_power_but_not_below_gated(self, power_model):
        full = power_model.power(FMIN, 8, duty=1.0)
        half = power_model.power(FMIN, 8, duty=0.5)
        gated_floor = power_model.params.p_uncore_idle + 8 * (
            power_model.params.p_core_leak
        )
        assert half < full
        assert half > gated_floor - 1e-9

    def test_efficiency_scales_everything(self):
        base = SocketPowerModel(efficiency=1.0)
        leaky = SocketPowerModel(efficiency=1.1)
        assert leaky.power(2.0, 4) == pytest.approx(1.1 * base.power(2.0, 4))
        assert leaky.idle_power() == pytest.approx(1.1 * base.idle_power())

    def test_invalid_inputs(self, power_model):
        with pytest.raises(ValueError):
            power_model.power(FMAX, 0)
        with pytest.raises(ValueError):
            power_model.power(FMAX, 9)
        with pytest.raises(ValueError):
            power_model.power(FMAX, 4, mem_intensity=1.5)
        with pytest.raises(ValueError):
            power_model.power(FMAX, 4, duty=0.0)
        with pytest.raises(ValueError):
            power_model.power(-1.0, 4)
        with pytest.raises(ValueError):
            SocketPowerModel(efficiency=0.0)

    def test_min_max_power_bracket(self, power_model):
        lo = power_model.min_power(8, 1.0, 0.3)
        hi = power_model.max_power(8, 1.0, 0.3)
        mid = power_model.power(2.0, 8, 1.0, 0.3)
        assert lo < mid < hi


class TestFrequencyForPower:
    def test_inverts_power(self, power_model):
        for target in (25.0, 35.0, 45.0):
            f = power_model.frequency_for_power(target, 8, 1.0, 0.3)
            if FMIN < f < FMAX:  # interior solutions invert exactly
                assert power_model.power(f, 8, 1.0, 0.3) == pytest.approx(target)

    def test_clamps_low_budget_to_fmin(self, power_model):
        assert power_model.frequency_for_power(1.0, 8) == FMIN

    def test_clamps_high_budget_to_fmax(self, power_model):
        assert power_model.frequency_for_power(500.0, 8) == FMAX

    def test_monotone_in_budget(self, power_model):
        freqs = [
            power_model.frequency_for_power(w, 8, 1.0, 0.3)
            for w in (20, 30, 40, 50)
        ]
        assert all(b >= a for a, b in zip(freqs, freqs[1:]))
