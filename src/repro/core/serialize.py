"""Schedule (de)serialization: persist LP/ILP results as JSON.

The paper's workflow is inherently offline — trace on the cluster, solve
on a workstation, replay on the cluster.  Serialized schedules are the
artifact that travels: a JSON document with the cap, the objective, and
per-task configuration mixtures, loadable back into a
:class:`~repro.core.schedule.PowerSchedule` whose ``config_map()`` feeds
the replay policy directly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..machine.configuration import ConfigPoint, Configuration
from ..simulator.program import TaskRef
from .schedule import PowerSchedule, TaskAssignment

__all__ = ["schedule_to_dict", "schedule_from_dict", "save_schedule",
           "load_schedule"]

_FORMAT_VERSION = 1


def schedule_to_dict(schedule: PowerSchedule) -> dict:
    """A JSON-safe dictionary representation of a schedule."""
    return {
        "format_version": _FORMAT_VERSION,
        "kind": schedule.kind,
        "cap_w": schedule.cap_w,
        "objective_s": schedule.objective_s,
        "vertex_times": [float(t) for t in schedule.vertex_times],
        "solver_info": {
            k: v for k, v in schedule.solver_info.items()
            if isinstance(v, (str, int, float, bool))
        },
        "assignments": [
            {
                "rank": a.ref.rank,
                "seq": a.ref.seq,
                "edge_id": a.edge_id,
                "duration_s": a.duration_s,
                "power_w": a.power_w,
                # Legacy (homogeneous) mixtures omit the device key so the
                # serialized document is byte-identical to format v1 files.
                "mixture": [
                    {
                        "freq_ghz": p.config.freq_ghz,
                        "threads": p.config.threads,
                        "duty": p.config.duty,
                        **({"device": p.config.device} if p.config.device else {}),
                        "duration_s": p.duration_s,
                        "power_w": p.power_w,
                        "fraction": f,
                    }
                    for p, f in a.mixture
                ],
            }
            for a in schedule.assignments.values()
        ],
    }


def schedule_from_dict(data: dict) -> PowerSchedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported schedule format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    assignments: dict[TaskRef, TaskAssignment] = {}
    for entry in data["assignments"]:
        ref = TaskRef(entry["rank"], entry["seq"])
        mixture = tuple(
            (
                ConfigPoint(
                    Configuration(
                        m["freq_ghz"],
                        m["threads"],
                        m["duty"],
                        m.get("device", ""),
                    ),
                    m["duration_s"],
                    m["power_w"],
                ),
                float(m["fraction"]),
            )
            for m in entry["mixture"]
        )
        assignments[ref] = TaskAssignment(
            ref=ref,
            edge_id=entry["edge_id"],
            mixture=mixture,
            duration_s=entry["duration_s"],
            power_w=entry["power_w"],
        )
    return PowerSchedule(
        kind=data["kind"],
        cap_w=data["cap_w"],
        objective_s=data["objective_s"],
        assignments=assignments,
        vertex_times=np.asarray(data["vertex_times"], dtype=float),
        solver_info=dict(data.get("solver_info", {})),
    )


def save_schedule(schedule: PowerSchedule, path: str | Path) -> None:
    """Write a schedule to a JSON file."""
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=1))


def load_schedule(path: str | Path) -> PowerSchedule:
    """Read a schedule from a JSON file."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
