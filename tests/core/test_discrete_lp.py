"""Tests for the discrete (MILP) variant of the fixed-order formulation."""

import pytest

from repro.core import MAX_DISCRETE_TASKS, round_schedule, solve_fixed_order_lp
from repro.machine import SocketPowerModel, TaskKernel
from repro.simulator import trace_application
from repro.workloads import WorkloadSpec, make_comd

from ..conftest import make_p2p_app


@pytest.fixture(scope="module")
def trace():
    kernel = TaskKernel(cpu_seconds=1.0, mem_seconds=0.2,
                        parallel_fraction=0.98, mem_parallel_fraction=0.9,
                        bw_saturation_threads=4, mem_intensity=0.3)
    models = [SocketPowerModel(), SocketPowerModel(efficiency=1.05)]
    return trace_application(make_p2p_app(kernel, iterations=2), models)


class TestDiscreteFormulation:
    def test_single_configuration_per_task(self, trace):
        res = solve_fixed_order_lp(trace, 58.0, discrete=True)
        assert res.feasible
        assert res.schedule.kind == "discrete"
        for a in res.schedule.assignments.values():
            assert a.is_discrete

    def test_bounded_by_continuous(self, trace):
        """Discrete is a restriction: its optimum can only be >= the
        continuous relaxation's."""
        for cap in (48.0, 58.0, 80.0):
            cont = solve_fixed_order_lp(trace, cap)
            disc = solve_fixed_order_lp(trace, cap, discrete=True)
            assert disc.makespan_s >= cont.makespan_s - 1e-9

    def test_close_to_continuous(self, trace):
        """Paper §3.1: 'the LP and ILP formulations yield similar results'
        — the relaxation gap is small."""
        cont = solve_fixed_order_lp(trace, 58.0)
        disc = solve_fixed_order_lp(trace, 58.0, discrete=True)
        assert disc.makespan_s <= cont.makespan_s * 1.05

    def test_beats_or_matches_rounding(self, trace):
        """The exact MILP never loses to heuristic rounding at the same
        cap (rounding may also overshoot the cap; the MILP cannot)."""
        cap = 58.0
        cont = solve_fixed_order_lp(trace, cap)
        rounded = round_schedule(trace, cont.schedule, mode="floor")
        disc = solve_fixed_order_lp(trace, cap, discrete=True)
        assert disc.makespan_s <= rounded.objective_s + 1e-9

    def test_discrete_respects_cap_at_events(self, trace):
        cap = 52.0
        res = solve_fixed_order_lp(trace, cap, discrete=True)
        for act in res.events.active.values():
            total = sum(
                res.schedule.assignments[trace.edge_refs[e]].power_w
                for e in act
            )
            assert total <= cap * (1 + 1e-6)

    def test_size_guard(self):
        app = make_comd(WorkloadSpec(n_ranks=8, iterations=8, seed=0))
        models = [SocketPowerModel() for _ in range(8)]
        trace = trace_application(app, models)
        assert len(trace.task_edges) > MAX_DISCRETE_TASKS
        with pytest.raises(ValueError, match="discrete formulation limited"):
            solve_fixed_order_lp(trace, 240.0, discrete=True)
