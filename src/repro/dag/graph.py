"""Application task graph: the paper's DAG of MPI events and tasks.

Vertices are MPI call completions (Init, Send/Recv, Isend/Wait, collective
operations, Finalize).  Edges are either **compute tasks** — the
computation a rank performs between two consecutive MPI calls, runnable in
many (frequency, threads) configurations — or **messages**, whose duration
is a fixed linear function of size (latency + size / bandwidth).

Collectives are modeled as a single shared vertex: every participant's
entering edge terminates there and every participant's next task departs
from it, which (through LP equation 4) forces post-collective tasks to
start simultaneously — the synchronization semantics of an MPI collective.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..machine.performance import TaskKernel

__all__ = ["VertexKind", "EdgeKind", "Vertex", "TaskEdge", "TaskGraph"]


class VertexKind(enum.Enum):
    """Kinds of MPI events a DAG vertex can represent."""

    INIT = "init"
    FINALIZE = "finalize"
    SEND = "send"
    RECV = "recv"
    ISEND = "isend"
    IRECV = "irecv"
    WAIT = "wait"
    COLLECTIVE = "collective"
    PCONTROL = "pcontrol"


class EdgeKind(enum.Enum):
    """DAG edge kinds: configurable computation or fixed-cost message."""

    COMPUTE = "compute"
    MESSAGE = "message"


@dataclass(frozen=True)
class Vertex:
    """One MPI event.  ``rank`` is None for shared collective vertices."""

    id: int
    kind: VertexKind
    rank: int | None = None
    label: str = ""
    iteration: int = -1


@dataclass(frozen=True)
class TaskEdge:
    """A DAG edge: compute task (configurable) or message (fixed duration).

    Compute edges carry the :class:`TaskKernel` describing their work and a
    ``rank`` identifying the socket they execute on; message edges carry a
    fixed ``duration_s``.
    """

    id: int
    src: int
    dst: int
    kind: EdgeKind
    rank: int | None = None
    kernel: TaskKernel | None = None
    duration_s: float = 0.0
    size_bytes: int = 0
    iteration: int = -1
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind is EdgeKind.COMPUTE:
            if self.kernel is None:
                raise ValueError(f"compute edge {self.id} needs a kernel")
            if self.rank is None:
                raise ValueError(f"compute edge {self.id} needs an owning rank")
        else:
            if self.duration_s < 0:
                raise ValueError(
                    f"message edge {self.id} has negative duration {self.duration_s}"
                )

    @property
    def is_compute(self) -> bool:
        return self.kind is EdgeKind.COMPUTE


class TaskGraph:
    """Mutable DAG container with adjacency indexes.

    Invariants (checked by :meth:`validate`): acyclic; exactly one INIT and
    one FINALIZE vertex; every compute edge's endpoints belong to its rank
    or to shared (collective/INIT/FINALIZE) vertices; edge endpoints exist.
    """

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.vertices: list[Vertex] = []
        self.edges: list[TaskEdge] = []
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    def add_vertex(
        self,
        kind: VertexKind,
        rank: int | None = None,
        label: str = "",
        iteration: int = -1,
    ) -> Vertex:
        """Append an MPI-event vertex and return it."""
        if rank is not None and not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        v = Vertex(id=len(self.vertices), kind=kind, rank=rank, label=label,
                   iteration=iteration)
        self.vertices.append(v)
        self._out[v.id] = []
        self._in[v.id] = []
        return v

    def _add_edge(self, edge: TaskEdge) -> TaskEdge:
        for vid in (edge.src, edge.dst):
            if not (0 <= vid < len(self.vertices)):
                raise ValueError(f"edge references unknown vertex {vid}")
        if edge.src == edge.dst:
            raise ValueError(f"self-loop at vertex {edge.src}")
        self.edges.append(edge)
        self._out[edge.src].append(edge.id)
        self._in[edge.dst].append(edge.id)
        return edge

    def add_compute(
        self,
        src: int,
        dst: int,
        rank: int,
        kernel: TaskKernel,
        iteration: int = -1,
        label: str = "",
    ) -> TaskEdge:
        """Append a compute-task edge owned by ``rank``."""
        return self._add_edge(
            TaskEdge(
                id=len(self.edges), src=src, dst=dst, kind=EdgeKind.COMPUTE,
                rank=rank, kernel=kernel, iteration=iteration, label=label,
            )
        )

    def add_message(
        self,
        src: int,
        dst: int,
        duration_s: float,
        size_bytes: int = 0,
        iteration: int = -1,
        label: str = "",
    ) -> TaskEdge:
        """Append a fixed-duration message edge."""
        return self._add_edge(
            TaskEdge(
                id=len(self.edges), src=src, dst=dst, kind=EdgeKind.MESSAGE,
                duration_s=duration_s, size_bytes=size_bytes,
                iteration=iteration, label=label,
            )
        )

    # ------------------------------------------------------------------
    def out_edges(self, vertex_id: int) -> list[TaskEdge]:
        return [self.edges[i] for i in self._out[vertex_id]]

    def in_edges(self, vertex_id: int) -> list[TaskEdge]:
        return [self.edges[i] for i in self._in[vertex_id]]

    def compute_edges(self) -> list[TaskEdge]:
        return [e for e in self.edges if e.is_compute]

    def message_edges(self) -> list[TaskEdge]:
        return [e for e in self.edges if not e.is_compute]

    def rank_edges(self, rank: int) -> list[TaskEdge]:
        """Compute edges owned by one rank, in insertion (program) order."""
        return [e for e in self.edges if e.is_compute and e.rank == rank]

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def find_vertex(self, kind: VertexKind) -> Vertex:
        """The unique vertex of a kind (INIT / FINALIZE)."""
        matches = [v for v in self.vertices if v.kind is kind]
        if len(matches) != 1:
            raise ValueError(f"expected exactly one {kind}, found {len(matches)}")
        return matches[0]

    # ------------------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Kahn's algorithm; raises if the graph has a cycle."""
        indeg = {v.id: len(self._in[v.id]) for v in self.vertices}
        ready = sorted(vid for vid, d in indeg.items() if d == 0)
        order: list[int] = []
        # Use a list-as-stack with sorted seeding for deterministic output.
        from collections import deque

        queue = deque(ready)
        while queue:
            vid = queue.popleft()
            order.append(vid)
            for eid in self._out[vid]:
                dst = self.edges[eid].dst
                indeg[dst] -= 1
                if indeg[dst] == 0:
                    queue.append(dst)
        if len(order) != len(self.vertices):
            raise ValueError("task graph contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        self.find_vertex(VertexKind.INIT)
        self.find_vertex(VertexKind.FINALIZE)
        self.topological_order()  # acyclicity
        for e in self.compute_edges():
            for vid in (e.src, e.dst):
                v = self.vertices[vid]
                if v.rank is not None and v.rank != e.rank:
                    raise ValueError(
                        f"compute edge {e.id} (rank {e.rank}) touches vertex "
                        f"{vid} of rank {v.rank}"
                    )

    def describe(self) -> str:
        """One-line human-readable summary."""
        nc = len(self.compute_edges())
        nm = len(self.message_edges())
        return (
            f"TaskGraph(ranks={self.n_ranks}, vertices={self.n_vertices}, "
            f"compute={nc}, messages={nm})"
        )
