"""Run provenance: the manifest stamped into artifacts and cache entries.

A result file that cannot say which code, configuration, and seed
produced it is a liability — the paper's evaluation lives on seeded,
re-runnable comparisons.  A :class:`RunManifest` captures the identity
of a run: the SHA-256 of its canonical configuration document, the RNG
seed, the model-layer version (cache-compatibility epoch of the LP
compiler), the package version, and the interpreter/platform it ran on.

Producers:

* the CLI writes ``manifest.json`` next to every ``--save`` directory's
  artifacts;
* :class:`~repro.exec.cache.SolverCache` stamps a manifest into every
  entry it stores (readers ignore it — it is for forensics, not keying).

The manifest deliberately contains no wall-clock timestamp: everything
in it is a pure function of code + configuration, so manifests — like
traces — are byte-identical across repeated runs of the same thing.

Stdlib-only.  ``model_layer_version`` and ``package_version`` are passed
in by callers (the layers above know them); importing them here would
invert the layering that lets everything import ``repro.obs``.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "config_hash",
    "collect_manifest",
    "write_manifest",
    "read_manifest",
]

#: Bump when the manifest layout changes.
#: 2: optional ``scenario`` field — the full scenario-spec document of
#: N-way runs (readers of schema-1 manifests are unaffected: the field
#: is omitted when absent).
#: 3: optional ``failures`` field — the structured per-cell failures of
#: a ``--keep-going`` sweep, in cap order (omitted when every cell
#: succeeded, so fully-ok manifests are unchanged).
#: 4: optional ``metrics`` field — the *deterministic* subset of the
#: run's metrics snapshot (``Metrics.to_dict(deterministic_only=True)``;
#: see :mod:`repro.obs.metrics`).  Embedded only when metrics were
#: explicitly collected (``--metrics``/``--metrics-prom``), and then
#: still byte-identical serial vs. parallel; note it reflects the work a
#: run actually performed, so a journal-resumed run's field differs from
#: its from-scratch twin — runs that must diff clean leave metrics off.
#: v5: scenario cell outcomes embedded in manifests carry per-iteration
#: ``energy_j`` (the energy-objective/frontier era).
MANIFEST_SCHEMA_VERSION = 5


def config_hash(config: object) -> str:
    """SHA-256 of a configuration document's canonical JSON form.

    Canonical form matches :mod:`repro.exec.keys`: sorted keys, no
    whitespace, shortest-round-trip floats.
    """
    doc = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """Identity of one run: configuration, seed, code, and platform."""

    config_hash: str
    seed: int | None
    model_layer_version: int | None
    package_version: str
    python_version: str
    platform: str
    schema: int = MANIFEST_SCHEMA_VERSION
    scenario: dict | None = None  # full scenario-spec doc of N-way runs
    failures: tuple | None = None  # per-cell failure docs of a keep-going run
    metrics: dict | None = None  # deterministic metrics snapshot subset

    def to_dict(self) -> dict:
        """JSON-safe manifest document (optional fields omitted when None)."""
        doc = {
            "schema": self.schema,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "model_layer_version": self.model_layer_version,
            "package_version": self.package_version,
            "python_version": self.python_version,
            "platform": self.platform,
        }
        if self.scenario is not None:
            doc["scenario"] = self.scenario
        if self.failures is not None:
            doc["failures"] = list(self.failures)
        if self.metrics is not None:
            doc["metrics"] = self.metrics
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output (any schema)."""
        return cls(
            config_hash=str(doc["config_hash"]),
            seed=doc.get("seed"),
            model_layer_version=doc.get("model_layer_version"),
            package_version=str(doc.get("package_version", "unknown")),
            python_version=str(doc.get("python_version", "unknown")),
            platform=str(doc.get("platform", "unknown")),
            schema=int(doc.get("schema", MANIFEST_SCHEMA_VERSION)),
            scenario=doc.get("scenario"),
            failures=(
                tuple(doc["failures"]) if doc.get("failures") is not None else None
            ),
            metrics=doc.get("metrics"),
        )


def _default_package_version() -> str:
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except Exception:  # PackageNotFoundError or a broken metadata backend
        return "unknown"


def collect_manifest(
    config: object,
    seed: int | None = None,
    model_layer_version: int | None = None,
    package_version: str | None = None,
    scenario: dict | None = None,
    failures: list[dict] | None = None,
    metrics: dict | None = None,
) -> RunManifest:
    """Build the manifest for a run described by ``config``.

    ``config`` is any JSON-serializable document fully describing what
    was run (an :meth:`ExperimentConfig.cache_document`, the CLI's
    argument record, ...).  Only its hash is retained — except for
    ``scenario``, the full scenario-spec document of an N-way run, which
    is embedded verbatim so a saved run is replayable from its manifest
    alone; ``failures``, the structured per-cell failure documents
    of a keep-going sweep (deterministic: no wall-clock fields), so the
    manifest says not just what ran but what *didn't*; and ``metrics``,
    the deterministic subset of a metrics snapshot (callers must pass
    ``Metrics.to_dict(deterministic_only=True)`` — never the full
    snapshot, whose operational fields are wall-clock dependent).
    """
    return RunManifest(
        config_hash=config_hash(config),
        seed=seed,
        model_layer_version=model_layer_version,
        package_version=(
            package_version if package_version is not None
            else _default_package_version()
        ),
        python_version=platform.python_version(),
        platform=f"{sys.platform}-{platform.machine()}",
        scenario=scenario,
        failures=tuple(failures) if failures else None,
        metrics=metrics,
    )


def write_manifest(manifest: RunManifest, path: str | Path) -> Path:
    """Write ``manifest.json``-style provenance next to saved artifacts."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest.to_dict(), indent=1, sort_keys=True) + "\n")
    return path


def read_manifest(path: str | Path) -> RunManifest:
    return RunManifest.from_dict(json.loads(Path(path).read_text()))
