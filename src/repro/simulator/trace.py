"""Tracing library: MPI programs → application DAG + per-task profiles.

The paper obtains its DAG from a PMPI-based tracing library and its
per-task configuration measurements from Conductor's exploration phase.
In simulation both collapse into a static translation: the DAG structure
depends only on the op lists (messages match FIFO per channel exactly as
the engine matches them), and "measuring" a task in a configuration means
evaluating the machine models on the task's kernel and owning socket —
optionally with multiplicative measurement noise to exercise the
noise-robustness of downstream consumers.

The result, :class:`Trace`, carries everything the LP/ILP formulations
need: the graph, per-compute-edge Pareto and convex frontiers, and the
TaskRef <-> edge-id correspondence used to replay LP schedules against the
original program.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..dag.builder import DagBuilder
from ..dag.graph import TaskGraph, VertexKind
from ..exec.timing import span
from ..machine.configuration import ConfigPoint
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.frontiers import FrontierStore, NodeFrontierStore
from ..machine.power import SocketPowerModel
from .network import IB_QDR, NetworkModel
from .program import (
    Application,
    CollectiveOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    PcontrolOp,
    RecvOp,
    SendOp,
    TaskRef,
    WaitOp,
)

__all__ = ["Trace", "trace_application", "build_dag"]


@dataclass
class Trace:
    """A traced application: DAG plus per-task measurement data."""

    app: Application
    graph: TaskGraph
    task_edges: dict[TaskRef, int]
    edge_refs: dict[int, TaskRef]
    pareto: dict[int, list[ConfigPoint]] = field(default_factory=dict)
    frontiers: dict[int, list[ConfigPoint]] = field(default_factory=dict)

    def frontier_for(self, ref: TaskRef) -> list[ConfigPoint]:
        return self.frontiers[self.task_edges[ref]]

    @property
    def uses_devices(self) -> bool:
        """True when any frontier point is device-qualified.

        Traces from heterogeneous nodes carry per-device configurations;
        consumers that assume the homogeneous CPU time model (the default
        initial schedule, the batch evaluators) check this and switch to
        frontier-driven paths.
        """
        return any(
            p.config.device for points in self.pareto.values() for p in points
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Trace({self.app.name}: {self.graph.describe()}, "
            f"{len(self.task_edges)} profiled tasks)"
        )


def build_dag(app: Application, network: NetworkModel = IB_QDR) -> tuple[
    TaskGraph, dict[TaskRef, int]
]:
    """Statically translate an application into its task graph.

    Mirrors the engine's semantics: eager sends, FIFO channel matching,
    shared collective vertices.  Uses the same blocked-rank scan loop so
    that wait/recv matching order is identical to execution order.
    """
    app.validate()
    n = app.n_ranks
    b = DagBuilder(n)
    ptr = [0] * n
    # Channels carry (send_vertex_id, size_bytes) in FIFO order.
    channels: dict[tuple[int, int, int], deque[tuple[int, int]]] = {}
    requests: list[dict[int, tuple]] = [dict() for _ in range(n)]
    waiting_collective = [False] * n

    def advance(rank: int) -> bool:
        if waiting_collective[rank] or ptr[rank] >= len(app.programs[rank]):
            return False
        op = app.programs[rank][ptr[rank]]

        if isinstance(op, ComputeOp):
            b.compute(rank, op.kernel, iteration=op.iteration, label=op.label)
            ptr[rank] += 1
            return True

        if isinstance(op, (SendOp, IsendOp)):
            kind = VertexKind.SEND if isinstance(op, SendOp) else VertexKind.ISEND
            v = b.event(rank, kind, label=f"{kind.value}->{op.dst}",
                        iteration=op.iteration)
            channels.setdefault((rank, op.dst, op.tag), deque()).append(
                (v, op.size_bytes)
            )
            if isinstance(op, IsendOp):
                requests[rank][op.request] = ("send",)
            ptr[rank] += 1
            return True

        if isinstance(op, IrecvOp):
            requests[rank][op.request] = ("recv", op.src, op.tag)
            ptr[rank] += 1
            return True

        if isinstance(op, RecvOp):
            q = channels.get((op.src, rank, op.tag))
            if not q:
                return False
            sv, size = q.popleft()
            rv = b.event(rank, VertexKind.RECV, label=f"recv<-{op.src}",
                         iteration=op.iteration)
            b.graph.add_message(sv, rv, network.message_time(size), size,
                                iteration=op.iteration)
            ptr[rank] += 1
            return True

        if isinstance(op, WaitOp):
            req = requests[rank].get(op.request)
            if req is None:
                raise RuntimeError(f"rank {rank}: wait on unposted {op.request}")
            if req[0] == "send":
                b.event(rank, VertexKind.WAIT, label="wait-send",
                        iteration=op.iteration)
            else:
                _, src, tag = req
                q = channels.get((src, rank, tag))
                if not q:
                    return False
                sv, size = q.popleft()
                wv = b.event(rank, VertexKind.WAIT, label=f"wait<-{src}",
                             iteration=op.iteration)
                b.graph.add_message(sv, wv, network.message_time(size), size,
                                    iteration=op.iteration)
            del requests[rank][op.request]
            ptr[rank] += 1
            return True

        if isinstance(op, (CollectiveOp, PcontrolOp)):
            waiting_collective[rank] = True
            return False

        raise TypeError(f"unknown op {op!r}")

    def resolve_collective() -> bool:
        if not all(waiting_collective):
            return False
        ops = [app.programs[r][ptr[r]] for r in range(n)]
        first = ops[0]
        if isinstance(first, PcontrolOp):
            b.pcontrol(first.iteration)
        else:
            size = max(o.size_bytes for o in ops if isinstance(o, CollectiveOp))
            b.collective(
                label=first.kind,
                duration_s=network.collective_time(first.kind, n, size),
                iteration=first.iteration,
            )
        for r in range(n):
            waiting_collective[r] = False
            ptr[r] += 1
        return True

    progress = True
    while progress:
        progress = False
        for rank in range(n):
            while advance(rank):
                progress = True
        if resolve_collective():
            progress = True

    stuck = [r for r in range(n) if ptr[r] < len(app.programs[r])]
    if stuck:
        raise RuntimeError(f"deadlock while tracing: ranks {stuck}")

    graph = b.finalize()

    # Correlate compute edges back to TaskRefs: edges were appended in each
    # rank's program order, so the k-th compute edge of a rank is task k.
    task_edges: dict[TaskRef, int] = {}
    for rank in range(n):
        for seq, edge in enumerate(graph.rank_edges(rank)):
            task_edges[TaskRef(rank, seq)] = edge.id
    return graph, task_edges


def trace_application(
    app: Application,
    power_models: list[SocketPowerModel],
    network: NetworkModel = IB_QDR,
    spec: CpuSpec = XEON_E5_2670,
    measurement_noise: float = 0.0,
    seed: int = 0,
    frontier_store: FrontierStore | NodeFrontierStore | None = None,
) -> Trace:
    """Trace an application and profile every task across all configurations.

    ``measurement_noise`` perturbs every measured (duration, power) by a
    multiplicative lognormal factor — real exploration measures a noisy
    system.  Identical (kernel, socket) pairs share a cached profile; noise
    is applied per (kernel, socket), matching an exploration pass that
    profiles each distinct task shape once.

    ``frontier_store`` shares profiles with other consumers on the same
    machine (runtime policies, other traces); when given it takes
    precedence over ``measurement_noise``/``seed``, which configure the
    internally created store.
    """
    with span("trace"):
        return _trace_application(
            app, power_models, network, spec, measurement_noise, seed,
            frontier_store,
        )


def _trace_application(
    app: Application,
    power_models: list[SocketPowerModel],
    network: NetworkModel,
    spec: CpuSpec,
    measurement_noise: float,
    seed: int,
    frontier_store: FrontierStore | NodeFrontierStore | None = None,
) -> Trace:
    if len(power_models) != app.n_ranks:
        raise ValueError(
            f"need {app.n_ranks} power models, got {len(power_models)}"
        )
    # Per-rank power models: heterogeneous machines profile correctly.
    store = (
        frontier_store
        if frontier_store is not None
        else FrontierStore(
            power_models,
            measurement_noise=measurement_noise,
            rng=np.random.default_rng(seed),
        )
    )
    graph, task_edges = build_dag(app, network)

    pareto: dict[int, list[ConfigPoint]] = {}
    frontiers: dict[int, list[ConfigPoint]] = {}
    for ref, edge_id in task_edges.items():
        kernel = graph.edges[edge_id].kernel
        prof = store.profile(ref.rank, kernel)
        pareto[edge_id], frontiers[edge_id] = prof.pareto, prof.convex

    edge_refs = {eid: ref for ref, eid in task_edges.items()}
    return Trace(
        app=app,
        graph=graph,
        task_edges=task_edges,
        edge_refs=edge_refs,
        pareto=pareto,
        frontiers=frontiers,
    )
