"""Core contribution: LP and ILP formulations of power-constrained scheduling."""

from .bottleneck import BottleneckReport, analyze_bottlenecks
from .energy_lp import EnergyLpResult, solve_energy_lp
from .events import EventStructure, build_event_structure
from .fixed_order_lp import (
    MAX_DISCRETE_TASKS,
    FixedOrderLpResult,
    solve_fixed_order_lp,
)
from .flow_ilp import MAX_FLOW_ILP_EDGES, FlowIlpResult, solve_flow_ilp
from .rounding import round_schedule
from .schedule import PowerSchedule, TaskAssignment
from .serialize import (
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from .solver import InfeasibleError, LinearProgram, LpSolution, LpStatus
from .sweep import CapSweepResult, minimum_feasible_cap, solve_cap_sweep
from .validate_schedule import ValidationReport, validate_schedule

__all__ = [
    "BottleneckReport",
    "CapSweepResult",
    "EnergyLpResult",
    "EventStructure",
    "FixedOrderLpResult",
    "FlowIlpResult",
    "InfeasibleError",
    "LinearProgram",
    "LpSolution",
    "LpStatus",
    "MAX_DISCRETE_TASKS",
    "MAX_FLOW_ILP_EDGES",
    "PowerSchedule",
    "TaskAssignment",
    "ValidationReport",
    "analyze_bottlenecks",
    "build_event_structure",
    "load_schedule",
    "round_schedule",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
    "solve_energy_lp",
    "solve_fixed_order_lp",
    "solve_flow_ilp",
    "validate_schedule",
    "minimum_feasible_cap",
    "solve_cap_sweep",
]
