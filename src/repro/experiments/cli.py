"""Command-line entry point: regenerate any paper exhibit.

Usage (installed as ``repro-experiments``, with ``repro-exp`` as a short
alias)::

    repro-experiments list
    repro-experiments fig1 fig8 fig9 ... table3 overheads headline
    repro-experiments all [--ranks 32]
    repro-experiments all --quick        # 8 ranks, small fig8 sweep

    repro-exp run --quick --trace trace.json   # one traced comparison
    repro-exp audit [exhibit ...]              # solver audit table
    repro-exp validate-trace trace.json        # schema-check a trace

``--quick`` shrinks rank counts and sweep densities for smoke runs; the
full defaults match the measurement protocol recorded in EXPERIMENTS.md.

Observability (see ``docs/observability.md``): ``--trace FILE`` /
``--trace-dir DIR`` export a Chrome trace-event JSON (Perfetto-loadable)
plus a raw ``.jsonl`` of every event the run emitted; ``--timings`` and
``--timings-json`` additionally surface the solver audit ledger; and
``--save DIR`` stamps a ``manifest.json`` of run provenance next to the
saved artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import ExitStack, contextmanager
from pathlib import Path

from ..core.model import MODEL_LAYER_VERSION
from ..exec.options import ExecutionOptions, set_execution_options
from ..exec.timing import Telemetry, use_telemetry
from ..obs.audit import SolveAudit, use_audit
from ..obs.export import export_chrome_trace, export_jsonl, validate_trace_file
from ..obs.provenance import collect_manifest, write_manifest
from ..obs.recorder import TraceRecorder, use_recorder
from . import figures, tables
from .runner import ComparisonResult, ExperimentConfig, run_comparison

__all__ = ["main", "EXHIBITS"]


def _sensitivity(quick: bool):
    from .sensitivity import sensitivity_analysis

    if quick:
        return sensitivity_analysis(n_ranks=4, exponents=(2.0, 2.8),
                                    sigmas=(0.0, 0.08))
    return sensitivity_analysis()


def _fig8(quick: bool):
    if quick:
        return figures.figure8_flow_vs_fixed(n_caps=12, time_limit_s=20.0)
    return figures.figure8_flow_vs_fixed()


EXHIBITS = {
    "fig1": lambda q, n: figures.figure1_pareto_frontier(),
    "fig8": lambda q, n: _fig8(q),
    "fig9": lambda q, n: figures.figure9_lp_vs_static(n),
    "fig10": lambda q, n: figures.figure10_lp_vs_conductor(n),
    "fig11": lambda q, n: figures.figure11_comd(n),
    "fig12": lambda q, n: figures.figure12_comd_task_scatter(
        n_ranks=n, iterations=4 if q else 8
    ),
    "fig13": lambda q, n: figures.figure13_bt(n),
    "fig14": lambda q, n: figures.figure14_sp(n),
    "fig15": lambda q, n: figures.figure15_lulesh(n),
    "table3": lambda q, n: tables.table3_lulesh_task_characteristics(n_ranks=n),
    "overheads": lambda q, n: tables.overheads_summary(),
    "energy": lambda q, n: tables.energy_comparison(n_ranks=min(n, 8)),
    "mincap": lambda q, n: tables.minimum_cap_table(
        n_ranks=min(n, 8), iterations=2 if q else 3
    ),
    "sensitivity": lambda q, n: _sensitivity(q),
    "headline": lambda q, n: figures.headline_summary(n),
}

def _run_config(args) -> ExperimentConfig:
    """The comparison config for ``run``/``audit`` from the CLI flags.

    ``--quick`` shrinks the comparison to 4 ranks and a 12-iteration run
    (steady window 6) — small enough for CI smoke, large enough that the
    Conductor exits exploration and reallocates at least once.
    """
    if args.quick:
        ranks = 4 if args.ranks == 32 else args.ranks
        return ExperimentConfig(
            benchmark=args.benchmark, n_ranks=ranks,
            run_iterations=12, lp_iterations=2, steady_window=6,
        )
    return ExperimentConfig(benchmark=args.benchmark, n_ranks=args.ranks)


def _comparison_text(result: ComparisonResult) -> str:
    """Human summary of one comparison cell (the ``run`` subcommand)."""

    def fmt(value: float | None) -> str:
        return f"{value:.4f} s/iter" if value is not None else "unschedulable"

    lines = [
        f"{result.benchmark}: {result.n_ranks} ranks at "
        f"{result.cap_per_socket_w:g} W/socket ({result.job_cap_w:g} W job cap)",
        f"  static     {fmt(result.static_s)}",
        f"  conductor  {fmt(result.conductor_s)}"
        f"  ({result.conductor_reallocs} reallocations)",
        f"  lp bound   {fmt(result.lp_s)}",
    ]
    if result.lp_vs_static_pct is not None:
        lines.append(f"  lp improves on static by {result.lp_vs_static_pct:.1f}%")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "exhibits", nargs="*", default=["all"],
        help="exhibit names (see 'list'), 'all', or a subcommand: "
             "run, audit, validate-trace, verify-results",
    )
    parser.add_argument("--ranks", type=int, default=32,
                        help="MPI ranks / sockets (default 32, as in the paper)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast smoke run")
    parser.add_argument("--benchmark", default="comd",
                        help="benchmark for the run/audit subcommands")
    parser.add_argument("--cap", type=float, default=50.0,
                        help="per-socket cap (W) for the run/audit subcommands")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each exhibit's text to DIR/<name>.txt "
                             "plus a manifest.json of run provenance")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="also render figure exhibits to DIR/<name>.svg")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for sweep-shaped exhibits "
                             "(1 = serial, 0 = one per CPU core)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed solver cache directory "
                             "(warm entries skip LP solves and replays)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir: solve everything fresh")
    parser.add_argument("--timings", action="store_true",
                        help="print per-phase timings, cache counters, and "
                             "the solver audit table")
    parser.add_argument("--timings-json", metavar="FILE", default=None,
                        help="also write the timing telemetry (with the "
                             "solver audit ledger) as JSON")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="export a Chrome trace-event JSON (open in "
                             "Perfetto) plus FILE's .jsonl sibling")
    parser.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="like --trace, writing DIR/trace.json[l]")
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")

    command = args.exhibits[0] if args.exhibits else None

    if command == "list":
        for name in EXHIBITS:
            print(name)
        return 0

    if command == "validate-trace":
        if len(args.exhibits) < 2:
            parser.error("validate-trace needs a trace file")
        rc = 0
        for path in args.exhibits[1:]:
            errors = validate_trace_file(path)
            if errors:
                rc = 1
                for err in errors:
                    print(f"{path}: {err}", file=sys.stderr)
                print(f"{path}: INVALID ({len(errors)} error(s))")
            else:
                print(f"{path}: OK")
        return rc

    set_execution_options(ExecutionOptions(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    ))

    telemetry = Telemetry()
    recorder = (
        TraceRecorder() if (args.trace or args.trace_dir) else None
    )
    audit = (
        SolveAudit()
        if (args.timings or args.timings_json or command in ("run", "audit"))
        else None
    )

    @contextmanager
    def observe():
        """Activate every requested observability sink for a block."""
        with ExitStack() as stack:
            stack.enter_context(use_telemetry(telemetry))
            if recorder is not None:
                stack.enter_context(use_recorder(recorder))
            if audit is not None:
                stack.enter_context(use_audit(audit))
            yield

    def export_traces() -> None:
        if recorder is None:
            return
        events = recorder.snapshot()
        targets = []
        if args.trace:
            targets.append(Path(args.trace))
        if args.trace_dir:
            targets.append(Path(args.trace_dir) / "trace.json")
        for target in targets:
            export_chrome_trace(events, target)
            export_jsonl(events, target.with_suffix(".jsonl"))
            print(f"[trace: {len(events)} events -> {target}]")
        if recorder.dropped:
            print(f"[trace: {recorder.dropped} events dropped at capacity]",
                  file=sys.stderr)

    def emit_timings() -> None:
        if args.timings:
            print(telemetry.summary())
            if audit is not None:
                print()
                print(audit.table())
        if args.timings_json:
            doc = telemetry.to_dict()
            if audit is not None:
                doc["solve_audit"] = audit.to_dicts()
            out = Path(args.timings_json)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(doc, indent=1) + "\n")

    def save_manifest(save_dir: Path, config: object, seed: int | None) -> None:
        manifest = collect_manifest(
            config, seed=seed, model_layer_version=MODEL_LAYER_VERSION
        )
        write_manifest(manifest, save_dir / "manifest.json")

    if command == "run":
        if len(args.exhibits) > 1:
            parser.error("run takes no positional arguments; use --benchmark")
        cfg = _run_config(args)
        t0 = time.time()
        with observe():
            result = run_comparison(cfg, args.cap)
        text = _comparison_text(result)
        print(text)
        print(f"[run finished in {time.time() - t0:.1f}s]")
        if args.save:
            save_dir = Path(args.save)
            save_dir.mkdir(parents=True, exist_ok=True)
            (save_dir / "run.txt").write_text(text + "\n")
            save_manifest(
                save_dir,
                {"command": "run", "cap_per_socket_w": args.cap,
                 "config": cfg.cache_document()},
                cfg.seed,
            )
        export_traces()
        emit_timings()
        return 0

    if command == "audit":
        names = args.exhibits[1:]
        unknown = [n for n in names if n not in EXHIBITS]
        if unknown:
            parser.error(f"unknown exhibits: {unknown}; try 'list'")
        ranks = 8 if args.quick and args.ranks == 32 else args.ranks
        with observe():
            if names:
                for name in names:
                    EXHIBITS[name](args.quick, ranks)
            else:
                run_comparison(_run_config(args), args.cap)
        print(audit.table())
        export_traces()
        emit_timings()
        return 0

    if command == "verify-results":
        if len(args.exhibits) < 2:
            parser.error("verify-results needs a reference directory")
        from .regression import verify_reference_results

        ref_dir = args.exhibits[1]
        names = args.exhibits[2:] or [
            n for n in EXHIBITS if (Path(ref_dir) / f"{n}.txt").exists()
        ]
        with observe():
            results = {
                n: EXHIBITS[n](args.quick, args.ranks) for n in names
            }
        report = verify_reference_results(ref_dir, results)
        print(report.summary())
        export_traces()
        emit_timings()
        return 0 if report.ok else 1

    names = list(EXHIBITS) if args.exhibits in (["all"], []) else args.exhibits
    unknown = [n for n in names if n not in EXHIBITS]
    if unknown:
        parser.error(f"unknown exhibits: {unknown}; try 'list'")

    ranks = 8 if args.quick and args.ranks == 32 else args.ranks
    save_dir = None
    if args.save:
        save_dir = Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    svg_dir = None
    if args.svg:
        svg_dir = Path(args.svg)
        svg_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        t0 = time.time()
        with observe():
            result = EXHIBITS[name](args.quick, ranks)
        text = result.render()
        print(text)
        print(f"[{name} regenerated in {time.time() - t0:.1f}s]")
        print()
        if save_dir is not None:
            (save_dir / f"{name}.txt").write_text(text + "\n")
        if svg_dir is not None:
            from .figures_svg import exhibit_to_svg

            svg = exhibit_to_svg(result)
            if svg is not None:
                (svg_dir / f"{name}.svg").write_text(svg)
    if save_dir is not None:
        save_manifest(
            save_dir,
            {"command": "exhibits", "exhibits": names, "ranks": ranks,
             "quick": args.quick},
            None,
        )
    export_traces()
    emit_timings()
    return 0


if __name__ == "__main__":
    sys.exit(main())
