"""Unit tests for configurations and task measurement."""

import pytest

from repro.machine import (
    ConfigPoint,
    Configuration,
    SocketPowerModel,
    enumerate_configurations,
    measure_task,
    measure_task_space,
    XEON_E5_2670,
)


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ValueError):
            Configuration(0.0, 4)
        with pytest.raises(ValueError):
            Configuration(2.0, 0)
        with pytest.raises(ValueError):
            Configuration(2.0, 4, duty=0.0)
        with pytest.raises(ValueError):
            Configuration(2.0, 4, duty=1.2)

    def test_effective_frequency(self):
        assert Configuration(1.2, 8, duty=0.5).effective_freq_ghz == pytest.approx(0.6)

    def test_describe(self):
        assert "2.6 GHz x 8t" in Configuration(2.6, 8).describe()
        assert "duty" in Configuration(1.2, 8, 0.5).describe()

    def test_equality_and_ordering(self):
        a, b = Configuration(2.0, 4), Configuration(2.0, 4)
        assert a == b
        assert Configuration(1.2, 4) < Configuration(2.6, 4)


class TestConfigPoint:
    def test_validation(self):
        cfg = Configuration(2.0, 4)
        with pytest.raises(ValueError):
            ConfigPoint(cfg, 0.0, 10.0)
        with pytest.raises(ValueError):
            ConfigPoint(cfg, 1.0, 0.0)

    def test_dominance(self):
        cfg = Configuration(2.0, 4)
        fast_cheap = ConfigPoint(cfg, 1.0, 10.0)
        slow_pricey = ConfigPoint(cfg, 2.0, 20.0)
        equal = ConfigPoint(cfg, 1.0, 10.0)
        assert fast_cheap.dominates(slow_pricey)
        assert not slow_pricey.dominates(fast_cheap)
        assert not fast_cheap.dominates(equal)  # needs one strict improvement


class TestEnumeration:
    def test_full_space_size(self):
        # 15 P-states x 8 thread counts = 120 configurations.
        assert len(enumerate_configurations()) == 120

    def test_with_modulation(self):
        configs = enumerate_configurations(include_modulation=True)
        assert len(configs) == 127
        modulated = [c for c in configs if c.duty < 1.0]
        assert all(c.freq_ghz == XEON_E5_2670.fmin_ghz for c in modulated)
        assert all(c.threads == 8 for c in modulated)

    def test_ordering_matches_table1(self):
        configs = enumerate_configurations()
        assert configs[0] == Configuration(2.6, 8)
        assert configs[1] == Configuration(2.6, 7)


class TestMeasurement:
    def test_measure_consistency(self, kernel, power_model, time_model):
        cfg = Configuration(2.0, 4)
        point = measure_task(kernel, cfg, power_model)
        assert point.duration_s == pytest.approx(
            time_model.duration(kernel, 2.0, 4)
        )
        assert point.power_w == pytest.approx(
            power_model.power(2.0, 4, kernel.activity, kernel.mem_intensity)
        )

    def test_measure_space_covers_everything(self, kernel, power_model):
        points = measure_task_space(kernel, power_model)
        assert len(points) == 120
        assert len({p.config for p in points}) == 120

    def test_efficiency_shifts_power_not_time(self, kernel):
        base = measure_task_space(kernel, SocketPowerModel(efficiency=1.0))
        leaky = measure_task_space(kernel, SocketPowerModel(efficiency=1.1))
        for b, l in zip(base, leaky):
            assert l.duration_s == pytest.approx(b.duration_s)
            assert l.power_w == pytest.approx(1.1 * b.power_w)
