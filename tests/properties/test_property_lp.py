"""Property-based tests for the LP formulation's core invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core import round_schedule, solve_fixed_order_lp
from repro.dag import unconstrained_schedule
from repro.machine import SocketPowerModel, TaskTimeModel
from repro.simulator import trace_application
from repro.workloads import random_application

apps = st.builds(
    random_application,
    n_ranks=st.integers(2, 3),
    iterations=st.integers(1, 2),
    seed=st.integers(0, 5_000),
    p_p2p=st.floats(0.0, 1.0),
)


def trace_for(app):
    models = [
        SocketPowerModel(efficiency=1.0 + 0.03 * r) for r in range(app.n_ranks)
    ]
    return trace_application(app, models)


class TestLpInvariants:
    @given(app=apps, cap_per_rank=st.floats(20.0, 80.0))
    @settings(max_examples=20, deadline=None)
    def test_objective_bounded_below_by_critical_path(self, app, cap_per_rank):
        trace = trace_for(app)
        res = solve_fixed_order_lp(trace, cap_per_rank * app.n_ranks)
        if not res.feasible:
            return
        best = unconstrained_schedule(trace.graph, TaskTimeModel()).makespan
        assert res.makespan_s >= best - 1e-6

    @given(app=apps)
    @settings(max_examples=15, deadline=None)
    def test_monotone_in_cap(self, app):
        trace = trace_for(app)
        spans = []
        for cap_per_rank in (25.0, 40.0, 60.0, 90.0):
            r = solve_fixed_order_lp(trace, cap_per_rank * app.n_ranks)
            spans.append(r.makespan_s if r.feasible else float("inf"))
        assert all(b <= a + 1e-6 for a, b in zip(spans, spans[1:]))

    @given(app=apps, cap_per_rank=st.floats(25.0, 80.0))
    @settings(max_examples=15, deadline=None)
    def test_event_power_respected(self, app, cap_per_rank):
        trace = trace_for(app)
        cap = cap_per_rank * app.n_ranks
        res = solve_fixed_order_lp(trace, cap)
        if not res.feasible:
            return
        for act in res.events.active.values():
            total = sum(
                res.schedule.assignments[trace.edge_refs[e]].power_w
                for e in act
            )
            assert total <= cap * (1 + 1e-6)

    @given(app=apps, cap_per_rank=st.floats(25.0, 80.0))
    @settings(max_examples=15, deadline=None)
    def test_fractions_valid(self, app, cap_per_rank):
        trace = trace_for(app)
        res = solve_fixed_order_lp(trace, cap_per_rank * app.n_ranks)
        if not res.feasible:
            return
        for a in res.schedule.assignments.values():
            total = sum(f for _, f in a.mixture)
            assert total == pytest.approx(1.0)
            assert all(f > 0 for _, f in a.mixture)

    @given(app=apps, cap_per_rank=st.floats(30.0, 80.0))
    @settings(max_examples=10, deadline=None)
    def test_floor_rounding_power_never_above_lp(self, app, cap_per_rank):
        trace = trace_for(app)
        res = solve_fixed_order_lp(trace, cap_per_rank * app.n_ranks)
        if not res.feasible:
            return
        disc = round_schedule(trace, res.schedule, mode="floor")
        for ref, a in disc.assignments.items():
            cont = res.schedule.assignments[ref]
            frontier_min = min(
                p.power_w for p in trace.frontiers[a.edge_id]
            )
            assert (
                a.power_w <= cont.power_w + 1e-9
                or a.power_w == pytest.approx(frontier_min)
            )
