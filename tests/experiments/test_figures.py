"""Tests for figure regeneration at reduced scale (fast versions)."""

import pytest

from repro.experiments import figure1_pareto_frontier, figure8_flow_vs_fixed
from repro.experiments.figures import (
    Figure8Result,
    SweepFigure,
    figure12_comd_task_scatter,
)
from repro.experiments.runner import ComparisonResult


class TestFigure1:
    def test_structure(self):
        fig = figure1_pareto_frontier()
        assert len(fig.points) == 120
        assert len(fig.convex) <= len(fig.pareto) <= len(fig.points)

    def test_table1_rows(self):
        fig = figure1_pareto_frontier()
        rows = fig.table1_rows(head=2, tail=3)
        assert rows[0][0] == "C_i,1"
        assert rows[2][0] == "C_i,..."
        # Fastest configuration listed first: 2.6 GHz x 8 threads.
        assert rows[0][1] == 2.6 and rows[0][2] == 8

    def test_render(self):
        text = figure1_pareto_frontier().render()
        assert "Figure 1" in text and "Table 1" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure8_flow_vs_fixed(n_caps=8, time_limit_s=30.0)

    def test_paper_agreement_claim(self, fig):
        """Formulations agree within 1.9% on nearly all caps (Fig. 8)."""
        assert len(fig.comparable()) >= 5
        assert fig.agreement_fraction() >= 0.9

    def test_series_lengths(self, fig):
        assert len(fig.caps_w) == len(fig.fixed_s) == len(fig.flow_s) == 8

    def test_render(self, fig):
        text = fig.render()
        assert "Figure 8" in text and "agreement" in text

    def test_agreement_stats_on_synthetic_data(self):
        fig = Figure8Result(
            caps_w=[10.0, 20.0],
            fixed_s=[1.0, None],
            flow_s=[1.01, 2.0],
        )
        assert fig.agreement_fraction() == pytest.approx(1.0)
        assert fig.max_gap_pct() == pytest.approx(100 / 101, rel=1e-3)


class TestSweepFigure:
    def make(self, metric):
        results = [
            ComparisonResult(
                benchmark="comd", cap_per_socket_w=30.0, n_ranks=4,
                static_s=2.0, conductor_s=1.8, lp_s=1.6,
            ),
            ComparisonResult(
                benchmark="comd", cap_per_socket_w=40.0, n_ranks=4,
                static_s=1.5, conductor_s=1.45, lp_s=1.4,
            ),
        ]
        return SweepFigure(title="t", series={"comd": results}, metric=metric)

    def test_lp_vs_static_rows(self):
        headers, rows = self.make("lp_vs_static").rows()
        assert headers == ["cap (W/socket)", "comd (%)"]
        assert rows[0][0] == 30.0
        assert rows[0][1] == pytest.approx(25.0)

    def test_both_vs_static_rows(self):
        headers, rows = self.make("both_vs_static").rows()
        assert len(headers) == 3
        assert rows[0][1] == pytest.approx(25.0)       # LP vs Static
        assert rows[0][2] == pytest.approx(100 * (2.0 / 1.8 - 1))

    def test_max_improvement(self):
        fig = self.make("lp_vs_static")
        assert fig.max_improvement() == pytest.approx(25.0)

    def test_render(self):
        assert "cap" in self.make("lp_vs_static").render()


class TestFigure12:
    def test_scatter_shapes(self):
        fig = figure12_comd_task_scatter(
            cap_per_socket_w=30.0, n_ranks=4, iterations=3
        )
        assert fig.lp_points and fig.static_points
        # LP spreads power across ranks; Static pins at the uniform cap.
        lp_max = max(p for p, _ in fig.lp_points)
        static_max = max(p for p, _ in fig.static_points)
        assert lp_max > static_max - 1e-9
        # LP long tasks are faster than Static's (the Fig. 12 separation).
        import numpy as np

        lp_med = np.median([d for _, d in fig.lp_points])
        st_med = np.median([d for _, d in fig.static_points])
        assert lp_med < st_med

    def test_render(self):
        fig = figure12_comd_task_scatter(
            cap_per_socket_w=30.0, n_ranks=4, iterations=2
        )
        assert "Figure 12" in fig.render()
