"""Trace exporters: Chrome trace-event JSON (Perfetto) and JSONL.

The Chrome trace-event format (the ``traceEvents`` JSON loadable in
`ui.perfetto.dev <https://ui.perfetto.dev>`_ or ``chrome://tracing``) is
the visualization target: one *process* per recorded run scope (e.g.
``static comd cap=40W`` and ``conductor comd cap=40W`` side by side),
one *thread track* per rank carrying its task / MPI-wait / collective
spans, dedicated tracks for runtime decisions (power reallocations) and
solver activity, and counter tracks for the instantaneous job power and
the cap.

Determinism: exported bytes are a pure function of the recorded events.
Simulated timestamps convert to microseconds; *logical* events (solver,
RAPL) have no simulated time and are placed by emission sequence on
their own tracks.  JSON is written with sorted keys and no incidental
whitespace, so two seeded runs export byte-identical traces — a
property the test suite asserts.

:func:`validate_chrome_trace` is the schema check used by the tests and
the CI smoke job: required keys per event (``ph``/``ts``/``pid``/
``tid``/``name``), known phase types, and per-track monotone timestamps.

Stdlib-only, like every ``repro.obs`` module.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "RUNTIME_TID",
    "SOLVER_TID",
    "RAPL_TID",
    "COUNTER_TID",
    "chrome_trace",
    "export_chrome_trace",
    "export_jsonl",
    "validate_chrome_trace",
    "validate_trace_file",
]

#: Synthetic thread ids for non-rank tracks (ranks use their own number).
RUNTIME_TID = 9_997
SOLVER_TID = 9_998
RAPL_TID = 9_999
COUNTER_TID = 10_000

_TRACK_NAMES = {
    RUNTIME_TID: "runtime decisions",
    SOLVER_TID: "solver",
    RAPL_TID: "rapl",
    COUNTER_TID: "power counters",
}

#: Phase types the exporter produces (and the validator accepts).
_KNOWN_PHASES = frozenset({"X", "i", "C", "M"})


def _us(seconds: float) -> float:
    """Simulated seconds -> trace microseconds (stable rounding)."""
    return round(seconds * 1e6, 3)


def _convert(doc: dict, pid: int) -> dict | None:
    """One recorded event dict -> one Chrome trace event (or None)."""
    kind = doc["kind"]
    if kind in ("task", "mpi_wait", "collective"):
        return {
            "ph": "X",
            "name": doc["name"],
            "cat": kind,
            "ts": _us(doc["ts_s"]),
            "dur": _us(doc["dur_s"]),
            "pid": pid,
            "tid": doc["rank"],
            "args": doc["args"],
        }
    if kind == "realloc":
        return {
            "ph": "i",
            "name": doc["name"],
            "cat": kind,
            "ts": _us(doc["ts_s"]),
            "pid": pid,
            "tid": RUNTIME_TID,
            "s": "p",
            "args": doc["args"],
        }
    if kind in ("solve", "cap_exceeded", "cell_failure"):
        # Logical events: no simulated time; sequence-ordered on their
        # own track (1 µs per emission keeps per-track ts monotone).
        tids = {"solve": SOLVER_TID, "cap_exceeded": RAPL_TID}
        return {
            "ph": "i",
            "name": doc["name"],
            "cat": kind,
            "ts": float(doc["seq"]),
            "pid": pid,
            "tid": tids.get(kind, RUNTIME_TID),
            "s": "t",
            "args": doc["args"],
        }
    if kind == "counter":
        return {
            "ph": "C",
            "name": doc["name"],
            "ts": _us(doc["ts_s"]),
            "pid": pid,
            "tid": COUNTER_TID,
            "args": doc["args"],
        }
    return None  # unknown kinds are skipped, not fatal


def chrome_trace(events: list[dict]) -> dict:
    """Recorded event dicts -> a Chrome trace-event document.

    Run-scope labels become process ids in first-seen order; per-rank
    tracks, the runtime/solver tracks, and the counter tracks hang off
    each process.  Events are sorted per track by timestamp (ties by
    emission sequence), which guarantees the monotonicity the validator
    checks.
    """
    pids: dict[str, int] = {}
    converted: list[tuple[tuple, dict]] = []
    meta: list[dict] = []
    named_tracks: set[tuple[int, int]] = set()

    for doc in events:
        run = doc.get("run", "run")
        if run not in pids:
            pid = len(pids) + 1
            pids[run] = pid
            meta.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": run},
                }
            )
        pid = pids[run]
        event = _convert(doc, pid)
        if event is None:
            continue
        tid = event["tid"]
        if (pid, tid) not in named_tracks:
            named_tracks.add((pid, tid))
            meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": _TRACK_NAMES.get(tid, f"rank {tid}")},
                }
            )
        converted.append(((pid, tid, event["ts"], doc["seq"]), event))

    converted.sort(key=lambda pair: pair[0])
    meta.sort(key=lambda e: (e["pid"], e["tid"], e["name"]))
    return {
        "traceEvents": meta + [event for _, event in converted],
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }


def export_chrome_trace(events: list[dict], path: str | Path) -> Path:
    """Write the Chrome trace for ``events`` to ``path`` (canonical bytes)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = chrome_trace(events)
    path.write_text(
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    )
    return path


def export_jsonl(events: list[dict], path: str | Path) -> Path:
    """Write the raw event stream as one canonical JSON object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for doc in events:
            fh.write(json.dumps(doc, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
    return path


# ----------------------------------------------------------------------
def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema-check a Chrome trace document; returns a list of problems.

    Checks the structural contract the tests and CI rely on: a
    ``traceEvents`` list whose entries carry ``ph``/``ts``/``pid``/
    ``tid``/``name``, phase types the format defines, non-negative
    durations on complete events, and non-decreasing timestamps within
    every (pid, tid) track.  An empty list means the trace is valid.
    """
    errors: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: dict[tuple, float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {i}: not an object")
            continue
        missing = [k for k in ("ph", "ts", "pid", "tid", "name") if k not in event]
        if missing:
            errors.append(f"event {i}: missing keys {missing}")
            continue
        ph = event["ph"]
        if ph not in _KNOWN_PHASES:
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            errors.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if ph == "X" and event.get("dur", 0) < 0:
            errors.append(f"event {i}: negative duration {event.get('dur')}")
        if ph == "M":
            continue  # metadata is timeless
        track = (event["pid"], event["tid"])
        if ts < last_ts.get(track, float("-inf")):
            errors.append(
                f"event {i}: ts {ts} goes backwards on track pid="
                f"{track[0]} tid={track[1]}"
            )
        last_ts[track] = ts
    return errors


def validate_trace_file(path: str | Path) -> list[str]:
    """Load and validate a trace file; JSON errors become messages too."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable trace: {exc}"]
    return validate_chrome_trace(doc)
