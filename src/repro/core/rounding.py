"""Continuous → discrete schedule realization (paper §3.2).

The continuous LP's per-task optimum generally sits between two adjacent
points of the convex frontier; realizing it on hardware means either
switching configurations mid-task (the continuous interpretation) or
rounding to a single configuration.  The paper rounds "by selecting the
configuration closest to the optimal point on the Pareto frontier"; we
implement that (``nearest``) plus two alternatives used by tests and
ablations:

* ``floor`` — the nearest frontier point at or *below* the task's LP power,
  guaranteeing the discrete schedule never draws more power than the
  continuous one at any event (strictly cap-safe);
* ``dominant`` — the highest-fraction point of the mixture.

After rounding, the schedule is re-timed with an ASAP pass so the reported
discrete makespan reflects the realized durations.
"""

from __future__ import annotations

import numpy as np

from ..dag.analysis import schedule_fixed_durations
from ..machine.configuration import ConfigPoint
from ..simulator.trace import Trace
from .schedule import PowerSchedule, TaskAssignment

__all__ = ["round_schedule"]


def _pick(
    frontier: list[ConfigPoint], target_power: float, mode: str,
    mixture: tuple[tuple[ConfigPoint, float], ...],
) -> ConfigPoint:
    if mode == "nearest":
        return min(
            frontier, key=lambda p: (abs(p.power_w - target_power), p.duration_s)
        )
    if mode == "floor":
        below = [p for p in frontier if p.power_w <= target_power + 1e-9]
        if below:
            return max(below, key=lambda p: p.power_w)
        return min(frontier, key=lambda p: p.power_w)
    if mode == "dominant":
        return max(mixture, key=lambda cf: (cf[1], -cf[0].power_w))[0]
    raise ValueError(f"unknown rounding mode {mode!r}")


def round_schedule(
    trace: Trace, schedule: PowerSchedule, mode: str = "nearest"
) -> PowerSchedule:
    """Round a continuous schedule to single configurations and re-time it."""
    if schedule.kind != "continuous":
        raise ValueError("round_schedule expects a continuous schedule")
    graph = trace.graph
    durations = np.zeros(graph.n_edges)
    for e in graph.message_edges():
        durations[e.id] = e.duration_s

    assignments: dict = {}
    for ref, assign in schedule.assignments.items():
        frontier = trace.frontiers[assign.edge_id]
        point = _pick(frontier, assign.power_w, mode, assign.mixture)
        durations[assign.edge_id] = point.duration_s
        assignments[ref] = TaskAssignment(
            ref=ref,
            edge_id=assign.edge_id,
            mixture=((point, 1.0),),
            duration_s=point.duration_s,
            power_w=point.power_w,
        )

    timed = schedule_fixed_durations(graph, durations)
    return PowerSchedule(
        kind="discrete",
        cap_w=schedule.cap_w,
        objective_s=timed.makespan,
        assignments=assignments,
        vertex_times=timed.vertex_times,
        solver_info={
            "rounding": mode,
            "continuous_objective_s": schedule.objective_s,
        },
    )
