"""Machine substrate: CPU, power, performance, Pareto frontiers, RAPL.

This package is the simulation stand-in for the paper's Cab cluster nodes
(dual-socket Xeon E5-2670).  Everything above it — the tracer, the LP, the
runtimes — consumes only the (duration, power) points this package produces
per task configuration, so the substitution of an analytic model for real
hardware leaves those code paths exactly as they would run on a cluster.
"""

from .calibration import (
    CalibrationResult,
    PowerSample,
    fit_power_model,
    sample_power_model,
)
from .configuration import (
    ConfigPoint,
    Configuration,
    enumerate_configurations,
    measure_task,
    measure_task_space,
)
from .cpu import XEON_E5_2670, CpuSpec, effective_frequency
from .frontiers import FrontierProfile, FrontierStore
from .pareto import (
    bracket_for_power,
    convex_frontier,
    interpolate_duration,
    nearest_point,
    pareto_frontier,
)
from .performance import TaskKernel, TaskTimeModel
from .power import DEFAULT_POWER_PARAMS, PowerModelParams, SocketPowerModel
from .rapl import RaplController, RaplDecision
from .variability import make_power_models, sample_socket_efficiencies

__all__ = [
    "CalibrationResult",
    "ConfigPoint",
    "Configuration",
    "CpuSpec",
    "DEFAULT_POWER_PARAMS",
    "FrontierProfile",
    "FrontierStore",
    "PowerModelParams",
    "RaplController",
    "RaplDecision",
    "SocketPowerModel",
    "TaskKernel",
    "TaskTimeModel",
    "XEON_E5_2670",
    "bracket_for_power",
    "convex_frontier",
    "effective_frequency",
    "enumerate_configurations",
    "interpolate_duration",
    "make_power_models",
    "measure_task",
    "measure_task_space",
    "nearest_point",
    "pareto_frontier",
    "sample_socket_efficiencies",
    "PowerSample",
    "fit_power_model",
    "sample_power_model",
]
