"""Deterministic, fault-tolerant ordered fan-out for sweep cells.

A cap sweep is embarrassingly parallel: every (workload, cap, seed) cell
is an independent, fully seeded computation.  :class:`ParallelRunner`
fans such cells out over a task transport — an
:class:`~repro.exec.backends.base.ExecBackend`: the default process
pool, an in-process inline backend, or a socket worker fleet — while
keeping the *results in submission order*: the caller sees exactly the
list a serial loop would produce, so parallel and serial runs are
interchangeable byte-for-byte.

Failure semantics come in two flavors:

* :meth:`ParallelRunner.map` — the strict map: a task that fails (or
  times out) on every allowed attempt aborts the whole map with
  :class:`ParallelExecutionError` (or :class:`PoolBrokenError` when the
  workers underneath it kept dying).
* :meth:`ParallelRunner.map_outcomes` — the keep-going map: every item
  produces a :class:`CellOutcome`, ok or failed, and the sweep completes
  around failed cells.  An ``on_outcome`` callback fires per item in
  submission order, which is how the sweep journal checkpoints progress
  (see :mod:`repro.exec.checkpoint`).

Reliability machinery, hardened for production sweeps and shared by
every backend:

* per-task deadlines are measured **from submission**, not from when the
  parent starts waiting on that index — every concurrent cell gets the
  same wall-clock budget;
* a worker death (a worker killed by the OOM killer, ``os._exit``, a
  segfault — surfaced by the backend as
  :class:`~repro.exec.backends.base.WorkerLostError`) is detected
  distinctly from task failures: the backend recovers its capacity
  (pool rebuild, fleet respawn) and every task that died with the
  worker is resubmitted rather than charged;
* retries back off with deterministic seeded exponential delays plus
  jitter (:func:`retry_delay_s`), so a thundering herd of workers
  retrying a shared resource de-synchronizes the same way every run.

With ``max_workers <= 1`` (and no injected backend) the runner degrades
to a plain in-process loop — no pickling, no subprocesses — which is
also the benchmark harness's measured path.

Telemetry: each worker runs its task under a fresh
:class:`~repro.exec.timing.Telemetry` and ships the snapshot back with
the result (:func:`~repro.exec.backends.base.run_task`); the parent
folds all snapshots into its own active telemetry, so cache hit
counters and phase times survive process boundaries.  Trace events,
solver audits, operational metrics
(:class:`~repro.obs.metrics.Metrics`), and cProfile aggregates
(:class:`~repro.obs.profiling.ProfileCollector`) travel the same way:
when the parent has one active, each worker activates a fresh one, ships
the snapshot back, and the parent folds them in *submission order* — so
a parallel run's trace, audit, and deterministic metric subset are
identical to a serial run's (modulo re-sequencing, which is itself
deterministic), whichever transport carried them.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..obs.audit import current_audit
from ..obs.metrics import current_metrics
from ..obs.metrics import inc as metric_inc
from ..obs.metrics import observe as metric_observe
from ..obs.profiling import current_profile
from ..obs.recorder import current_recorder
from .backends.base import (
    BackendTimeoutError,
    ExecBackend,
    TaskSpec,
    WorkerLostError,
)
from .backends.pool import ProcessPoolBackend
from .timing import count, current_telemetry

__all__ = [
    "ParallelRunner",
    "ParallelExecutionError",
    "PoolBrokenError",
    "CellOutcome",
    "retry_delay_s",
    "resolve_workers",
]


class ParallelExecutionError(RuntimeError):
    """A task failed (or timed out) on every allowed attempt."""


class PoolBrokenError(ParallelExecutionError):
    """The workers underneath a task died on every allowed attempt.

    Raised instead of the generic :class:`ParallelExecutionError` when
    what kept failing was not the task's own code but the transport
    beneath it — a worker killed by the OOM killer, ``os._exit``, or a
    crash in the pickling machinery.  The backend recovers its capacity
    between attempts, so seeing this means even fresh workers kept
    dying.
    """


@dataclass(frozen=True)
class CellOutcome:
    """The structured result of one mapped item: ok, or how it failed.

    ``error_type``/``error_message``/``attempts`` are deterministic for
    deterministic failures (e.g. injected faults), so they may be stored
    in journals and manifests that must be byte-stable across runs.
    ``elapsed_s`` is wall-clock and ``error`` is the live exception —
    both are diagnostics only and excluded from :meth:`failure_doc`.
    """

    index: int
    ok: bool
    value: Any = None
    error_type: str | None = None
    error_message: str | None = None
    attempts: int = 1
    elapsed_s: float = 0.0
    error: BaseException | None = field(default=None, compare=False, repr=False)

    def failure_doc(self) -> dict:
        """Deterministic JSON-safe record of a failed outcome."""
        if self.ok:
            raise ValueError("failure_doc() on an ok outcome")
        return {
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempts": self.attempts,
        }


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request: None -> 1, 0 -> all cores."""
    if workers is None:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def retry_delay_s(
    seed: int, index: int, attempt: int, base_s: float, cap_s: float = 2.0
) -> float:
    """Deterministic exponential backoff with jitter for one retry.

    The delay doubles per attempt from ``base_s`` up to ``cap_s``, then
    is scaled into [0.5, 1.0) by a PRNG seeded from (seed, index,
    attempt) — every run, and every retrying worker, computes the same
    schedule, but different cells de-synchronize from each other.
    ``base_s <= 0`` disables backoff entirely.
    """
    if base_s <= 0:
        return 0.0
    rng = random.Random(f"{seed}:{index}:{attempt}")
    exp = min(cap_s, base_s * (2 ** max(0, attempt - 1)))
    return exp * (0.5 + 0.5 * rng.random())


def _run_batch(packed: tuple) -> list[dict]:
    """Worker-side batch: several items through one dispatch.

    Amortizes per-task pickling/IPC overhead when cells are small (the
    many-caps/cheap-solve regime a warm parametric sweep produces).
    Each item retries *in the worker* on the same deterministic backoff
    schedule as the unbatched map — :func:`retry_delay_s` keyed by the
    item's global index — and settles into a structured doc, so one
    failing item never discards its batch-mates' results.  The retry and
    failure counters land in the worker telemetry that
    :func:`~repro.exec.backends.base.run_task` snapshots around the
    whole batch.
    """
    fn, batch, start, retries, backoff_s, seed = packed
    docs: list[dict] = []
    for k, item in enumerate(batch):
        index = start + k
        attempt = 0
        while True:
            try:
                value = fn(item)
                docs.append({"ok": True, "value": value, "attempts": attempt + 1})
                break
            except Exception as exc:
                attempt += 1
                if attempt > retries:
                    count("task.failed")
                    metric_inc("task.failed", operational=True)
                    docs.append({
                        "ok": False,
                        "error_type": type(exc).__name__,
                        "error_message": str(exc),
                        "attempts": attempt,
                    })
                    break
                count("task.retry")
                metric_inc("task.retry", operational=True)
                time.sleep(retry_delay_s(seed, index, attempt, backoff_s))
    return docs


class ParallelRunner:
    """Ordered, fault-tolerant map over a task transport.

    Parameters
    ----------
    max_workers:
        Worker processes; ``<= 1`` runs serially in-process (``0`` means
        one per CPU core, via :func:`resolve_workers`).
    timeout_s:
        Per-task wall-clock budget, measured from the task's (re-)
        submission.  None waits forever.  A timed-out task is retried;
        its abandoned worker finishes (or idles) in the background —
        no transport here can interrupt a running call — so timeouts
        should be generous, a last line of defense.  (The inline
        backend runs tasks on the caller's thread and cannot enforce
        deadlines at all.)
    retries:
        Extra attempts per task after the first failure or timeout.
    backoff_s:
        Base retry delay; retries sleep a deterministic seeded
        exponential backoff with jitter (:func:`retry_delay_s`).
        ``0`` retries immediately.
    backoff_seed:
        Seed of the jitter schedule (so backoff is reproducible).
    batch_size:
        Items dispatched per submission (default 1: one task per item).
        ``> 1`` groups contiguous items into one worker call
        (:func:`_run_batch`), amortizing pickling/IPC overhead when
        individual cells are cheap; results, outcome callbacks, and the
        deterministic per-item retry schedule are unchanged.  Item
        failures settle in-worker; the per-task ``timeout_s`` budget
        scales to ``timeout_s * batch_size`` per dispatch.  Serial runs
        ignore it.
    backend:
        The task transport (:class:`~repro.exec.backends.base.
        ExecBackend`).  None — the default — builds a fresh
        :class:`~repro.exec.backends.pool.ProcessPoolBackend` per map
        and shuts it down afterwards, reproducing the classic
        process-pool semantics exactly.  An injected backend is started
        idempotently and **never shut down by the runner** (its creator
        owns its lifecycle — how a service dispatcher keeps one warm
        fleet across many sweeps); with one injected, even single-item
        maps route through it.
    """

    def __init__(
        self,
        max_workers: int | None = 1,
        timeout_s: float | None = None,
        retries: int = 1,
        backoff_s: float = 0.05,
        backoff_seed: int = 0,
        batch_size: int = 1,
        backend: ExecBackend | None = None,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.max_workers = resolve_workers(max_workers)
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_seed = backoff_seed
        self.batch_size = batch_size
        self.backend = backend

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item; results in item order.

        A task that fails every attempt aborts the map with
        :class:`ParallelExecutionError` (:class:`PoolBrokenError` when
        the workers themselves kept dying).  ``fn`` and the items must
        be picklable on out-of-process transports (``fn`` should be a
        module-level function).  Serially, exceptions propagate raw —
        the in-process loop adds no retry machinery.
        """
        items = list(items)
        if self.backend is None and (self.max_workers <= 1 or len(items) <= 1):
            return [fn(item) for item in items]
        if self.batch_size > 1:
            return [
                outcome.value
                for outcome in self._map_batched(
                    fn, items, keep_going=False, on_outcome=None
                )
            ]
        return [
            outcome.value
            for outcome in self._map_parallel(fn, items, keep_going=False)
        ]

    def map_outcomes(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        on_outcome: Callable[[CellOutcome], None] | None = None,
    ) -> list[CellOutcome]:
        """Keep-going map: one :class:`CellOutcome` per item, in order.

        A task that exhausts its attempts becomes a failed outcome
        instead of aborting the map; the remaining items still run.
        ``on_outcome`` (when given) fires once per item, in submission
        order, as soon as that item settles — the checkpoint hook: an
        interrupted sweep has journaled every settled prefix cell.
        Serially the same retry/backoff policy applies in-process
        (without the timeout, which needs an out-of-process transport
        to enforce).
        """
        items = list(items)
        if self.backend is None and (self.max_workers <= 1 or len(items) <= 1):
            return self._map_serial_outcomes(fn, items, on_outcome)
        if self.batch_size > 1:
            return self._map_batched(
                fn, items, keep_going=True, on_outcome=on_outcome
            )
        return self._map_parallel(fn, items, keep_going=True, on_outcome=on_outcome)

    # ------------------------------------------------------------------
    def _map_serial_outcomes(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_outcome: Callable[[CellOutcome], None] | None,
    ) -> list[CellOutcome]:
        outcomes: list[CellOutcome] = []
        for i, item in enumerate(items):
            attempt = 0
            t0 = time.monotonic()
            while True:
                try:
                    value = fn(item)
                    outcome = CellOutcome(
                        index=i, ok=True, value=value, attempts=attempt + 1,
                        elapsed_s=time.monotonic() - t0,
                    )
                    break
                except Exception as exc:
                    attempt += 1
                    if attempt > self.retries:
                        count("task.failed")
                        metric_inc("task.failed", operational=True)
                        outcome = CellOutcome(
                            index=i, ok=False,
                            error_type=type(exc).__name__,
                            error_message=str(exc),
                            attempts=attempt,
                            elapsed_s=time.monotonic() - t0,
                            error=exc,
                        )
                        break
                    count("task.retry")
                    metric_inc("task.retry", operational=True)
                    time.sleep(
                        retry_delay_s(self.backoff_seed, i, attempt, self.backoff_s)
                    )
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
        return outcomes

    # ------------------------------------------------------------------
    def _map_batched(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        keep_going: bool,
        on_outcome: Callable[[CellOutcome], None] | None,
    ) -> list[CellOutcome]:
        """Batched fan-out: contiguous item groups per dispatch.

        Each batch runs through :func:`_run_batch` (item retries settle
        in-worker); batch-level machinery — timeouts, worker-death
        recovery, resubmission — reuses :meth:`_map_parallel` over the
        batch descriptors, with the per-dispatch deadline scaled by the
        batch size.  Outcomes flatten back to per-item
        :class:`CellOutcome` objects in submission order, and
        ``on_outcome`` fires per item as its batch settles, so journals
        checkpoint identically to the unbatched map.  ``elapsed_s`` on a
        batched outcome is its batch's wall-clock (diagnostics only).
        """
        bs = self.batch_size
        starts = list(range(0, len(items), bs))
        batch_items = [
            (
                fn, list(items[s:s + bs]), s,
                self.retries, self.backoff_s, self.backoff_seed,
            )
            for s in starts
        ]
        batch_runner = ParallelRunner(
            max_workers=self.max_workers,
            timeout_s=None if self.timeout_s is None else self.timeout_s * bs,
            retries=self.retries,
            backoff_s=self.backoff_s,
            backoff_seed=self.backoff_seed,
            backend=self.backend,
        )
        flat: list[CellOutcome] = []

        def settle_batch(b_out: CellOutcome) -> None:
            start = starts[b_out.index]
            n = len(batch_items[b_out.index][1])
            for k in range(n):
                if b_out.ok:
                    doc = b_out.value[k]
                    outcome = CellOutcome(
                        index=start + k,
                        ok=bool(doc["ok"]),
                        value=doc.get("value"),
                        error_type=doc.get("error_type"),
                        error_message=doc.get("error_message"),
                        attempts=int(doc["attempts"]),
                        elapsed_s=b_out.elapsed_s,
                    )
                else:
                    # The whole dispatch failed (timeout / worker death
                    # on every attempt): every item of the batch reports
                    # that shared infrastructure failure.
                    outcome = CellOutcome(
                        index=start + k,
                        ok=False,
                        error_type=b_out.error_type,
                        error_message=b_out.error_message,
                        attempts=b_out.attempts,
                        elapsed_s=b_out.elapsed_s,
                        error=b_out.error,
                    )
                flat.append(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)

        # Batch-level keep_going mirrors the caller's: strict maps still
        # abort on an infrastructure failure mid-sweep.  Item-level
        # failures never raise out of _run_batch, so the strict check
        # below is what enforces them.
        batch_runner._map_parallel(
            _run_batch, batch_items, keep_going=keep_going,
            on_outcome=settle_batch,
        )
        if not keep_going:
            for outcome in flat:
                if not outcome.ok:
                    raise ParallelExecutionError(
                        f"task {outcome.index} failed on all "
                        f"{outcome.attempts} attempt(s): "
                        f"{outcome.error_message}"
                    ) from outcome.error
        return flat

    # ------------------------------------------------------------------
    def _map_parallel(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        keep_going: bool,
        on_outcome: Callable[[CellOutcome], None] | None = None,
    ) -> list[CellOutcome]:
        if not items:
            return []
        outcomes: list[CellOutcome | None] = [None] * len(items)
        parent = current_telemetry()
        recorder = current_recorder()
        audit = current_audit()
        metrics = current_metrics()
        profile = current_profile()
        want_trace = recorder is not None
        want_audit = audit is not None
        want_metrics = metrics is not None
        want_profile = profile is not None
        n_workers = min(self.max_workers, len(items))

        backend = self.backend
        owns_backend = backend is None
        if owns_backend:
            backend = ProcessPoolBackend()
        backend.start(max(1, n_workers))
        deadlines: list[float | None] = [None] * len(items)
        started: list[float] = [0.0] * len(items)
        handles: list[Any] = [None] * len(items)

        def submit(i: int) -> None:
            # The deadline starts at (re-)submission: every attempt of
            # every cell gets the same wall-clock budget, regardless of
            # when the parent reaches index i in its wait loop.
            handles[i] = backend.submit(TaskSpec(
                index=i, fn=fn, item=items[i],
                want_trace=want_trace, want_audit=want_audit,
                want_metrics=want_metrics, want_profile=want_profile,
            ))
            now = time.monotonic()
            if not started[i]:
                started[i] = now
            deadlines[i] = None if self.timeout_s is None else now + self.timeout_s

        try:
            for i in range(len(items)):
                submit(i)
            for i in range(len(items)):
                attempt = 0
                while True:
                    try:
                        wait = None
                        if deadlines[i] is not None:
                            wait = max(0.0, deadlines[i] - time.monotonic())
                        (
                            result, snapshot, batch, audit_snap,
                            metrics_snap, profile_snap,
                        ) = backend.result(handles[i], wait)
                        elapsed = time.monotonic() - started[i]
                        outcomes[i] = CellOutcome(
                            index=i, ok=True, value=result, attempts=attempt + 1,
                            elapsed_s=elapsed,
                        )
                        # Fold worker observability in submission order:
                        # the loop consumes handles by index, so the
                        # merged stream is stable regardless of which
                        # worker finished first.  An in-process backend
                        # ships None snapshots (the parent's own context
                        # already recorded everything live).
                        if parent is not None and snapshot is not None:
                            parent.merge(snapshot)
                        if recorder is not None and batch is not None:
                            recorder.extend(batch)
                        if audit is not None and audit_snap is not None:
                            audit.extend(audit_snap)
                        if metrics is not None and metrics_snap is not None:
                            metrics.merge(metrics_snap)
                        if profile is not None and profile_snap is not None:
                            profile.merge(profile_snap)
                        # Dispatch latency includes queueing and IPC, so
                        # it is wall-clock-only: operational by contract.
                        metric_observe(
                            "task.dispatch_wall_s", elapsed, operational=True
                        )
                        break
                    except BackendTimeoutError as exc:
                        backend.cancel(handles[i])
                        count("task.deadline_expired")
                        metric_inc("task.deadline_expired", operational=True)
                        attempt, failed = self._note_failure(
                            i, attempt, "timed out", exc.cause, keep_going,
                            started, outcomes,
                        )
                        if failed:
                            break
                        submit(i)
                    except WorkerLostError as exc:
                        # The worker underneath the task died.
                        # Resubmitting before the transport recovers
                        # would fail instantly and misreport the cause,
                        # so recover first; the death is charged to the
                        # task being awaited — the closest observable
                        # culprit.
                        backend.recover()
                        attempt, failed = self._note_failure(
                            i, attempt, "broke the worker pool", exc.cause,
                            keep_going, started, outcomes, broke_pool=True,
                        )
                        for j in range(i + (1 if failed else 0), len(items)):
                            if outcomes[j] is None and backend.needs_resubmit(
                                handles[j]
                            ):
                                submit(j)
                        if failed:
                            break
                    except Exception as exc:
                        attempt, failed = self._note_failure(
                            i, attempt, "failed", exc, keep_going,
                            started, outcomes,
                        )
                        if failed:
                            break
                        submit(i)
                if on_outcome is not None:
                    on_outcome(outcomes[i])
        finally:
            if owns_backend:
                backend.shutdown()
        return outcomes  # type: ignore[return-value]

    def _note_failure(
        self,
        index: int,
        attempt: int,
        what: str,
        exc: BaseException,
        keep_going: bool,
        started: list[float],
        outcomes: list[CellOutcome | None],
        broke_pool: bool = False,
    ) -> tuple[int, bool]:
        """Account one failed attempt; returns (attempt, exhausted).

        Below the retry budget: sleeps the deterministic backoff and
        reports (attempt, False) so the caller resubmits.  At the
        budget: either records a failed :class:`CellOutcome`
        (``keep_going``) or raises.
        """
        attempt += 1
        if attempt <= self.retries:
            count("task.retry")
            metric_inc("task.retry", operational=True)
            time.sleep(
                retry_delay_s(self.backoff_seed, index, attempt, self.backoff_s)
            )
            return attempt, False
        count("task.failed")
        metric_inc("task.failed", operational=True)
        if keep_going:
            outcomes[index] = CellOutcome(
                index=index, ok=False,
                error_type=type(exc).__name__,
                error_message=str(exc),
                attempts=attempt,
                elapsed_s=time.monotonic() - started[index],
                error=exc,
            )
            return attempt, True
        error_cls = PoolBrokenError if broke_pool else ParallelExecutionError
        raise error_cls(
            f"task {index} {what} on all {attempt} attempt(s): {exc!r}"
        ) from exc
