"""Figure 12: CoMD long-task duration vs power at a 30 W/socket cap.

Paper: under the LP, long tasks cluster around 0.9-1.2 s with per-task
powers spread across ~28-36 W (many above the 30 W average!), while Static
pins every socket at <=30 W and tasks stretch to 1.3-1.47 s.
"""

import numpy as np
import pytest

from repro.experiments import figure12_comd_task_scatter

from conftest import engage, BENCH_RANKS


@pytest.fixture(scope="module")
def fig12():
    return figure12_comd_task_scatter(
        cap_per_socket_w=30.0, n_ranks=BENCH_RANKS, iterations=8
    )


def test_fig12_regeneration(benchmark):
    fig = benchmark.pedantic(
        figure12_comd_task_scatter,
        kwargs=dict(cap_per_socket_w=30.0, n_ranks=8, iterations=4),
        rounds=1, iterations=1,
    )
    assert fig.lp_points and fig.static_points


def test_fig12_lp_exceeds_uniform_cap_per_task(benchmark, fig12):
    """The LP allocates *more than 30 W* to many tasks without violating
    the job-level constraint — the paper's central Figure-12 observation."""
    engage(benchmark)
    lp_powers = np.array([p for p, _ in fig12.lp_points])
    assert (lp_powers > 30.0).mean() > 0.25
    assert lp_powers.max() < 45.0


def test_fig12_static_pinned_under_cap(benchmark, fig12):
    engage(benchmark)
    static_powers = np.array([p for p, _ in fig12.static_points])
    assert static_powers.max() <= 30.0 * 1.001


def test_fig12_duration_separation(benchmark, fig12):
    """LP long tasks are distinctly faster than Static's."""
    engage(benchmark)
    lp_d = np.array([d for _, d in fig12.lp_points])
    st_d = np.array([d for _, d in fig12.static_points])
    assert np.median(lp_d) < np.median(st_d)
    # Paper's numbers: LP tasks top out ~1.2s; Static routinely >1.3s.
    # At harness scale the median separation is a few percent; the tail
    # separation (max durations) carries the makespan effect.
    assert np.median(st_d) / np.median(lp_d) > 1.02
    assert st_d.max() / lp_d.max() > 1.1


def test_fig12_lp_durations_equalized(benchmark, fig12):
    """The LP equalizes arrival: long-task durations cluster tightly
    (load imbalance absorbed through nonuniform power)."""
    engage(benchmark)
    lp_d = np.array([d for _, d in fig12.lp_points])
    st_d = np.array([d for _, d in fig12.static_points])
    assert lp_d.std() / lp_d.mean() < st_d.std() / st_d.mean() + 1e-9
