"""Resilient sweeps: keep-going gaps, journaled resume, fault injection."""

from __future__ import annotations

import pytest

from repro.exec.checkpoint import SweepJournal
from repro.exec.faults import FaultInjector, FaultSpec
from repro.exec.parallel import ParallelExecutionError
from repro.exec.timing import Telemetry, use_telemetry
from repro.obs.recorder import TraceRecorder, use_recorder
from repro.scenarios.run import run_scenarios
from repro.scenarios.spec import PolicySpec, ScenarioSpec

CAPS = (40.0, 50.0, 60.0)


def small_spec(caps=CAPS) -> ScenarioSpec:
    return ScenarioSpec(
        benchmark="synthetic",
        caps_per_socket_w=caps,
        policies=(PolicySpec("static"), PolicySpec("lp")),
        n_ranks=4,
        run_iterations=8,
        lp_iterations=2,
        discard_iterations=2,
        steady_window=4,
    )


def mid_cap_fault() -> FaultInjector:
    """Deterministically fails exactly the cap=50 cell, every attempt."""
    return FaultInjector(FaultSpec(mode="raise", rate=1.0, match="cap=50"))


def times(result) -> list[tuple]:
    return [
        tuple(cell.outcomes[n].time_s for n in result.policy_names())
        for cell in result.cells
    ]


class TestKeepGoing:
    def test_sweep_completes_around_failed_cell(self):
        result = run_scenarios(small_spec(), keep_going=True, faults=mid_cap_fault())
        assert [c.failed for c in result.cells] == [False, True, False]
        gap = result.cells[1]
        assert gap.failure.error_type == "InjectedFault"
        assert all(o.time_s is None for o in gap.outcomes.values())
        assert all(
            o.time_s is not None
            for c in (result.cells[0], result.cells[2])
            for o in c.outcomes.values()
        )

    def test_failure_docs_are_deterministic(self):
        docs = run_scenarios(
            small_spec(), keep_going=True, faults=mid_cap_fault()
        ).failure_docs()
        again = run_scenarios(
            small_spec(), keep_going=True, faults=mid_cap_fault()
        ).failure_docs()
        assert docs == again
        (doc,) = docs
        assert doc["cap_per_socket_w"] == 50.0
        assert doc["error_type"] == "InjectedFault"
        assert set(doc) == {
            "cap_per_socket_w", "error_type", "error_message", "attempts",
        }

    def test_without_keep_going_a_failure_aborts(self):
        with pytest.raises(ParallelExecutionError, match="cap=50"):
            run_scenarios(small_spec(), faults=mid_cap_fault())

    def test_failure_emits_trace_event(self):
        rec = TraceRecorder()
        with use_recorder(rec):
            run_scenarios(small_spec(), keep_going=True, faults=mid_cap_fault())
        failures = [d for d in rec.snapshot() if d["kind"] == "cell_failure"]
        assert len(failures) == 1
        assert failures[0]["args"]["cap_per_socket_w"] == 50.0

    def test_parallel_matches_serial(self):
        serial = run_scenarios(
            small_spec(), keep_going=True, faults=mid_cap_fault()
        )
        parallel = run_scenarios(
            small_spec(), workers=2, keep_going=True, faults=mid_cap_fault()
        )
        assert times(parallel) == times(serial)
        assert parallel.failure_docs() == serial.failure_docs()


class TestJournalResume:
    def test_journal_records_every_settled_cell(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        run_scenarios(
            small_spec(), keep_going=True, journal=journal,
            faults=mid_cap_fault(),
        )
        statuses = sorted(r["status"] for r in journal.load().values())
        assert statuses == ["failed", "ok", "ok"]

    def test_resume_retries_failures_and_matches_clean_run(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        run_scenarios(
            small_spec(), keep_going=True, journal=journal,
            faults=mid_cap_fault(),
        )
        tel = Telemetry()
        with use_telemetry(tel):
            resumed = run_scenarios(small_spec(), keep_going=True, journal=journal)
        assert tel.counter("journal.resumed") == 2  # the two ok cells
        assert not resumed.failed_cells()  # the failed cell was retried
        clean = run_scenarios(small_spec())
        assert times(resumed) == times(clean)

    def test_interrupted_journal_resumes_prefix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        run_scenarios(small_spec(), journal=path)
        # Keep only the first journaled cell, as if the process died there.
        first_line = path.read_text().splitlines()[0]
        path.write_text(first_line + "\n")
        tel = Telemetry()
        with use_telemetry(tel):
            resumed = run_scenarios(small_spec(), journal=str(path))
        assert tel.counter("journal.resumed") == 1
        assert times(resumed) == times(run_scenarios(small_spec()))

    def test_foreign_journal_records_are_recomputed(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        run_scenarios(small_spec(), journal=journal)
        other = small_spec(caps=(40.0, 45.0))  # different grid, different keys
        tel = Telemetry()
        with use_telemetry(tel):
            result = run_scenarios(other, journal=journal)
        assert tel.counter("journal.resumed") == 1  # only cap=40 is shared
        assert len(result.cells) == 2
        assert not result.failed_cells()

    def test_journal_accepts_plain_path(self, tmp_path):
        path = tmp_path / "nested" / "j.jsonl"
        run_scenarios(small_spec(caps=(40.0, 60.0)), journal=path)
        assert len(SweepJournal(path)) == 2


class TestVectorizedGoldenResume:
    def test_journaled_resume_of_vectorized_sweep_matches_clean_scalar_run(
        self, tmp_path, monkeypatch
    ):
        """Golden: interrupt a (vectorized-default) sweep after its first
        journaled cell, resume it, and compare against a clean run with
        every engine replay forced down the scalar reference path.  The
        vectorized fast path must not be observable in the results, even
        across a checkpoint/resume boundary."""
        from repro.simulator.engine import Engine

        path = tmp_path / "j.jsonl"
        run_scenarios(small_spec(), journal=path)
        # Keep only the first journaled cell, as if the process died there.
        first_line = path.read_text().splitlines()[0]
        path.write_text(first_line + "\n")
        resumed = run_scenarios(small_spec(), journal=path)

        real_run = Engine.run
        monkeypatch.setattr(
            Engine,
            "run",
            lambda self, app, policy, vectorized=None: real_run(
                self, app, policy, vectorized=False
            ),
        )
        scalar = run_scenarios(small_spec())
        assert times(resumed) == times(scalar)
        assert not resumed.failed_cells()
