"""Layering guards: no module reaches into another module's privates.

The energy LP used to import ``_extract_schedule`` from
``fixed_order_lp`` — a private helper crossing a module boundary, which
is how formulation internals leak into each other.  Schedule extraction
is public now (:func:`repro.core.model.extract_schedule`); this test
keeps the door shut by walking every module under ``src/repro`` and
rejecting any ``from X import _private`` whose target is a leading
underscore name (dunders excluded) and whose source is another repro
module — relative imports or absolute ``repro.*`` ones.  Imports of
private names from *external* packages (e.g. the guarded use of SciPy's
bundled HiGHS bindings in ``core/solver.py``) are a dependency-pinning
concern, not a layering one, and are left to code review.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _private_imports(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    bad = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        internal = node.level > 0 or (
            node.module is not None
            and (node.module == "repro" or node.module.startswith("repro."))
        )
        if not internal:
            continue
        for alias in node.names:
            name = alias.name
            if name.startswith("_") and not (
                name.startswith("__") and name.endswith("__")
            ):
                where = (
                    path.relative_to(SRC.parent)
                    if path.is_relative_to(SRC.parent)
                    else path
                )
                bad.append(
                    f"{where}:{node.lineno}: "
                    f"from {'.' * node.level}{node.module or ''} import {name}"
                )
    return bad


def test_no_cross_module_private_imports():
    assert SRC.is_dir(), SRC
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        offenders.extend(_private_imports(path))
    assert not offenders, (
        "private names imported across module boundaries:\n"
        + "\n".join(offenders)
    )


def test_guard_catches_the_original_offense(tmp_path):
    # The exact import this guard exists to prevent must trip it.
    mod = tmp_path / "offender.py"
    mod.write_text("from .fixed_order_lp import _extract_schedule\n")
    assert _private_imports(mod)


def test_guard_catches_absolute_repro_imports(tmp_path):
    mod = tmp_path / "offender.py"
    mod.write_text("from repro.core.fixed_order_lp import _extract_schedule\n")
    assert _private_imports(mod)


def test_guard_allows_dunder_public_and_external(tmp_path):
    mod = tmp_path / "fine.py"
    mod.write_text(
        "from __future__ import annotations\n"
        "from .model import extract_schedule\n"
        "from scipy.optimize._highspy import _core\n"
    )
    assert not _private_imports(mod)


def test_every_runtime_policy_is_registered():
    """Every policy class exported by ``repro.runtime`` has a scenario
    registry entry whose ``policy_class`` matches — a new runtime cannot
    silently stay unreachable from the CLI/scenario layer."""
    import repro.runtime as runtime
    from repro.scenarios.registry import default_registry

    registry = default_registry()
    registered = {
        e.policy_class for e in registry.entries() if e.policy_class is not None
    }
    missing = [
        name
        for name in runtime.__all__
        if name.endswith("Policy")
        and isinstance(getattr(runtime, name), type)
        and getattr(runtime, name) not in registered
    ]
    assert not missing, (
        f"runtime policies with no scenario registry entry: {missing}; "
        "register them in repro/scenarios/registry.py"
    )


def test_machine_layer_stays_at_the_bottom():
    """``repro.machine`` (including the typed-device module) is the
    substrate every layer builds on; it must not import the simulator,
    formulations, runtimes, or the scenario/experiment layers.  Only the
    cross-cutting observability package is allowed upward."""
    upper = (
        "simulator", "core", "scenarios", "exec", "experiments",
        "runtime", "workloads", "dag",
    )
    offenders = []
    for path in sorted((SRC / "machine").rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            mod = getattr(node, "module", None)
            names = []
            if isinstance(node, ast.ImportFrom) and mod:
                # Resolve relative imports: level 2 ("..core") escapes
                # the machine package into another repro subpackage.
                names = [mod] if node.level != 1 else []
            elif isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            for name in names:
                parts = name.split(".")
                if any(p in upper for p in parts):
                    offenders.append(f"{path.name}:{node.lineno}: {name}")
    assert not offenders, (
        f"repro.machine imports an upper layer: {offenders}"
    )


def test_exec_does_not_import_scenarios():
    """``repro.exec`` sits below the scenario layer: cell keys take the
    spec hash as a plain argument, never the spec object."""
    offenders = []
    for path in sorted((SRC / "exec").rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            mod = getattr(node, "module", None)
            if isinstance(node, ast.ImportFrom) and mod and "scenarios" in mod:
                offenders.append(f"{path.name}:{node.lineno}")
            if isinstance(node, ast.Import) and any(
                "scenarios" in a.name for a in node.names
            ):
                offenders.append(f"{path.name}:{node.lineno}")
    assert not offenders, f"repro.exec imports the scenario layer: {offenders}"
