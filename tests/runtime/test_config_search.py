"""Tests for the energy-optimal configuration search (Silva-style)."""

import pytest

from repro.machine import (
    Configuration,
    SocketPowerModel,
    sample_socket_efficiencies,
)
from repro.machine.configuration import ConfigPoint
from repro.runtime import ConfigSearchPolicy, energy_optimal_point
from repro.simulator import Engine, MaxPerformancePolicy, TaskRef
from repro.workloads import imbalanced_collective_app


@pytest.fixture
def models():
    eff = sample_socket_efficiencies(4, seed=9)
    return [SocketPowerModel(efficiency=float(e)) for e in eff]


@pytest.fixture
def app():
    return imbalanced_collective_app(n_ranks=4, iterations=10, spread=1.5)


def point(freq, threads, duration_s, power_w):
    return ConfigPoint(Configuration(freq, threads), duration_s, power_w)


class TestEnergyOptimalPoint:
    def test_empty_space_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            energy_optimal_point([])

    def test_negative_slowdown_rejected(self):
        with pytest.raises(ValueError, match="max_slowdown"):
            energy_optimal_point([point(2.6, 8, 1.0, 90.0)], max_slowdown=-0.1)

    def test_min_energy_within_the_slowdown_bound(self):
        pts = [
            point(2.6, 8, 1.0, 90.0),   # 90 J, fastest
            point(2.4, 8, 1.05, 80.0),  # 84 J, within 10%
            point(1.2, 8, 2.0, 30.0),   # 60 J, but 2x slower
        ]
        chosen = energy_optimal_point(pts, max_slowdown=0.1)
        assert chosen is pts[1]
        # A looser bound admits the genuinely cheapest point.
        assert energy_optimal_point(pts, max_slowdown=1.5) is pts[2]

    def test_power_budget_filters_the_space(self):
        pts = [
            point(2.6, 8, 1.0, 90.0),
            point(2.4, 8, 1.05, 80.0),
            point(1.2, 8, 2.0, 30.0),
        ]
        # Budget 50 W: only the slow point is admissible.
        assert energy_optimal_point(pts, power_budget_w=50.0) is pts[2]

    def test_unreachable_budget_falls_back_to_least_power(self):
        pts = [point(2.6, 8, 1.0, 90.0), point(1.2, 8, 2.0, 30.0)]
        assert energy_optimal_point(pts, power_budget_w=5.0) is pts[1]


class TestConfigSearchPolicy:
    def test_validation(self, models):
        with pytest.raises(ValueError, match="job cap"):
            ConfigSearchPolicy(models, job_cap_w=0.0)
        with pytest.raises(ValueError, match="max_slowdown"):
            ConfigSearchPolicy(models, job_cap_w=None, max_slowdown=-1.0)

    def test_configuration_is_history_free(self, models, kernel):
        policy = ConfigSearchPolicy(models, job_cap_w=None)
        first = policy.configure(TaskRef(0, 0), kernel, 0, None)
        again = policy.configure(TaskRef(0, 3), kernel, 7, first)
        assert first == again

    def test_saves_energy_within_bounded_slowdown(self, models, app):
        engine = Engine(models)
        base = engine.run(app, MaxPerformancePolicy())
        searched = engine.run(
            app, ConfigSearchPolicy(models, job_cap_w=None, max_slowdown=0.1)
        )
        assert searched.total_energy_j() < base.total_energy_j()
        # Per-task slowdown is bounded by 10%; the makespan inherits it.
        assert searched.makespan_s <= base.makespan_s * 1.1 * (1 + 1e-9)

    def test_cap_constrains_chosen_power(self, models, app):
        cap_w = 45.0 * len(models)
        res = Engine(models).run(
            app, ConfigSearchPolicy(models, job_cap_w=cap_w)
        )
        assert all(r.power_w <= 45.0 * (1 + 1e-9) for r in res.records)

    def test_plan_run_matches_scalar_path(self, models, app):
        engine = Engine(models)
        scalar = engine.run(
            app, ConfigSearchPolicy(models, job_cap_w=None), vectorized=False
        )
        planned = engine.run(app, ConfigSearchPolicy(models, job_cap_w=None))
        assert planned.makespan_s == scalar.makespan_s
        assert planned.total_energy_j() == scalar.total_energy_j()

    def test_overhead_hooks(self, models):
        policy = ConfigSearchPolicy(models, job_cap_w=None)
        assert policy.switch_cost_s() == 0.0
        assert policy.on_pcontrol(0, []) == 0.0
