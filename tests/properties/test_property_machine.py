"""Property-based tests (hypothesis) for the machine substrate."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.machine import (
    Configuration,
    ConfigPoint,
    RaplController,
    SocketPowerModel,
    TaskKernel,
    TaskTimeModel,
    XEON_E5_2670,
    convex_frontier,
    interpolate_duration,
    measure_task_space,
    pareto_frontier,
)

kernels = st.builds(
    TaskKernel,
    cpu_seconds=st.floats(0.01, 20.0),
    mem_seconds=st.floats(0.0, 10.0),
    parallel_fraction=st.floats(0.0, 1.0),
    mem_parallel_fraction=st.floats(0.0, 1.0),
    bw_saturation_threads=st.integers(1, 8),
    contention_threshold=st.integers(1, 8),
    contention_penalty=st.floats(0.0, 0.5),
    activity=st.floats(0.3, 2.0),
    mem_intensity=st.floats(0.0, 1.0),
)

efficiencies = st.floats(0.85, 1.2)

point_lists = st.lists(
    st.builds(
        ConfigPoint,
        config=st.just(Configuration(2.0, 4)),
        duration_s=st.floats(0.01, 100.0),
        power_w=st.floats(1.0, 100.0),
    ),
    min_size=1,
    max_size=40,
)


class TestFrontierProperties:
    @given(points=point_lists)
    def test_pareto_no_dominated_member(self, points):
        front = pareto_frontier(points)
        for a in front:
            assert not any(b.dominates(a) for b in points)

    @given(points=point_lists)
    def test_pareto_strictly_monotone(self, points):
        front = pareto_frontier(points)
        for a, b in zip(front, front[1:]):
            assert a.power_w < b.power_w
            assert a.duration_s > b.duration_s

    @given(points=point_lists)
    def test_convex_subset_and_convex(self, points):
        front = pareto_frontier(points)
        hull = convex_frontier(points)
        keys = {(p.power_w, p.duration_s) for p in front}
        assert all((p.power_w, p.duration_s) in keys for p in hull)
        slopes = [
            (b.duration_s - a.duration_s) / (b.power_w - a.power_w)
            for a, b in zip(hull, hull[1:])
        ]
        assert all(b >= a - 1e-9 for a, b in zip(slopes, slopes[1:]))

    @given(points=point_lists, power=st.floats(0.5, 120.0))
    def test_interpolation_within_hull_bounds(self, points, power):
        hull = convex_frontier(points)
        d = interpolate_duration(hull, power)
        durations = [p.duration_s for p in hull]
        assert min(durations) - 1e-9 <= d <= max(durations) + 1e-9

    @given(kernel=kernels, eff=efficiencies)
    @settings(max_examples=25, deadline=None)
    def test_kernel_space_frontier_invariants(self, kernel, eff):
        points = measure_task_space(kernel, SocketPowerModel(efficiency=eff))
        hull = convex_frontier(points)
        assert hull  # never empty
        # Hull endpoints bound the achievable range.
        best = min(p.duration_s for p in points)
        assert hull[-1].duration_s == pytest.approx(best)


class TestModelProperties:
    @given(kernel=kernels, threads=st.integers(1, 8),
           f=st.floats(1.2, 2.6), eff=efficiencies)
    @settings(max_examples=50, deadline=None)
    def test_power_and_time_positive(self, kernel, threads, f, eff):
        pm = SocketPowerModel(efficiency=eff)
        tm = TaskTimeModel()
        assert pm.power(f, threads, kernel.activity, kernel.mem_intensity) > 0
        assert tm.duration(kernel, f, threads) > 0

    @given(kernel=kernels, threads=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_duration_monotone_in_frequency(self, kernel, threads):
        tm = TaskTimeModel()
        durs = [
            tm.duration(kernel, f, threads) for f in XEON_E5_2670.pstates
        ]
        assert all(a <= b + 1e-12 for a, b in zip(durs, durs[1:]))

    @given(kernel=kernels, cap=st.floats(8.0, 90.0), eff=efficiencies)
    @settings(max_examples=50, deadline=None)
    def test_rapl_cap_or_bottom(self, kernel, cap, eff):
        ctrl = RaplController(SocketPowerModel(efficiency=eff))
        d = ctrl.decide(kernel, 8, cap)
        if d.cap_met:
            assert d.power_w <= cap + 1e-9
        else:
            assert d.config.duty == min(XEON_E5_2670.duty_cycles)

    @given(kernel=kernels, eff=efficiencies,
           caps=st.tuples(st.floats(8, 80), st.floats(8, 80)))
    @settings(max_examples=50, deadline=None)
    def test_rapl_monotone(self, kernel, eff, caps):
        lo, hi = sorted(caps)
        ctrl = RaplController(SocketPowerModel(efficiency=eff))
        f_lo = ctrl.decide(kernel, 8, lo).config.effective_freq_ghz
        f_hi = ctrl.decide(kernel, 8, hi).config.effective_freq_ghz
        assert f_hi >= f_lo - 1e-12


class TestDeviceProperties:
    """Typed-device nodes: merged frontiers and the legacy-wrap identity."""

    @given(kernel=kernels, eff=efficiencies)
    @settings(max_examples=25, deadline=None)
    def test_merged_node_pareto_never_dominated(self, kernel, eff):
        from repro.machine.device import get_node
        from repro.machine.frontiers import NodeFrontierStore

        node = get_node("cpu-gpu").with_cpu_efficiency(eff)
        prof = NodeFrontierStore([node]).profile(0, kernel)
        for a in prof.pareto:
            assert not any(b.dominates(a) for b in prof.points)
        # Both device's points participated in the merge.
        assert {p.config.device for p in prof.points} == {"cpu0", "gpu0"}

    @given(kernel=kernels, eff=efficiencies)
    @settings(max_examples=25, deadline=None)
    def test_one_device_node_is_the_legacy_store(self, kernel, eff):
        from repro.machine.device import rank_nodes, single_socket_node
        from repro.machine.frontiers import FrontierStore, NodeFrontierStore

        pm = [SocketPowerModel(efficiency=eff)]
        legacy = FrontierStore(pm).profile(0, kernel)
        wrapped = NodeFrontierStore(
            rank_nodes(single_socket_node(), pm)
        ).profile(0, kernel)
        assert wrapped.points == legacy.points
        assert wrapped.pareto == legacy.pareto
        assert wrapped.convex == legacy.convex
