"""SVG renderings of the paper's figures from their result objects.

Each function takes the result object the text harness already produces
(`figures.py`) and returns an SVG document string; :func:`exhibit_to_svg`
dispatches on exhibit type so the CLI's ``--svg DIR`` flag can render
whatever it regenerates.
"""

from __future__ import annotations

from .figures import Figure1Result, Figure8Result, Figure12Result, SweepFigure
from .svgplot import svg_bar_chart, svg_line_chart, svg_scatter

__all__ = ["figure1_svg", "figure8_svg", "figure12_svg", "sweep_svg",
           "exhibit_to_svg"]


def figure1_svg(fig: Figure1Result) -> str:
    """Figure 1: time-vs-power scatter with the convex Pareto frontier."""
    by_threads: dict[str, list[tuple[float, float]]] = {}
    for p in fig.points:
        by_threads.setdefault(f"{p.config.threads} threads", []).append(
            (p.power_w, p.duration_s)
        )
    # The paper colors by thread count; keep four groups to stay readable.
    grouped = {
        name: pts
        for name, pts in sorted(by_threads.items())
        if name.split()[0] in ("1", "4", "6", "8")
    }
    hull = [(p.power_w, p.duration_s) for p in fig.convex]
    return svg_scatter(
        title="Figure 1: Normalized Time vs. Power (CoMD task)",
        series=grouped,
        xlabel="Power (W)",
        ylabel="Task time (s)",
        lines={"convex Pareto frontier": hull},
    )


def figure8_svg(fig: Figure8Result) -> str:
    """Figure 8: schedule time vs total power, both formulations."""
    fixed = [
        (c, t) for c, t in zip(fig.caps_w, fig.fixed_s) if t is not None
    ]
    flow = [
        (c, t) for c, t in zip(fig.caps_w, fig.flow_s) if t is not None
    ]
    return svg_line_chart(
        title="Figure 8: Flow vs. Fixed-Vertex Order",
        series={"Fixed-order LP": fixed, "Flow ILP": flow},
        xlabel="Total Power (W)",
        ylabel="Schedule Time (s)",
    )


def figure12_svg(fig: Figure12Result) -> str:
    """Figure 12: long-task duration vs power, LP against Static."""
    return svg_scatter(
        title=(
            "Figure 12: CoMD Task Characteristics at "
            f"{fig.cap_per_socket_w:.0f} W/socket"
        ),
        series={"LP": fig.lp_points, "Static": fig.static_points},
        xlabel="Power (W)",
        ylabel="Duration (s)",
    )


def sweep_svg(fig: SweepFigure) -> str:
    """Figures 9-11, 13-15: improvement (%) vs per-socket cap, as bars."""
    headers, rows = fig.rows()
    categories = [f"{row[0]:g}" for row in rows]
    series: dict[str, list[float | None]] = {}
    for col, name in enumerate(headers[1:], start=1):
        series[name.replace(" (%)", "")] = [row[col] for row in rows]
    return svg_bar_chart(
        title=fig.title,
        categories=categories,
        series=series,
        xlabel="Average Power per Processor Socket (W)",
        ylabel="Improvement (%)",
    )


def exhibit_to_svg(result) -> str | None:
    """SVG for any exhibit result, or None for text-only exhibits."""
    if isinstance(result, Figure1Result):
        return figure1_svg(result)
    if isinstance(result, Figure8Result):
        return figure8_svg(result)
    if isinstance(result, Figure12Result):
        return figure12_svg(result)
    if isinstance(result, SweepFigure):
        return sweep_svg(result)
    return None
