"""Drains a :class:`~repro.service.queue.JobQueue` onto an ExecBackend.

The dispatcher is the service's compute loop: claim every pending job
(priority order), skip the ones a shared
:class:`~repro.exec.checkpoint.SweepJournal` already settled, fan the
rest out through a :class:`~repro.exec.parallel.ParallelRunner` on
whatever transport the backend provides, and settle each job back into
the queue as its outcome arrives — journaling exactly the payload
:func:`~repro.scenarios.run.run_scenarios` would write, so a sweep
computed by the service resumes byte-identically in the CLI and vice
versa.

Failures never abort the drain: a cell that exhausts its retries is
journaled as failed and the job marked ``failed`` (resubmitting it
requeues a retry); the remaining jobs still run.  One drain pass is one
``map_outcomes`` call, so submission-order observability merging and the
deterministic retry schedule are the runner's, unchanged.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..exec.cache import SolverCache
from ..exec.checkpoint import SweepJournal
from ..exec.parallel import CellOutcome, ParallelRunner, resolve_workers
from ..obs.metrics import set_gauge
from ..scenarios.run import cell_payload, run_scenario_cell
from ..scenarios.spec import ScenarioSpec
from .queue import Job, JobQueue

__all__ = ["FleetDispatcher"]


def _cell_job_task(item: tuple[str, float, str | None]):
    """One queued cell — module-level so fleet workers can unpickle it."""
    spec_json, cap, cache_root = item
    spec = ScenarioSpec.from_json(spec_json)
    cache = SolverCache(cache_root) if cache_root is not None else None
    return run_scenario_cell(spec, cap, cache=cache)


class FleetDispatcher:
    """The queue-draining loop; see the module docstring.

    Parameters
    ----------
    queue:
        The job queue to drain (this process owns it).
    backend:
        Task transport, or None for the runner's default per-map
        process pool.  The dispatcher does *not* own the backend's
        lifecycle — the caller starts and shuts it down (the CLI wraps
        ``serve`` in a try/finally).
    workers:
        Parallel width per drain pass (0 → all cores).
    cache:
        Shared :class:`~repro.exec.cache.SolverCache`; cells warm in it
        cost one lookup.
    journal:
        Shared :class:`~repro.exec.checkpoint.SweepJournal` (or path).
        Jobs already journaled ``ok`` complete without computing;
        settled cells are journaled for everyone else to resume from.
    timeout_s / retries / backoff_s:
        The runner's resilience knobs (see ``repro.exec.parallel``).
    progress:
        Optional :class:`~repro.obs.progress.ProgressReporter`; pass
        ``depth_fn=queue.depth`` at construction to get queue-depth
        heartbeats.
    """

    def __init__(
        self,
        queue: JobQueue,
        backend=None,
        workers: int = 1,
        cache: SolverCache | None = None,
        journal: SweepJournal | str | Path | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        backoff_s: float = 0.05,
        progress=None,
    ) -> None:
        self.queue = queue
        self.backend = backend
        self.workers = resolve_workers(workers)
        self.cache = cache
        if isinstance(journal, (str, Path)):
            journal = SweepJournal(journal)
        self.journal = journal
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.progress = progress

    # ------------------------------------------------------------------
    def drain(self) -> dict:
        """One pass: claim all pending jobs, run them, settle them.

        Returns ``{"claimed", "resumed", "computed", "failed"}`` counts
        for this pass.  ``resumed`` jobs were served from the journal
        without computing.
        """
        jobs: list[Job] = []
        while True:
            job = self.queue.claim_next()
            if job is None:
                break
            jobs.append(job)
        if not jobs:
            return {"claimed": 0, "resumed": 0, "computed": 0, "failed": 0}

        # Journal fast path: cells some earlier sweep (or drain) settled
        # ok complete instantly — the dedup contract with run_scenarios.
        records = self.journal.load() if self.journal is not None else {}
        todo: list[Job] = []
        resumed = 0
        for job in jobs:
            doc = records.get(job.job_id)
            if doc is not None and doc.get("status") == "ok":
                self.queue.complete(job.job_id)
                resumed += 1
                if self.progress is not None:
                    self.progress.update(ok=True, resumed=True)
            else:
                todo.append(job)

        specs: dict[str, ScenarioSpec] = {}
        for job in todo:
            specs.setdefault(job.spec_json, ScenarioSpec.from_json(job.spec_json))
        cache_root = str(self.cache.root) if self.cache is not None else None
        items = [(j.spec_json, j.cap_per_socket_w, cache_root) for j in todo]
        failed = 0

        def on_outcome(outcome: CellOutcome) -> None:
            nonlocal failed
            job = todo[outcome.index]
            spec = specs[job.spec_json]
            if self.progress is not None:
                self.progress.update(ok=outcome.ok)
            if outcome.ok:
                if self.journal is not None:
                    self.journal.record_ok(
                        job.job_id,
                        job.cap_per_socket_w,
                        cell_payload(spec, outcome.value),
                        spec_hash=spec.spec_hash(),
                        wall_s=round(outcome.elapsed_s, 6),
                    )
                self.queue.complete(job.job_id)
                return
            failed += 1
            doc = outcome.failure_doc()
            if self.journal is not None:
                self.journal.record_failed(
                    job.job_id, job.cap_per_socket_w, doc,
                    spec_hash=spec.spec_hash(),
                )
            self.queue.fail(job.job_id, doc)

        if todo:
            runner = ParallelRunner(
                max_workers=self.workers,
                timeout_s=self.timeout_s,
                retries=self.retries,
                backoff_s=self.backoff_s,
                backend=self.backend,
            )
            runner.map_outcomes(_cell_job_task, items, on_outcome=on_outcome)
        set_gauge("queue.depth", self.queue.depth(), operational=True)
        return {
            "claimed": len(jobs),
            "resumed": resumed,
            "computed": len(todo) - failed,
            "failed": failed,
        }

    # ------------------------------------------------------------------
    def serve(
        self,
        poll_s: float = 1.0,
        max_idle_s: float | None = None,
        drain_once: bool = False,
    ) -> dict:
        """Drain until idle (``drain_once``/``max_idle_s``) or forever.

        ``drain_once`` runs exactly one pass.  Otherwise the loop polls
        every ``poll_s`` seconds while the queue is empty and exits once
        it has been idle for ``max_idle_s`` (None: loop forever — the
        long-running service mode, stopped by SIGINT/SIGTERM).
        Returns accumulated drain counts.
        """
        totals = {"claimed": 0, "resumed": 0, "computed": 0, "failed": 0}
        idle_since: float | None = None
        while True:
            summary = self.drain()
            for k in totals:
                totals[k] += summary[k]
            if drain_once:
                return totals
            if summary["claimed"]:
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if max_idle_s is not None and now - idle_since >= max_idle_s:
                return totals
            time.sleep(poll_s)
