"""Tests for the SVG figure writer."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.svgplot import (
    _nice_ticks,
    svg_bar_chart,
    svg_line_chart,
    svg_scatter,
)

NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str):
    return ET.fromstring(svg)


def count(root, tag: str) -> int:
    return len(root.findall(f".//{NS}{tag}"))


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 100.0)
        assert ticks[0] <= 0.0 + 1e-9
        assert ticks[-1] >= 99.0
        assert ticks == sorted(ticks)

    def test_small_range(self):
        ticks = _nice_ticks(0.9, 1.5)
        assert 3 <= len(ticks) <= 9

    def test_degenerate(self):
        assert _nice_ticks(5.0, 5.0)


class TestScatter:
    def test_well_formed_with_markers(self):
        svg = svg_scatter(
            "t", {"a": [(1, 2), (3, 4)], "b": [(2, 1)]}, "x", "y"
        )
        root = parse(svg)
        # Series a: circles; series b: squares (beyond the legend swatches).
        assert count(root, "circle") == 2
        texts = [t.text for t in root.findall(f".//{NS}text")]
        assert "a" in texts and "b" in texts and "t" in texts

    def test_overlay_line(self):
        svg = svg_scatter(
            "t", {"pts": [(1, 2)]}, "x", "y",
            lines={"frontier": [(0, 3), (2, 1)]},
        )
        root = parse(svg)
        assert count(root, "polyline") == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_scatter("t", {}, "x", "y")
        with pytest.raises(ValueError):
            svg_scatter("t", {"a": []}, "x", "y")


class TestLineChart:
    def test_one_polyline_per_series(self):
        svg = svg_line_chart(
            "t",
            {"lp": [(1, 2), (2, 1.5)], "ilp": [(1, 2), (2, 1.4)]},
            "x", "y",
        )
        assert count(parse(svg), "polyline") == 2

    def test_points_sorted_by_x(self):
        svg = svg_line_chart("t", {"s": [(3, 1), (1, 3), (2, 2)]}, "x", "y")
        poly = parse(svg).find(f".//{NS}polyline")
        xs = [float(p.split(",")[0]) for p in poly.get("points").split()]
        assert xs == sorted(xs)


class TestBarChart:
    def test_bar_counts(self):
        svg = svg_bar_chart(
            "t", ["30", "40"], {"lp": [10.0, 5.0], "cond": [4.0, 2.0]},
            "cap", "%",
        )
        root = parse(svg)
        # 4 data bars + 2 legend swatches + background + frame.
        assert count(root, "rect") == 4 + 2 + 2

    def test_none_entries_skipped(self):
        svg = svg_bar_chart(
            "t", ["30", "40"], {"lp": [None, 5.0]}, "cap", "%"
        )
        root = parse(svg)
        assert count(root, "rect") == 1 + 1 + 2  # one bar, one swatch

    def test_negative_values_below_zero_line(self):
        svg = svg_bar_chart("t", ["60"], {"cond": [-2.0]}, "cap", "%")
        parse(svg)  # well-formed is enough; geometry checked visually

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            svg_bar_chart("t", ["a", "b"], {"s": [1.0]}, "x", "y")


class TestExhibitDispatch:
    def test_figure1(self):
        from repro.experiments import exhibit_to_svg, figure1_pareto_frontier

        svg = exhibit_to_svg(figure1_pareto_frontier())
        root = parse(svg)
        assert count(root, "polyline") == 1  # the convex frontier
        assert count(root, "circle") > 10

    def test_sweep_figure(self):
        from repro.experiments import exhibit_to_svg
        from repro.experiments.figures import SweepFigure
        from repro.experiments.runner import ComparisonResult

        results = [
            ComparisonResult(
                benchmark="comd", cap_per_socket_w=30.0, n_ranks=4,
                static_s=2.0, conductor_s=1.8, lp_s=1.6,
            )
        ]
        fig = SweepFigure(title="T", series={"comd": results},
                          metric="both_vs_static")
        svg = exhibit_to_svg(fig)
        assert "Improvement" in svg

    def test_text_only_exhibits_return_none(self):
        from repro.experiments import exhibit_to_svg

        assert exhibit_to_svg(object()) is None
