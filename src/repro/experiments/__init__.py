"""Experiment harness: regenerate every table and figure of the paper."""

from .figures import (
    BENCH_CAPS,
    ScenarioSweepFigure,
    benchmark_config,
    figure1_pareto_frontier,
    figure8_flow_vs_fixed,
    figure9_lp_vs_static,
    figure10_lp_vs_conductor,
    figure11_comd,
    figure12_comd_task_scatter,
    figure13_bt,
    figure14_sp,
    figure15_lulesh,
    headline_summary,
    scenario_sweep_figure,
)
from .figures_svg import exhibit_to_svg, figure1_svg, figure8_svg, figure12_svg, sweep_svg
from .gantt import gantt_from_result, gantt_from_schedule, power_profile_ascii
from .regression import DriftReport, verify_reference_results
from .report import render_kv, render_series, render_table
from .sensitivity import SensitivityResult, sensitivity_analysis
from .runner import (
    DEFAULT_CAPS_W,
    ComparisonResult,
    ExperimentConfig,
    comparison_spec,
    improvement_pct,
    make_power_models,
    run_comparison,
    sweep_caps,
)
from .tables import (
    FrontierResult,
    energy_comparison,
    frontier_table,
    minimum_cap_table,
    overheads_summary,
    scenario_summary,
    table3_lulesh_task_characteristics,
)

__all__ = [
    "BENCH_CAPS",
    "ComparisonResult",
    "DEFAULT_CAPS_W",
    "ExperimentConfig",
    "FrontierResult",
    "ScenarioSweepFigure",
    "benchmark_config",
    "comparison_spec",
    "energy_comparison",
    "exhibit_to_svg",
    "figure1_pareto_frontier",
    "figure8_flow_vs_fixed",
    "figure9_lp_vs_static",
    "figure10_lp_vs_conductor",
    "figure11_comd",
    "figure12_comd_task_scatter",
    "figure13_bt",
    "figure14_sp",
    "figure15_lulesh",
    "frontier_table",
    "gantt_from_result",
    "gantt_from_schedule",
    "power_profile_ascii",
    "headline_summary",
    "improvement_pct",
    "make_power_models",
    "minimum_cap_table",
    "overheads_summary",
    "render_kv",
    "render_series",
    "verify_reference_results",
    "render_table",
    "scenario_summary",
    "scenario_sweep_figure",
    "sensitivity_analysis",
    "run_comparison",
    "sweep_caps",
    "table3_lulesh_task_characteristics",
]
