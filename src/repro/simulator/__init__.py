"""MPI discrete-event simulator: programs, engine, network, tracing, replay."""

from .appio import (
    application_from_dict,
    application_to_dict,
    load_application,
    save_application,
)
from .exploration_trace import (
    RotatingExplorationPolicy,
    trace_from_exploration,
)
from .engine import (
    ConfigPolicy,
    Engine,
    MaxPerformancePolicy,
    SimulationResult,
    TaskRecord,
)
from .network import IB_QDR, NetworkModel
from .program import (
    Application,
    CollectiveOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    Op,
    PcontrolOp,
    RecvOp,
    SendOp,
    TaskRef,
    WaitOp,
)
from .replay import (
    ReplayOutcome,
    ReplayPolicy,
    build_replay_sweep_plan,
    replay_schedule,
    replay_schedule_sweep,
)
from .stats import (
    IterationStats,
    imbalance_factor,
    iteration_stats,
    power_utilization,
)
from .telemetry import (
    PowerTimeline,
    job_power_timeline,
    rank_power_timeline,
    verify_power_cap,
)
from .trace import Trace, build_dag, trace_application

__all__ = [
    "Application",
    "application_from_dict",
    "application_to_dict",
    "CollectiveOp",
    "ComputeOp",
    "ConfigPolicy",
    "Engine",
    "IB_QDR",
    "IrecvOp",
    "IterationStats",
    "IsendOp",
    "MaxPerformancePolicy",
    "NetworkModel",
    "Op",
    "PcontrolOp",
    "PowerTimeline",
    "RecvOp",
    "ReplayOutcome",
    "ReplayPolicy",
    "RotatingExplorationPolicy",
    "SendOp",
    "SimulationResult",
    "TaskRecord",
    "TaskRef",
    "Trace",
    "WaitOp",
    "build_dag",
    "job_power_timeline",
    "rank_power_timeline",
    "replay_schedule",
    "replay_schedule_sweep",
    "build_replay_sweep_plan",
    "trace_application",
    "trace_from_exploration",
    "verify_power_cap",
    "load_application",
    "save_application",
    "imbalance_factor",
    "iteration_stats",
    "power_utilization",
]
