"""Unit tests for the LP/MILP assembly layer."""

import numpy as np
import pytest

from repro.core import LinearProgram, LpStatus


class TestVariables:
    def test_duplicate_name_rejected(self):
        lp = LinearProgram()
        lp.add_var("x")
        with pytest.raises(ValueError):
            lp.add_var("x")

    def test_bad_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_var("x", lb=2.0, ub=1.0)

    def test_lookup(self):
        lp = LinearProgram()
        i = lp.add_var("x")
        assert lp.var("x") == i


class TestConstraints:
    def test_empty_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_constraint({})

    def test_inverted_bounds_rejected(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        with pytest.raises(ValueError):
            lp.add_constraint({x: 1.0}, lb=2.0, ub=1.0)

    def test_duplicate_indices_accumulate(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=10.0)
        lp.add_le({x: 1.0}, 4.0)
        lp.set_objective({x: -1.0})
        sol = lp.solve()
        assert sol.x[x] == pytest.approx(4.0)


class TestLpSolve:
    def test_simple_lp(self):
        # min -x - y  s.t. x + y <= 3, x <= 2, y <= 2
        lp = LinearProgram()
        x = lp.add_var("x", ub=2.0)
        y = lp.add_var("y", ub=2.0)
        lp.add_le({x: 1.0, y: 1.0}, 3.0)
        lp.set_objective({x: -1.0, y: -1.0})
        sol = lp.solve()
        assert sol.status is LpStatus.OPTIMAL
        assert sol.objective == pytest.approx(-3.0)

    def test_two_sided_constraint(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        lp.add_constraint({x: 1.0}, lb=2.0, ub=5.0)
        lp.set_objective({x: 1.0})
        sol = lp.solve()
        assert sol.x[x] == pytest.approx(2.0)

    def test_equality(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        y = lp.add_var("y")
        lp.add_eq({x: 1.0, y: 1.0}, 4.0)
        lp.set_objective({x: 1.0, y: 2.0})
        sol = lp.solve()
        assert sol.x[x] == pytest.approx(4.0)
        assert sol.x[y] == pytest.approx(0.0)

    def test_infeasible(self):
        lp = LinearProgram()
        x = lp.add_var("x", ub=1.0)
        lp.add_ge({x: 1.0}, 5.0)
        lp.set_objective({x: 1.0})
        assert lp.solve().status is LpStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.add_var("x", lb=-np.inf)
        lp.set_objective({x: 1.0})
        assert lp.solve().status in (LpStatus.UNBOUNDED, LpStatus.ERROR)


class TestMilpSolve:
    def test_integrality_enforced(self):
        # max x + y s.t. 2x + 3y <= 8, integers -> (4,0) fractional (1,2) int
        lp = LinearProgram()
        x = lp.add_var("x", ub=10.0, integer=True)
        y = lp.add_var("y", ub=10.0, integer=True)
        lp.add_le({x: 2.0, y: 3.0}, 8.9)
        lp.set_objective({x: -1.0, y: -1.0})
        sol = lp.solve()
        assert sol.status is LpStatus.OPTIMAL
        assert sol.x[x] == pytest.approx(round(sol.x[x]))
        assert sol.x[y] == pytest.approx(round(sol.x[y]))

    def test_is_mip_flag(self):
        lp = LinearProgram()
        lp.add_var("x")
        assert not lp.is_mip
        lp.add_var("b", ub=1.0, integer=True)
        assert lp.is_mip

    def test_binary_knapsack(self):
        values = [6, 5, 4]
        weights = [4, 3, 2]
        lp = LinearProgram()
        xs = [lp.add_var(f"x{i}", ub=1.0, integer=True) for i in range(3)]
        lp.add_le({x: w for x, w in zip(xs, weights)}, 5.0)
        lp.set_objective({x: -v for x, v in zip(xs, values)})
        sol = lp.solve()
        assert sol.objective == pytest.approx(-9.0)  # items 1+2 (5+4)


class TestCounts:
    def test_sizes_tracked(self):
        lp = LinearProgram()
        lp.add_var("a")
        lp.add_var("b")
        lp.add_le({0: 1.0}, 1.0)
        assert lp.n_vars == 2
        assert lp.n_constraints == 1
