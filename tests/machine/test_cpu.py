"""Unit tests for the CPU specification."""

import pytest

from repro.machine import CpuSpec, XEON_E5_2670, effective_frequency


class TestCpuSpec:
    def test_default_is_e5_2670(self):
        assert XEON_E5_2670.cores == 8
        assert XEON_E5_2670.fmin_ghz == 1.2
        assert XEON_E5_2670.fmax_ghz == 2.6

    def test_pstate_count_matches_paper(self):
        # 1.2..2.6 GHz in 0.1 steps = 15 P-states ("a dozen DVFS states").
        assert XEON_E5_2670.n_pstates == 15

    def test_pstates_descending_and_bounded(self):
        ps = XEON_E5_2670.pstates
        assert ps[0] == XEON_E5_2670.fmax_ghz
        assert ps[-1] == XEON_E5_2670.fmin_ghz
        assert all(a > b for a, b in zip(ps, ps[1:]))

    def test_pstates_evenly_spaced(self):
        ps = XEON_E5_2670.pstates
        gaps = [round(a - b, 6) for a, b in zip(ps, ps[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_thread_counts(self):
        assert XEON_E5_2670.thread_counts() == tuple(range(1, 9))

    def test_duty_cycles_descending_below_one(self):
        d = XEON_E5_2670.duty_cycles
        assert len(d) == 7
        assert all(0 < x < 1 for x in d)
        assert all(a > b for a, b in zip(d, d[1:]))

    def test_nearest_pstate(self):
        assert XEON_E5_2670.nearest_pstate(2.57) == pytest.approx(2.6)
        assert XEON_E5_2670.nearest_pstate(1.74) == pytest.approx(1.7)
        assert XEON_E5_2670.nearest_pstate(0.3) == pytest.approx(1.2)

    def test_clamp_frequency(self):
        assert XEON_E5_2670.clamp_frequency(5.0) == 2.6
        assert XEON_E5_2670.clamp_frequency(0.1) == 1.2
        assert XEON_E5_2670.clamp_frequency(2.0) == 2.0

    def test_custom_spec(self):
        spec = CpuSpec(name="toy", cores=4, fmin_ghz=1.0, fmax_ghz=2.0,
                       fstep_ghz=0.5, modulation_levels=3)
        assert spec.pstates == (2.0, 1.5, 1.0)
        assert spec.duty_cycles == (0.75, 0.5, 0.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"fmin_ghz": -1.0},
            {"fmin_ghz": 3.0, "fmax_ghz": 2.0},
            {"fstep_ghz": 0.0},
            {"modulation_levels": -1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CpuSpec(**kwargs)


class TestEffectiveFrequency:
    def test_full_duty_identity(self):
        assert effective_frequency(XEON_E5_2670, 1.2, 1.0) == pytest.approx(1.2)

    def test_modulated(self):
        assert effective_frequency(XEON_E5_2670, 1.2, 0.5) == pytest.approx(0.6)

    def test_invalid_duty(self):
        with pytest.raises(ValueError):
            effective_frequency(XEON_E5_2670, 1.2, 0.0)
        with pytest.raises(ValueError):
            effective_frequency(XEON_E5_2670, 1.2, 1.5)

    def test_paper_22_percent_clock_is_expressible(self):
        # BT under Static at 30 W runs at 22% of max clock: 0.57 GHz —
        # below fmin, only reachable through modulation.
        target = 0.22 * XEON_E5_2670.fmax_ghz
        duties = XEON_E5_2670.duty_cycles
        reachable = [XEON_E5_2670.fmin_ghz * d for d in duties]
        assert min(reachable) < target < XEON_E5_2670.fmin_ghz
