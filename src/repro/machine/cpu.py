"""CPU specification: cores, DVFS states, and clock-modulation levels.

The paper's test system (LLNL's *Cab*) uses dual-socket Xeon E5-2670 nodes:
8 cores per socket, socket-level DVFS spanning 1.2-2.6 GHz in 0.1 GHz steps
(15 P-states), and RAPL power capping per socket.  When RAPL cannot satisfy
a cap even at the lowest P-state it falls back to duty-cycle clock
modulation (T-states), which is how the paper's Static baseline ends up
running BT at "22% of max clock" under a 30 W cap.

:class:`CpuSpec` is a frozen value object; every other machine-model module
takes one as input so alternative processors can be modeled by constructing
a different spec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CpuSpec", "XEON_E5_2670", "effective_frequency"]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of one processor socket.

    Attributes
    ----------
    name:
        Human-readable model name.
    cores:
        Number of physical cores per socket (the paper runs one
        multithreaded MPI process per socket, up to ``cores`` OpenMP
        threads).
    fmin_ghz, fmax_ghz:
        Lowest and highest non-boosted DVFS frequencies.
    fstep_ghz:
        DVFS granularity; P-states are ``fmin, fmin+step, ..., fmax``.
    modulation_levels:
        Number of duty-cycle clock-modulation levels available *below* the
        lowest P-state (Intel T-states expose 12.5%..100% duty in 1/8
        steps; we expose the sub-100% ones).
    """

    name: str = "Xeon E5-2670"
    cores: int = 8
    fmin_ghz: float = 1.2
    fmax_ghz: float = 2.6
    fstep_ghz: float = 0.1
    modulation_levels: int = 7

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if not (0.0 < self.fmin_ghz <= self.fmax_ghz):
            raise ValueError(
                f"need 0 < fmin <= fmax, got fmin={self.fmin_ghz} fmax={self.fmax_ghz}"
            )
        if self.fstep_ghz <= 0:
            raise ValueError(f"fstep must be positive, got {self.fstep_ghz}")
        if self.modulation_levels < 0:
            raise ValueError("modulation_levels must be >= 0")

    @property
    def pstates(self) -> tuple[float, ...]:
        """All DVFS frequencies in GHz, descending (P0 first, like Intel)."""
        n = int(round((self.fmax_ghz - self.fmin_ghz) / self.fstep_ghz)) + 1
        freqs = self.fmax_ghz - self.fstep_ghz * np.arange(n)
        # Guard against floating-point drift so the lowest state is exact.
        freqs[-1] = self.fmin_ghz
        return tuple(float(round(f, 6)) for f in freqs)

    @property
    def n_pstates(self) -> int:
        return len(self.pstates)

    @property
    def duty_cycles(self) -> tuple[float, ...]:
        """Clock-modulation duty cycles below the lowest P-state, descending.

        Intel T-states quantize duty in 1/(levels+1) steps; at duty ``d``
        the core effectively runs at ``d * fmin``.
        """
        n = self.modulation_levels
        return tuple((n - k) / (n + 1) for k in range(n))

    def thread_counts(self) -> tuple[int, ...]:
        """Admissible OpenMP thread counts, ascending (1..cores)."""
        return tuple(range(1, self.cores + 1))

    def nearest_pstate(self, freq_ghz: float) -> float:
        """Snap an arbitrary frequency onto the closest available P-state."""
        states = np.asarray(self.pstates)
        return float(states[np.argmin(np.abs(states - freq_ghz))])

    def clamp_frequency(self, freq_ghz: float) -> float:
        """Clamp a frequency into the continuous DVFS range."""
        return float(min(self.fmax_ghz, max(self.fmin_ghz, freq_ghz)))


def effective_frequency(spec: CpuSpec, pstate_ghz: float, duty: float = 1.0) -> float:
    """Effective clock rate with optional duty-cycle modulation applied.

    ``duty=1`` means no modulation.  Modulation is only meaningful at the
    lowest P-state (that is how RAPL firmware uses it), but the arithmetic
    is duty * pstate regardless.
    """
    if not (0.0 < duty <= 1.0):
        raise ValueError(f"duty must be in (0, 1], got {duty}")
    return pstate_ghz * duty


#: The default socket model used throughout the reproduction — parameters of
#: the paper's Cab nodes.
XEON_E5_2670 = CpuSpec()
