"""ScenarioSpec / PolicySpec: validation, canonical JSON, hashing."""

import json

import pytest

from repro.scenarios.spec import (
    SCENARIO_BENCHMARKS,
    PolicySpec,
    ScenarioSpec,
)


def make_spec(**overrides) -> ScenarioSpec:
    kwargs = dict(
        benchmark="synthetic",
        caps_per_socket_w=(40.0, 60.0),
        policies=(PolicySpec("static"), PolicySpec("lp")),
        n_ranks=4,
        run_iterations=8,
        lp_iterations=2,
        discard_iterations=2,
        steady_window=4,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestPolicySpec:
    def test_label_defaults_to_policy_name(self):
        assert PolicySpec("static").label == "static"

    def test_explicit_name_wins(self):
        assert PolicySpec("conductor", name="cond-fast").label == "cond-fast"

    def test_doc_round_trip(self):
        p = PolicySpec("conductor", name="c2", config={"step_w": 3.0})
        again = PolicySpec.from_doc(p.to_doc())
        assert again.policy == "conductor"
        assert again.label == "c2"
        assert again.config == {"step_w": 3.0}

    def test_empty_policy_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec("")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec("static", name="")


class TestValidation:
    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            make_spec(benchmark="nope")

    def test_synthetic_is_a_scenario_benchmark(self):
        assert "synthetic" in SCENARIO_BENCHMARKS
        assert make_spec().benchmark == "synthetic"

    def test_paper_benchmarks_present(self):
        for b in ("comd", "lulesh", "bt", "sp"):
            assert b in SCENARIO_BENCHMARKS

    def test_empty_caps(self):
        with pytest.raises(ValueError, match="at least one cap"):
            make_spec(caps_per_socket_w=())

    def test_negative_cap(self):
        with pytest.raises(ValueError, match="positive"):
            make_spec(caps_per_socket_w=(40.0, -1.0))

    def test_empty_policies(self):
        with pytest.raises(ValueError, match="at least one policy"):
            make_spec(policies=())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_spec(policies=(PolicySpec("static"), PolicySpec("static")))

    def test_duplicate_policy_with_distinct_names_ok(self):
        spec = make_spec(policies=(
            PolicySpec("conductor", name="a"), PolicySpec("conductor", name="b"),
        ))
        assert spec.policy_labels() == ["a", "b"]

    def test_window_constraints(self):
        with pytest.raises(ValueError):
            make_spec(run_iterations=4, discard_iterations=4)
        with pytest.raises(ValueError):
            make_spec(steady_window=100)

    def test_caps_coerced_to_float_tuple(self):
        spec = make_spec(caps_per_socket_w=[40, 60])
        assert spec.caps_per_socket_w == (40.0, 60.0)
        assert all(isinstance(c, float) for c in spec.caps_per_socket_w)


class TestSerialization:
    def test_json_round_trip_is_identity(self):
        spec = make_spec(policies=(
            PolicySpec("static"),
            PolicySpec("conductor", name="c", config={"realloc_period": 3}),
            PolicySpec("lp", config={"include_discrete": True}),
        ))
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()

    def test_canonical_json_is_sorted_and_compact(self):
        text = make_spec().to_json()
        doc = json.loads(text)
        assert ": " not in text and ", " not in text
        assert list(doc) == sorted(doc)

    def test_unknown_field_rejected(self):
        doc = make_spec().to_doc()
        doc["surprise"] = 1
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_doc(doc)

    def test_hand_written_json_parses(self):
        text = json.dumps({
            "benchmark": "comd",
            "caps_per_socket_w": [50],
            "policies": [{"policy": "static"}],
        })
        spec = ScenarioSpec.from_json(text)
        assert spec.n_ranks == 32  # defaults fill in
        assert spec.policy_labels() == ["static"]


class TestHashing:
    def test_spec_hash_covers_caps(self):
        a = make_spec(caps_per_socket_w=(40.0,))
        b = make_spec(caps_per_socket_w=(40.0, 60.0))
        assert a.spec_hash() != b.spec_hash()

    def test_cell_hash_ignores_caps(self):
        a = make_spec(caps_per_socket_w=(40.0,))
        b = make_spec(caps_per_socket_w=(40.0, 60.0))
        assert a.cell_hash() == b.cell_hash()

    def test_cell_hash_covers_everything_else(self):
        base = make_spec()
        assert base.cell_hash() != make_spec(seed=1).cell_hash()
        assert base.cell_hash() != make_spec(n_ranks=8).cell_hash()
        assert base.cell_hash() != make_spec(policies=(
            PolicySpec("static"), PolicySpec("lp", config={"time_limit_s": 5}),
        )).cell_hash()

    def test_hashes_stable_across_instances(self):
        assert make_spec().spec_hash() == make_spec().spec_hash()
