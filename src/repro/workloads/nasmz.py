"""NAS Multi-Zone proxies: BT-MZ (imbalanced) and SP-MZ (balanced).

NAS-MZ (§5.2) adapts the NAS Parallel Benchmarks to MPI + OpenMP by
partitioning the mesh into *zones* distributed across ranks.  The two
members the paper evaluates sit at opposite ends of the load-balance
spectrum, which is exactly why their results diverge:

* **BT-MZ** sizes zones in a geometric progression, so per-rank work
  spreads ~3x.  Under a uniform Static cap the heavy ranks throttle hard
  and dominate the makespan; nonuniform allocation (LP, Conductor) wins
  big — the paper's 74.9% LP-vs-Static peak at 30 W/socket.
* **SP-MZ** uses equal zones: near-perfect balance leaves the LP almost
  nothing to exploit (<3%), and Conductor's noise-driven reallocation plus
  its DVFS/reallocation overheads make it *slightly slower* than Static
  (-1.5% average in the paper).

Both kernels carry a high dynamic activity factor (implicit ADI solvers
keep FP pipelines hot), so sockets run power-hungry and the low-cap regime
bites, as in Figure 13; BT-MZ is CPU-dominant in *time* while still
burning high uncore power (line-solves sweep memory but overlap compute).
"""

from __future__ import annotations

import numpy as np

from ..machine.performance import TaskKernel
from ..simulator.program import (
    Application,
    CollectiveOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    PcontrolOp,
    WaitOp,
)
from .base import WorkloadBuilder, WorkloadSpec, dynamic_jitter, static_imbalance

__all__ = ["BT_KERNEL", "SP_KERNEL", "make_bt", "make_sp"]

#: BT-MZ's block-tridiagonal solve: compute-dominant, power-hungry.
BT_KERNEL = TaskKernel(
    cpu_seconds=7.5,
    mem_seconds=0.6,
    parallel_fraction=0.995,
    mem_parallel_fraction=0.9,
    bw_saturation_threads=6,
    contention_threshold=8,
    contention_penalty=0.0,
    activity=1.7,
    mem_intensity=0.7,
    name="bt-solve",
)

#: SP-MZ's scalar-pentadiagonal solve: balanced, moderately memory-bound.
SP_KERNEL = TaskKernel(
    cpu_seconds=4.5,
    mem_seconds=2.6,
    parallel_fraction=0.99,
    mem_parallel_fraction=0.93,
    bw_saturation_threads=6,
    contention_threshold=8,
    contention_penalty=0.02,
    activity=1.1,
    mem_intensity=0.5,
    name="sp-solve",
)

BT_STATIC_SPREAD = 4.0   # geometric zone sizing
BT_DYNAMIC_SIGMA = 0.01
SP_STATIC_SPREAD = 1.02  # equal zones
SP_DYNAMIC_SIGMA = 0.008
BORDER_BYTES = 200_000   # zone-boundary exchange per neighbor


def _ring_neighbors(rank: int, n_ranks: int) -> list[int]:
    """Non-periodic 1D neighbors (zone adjacency along the zone chain)."""
    out = []
    if rank > 0:
        out.append(rank - 1)
    if rank < n_ranks - 1:
        out.append(rank + 1)
    return out


def _border_exchange(b: WorkloadBuilder, n_ranks: int, it: int) -> None:
    """Nonblocking zone-border exchange with chain neighbors + wait-all."""
    for r in range(n_ranks):
        neighbors = _ring_neighbors(r, n_ranks)
        for i, nb in enumerate(neighbors):
            b.add(r, IrecvOp(src=nb, request=i, tag=0, iteration=it))
        for i, nb in enumerate(neighbors):
            b.add(
                r,
                IsendOp(dst=nb, size_bytes=BORDER_BYTES, request=50 + i,
                        tag=0, iteration=it),
            )
        for i in range(len(neighbors)):
            b.add(r, WaitOp(i, iteration=it))
        for i in range(len(neighbors)):
            b.add(r, WaitOp(50 + i, iteration=it))


def _make_nasmz(
    name: str,
    kernel: TaskKernel,
    spread: float,
    sigma: float,
    spec: WorkloadSpec,
    residual_allreduce: bool,
    min_cap_w: float | None = None,
) -> Application:
    rng = np.random.default_rng(spec.seed)
    factors = static_imbalance(spec.n_ranks, spread, rng)
    b = WorkloadBuilder(name=name, n_ranks=spec.n_ranks)
    b.metadata.update(
        {
            "benchmark": name.upper(),
            "communication": "zone-border p2p" + (
                " + residual allreduce" if residual_allreduce else ""
            ),
            "static_spread": spread,
            "dynamic_sigma": sigma,
        }
    )
    if min_cap_w is not None:
        b.metadata["min_cap_per_socket_w"] = min_cap_w
    for it in range(spec.iterations):
        jitter = dynamic_jitter(spec.n_ranks, sigma, rng)
        for r in range(spec.n_ranks):
            work = factors[r] * jitter[r] * spec.scale
            b.add(r, ComputeOp(kernel.scaled(work), it, label=f"{name}-solve"))
        _border_exchange(b, spec.n_ranks, it)
        for r in range(spec.n_ranks):
            if residual_allreduce:
                b.add(r, CollectiveOp("allreduce", 40, iteration=it))
            b.add(r, PcontrolOp(it))
    return b.finish(spec.iterations)


def make_bt(spec: WorkloadSpec = WorkloadSpec()) -> Application:
    """Generate the BT-MZ proxy (strongly imbalanced zones)."""
    return _make_nasmz(
        "bt", BT_KERNEL, BT_STATIC_SPREAD, BT_DYNAMIC_SIGMA, spec,
        residual_allreduce=False,
    )


def make_sp(spec: WorkloadSpec = WorkloadSpec()) -> Application:
    """Generate the SP-MZ proxy (near-perfectly balanced zones)."""
    return _make_nasmz(
        "sp", SP_KERNEL, SP_STATIC_SPREAD, SP_DYNAMIC_SIGMA, spec,
        residual_allreduce=True,
        # SP-MZ would not run under the paper's lowest cap (Fig. 14 starts
        # at 40 W/socket); see DESIGN.md on reproducing unschedulability.
        min_cap_w=40.0,
    )
