"""Machine-level power partitioning across concurrent jobs.

The paper's opening premise (§1): "total machine power will be divided
across multiple simultaneous jobs, with each job being allocated a power
bound and a set of nodes."  The paper deliberately leaves inter-job
allocation to prior work; this module provides the minimal, well-tested
machinery a facility scheduler needs to *use* the per-job LP bounds —
partition a machine budget across job requests, and (optionally) shave
each job's allocation using the LP's diminishing returns.

Policies:

* ``uniform``       — equal watts per node, every job gets nodes x share;
* ``proportional``  — watts proportional to requested node counts (same as
  uniform when the machine is fully packed);
* ``priority``      — strict priority order, each job takes up to its
  requested maximum, the remainder flows down.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["JobRequest", "JobAllocation", "partition_power"]


@dataclass(frozen=True)
class JobRequest:
    """A job asking the facility for nodes and power.

    ``min_w_per_socket`` is the floor below which the job cannot run
    (cf. the paper's benchmarks that were "not able to be scheduled at the
    lowest power constraint"); ``max_w_per_socket`` is the point past
    which extra power is wasted (all sockets at fmax).
    """

    name: str
    n_sockets: int
    min_w_per_socket: float = 25.0
    max_w_per_socket: float = 80.0
    priority: int = 0

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ValueError(f"{self.name}: n_sockets must be >= 1")
        if not (0 < self.min_w_per_socket <= self.max_w_per_socket):
            raise ValueError(
                f"{self.name}: need 0 < min <= max per-socket watts"
            )

    @property
    def min_w(self) -> float:
        return self.min_w_per_socket * self.n_sockets

    @property
    def max_w(self) -> float:
        return self.max_w_per_socket * self.n_sockets


@dataclass(frozen=True)
class JobAllocation:
    """One job's power bound (its PC for the per-job LP)."""

    request: JobRequest
    power_w: float
    admitted: bool

    @property
    def w_per_socket(self) -> float:
        return self.power_w / self.request.n_sockets if self.admitted else 0.0


def partition_power(
    machine_w: float,
    requests: list[JobRequest],
    policy: str = "uniform",
) -> list[JobAllocation]:
    """Divide a machine power budget across job requests.

    Jobs whose floor cannot be met are not admitted (they receive 0 W);
    admission processes jobs in priority order (desc), then input order.
    Any surplus after satisfying floors is distributed per the policy and
    capped at each job's ``max_w``; power nobody can use is left unspent.
    """
    if machine_w <= 0:
        raise ValueError(f"machine power must be positive, got {machine_w}")
    if policy not in ("uniform", "proportional", "priority"):
        raise ValueError(f"unknown policy {policy!r}")
    if not requests:
        return []

    order = sorted(
        range(len(requests)),
        key=lambda i: (-requests[i].priority, i),
    )

    # Admission: grant floors in priority order while they fit.
    granted: dict[int, float] = {}
    remaining = machine_w
    for i in order:
        req = requests[i]
        if req.min_w <= remaining:
            granted[i] = req.min_w
            remaining -= req.min_w

    # Surplus distribution.
    if policy == "priority":
        for i in order:
            if i not in granted or remaining <= 0:
                continue
            take = min(remaining, requests[i].max_w - granted[i])
            granted[i] += take
            remaining -= take
    else:
        # uniform: equal per admitted socket; proportional: by socket count
        # (identical weights here; kept separate for API clarity and for
        # facilities that weight by charge account etc.).
        live = set(granted)
        while remaining > 1e-9 and live:
            total_sockets = sum(requests[i].n_sockets for i in live)
            per_socket = remaining / total_sockets
            spent = 0.0
            saturated = set()
            for i in live:
                req = requests[i]
                take = min(
                    per_socket * req.n_sockets, req.max_w - granted[i]
                )
                granted[i] += take
                spent += take
                if req.max_w - granted[i] <= 1e-9:
                    saturated.add(i)
            remaining -= spent
            live -= saturated
            if spent <= 1e-12:
                break

    return [
        JobAllocation(
            request=req,
            power_w=granted.get(i, 0.0),
            admitted=i in granted,
        )
        for i, req in enumerate(requests)
    ]
