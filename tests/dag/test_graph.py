"""Unit tests for the task graph container."""

import pytest

from repro.dag import TaskGraph, VertexKind


@pytest.fixture
def empty_graph():
    return TaskGraph(2)


@pytest.fixture
def small_graph(kernel):
    """Init -> [compute r0, compute r1] -> collective -> Finalize."""
    g = TaskGraph(2)
    init = g.add_vertex(VertexKind.INIT)
    coll = g.add_vertex(VertexKind.COLLECTIVE, label="allreduce")
    fin = g.add_vertex(VertexKind.FINALIZE)
    g.add_compute(init.id, coll.id, rank=0, kernel=kernel)
    g.add_compute(init.id, coll.id, rank=1, kernel=kernel.scaled(1.5))
    g.add_message(coll.id, fin.id, 0.0)
    return g


class TestConstruction:
    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            TaskGraph(0)

    def test_vertex_ids_sequential(self, empty_graph):
        v0 = empty_graph.add_vertex(VertexKind.INIT)
        v1 = empty_graph.add_vertex(VertexKind.FINALIZE)
        assert (v0.id, v1.id) == (0, 1)

    def test_vertex_rank_bounds(self, empty_graph):
        with pytest.raises(ValueError):
            empty_graph.add_vertex(VertexKind.SEND, rank=5)

    def test_compute_edge_needs_kernel_and_rank(self, empty_graph, kernel):
        a = empty_graph.add_vertex(VertexKind.INIT)
        b = empty_graph.add_vertex(VertexKind.FINALIZE)
        edge = empty_graph.add_compute(a.id, b.id, rank=1, kernel=kernel)
        assert edge.is_compute
        assert edge.rank == 1

    def test_self_loop_rejected(self, empty_graph):
        a = empty_graph.add_vertex(VertexKind.INIT)
        with pytest.raises(ValueError):
            empty_graph.add_message(a.id, a.id, 0.0)

    def test_unknown_vertex_rejected(self, empty_graph):
        empty_graph.add_vertex(VertexKind.INIT)
        with pytest.raises(ValueError):
            empty_graph.add_message(0, 99, 0.0)

    def test_negative_message_duration_rejected(self, empty_graph):
        a = empty_graph.add_vertex(VertexKind.INIT)
        b = empty_graph.add_vertex(VertexKind.FINALIZE)
        with pytest.raises(ValueError):
            empty_graph.add_message(a.id, b.id, -1.0)


class TestQueries:
    def test_adjacency(self, small_graph):
        assert len(small_graph.out_edges(0)) == 2
        assert len(small_graph.in_edges(1)) == 2
        assert len(small_graph.out_edges(1)) == 1

    def test_edge_partition(self, small_graph):
        assert len(small_graph.compute_edges()) == 2
        assert len(small_graph.message_edges()) == 1
        assert small_graph.n_edges == 3

    def test_rank_edges(self, small_graph):
        assert [e.rank for e in small_graph.rank_edges(0)] == [0]
        assert [e.rank for e in small_graph.rank_edges(1)] == [1]

    def test_find_vertex(self, small_graph):
        assert small_graph.find_vertex(VertexKind.INIT).id == 0
        with pytest.raises(ValueError):
            small_graph.find_vertex(VertexKind.SEND)

    def test_describe(self, small_graph):
        text = small_graph.describe()
        assert "ranks=2" in text and "compute=2" in text


class TestTopologicalOrder:
    def test_respects_edges(self, small_graph):
        order = small_graph.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for e in small_graph.edges:
            assert pos[e.src] < pos[e.dst]

    def test_cycle_detected(self, empty_graph, kernel):
        a = empty_graph.add_vertex(VertexKind.SEND, rank=0)
        b = empty_graph.add_vertex(VertexKind.RECV, rank=0)
        empty_graph.add_message(a.id, b.id, 0.0)
        empty_graph.add_message(b.id, a.id, 0.0)
        with pytest.raises(ValueError, match="cycle"):
            empty_graph.topological_order()


class TestValidate:
    def test_valid_graph_passes(self, small_graph):
        small_graph.validate()

    def test_missing_finalize_fails(self, empty_graph):
        empty_graph.add_vertex(VertexKind.INIT)
        with pytest.raises(ValueError):
            empty_graph.validate()

    def test_cross_rank_compute_edge_fails(self, empty_graph, kernel):
        init = empty_graph.add_vertex(VertexKind.INIT)
        fin = empty_graph.add_vertex(VertexKind.FINALIZE)
        wrong = empty_graph.add_vertex(VertexKind.SEND, rank=0)
        empty_graph.add_message(init.id, wrong.id, 0.0)
        empty_graph.add_compute(wrong.id, fin.id, rank=1, kernel=kernel)
        with pytest.raises(ValueError, match="rank"):
            empty_graph.validate()
