"""The ExecBackend seam: payload contract, transport signals, recovery.

Transport-specific behavior lives here; the backend-independent
machinery (retries, deadlines, merge order) stays covered by
``test_parallel.py``, which exercises every backend through the runner.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.exec.backends import (
    BackendTimeoutError,
    InlineBackend,
    ProcessPoolBackend,
    SocketWorkerBackend,
    TaskSpec,
    WorkerLostError,
    make_backend,
    run_task,
)
from repro.exec.parallel import ParallelRunner


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


def sleepy(x):
    time.sleep(x)
    return x


class TestMakeBackend:
    def test_registry_names(self):
        assert isinstance(make_backend("inline"), InlineBackend)
        assert isinstance(make_backend("process"), ProcessPoolBackend)
        assert isinstance(make_backend("socket"), SocketWorkerBackend)

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown exec backend"):
            make_backend("carrier-pigeon")

    def test_only_inline_is_in_process(self):
        assert InlineBackend.in_process
        assert not ProcessPoolBackend.in_process
        assert not SocketWorkerBackend.in_process


class TestRunTask:
    def test_payload_shape_and_telemetry(self):
        value, telemetry, trace, audit, metrics, profile = run_task(square, 3)
        assert value == 9
        assert isinstance(telemetry, dict)
        assert trace is None and audit is None
        assert metrics is None and profile is None

    def test_wanted_snapshots_come_back(self):
        payload = run_task(square, 2, want_metrics=True, want_profile=True)
        assert payload[4] is not None and payload[5] is not None


class TestInlineBackend:
    def test_lazy_execution_with_null_snapshots(self):
        backend = InlineBackend()
        backend.start(4)
        handle = backend.submit(TaskSpec(index=0, fn=square, item=5))
        payload = backend.result(handle, timeout_s=None)
        assert payload == (25, None, None, None, None, None)
        assert backend.result(handle, timeout_s=None) is payload  # settled

    def test_task_exceptions_propagate_raw(self):
        backend = InlineBackend()
        handle = backend.submit(TaskSpec(index=0, fn=boom, item=1))
        with pytest.raises(ValueError, match="boom 1"):
            backend.result(handle, timeout_s=None)

    def test_unpicklable_closures_work(self):
        # The whole point of the in-process transport.
        captured = []
        backend = InlineBackend()
        handle = backend.submit(
            TaskSpec(index=0, fn=lambda x: captured.append(x) or x, item=7)
        )
        assert backend.result(handle, None)[0] == 7
        assert captured == [7]

    def test_never_needs_resubmit(self):
        backend = InlineBackend()
        handle = backend.submit(TaskSpec(index=0, fn=square, item=1))
        assert not backend.needs_resubmit(handle)
        backend.recover()  # no-op
        backend.shutdown()


class TestProcessPoolBackend:
    def test_round_trip(self):
        backend = ProcessPoolBackend()
        backend.start(2)
        try:
            handles = [
                backend.submit(TaskSpec(index=i, fn=square, item=i))
                for i in range(4)
            ]
            values = [backend.result(h, timeout_s=60.0)[0] for h in handles]
            assert values == [0, 1, 4, 9]
        finally:
            backend.shutdown()

    def test_deadline_raises_backend_timeout_with_cause(self):
        backend = ProcessPoolBackend()
        backend.start(1)
        try:
            handle = backend.submit(TaskSpec(index=0, fn=sleepy, item=5.0))
            with pytest.raises(BackendTimeoutError) as err:
                backend.result(handle, timeout_s=0.05)
            # The runner records the *cause's* type in outcomes, so the
            # pre-backend "TimeoutError" label is pinned here.
            assert type(err.value.cause).__name__ == "TimeoutError"
            backend.cancel(handle)
        finally:
            backend.shutdown()

    def test_start_is_idempotent(self):
        backend = ProcessPoolBackend()
        backend.start(2)
        pool = backend._pool
        backend.start(2)
        assert backend._pool is pool
        backend.shutdown()
        assert backend._pool is None


class TestSocketWorkerBackend:
    def test_fleet_round_trip_over_unix_socket(self):
        backend = SocketWorkerBackend(heartbeat_s=0.2)
        backend.start(2)
        try:
            handles = [
                backend.submit(TaskSpec(index=i, fn=square, item=i))
                for i in range(6)
            ]
            values = [backend.result(h, timeout_s=60.0)[0] for h in handles]
            assert values == [0, 1, 4, 9, 16, 25]
            assert len(backend.worker_pids()) == 2
        finally:
            backend.shutdown()

    def test_task_exception_round_trips_through_pickle(self):
        backend = SocketWorkerBackend(heartbeat_s=0.2)
        backend.start(1)
        try:
            handle = backend.submit(TaskSpec(index=0, fn=boom, item=9))
            with pytest.raises(ValueError, match="boom 9"):
                backend.result(handle, timeout_s=60.0)
            assert not backend.needs_resubmit(handle)  # settled for real
        finally:
            backend.shutdown()

    def test_sigkilled_worker_raises_worker_lost_and_recovers(self):
        backend = SocketWorkerBackend(heartbeat_s=0.2)
        backend.start(1)
        try:
            handle = backend.submit(TaskSpec(index=0, fn=sleepy, item=30.0))
            time.sleep(0.5)  # let the task land on the worker
            os.kill(backend.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(WorkerLostError):
                backend.result(handle, timeout_s=60.0)
            assert backend.needs_resubmit(handle)
            backend.recover()  # respawns the fleet deficit
            fresh = backend.submit(TaskSpec(index=1, fn=square, item=8))
            assert backend.result(fresh, timeout_s=60.0)[0] == 64
        finally:
            backend.shutdown()

    def test_runner_retries_through_a_worker_death(self):
        backend = SocketWorkerBackend(heartbeat_s=0.2)
        backend.start(2)
        try:
            runner = ParallelRunner(
                max_workers=2, retries=1, backoff_s=0.0, backend=backend
            )
            killer = _KillOnce(backend)
            outcomes = runner.map_outcomes(square, [2, 3, 4], on_outcome=killer)
            assert [o.value for o in outcomes] == [4, 9, 16]
        finally:
            backend.shutdown()


class _KillOnce:
    """SIGKILL one fleet worker after the first outcome settles."""

    def __init__(self, backend):
        self.backend = backend
        self.fired = False

    def __call__(self, outcome):
        if not self.fired and self.backend.worker_pids():
            self.fired = True
            os.kill(self.backend.worker_pids()[0], signal.SIGKILL)
