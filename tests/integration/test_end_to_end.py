"""Integration tests: the full pipeline from workload to verified schedule."""

import pytest

from repro.core import round_schedule, solve_fixed_order_lp
from repro.experiments import make_power_models
from repro.runtime import ConductorConfig, ConductorPolicy, StaticPolicy
from repro.simulator import (
    Engine,
    MaxPerformancePolicy,
    replay_schedule,
    trace_application,
)
from repro.workloads import WorkloadSpec, make_bt, make_comd

N_RANKS = 6
CAP_PER_SOCKET = 32.0
JOB_CAP = CAP_PER_SOCKET * N_RANKS


@pytest.fixture(scope="module")
def models():
    return make_power_models(N_RANKS, efficiency_seed=11)


@pytest.fixture(scope="module")
def comd_app():
    return make_comd(WorkloadSpec(n_ranks=N_RANKS, iterations=4, seed=5))


@pytest.fixture(scope="module")
def comd_trace(comd_app, models):
    return trace_application(comd_app, models)


@pytest.fixture(scope="module")
def comd_lp(comd_trace):
    res = solve_fixed_order_lp(comd_trace, JOB_CAP)
    assert res.feasible
    return res


class TestTraceLpReplayLoop:
    """Paper §6.1: LP schedules must be realizable and within their caps."""

    def test_floor_rounded_replay_respects_cap(self, comd_app, comd_trace,
                                               comd_lp, models):
        disc = round_schedule(comd_trace, comd_lp.schedule, mode="floor")
        out = replay_schedule(
            comd_app, disc.config_map(), models, cap_w=JOB_CAP
        )
        assert out.cap_respected, (
            f"peak {out.peak_power_w:.1f} W over cap {JOB_CAP} W"
        )

    def test_nearest_rounded_replay_close_to_lp_bound(self, comd_app,
                                                      comd_trace, comd_lp,
                                                      models):
        disc = round_schedule(comd_trace, comd_lp.schedule, mode="nearest")
        out = replay_schedule(
            comd_app, disc.config_map(), models, cap_w=JOB_CAP,
            cap_rel_tol=0.05,
        )
        # Replayed makespan within a few percent of the LP bound (replay
        # adds MPI-call and DVFS-switch overheads; rounding shifts configs).
        assert out.makespan_s == pytest.approx(comd_lp.makespan_s, rel=0.08)

    def test_replayed_discrete_slower_than_unconstrained(self, comd_app,
                                                         comd_trace, comd_lp,
                                                         models):
        disc = round_schedule(comd_trace, comd_lp.schedule, mode="floor")
        out = replay_schedule(comd_app, disc.config_map(), models, JOB_CAP)
        unconstrained = Engine(models).run(comd_app, MaxPerformancePolicy())
        assert out.makespan_s >= unconstrained.makespan_s - 1e-9


class TestOrderingOfStrategies:
    """The paper's global ordering: LP bound <= Conductor <= Static
    (Conductor may tie or slightly beat Static on balanced apps)."""

    def test_comd_ordering(self, comd_app, comd_trace, comd_lp, models):
        engine = Engine(models)
        t_static = engine.run(
            comd_app, StaticPolicy(models, JOB_CAP)
        ).makespan_s
        assert comd_lp.makespan_s <= t_static * (1 + 1e-9)

    def test_bt_imbalance_exploited(self, models):
        """BT's zone imbalance: the LP beats Static by a large factor at a
        low cap — the headline mechanism of the paper."""
        app = make_bt(WorkloadSpec(n_ranks=N_RANKS, iterations=4, seed=5))
        trace = trace_application(app, models)
        lp = solve_fixed_order_lp(trace, JOB_CAP)
        assert lp.feasible
        t_static = Engine(models).run(
            app, StaticPolicy(models, JOB_CAP)
        ).makespan_s
        assert t_static / lp.makespan_s > 1.25

    def test_conductor_between_lp_and_static_on_imbalanced(self, models):
        app = make_bt(WorkloadSpec(n_ranks=N_RANKS, iterations=16, seed=5))
        trace_app = make_bt(WorkloadSpec(n_ranks=N_RANKS, iterations=4, seed=5))
        trace = trace_application(trace_app, models)
        lp = solve_fixed_order_lp(trace, JOB_CAP)
        engine = Engine(models)
        t_static = engine.run(app, StaticPolicy(models, JOB_CAP)).makespan_s
        cond = ConductorPolicy(
            models, JOB_CAP, app,
            config=ConductorConfig(realloc_period=2, step_w=4.0,
                                   measurement_noise=0.005),
        )
        res = engine.run(app, cond)
        start = min(r.start_s for r in res.records if r.iteration >= 10)
        t_cond_tail = (res.makespan_s - start) / 6
        t_static_per_iter = t_static / 16
        lp_per_iter = lp.makespan_s / 4
        assert lp_per_iter <= t_cond_tail * (1 + 1e-9)
        assert t_cond_tail < t_static_per_iter


class TestCrossFormulationConsistency:
    def test_lp_and_flow_agree_on_exchange(self):
        from repro.core import solve_flow_ilp
        from repro.workloads import two_rank_exchange

        app = two_rank_exchange(phases=1)
        models = make_power_models(2, efficiency_seed=3, sigma=0.02)
        trace = trace_application(app, models)
        for cap in (50.0, 80.0):
            lp = solve_fixed_order_lp(trace, cap)
            ilp = solve_flow_ilp(trace, cap)
            assert abs(lp.makespan_s - ilp.makespan_s) / ilp.makespan_s < 0.019
