"""Figure 10: potential speedup of LP-derived schedules over Conductor.

Paper claims checked: Conductor trails the LP by up to ~41% (BT), while
CoMD / SP / LULESH stay within a handful of percent; unlike Figure 9 the
gap is not cleanly correlated with the power cap.
"""

from conftest import engage, improvements


def test_fig10_regeneration(benchmark, sweeps):
    def collect():
        return {
            b: improvements(sweeps[b], "lp_vs_conductor_pct") for b in sweeps
        }

    vals = benchmark(collect)
    assert all(vals.values())


def test_fig10_bt_largest_gap(benchmark, sweeps):
    engage(benchmark)
    peaks = {
        b: max(improvements(sweeps[b], "lp_vs_conductor_pct"))
        for b in sweeps
    }
    assert peaks["bt"] == max(peaks.values())
    # Paper headline: current approaches trail the bound by up to 41.1%.
    assert peaks["bt"] > 15.0


def test_fig10_lulesh_conductor_near_optimal(benchmark, sweeps):
    """Paper: Conductor achieves 99% of LP performance on LULESH."""
    engage(benchmark)
    vals = improvements(sweeps["lulesh"], "lp_vs_conductor_pct")
    assert max(vals) < 8.0


def test_fig10_balanced_benchmarks_close(benchmark, sweeps):
    """Paper §6.3: for CoMD, SP and LULESH Conductor lands within a few
    percent of the LP (4.2% in the paper; we allow extra headroom for the
    coarser P-state ladder of the model)."""
    engage(benchmark)
    for bench in ("sp", "lulesh"):
        vals = improvements(sweeps[bench], "lp_vs_conductor_pct")
        assert max(vals) < 12.0


def test_fig10_gap_not_monotone_in_cap(benchmark, sweeps):
    """'Conductor's performance is uncorrelated with power constraints':
    the LP-vs-Conductor series must not be monotone across all benches."""
    engage(benchmark)
    monotone = 0
    for bench in sweeps:
        vals = improvements(sweeps[bench], "lp_vs_conductor_pct")
        decreasing = all(b <= a + 1e-9 for a, b in zip(vals, vals[1:]))
        increasing = all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))
        monotone += decreasing or increasing
    assert monotone < len(sweeps)
