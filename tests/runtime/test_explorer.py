"""Unit tests for the configuration-exploration plan."""

import pytest

from repro.machine import SocketPowerModel
from repro.runtime import ExplorationPlan, exploration_rounds_for_full_coverage


class TestExplorationPlan:
    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            ExplorationPlan(n_ranks=0)

    def test_configs_distinct_across_ranks(self):
        plan = ExplorationPlan(n_ranks=32)
        cfgs = {plan.config_for(r, iteration=0) for r in range(32)}
        assert len(cfgs) == 32  # parallel profiling: one config per rank

    def test_coverage_monotone(self):
        plan = ExplorationPlan(n_ranks=32)
        cov = [plan.coverage_after(i) for i in range(1, 6)]
        assert all(b >= a for a, b in zip(cov, cov[1:]))
        assert cov[0] == pytest.approx(32 / 120)

    def test_full_coverage_rounds(self):
        # 120 configs / 32 ranks -> 120/gcd... round-robin covers in
        # ceil-ish rounds; the helper must agree with coverage_after.
        rounds = exploration_rounds_for_full_coverage(32)
        plan = ExplorationPlan(n_ranks=32)
        assert plan.coverage_after(rounds) == pytest.approx(1.0)
        assert plan.coverage_after(rounds - 1) < 1.0

    def test_many_ranks_single_round(self):
        assert exploration_rounds_for_full_coverage(200) == 1

    def test_profile_partial_frontier(self, kernel):
        plan = ExplorationPlan(n_ranks=8)
        pm = SocketPowerModel()
        pareto1, convex1 = plan.profile(kernel, pm, iterations=1)
        pareto5, convex5 = plan.profile(kernel, pm, iterations=5)
        assert len(pareto5) >= len(pareto1)
        # Convex frontier of a subset is a valid frontier (sorted, convex).
        powers = [p.power_w for p in convex5]
        assert powers == sorted(powers)
