#!/usr/bin/env python
"""Quickstart: bound the power-constrained performance of one application.

This walks the paper's whole pipeline on a small CoMD-like run:

1. generate a hybrid MPI + OpenMP workload (one multithreaded process per
   socket);
2. trace it into a task DAG and profile every task across the (frequency,
   threads) configuration space;
3. solve the fixed-vertex-order LP for the theoretical best schedule under
   a job-level power cap;
4. round the schedule to real configurations and *replay* it on the
   simulator, verifying the instantaneous power constraint;
5. compare against the Static baseline (uniform RAPL caps).

Run:  python examples/quickstart.py
"""

from repro import (
    Engine,
    StaticPolicy,
    WorkloadSpec,
    make_comd,
    make_power_models,
    replay_schedule,
    round_schedule,
    solve_fixed_order_lp,
    trace_application,
)

N_RANKS = 8            # sockets (one MPI process each, 8 OpenMP threads max)
CAP_PER_SOCKET_W = 32  # the job gets 32 W per socket on average
JOB_CAP_W = N_RANKS * CAP_PER_SOCKET_W


def main() -> None:
    # 1. Workload + machine: CoMD proxy on 8 sockets with manufacturing
    #    variability (some sockets are leakier than others).
    app = make_comd(WorkloadSpec(n_ranks=N_RANKS, iterations=4, seed=7))
    sockets = make_power_models(N_RANKS, efficiency_seed=42)
    print(f"workload: {app.name}, {app.n_ranks} ranks, {app.n_tasks()} tasks")

    # 2. Trace: build the application DAG and per-task Pareto frontiers.
    trace = trace_application(app, sockets)
    print(f"trace:    {trace.describe()}")

    # 3. The LP upper bound on performance under the cap.
    lp = solve_fixed_order_lp(trace, JOB_CAP_W)
    if not lp.feasible:
        raise SystemExit(f"no schedule fits under {JOB_CAP_W} W")
    print(f"LP bound: {lp.makespan_s:.3f} s under {JOB_CAP_W} W "
          f"({lp.schedule.solver_info['n_vars']} vars, "
          f"{lp.schedule.solver_info['n_constraints']} constraints)")

    # 4. Realize and verify the schedule (paper §6.1's replay validation).
    discrete = round_schedule(trace, lp.schedule, mode="floor")
    outcome = replay_schedule(app, discrete.config_map(), sockets, JOB_CAP_W)
    print(f"replayed: {outcome.makespan_s:.3f} s, peak power "
          f"{outcome.peak_power_w:.1f} W, cap respected: "
          f"{outcome.cap_respected}")

    # 5. The Static baseline: uniform per-socket caps, 8 threads, RAPL.
    static = Engine(sockets).run(app, StaticPolicy(sockets, JOB_CAP_W))
    gain = (static.makespan_s / lp.makespan_s - 1) * 100
    print(f"Static:   {static.makespan_s:.3f} s -> the LP shows "
          f"{gain:.1f}% potential improvement")


if __name__ == "__main__":
    main()
