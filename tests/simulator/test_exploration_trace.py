"""Tests for measurement-based tracing (exploration runs -> frontiers)."""

import pytest

from repro.core import solve_fixed_order_lp
from repro.experiments import make_power_models
from repro.simulator import (
    RotatingExplorationPolicy,
    TaskRef,
    trace_application,
    trace_from_exploration,
)
from repro.workloads import imbalanced_collective_app

N_RANKS = 4
CAP = N_RANKS * 30.0


@pytest.fixture(scope="module")
def setup():
    app = imbalanced_collective_app(n_ranks=N_RANKS, iterations=2, spread=1.4)
    models = make_power_models(N_RANKS, 11)
    return app, models


class TestRotatingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RotatingExplorationPolicy(-1)

    def test_rounds_cover_distinct_configs(self, kernel):
        seen = {
            RotatingExplorationPolicy(r).configure(TaskRef(0, 0), kernel, 0, None)
            for r in range(120)
        }
        assert len(seen) == 120  # full coverage in n_configs rounds

    def test_tasks_sample_different_points_per_round(self, kernel):
        policy = RotatingExplorationPolicy(0)
        cfgs = {
            policy.configure(TaskRef(r, s), kernel, 0, None)
            for r in range(4)
            for s in range(4)
        }
        assert len(cfgs) > 8


class TestTraceFromExploration:
    def test_structure_matches_oracle(self, setup):
        app, models = setup
        measured = trace_from_exploration(app, models, rounds=4)
        oracle = trace_application(app, models)
        assert measured.graph.n_edges == oracle.graph.n_edges
        assert set(measured.task_edges) == set(oracle.task_edges)

    def test_measured_points_subset_of_oracle(self, setup):
        """Every observed point must agree with the oracle model (the
        engine *is* the model) — measurement adds sparsity, not bias."""
        app, models = setup
        measured = trace_from_exploration(app, models, rounds=8)
        for eid, front in measured.pareto.items():
            # Measured Pareto points that survive must exist in the oracle
            # *full space*; check via duration/power consistency instead:
            for p in front:
                from repro.machine import TaskTimeModel

                tm = TaskTimeModel()
                e = measured.graph.edges[eid]
                expected = tm.duration(
                    e.kernel, p.config.freq_ghz, p.config.threads,
                    p.config.duty,
                )
                assert p.duration_s == pytest.approx(expected)

    def test_bound_tightens_with_rounds(self, setup):
        app, models = setup
        bounds = []
        for rounds in (4, 12, 40):
            trace = trace_from_exploration(app, models, rounds=rounds)
            res = solve_fixed_order_lp(trace, CAP)
            bounds.append(res.makespan_s if res.feasible else float("inf"))
        assert bounds[0] >= bounds[1] >= bounds[2]

    def test_full_coverage_matches_oracle(self, setup):
        app, models = setup
        measured = trace_from_exploration(app, models, rounds=120)
        oracle = trace_application(app, models)
        t_m = solve_fixed_order_lp(measured, CAP).makespan_s
        t_o = solve_fixed_order_lp(oracle, CAP).makespan_s
        assert t_m == pytest.approx(t_o, rel=1e-6)

    def test_measured_bound_never_beats_oracle(self, setup):
        """Sparse frontiers are subsets: the measured LP can only be more
        constrained than the oracle LP."""
        app, models = setup
        oracle_t = solve_fixed_order_lp(
            trace_application(app, models), CAP
        ).makespan_s
        for rounds in (4, 16):
            trace = trace_from_exploration(app, models, rounds=rounds)
            res = solve_fixed_order_lp(trace, CAP)
            if res.feasible:
                assert res.makespan_s >= oracle_t - 1e-9

    def test_validation(self, setup):
        app, models = setup
        with pytest.raises(ValueError):
            trace_from_exploration(app, models, rounds=0)
        with pytest.raises(ValueError):
            trace_from_exploration(app, models[:2], rounds=1)
