"""Interconnect model: InfiniBand-QDR-like latency/bandwidth timing.

The paper weighs DAG message edges "by a linear function of message size";
we use the standard alpha-beta model ``t = latency + size / bandwidth`` for
point-to-point traffic, and logarithmic-tree alpha-beta costs for
collectives (recursive-doubling allreduce, binomial-tree barrier) — the
algorithms production MPI libraries use at these message sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NetworkModel", "IB_QDR"]


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta network cost model.

    Attributes
    ----------
    latency_s:
        Per-message injection-to-delivery latency (alpha).
    bandwidth_Bps:
        Link bandwidth in bytes/second (1/beta).
    """

    latency_s: float = 1.3e-6
    bandwidth_Bps: float = 3.2e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency_s}")
        if self.bandwidth_Bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_Bps}")

    def message_time(self, size_bytes: int) -> float:
        """Point-to-point wire time for one message."""
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        return self.latency_s + size_bytes / self.bandwidth_Bps

    def collective_time(self, kind: str, n_ranks: int, size_bytes: int = 8) -> float:
        """Completion time of a collective after the last rank arrives.

        Costs per round follow the classic tree algorithms:

        * barrier:    ceil(log2 n) latency rounds
        * bcast:      ceil(log2 n) * (latency + size/bw)
        * allreduce:  2 * ceil(log2 n) * (latency + size/bw)  (reduce+bcast)
        * alltoall:   (n-1) * (latency + size/bw)
        """
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        if n_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(n_ranks))
        per_round = self.latency_s + size_bytes / self.bandwidth_Bps
        if kind == "barrier":
            return rounds * self.latency_s
        if kind == "bcast" or kind == "reduce":
            return rounds * per_round
        if kind == "allreduce":
            return 2 * rounds * per_round
        if kind == "alltoall":
            return (n_ranks - 1) * per_round
        raise ValueError(f"unknown collective kind {kind!r}")


#: Default interconnect — Cab's InfiniBand QDR fabric.
IB_QDR = NetworkModel()
