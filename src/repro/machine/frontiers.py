"""Shared frontier store: one profile cache per machine.

Profiling a task — evaluating the machine models at every configuration
and reducing the scatter to Pareto/convex frontiers — is a pure function
of (kernel, socket power model).  Before this module, six call sites
(the tracer, the exploration tracer, Conductor, Adagio, selection-only,
and the exploration planner) each kept a private ``dict`` cache of the
same computation.  :class:`FrontierStore` is the one shared cache: build
it once per machine (per list of per-rank power models) and hand it to
every consumer, so a kernel profiled by the tracer is never re-measured
by a runtime policy running on the same machine.

Measurement noise is supported for the tracing path: perturbations are
drawn per (kernel, socket) on first touch, in call order, from the rng
the caller provides — matching an exploration pass that profiles each
distinct task shape once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .configuration import ConfigPoint, measure_task_space
from .device import NodeSpec, measure_device_task_space
from .pareto import convex_frontier, pareto_frontier
from .performance import TaskKernel
from .power import SocketPowerModel

__all__ = ["FrontierProfile", "FrontierStore", "NodeFrontierStore"]


@dataclass(frozen=True)
class FrontierProfile:
    """One task shape's measured configuration space and its reductions."""

    points: list[ConfigPoint]  #: full configuration scatter (Figure 1)
    pareto: list[ConfigPoint]  #: Pareto-efficient subset (discrete MILP)
    convex: list[ConfigPoint]  #: lower convex hull (the LP's C_i)


class FrontierStore:
    """Memoized per-(kernel, power model) configuration profiles.

    Parameters
    ----------
    power_models:
        One :class:`SocketPowerModel` per rank.  Noiseless profiles are
        keyed on the *model* — ranks sharing identical silicon share one
        entry — while noisy profiles stay keyed per rank so the draw
        sequence matches a per-rank profiling pass exactly.
    measurement_noise:
        Multiplicative lognormal sigma applied to every measured
        (duration, power) — 0.0 for the oracle path.
    rng:
        Source of the noise draws; defaults to a fresh seed-0 generator.
        Pass the tracing seed's generator to reproduce traced noise.
    """

    def __init__(
        self,
        power_models: list[SocketPowerModel],
        measurement_noise: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if measurement_noise < 0:
            raise ValueError("measurement_noise must be >= 0")
        if not power_models:
            raise ValueError("need at least one power model")
        self.power_models = list(power_models)
        self.measurement_noise = float(measurement_noise)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._canon = self._canonical_ranks()
        self._profiles: dict[tuple[TaskKernel, int], FrontierProfile] = {}

    def _canonical_ranks(self) -> list[int]:
        """Map each rank to the first rank carrying an equal power model.

        Only the noiseless store deduplicates: noisy entries must stay
        per-rank so noise draws line up with a per-rank profiling order.
        """
        if self.measurement_noise > 0:
            return list(range(len(self.power_models)))
        canon: list[int] = []
        for r, pm in enumerate(self.power_models):
            match = r
            for r2 in range(r):
                other = self.power_models[r2]
                if other is pm or (
                    other.spec == pm.spec
                    and other.params == pm.params
                    and other.efficiency == pm.efficiency
                ):
                    match = r2
                    break
            canon.append(match)
        return canon

    # ------------------------------------------------------------------
    def profile(self, rank: int, kernel: TaskKernel) -> FrontierProfile:
        """The (points, pareto, convex) profile of a kernel on a rank's socket."""
        key = (kernel, self._canon[rank])
        prof = self._profiles.get(key)
        if prof is None:
            points = measure_task_space(kernel, self.power_models[key[1]])
            if self.measurement_noise > 0:
                sigma = self.measurement_noise
                noisy = []
                for p in points:
                    td = self._rng.lognormal(0.0, sigma)
                    tp = self._rng.lognormal(0.0, sigma)
                    noisy.append(
                        ConfigPoint(p.config, p.duration_s * td, p.power_w * tp)
                    )
                points = noisy
            pareto, convex = self.reduce(points)
            prof = FrontierProfile(points=points, pareto=pareto, convex=convex)
            self._profiles[key] = prof
        return prof

    def points(self, rank: int, kernel: TaskKernel) -> list[ConfigPoint]:
        return self.profile(rank, kernel).points

    def pareto(self, rank: int, kernel: TaskKernel) -> list[ConfigPoint]:
        return self.profile(rank, kernel).pareto

    def convex(self, rank: int, kernel: TaskKernel) -> list[ConfigPoint]:
        return self.profile(rank, kernel).convex

    @staticmethod
    def reduce(
        points: list[ConfigPoint],
    ) -> tuple[list[ConfigPoint], list[ConfigPoint]]:
        """(pareto, convex) frontiers of an arbitrary observation set.

        The shared reduction for measurement-based paths that assemble
        their own point sets (partial exploration, executed-run traces).
        """
        return pareto_frontier(points), convex_frontier(points)

    def __len__(self) -> int:
        return len(self._profiles)


class NodeFrontierStore:
    """Per-device frontier store for heterogeneous nodes.

    The node-level profile of a (rank, kernel) pair is the union of the
    kernel's measured operating-point scatters across every device of that
    rank's node that supports the kernel, reduced by the same
    Pareto/convex pipeline as the homogeneous store.  The API is
    duck-compatible with :class:`FrontierStore` (``profile`` / ``points``
    / ``pareto`` / ``convex`` / ``reduce``), so the tracer, the LP, and
    every runtime policy consume either store unchanged.

    On a one-device node built by
    :func:`repro.machine.device.single_socket_node` the measured points,
    their order, and both reductions are exactly the legacy
    :class:`FrontierStore` output: the device delegates to the same
    analytic models and tags its configurations with the reserved legacy
    device id.

    Noise draws follow the same discipline as :class:`FrontierStore`:
    per (kernel, node) on first touch, in call order, duration then power
    per point, with devices visited in node order.
    """

    def __init__(
        self,
        nodes: list[NodeSpec],
        measurement_noise: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if measurement_noise < 0:
            raise ValueError("measurement_noise must be >= 0")
        if not nodes:
            raise ValueError("need at least one node")
        self.nodes = list(nodes)
        self.measurement_noise = float(measurement_noise)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._canon = self._canonical_ranks()
        self._profiles: dict[tuple[TaskKernel, int], FrontierProfile] = {}

    def _canonical_ranks(self) -> list[int]:
        """Map each rank to the first rank with an equal node (noiseless only)."""
        if self.measurement_noise > 0:
            return list(range(len(self.nodes)))
        canon: list[int] = []
        for r, node in enumerate(self.nodes):
            match = r
            for r2 in range(r):
                if self.nodes[r2] is node or self.nodes[r2] == node:
                    match = r2
                    break
            canon.append(match)
        return canon

    # ------------------------------------------------------------------
    def profile(self, rank: int, kernel: TaskKernel) -> FrontierProfile:
        """The merged (points, pareto, convex) profile on a rank's node."""
        key = (kernel, self._canon[rank])
        prof = self._profiles.get(key)
        if prof is None:
            node = self.nodes[key[1]]
            points: list[ConfigPoint] = []
            for dev in node.devices:
                if dev.supports(kernel):
                    points.extend(measure_device_task_space(kernel, dev))
            if not points:
                raise ValueError(
                    f"no device on node {node.name!r} supports kernel "
                    f"{kernel.name or kernel!r}"
                )
            if self.measurement_noise > 0:
                sigma = self.measurement_noise
                noisy = []
                for p in points:
                    td = self._rng.lognormal(0.0, sigma)
                    tp = self._rng.lognormal(0.0, sigma)
                    noisy.append(
                        ConfigPoint(p.config, p.duration_s * td, p.power_w * tp)
                    )
                points = noisy
            pareto, convex = FrontierStore.reduce(points)
            prof = FrontierProfile(points=points, pareto=pareto, convex=convex)
            self._profiles[key] = prof
        return prof

    def points(self, rank: int, kernel: TaskKernel) -> list[ConfigPoint]:
        return self.profile(rank, kernel).points

    def pareto(self, rank: int, kernel: TaskKernel) -> list[ConfigPoint]:
        return self.profile(rank, kernel).pareto

    def convex(self, rank: int, kernel: TaskKernel) -> list[ConfigPoint]:
        return self.profile(rank, kernel).convex

    reduce = staticmethod(FrontierStore.reduce)

    def __len__(self) -> int:
        return len(self._profiles)
