"""Unit tests for the discrete-event engine."""

import pytest

from repro.machine import Configuration, XEON_E5_2670
from repro.simulator import (
    Application,
    CollectiveOp,
    ComputeOp,
    Engine,
    IrecvOp,
        MaxPerformancePolicy,
    PcontrolOp,
    RecvOp,
    SendOp,
    WaitOp,
)

from .. import conftest


class FixedPolicy:
    """Always the same configuration; configurable hooks for tests."""

    def __init__(self, config=Configuration(2.6, 8), switch_cost=0.0,
                 pcontrol_cost=0.0):
        self.config = config
        self._switch = switch_cost
        self._pcontrol = pcontrol_cost
        self.pcontrol_calls = []

    def configure(self, ref, kernel, iteration, current):
        return self.config

    def on_pcontrol(self, iteration, records):
        self.pcontrol_calls.append((iteration, len(records)))
        return self._pcontrol

    def switch_cost_s(self) -> float:
        return self._switch


class TestBasicExecution:
    def test_single_rank_compute(self, kernel, two_rank_models, time_model):
        app = Application("t", [[ComputeOp(kernel)], [ComputeOp(kernel)]])
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, FixedPolicy())
        expected = time_model.duration(kernel, 2.6, 8)
        assert res.makespan_s == pytest.approx(expected)
        assert len(res.records) == 2

    def test_rank_count_mismatch(self, kernel, two_rank_models):
        app = Application("t", [[ComputeOp(kernel)]])
        with pytest.raises(ValueError, match="power models"):
            Engine(two_rank_models).run(app, FixedPolicy())

    def test_records_carry_power_from_socket(self, kernel, two_rank_models):
        app = Application("t", [[ComputeOp(kernel)], [ComputeOp(kernel)]])
        res = Engine(two_rank_models).run(app, FixedPolicy())
        by_rank = res.records_by_rank()
        p0 = by_rank[0][0].power_w
        p1 = by_rank[1][0].power_w
        assert p1 == pytest.approx(p0 * 1.05)  # socket 1 is 5% leakier


class TestMessaging:
    def test_blocking_recv_waits_for_send(self, kernel, two_rank_models,
                                          time_model):
        heavy = kernel.scaled(3.0)
        app = Application(
            "t",
            [
                [ComputeOp(heavy), SendOp(dst=1, size_bytes=1 << 20)],
                [RecvOp(src=0), ComputeOp(kernel)],
            ],
        )
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, FixedPolicy())
        t_heavy = time_model.duration(heavy, 2.6, 8)
        msg = engine.network.message_time(1 << 20)
        t_light = time_model.duration(kernel, 2.6, 8)
        assert res.makespan_s == pytest.approx(t_heavy + msg + t_light)

    def test_eager_send_does_not_block(self, kernel, two_rank_models,
                                       time_model):
        app = Application(
            "t",
            [
                [SendOp(dst=1, size_bytes=8), ComputeOp(kernel)],
                [ComputeOp(kernel.scaled(5.0)), RecvOp(src=0)],
            ],
        )
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, FixedPolicy())
        # Rank 0 finishes its compute long before rank 1 receives.
        assert res.makespan_s == pytest.approx(
            time_model.duration(kernel.scaled(5.0), 2.6, 8),
            rel=1e-3,
        )

    def test_fifo_matching_per_channel(self, kernel, two_rank_models):
        app = Application(
            "t",
            [
                [
                    SendOp(dst=1, size_bytes=1024, tag=0),
                    SendOp(dst=1, size_bytes=1 << 22, tag=0),
                    ComputeOp(kernel),
                ],
                [RecvOp(src=0, tag=0), ComputeOp(kernel), RecvOp(src=0, tag=0)],
            ],
        )
        res = Engine(two_rank_models).run(app, FixedPolicy())
        assert res.makespan_s > 0  # completes without deadlock

    def test_isend_wait_semantics(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        assert len(res.records) == 4

    def test_irecv_wait_blocks_until_arrival(self, kernel, two_rank_models,
                                             time_model):
        heavy = kernel.scaled(4.0)
        app = Application(
            "t",
            [
                [ComputeOp(heavy), SendOp(dst=1, size_bytes=8)],
                [IrecvOp(src=0, request=1), WaitOp(1), ComputeOp(kernel)],
            ],
        )
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, FixedPolicy())
        assert res.makespan_s >= time_model.duration(heavy, 2.6, 8)

    def test_deadlock_detected(self, kernel, two_rank_models):
        app = Application(
            "t",
            [[RecvOp(src=1), ComputeOp(kernel)],
             [RecvOp(src=0), ComputeOp(kernel)]],
        )
        with pytest.raises(RuntimeError, match="deadlock"):
            Engine(two_rank_models).run(app, FixedPolicy())


class TestCollectives:
    def test_collective_synchronizes(self, kernel, two_rank_models, time_model):
        heavy = kernel.scaled(2.0)
        app = Application(
            "t",
            [
                [ComputeOp(kernel), CollectiveOp("allreduce", 8), ComputeOp(kernel)],
                [ComputeOp(heavy), CollectiveOp("allreduce", 8), ComputeOp(kernel)],
            ],
        )
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, FixedPolicy())
        t_heavy = time_model.duration(heavy, 2.6, 8)
        t_light = time_model.duration(kernel, 2.6, 8)
        coll = engine.network.collective_time("allreduce", 2, 8)
        assert res.makespan_s == pytest.approx(t_heavy + coll + t_light)
        # Post-collective tasks start simultaneously.
        second = [r for r in res.records if r.ref.seq == 1]
        assert second[0].start_s == pytest.approx(second[1].start_s)

    def test_subset_collective_unsupported(self, kernel, two_rank_models):
        app = Application(
            "t",
            [
                [ComputeOp(kernel), CollectiveOp(participants=(0,))],
                [ComputeOp(kernel), CollectiveOp(participants=(0,))],
            ],
        )
        with pytest.raises(NotImplementedError):
            Engine(two_rank_models).run(app, FixedPolicy())

    def test_mismatched_collectives_rejected(self, kernel, two_rank_models):
        app = Application(
            "t",
            [[ComputeOp(kernel), CollectiveOp()],
             [ComputeOp(kernel), PcontrolOp(0)]],
        )
        with pytest.raises(RuntimeError, match="mismatch"):
            Engine(two_rank_models).run(app, FixedPolicy())


class TestPolicyHooks:
    def test_pcontrol_hook_sees_iteration_records(self, kernel, two_rank_models):
        app = Application(
            "t",
            [
                [ComputeOp(kernel, 0), PcontrolOp(0), ComputeOp(kernel, 1),
                 PcontrolOp(1)],
                [ComputeOp(kernel, 0), PcontrolOp(0), ComputeOp(kernel, 1),
                 PcontrolOp(1)],
            ],
        )
        policy = FixedPolicy()
        Engine(two_rank_models).run(app, policy)
        assert policy.pcontrol_calls == [(0, 2), (1, 2)]

    def test_pcontrol_overhead_charged(self, kernel, two_rank_models):
        app = Application(
            "t",
            [[ComputeOp(kernel, 0), PcontrolOp(0)],
             [ComputeOp(kernel, 0), PcontrolOp(0)]],
        )
        base = Engine(two_rank_models).run(app, FixedPolicy())
        slow = Engine(two_rank_models).run(
            app, FixedPolicy(pcontrol_cost=566e-6)
        )
        assert slow.makespan_s == pytest.approx(base.makespan_s + 566e-6)
        assert slow.pcontrol_overhead_s == pytest.approx(566e-6)

    def test_switch_cost_on_config_change(self, kernel, two_rank_models):
        class Alternator(FixedPolicy):
            def configure(self, ref, kernel, iteration, current):
                return (
                    Configuration(2.6, 8)
                    if ref.seq % 2 == 0
                    else Configuration(1.2, 8)
                )

        app = Application(
            "t",
            [[ComputeOp(kernel), ComputeOp(kernel), ComputeOp(kernel)],
             [ComputeOp(kernel)]],
        )
        res = Engine(two_rank_models).run(app, Alternator(switch_cost=145e-6))
        assert res.dvfs_switch_count == 2  # first task is free

    def test_negative_pcontrol_overhead_rejected(self, kernel, two_rank_models):
        app = Application(
            "t",
            [[ComputeOp(kernel, 0), PcontrolOp(0)],
             [ComputeOp(kernel, 0), PcontrolOp(0)]],
        )
        with pytest.raises(ValueError):
            Engine(two_rank_models).run(app, FixedPolicy(pcontrol_cost=-1.0))


class TestSimulationResult:
    def test_warmup_slicing(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel, iterations=3)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        full = res.makespan_s
        tail = res.makespan_after_warmup(1)
        assert 0 < tail < full
        with pytest.raises(ValueError):
            res.makespan_after_warmup(99)

    def test_iterations_listing(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel, iterations=2)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        assert res.iterations() == [0, 1]
        assert len(res.records_for_iteration(0)) == 4

    def test_energy_positive(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel)
        res = Engine(two_rank_models).run(app, FixedPolicy())
        assert res.total_energy_j() > 0

    def test_max_performance_policy(self, memory_kernel, two_rank_models):
        app = Application(
            "t", [[ComputeOp(memory_kernel)], [ComputeOp(memory_kernel)]]
        )
        res = Engine(two_rank_models).run(
            app, MaxPerformancePolicy(XEON_E5_2670)
        )
        # Contended kernel: best thread count is 5, not 8.
        assert all(r.config.threads == 5 for r in res.records)
        assert all(r.config.freq_ghz == 2.6 for r in res.records)
