"""Content-addressed cache keys: canonical serialization + SHA-256.

A cache key is the SHA-256 digest of a canonical JSON document describing
*everything the solver's answer depends on*: the traced DAG with its
per-task frontiers, the formulation and its parameters, the power cap,
and (where relevant) the machine configuration.  Two runs — in different
processes, on different days — that would pose the same model therefore
hash to the same key, and *any* change to any model input changes it.

Canonical form: JSON with sorted keys, no whitespace, and floats rendered
by Python's shortest-round-trip ``repr`` (via ``json``), which is
deterministic and exact for identical binary values.  Nothing here may
depend on ``PYTHONHASHSEED`` (no iteration over unordered sets/dicts
without sorting).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from ..core.model import MODEL_LAYER_VERSION
from ..machine.configuration import ConfigPoint
from ..machine.performance import TaskKernel
from ..machine.power import SocketPowerModel
from ..simulator.trace import Trace

__all__ = [
    "KEY_VERSION",
    "canonical_json",
    "digest",
    "trace_fingerprint",
    "machine_fingerprint",
    "solver_key",
    "fixed_order_lp_key",
    "energy_lp_key",
    "experiment_key",
    "scenario_cell_key",
]

#: Bump to invalidate every existing key when the canonical documents or
#: the semantics of a cached payload change.
KEY_VERSION = 1


def canonical_json(doc: Any) -> str:
    """Serialize a document to its canonical (sorted, compact) JSON form."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def digest(doc: Any) -> str:
    """SHA-256 hex digest of a document's canonical JSON form."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
def _kernel_doc(kernel: TaskKernel | None) -> list | None:
    if kernel is None:
        return None
    return [
        kernel.cpu_seconds,
        kernel.mem_seconds,
        kernel.parallel_fraction,
        kernel.mem_parallel_fraction,
        kernel.bw_saturation_threads,
        kernel.contention_threshold,
        kernel.contention_penalty,
        kernel.activity,
        kernel.mem_intensity,
    ]


def _frontier_doc(points: list[ConfigPoint]) -> list[list]:
    # The device id is part of every point: operating points that agree
    # numerically but live on different devices (heterogeneous nodes) must
    # never share a fingerprint, or a cached solution from one machine
    # shape could be served against another.
    return [
        [
            p.config.freq_ghz,
            p.config.threads,
            p.config.duty,
            p.config.device,
            p.duration_s,
            p.power_w,
        ]
        for p in points
    ]


def trace_fingerprint(trace: Trace) -> str:
    """Digest of a traced application: DAG structure + task measurements.

    Covers the graph (vertices, edges, message durations, kernels), the
    TaskRef-to-edge correspondence, and both frontier families (convex
    frontiers feed the LP; the full Pareto sets feed the discrete MILP).
    The machine configuration enters implicitly: frontier durations and
    powers are the machine models evaluated on each task's owning socket.
    """
    graph = trace.graph
    doc = {
        "app": trace.app.name,
        "n_ranks": graph.n_ranks,
        "vertices": [[v.id, v.kind.value, v.rank] for v in graph.vertices],
        "edges": [
            [
                e.id,
                e.src,
                e.dst,
                e.kind.value,
                e.rank,
                e.duration_s,
                e.size_bytes,
                _kernel_doc(e.kernel),
            ]
            for e in graph.edges
        ],
        "tasks": sorted(
            [ref.rank, ref.seq, edge_id]
            for ref, edge_id in trace.task_edges.items()
        ),
        "frontiers": [
            [edge_id, _frontier_doc(trace.frontiers[edge_id])]
            for edge_id in sorted(trace.frontiers)
        ],
        "pareto": [
            [edge_id, _frontier_doc(trace.pareto[edge_id])]
            for edge_id in sorted(trace.pareto)
        ],
    }
    return digest(doc)


def machine_fingerprint(power_models: list[SocketPowerModel]) -> str:
    """Digest of a machine: per-socket spec, power params, and efficiency."""
    doc = [
        [
            dataclasses.asdict(pm.spec),
            dataclasses.asdict(pm.params),
            pm.efficiency,
        ]
        for pm in power_models
    ]
    return digest(doc)


# ----------------------------------------------------------------------
def solver_key(
    trace: Trace,
    cap_w: float,
    formulation: str = "fixed_order_lp",
    params: dict[str, Any] | None = None,
) -> str:
    """Cache key for one solver invocation on one traced application.

    The model-layer version is part of the key: cached solutions are
    answers of a *compiled model*, so any change to how formulations
    compile from the :class:`~repro.core.model.ProblemInstance` IR
    (a ``MODEL_LAYER_VERSION`` bump) invalidates them wholesale.
    """
    doc = {
        "key_version": KEY_VERSION,
        "model_layer": MODEL_LAYER_VERSION,
        "formulation": formulation,
        "cap_w": float(cap_w),
        "params": dict(sorted((params or {}).items())),
        "trace": trace_fingerprint(trace),
    }
    return digest(doc)


def fixed_order_lp_key(
    trace: Trace,
    cap_w: float,
    power_tiebreak: float = 1e-9,
    time_limit_s: float | None = None,
    discrete: bool = False,
) -> str:
    """The canonical fixed-order-LP solver key.

    Shared by every caller that caches fixed-order solutions — the
    per-cap solver, sweeps, and the parametric re-solver — so a cap
    solved by any of them is a warm hit for all of them.
    """
    return solver_key(
        trace,
        cap_w,
        formulation="fixed_order_lp",
        params={
            "power_tiebreak": power_tiebreak,
            "time_limit_s": time_limit_s,
            "discrete": discrete,
        },
    )


def energy_lp_key(
    trace: Trace,
    slowdown: float = 0.0,
    time_limit_s: float | None = None,
    cap_w: float | None = None,
    deadline_s: float | None = None,
) -> str:
    """The canonical energy-LP solver key.

    ``cap_w`` and ``deadline_s`` are ``None`` for the classic
    fully-provisioned formulation; they ride in ``params`` (JSON ``null``
    is canonical) so capless and capped solves of the same trace can
    never collide, while the positional cap slot stays 0.0 for both.
    """
    return solver_key(
        trace,
        0.0,
        formulation="energy_lp",
        params={
            "slowdown": float(slowdown),
            "time_limit_s": time_limit_s,
            "cap_w": None if cap_w is None else float(cap_w),
            "deadline_s": None if deadline_s is None else float(deadline_s),
        },
    )


def experiment_key(config_doc: dict[str, Any], cap_w: float, **extra: Any) -> str:
    """Cache key for one (experiment config, cap) comparison cell.

    ``config_doc`` should be the full canonical dictionary of the
    experiment configuration (e.g. ``dataclasses.asdict(cfg)``) so that
    any configuration change — seeds, iteration counts, Conductor
    tunables — produces a different key.
    """
    doc = {
        "key_version": KEY_VERSION,
        "model_layer": MODEL_LAYER_VERSION,
        "kind": "comparison",
        "config": config_doc,
        "cap_w": float(cap_w),
        "extra": dict(sorted(extra.items())),
    }
    return digest(doc)


def scenario_cell_key(
    cell_hash: str, cap_w: float, scenario_layer: int, **extra: Any
) -> str:
    """Cache key for one (scenario spec, cap) cell.

    ``cell_hash`` is the spec's cap-grid-independent digest (see
    ``ScenarioSpec.cell_hash``), so a single-cap run and a wider sweep of
    the same scenario share cells; ``scenario_layer`` versions the cell
    *semantics* (payload layout, measurement protocol), so a layer bump
    turns every stale cell into a miss rather than a mis-read.  The
    scenario layer sits above this module, so the hash and version arrive
    as plain arguments.
    """
    doc = {
        "key_version": KEY_VERSION,
        "model_layer": MODEL_LAYER_VERSION,
        "scenario_layer": int(scenario_layer),
        "kind": "scenario-cell",
        "spec": str(cell_hash),
        "cap_w": float(cap_w),
        "extra": dict(sorted(extra.items())),
    }
    return digest(doc)
