"""Unit tests for DAG scheduling analysis."""

import numpy as np
import pytest

from repro.dag import (
    DagBuilder,
    critical_path_edges,
    edge_slack,
    fastest_configurations,
    fastest_durations,
    schedule_fixed_durations,
    unconstrained_schedule,
)
from repro.machine import XEON_E5_2670


@pytest.fixture
def diamond(kernel):
    """Two ranks, imbalanced compute, then a collective."""
    b = DagBuilder(2)
    b.compute(0, kernel)               # light
    b.compute(1, kernel.scaled(2.0))   # heavy -> critical
    b.collective("allreduce", duration_s=0.001)
    b.compute(0, kernel)
    b.compute(1, kernel)
    return b.finalize()


class TestFixedDurationSchedule:
    def test_shape_checks(self, diamond):
        with pytest.raises(ValueError):
            schedule_fixed_durations(diamond, [1.0])
        with pytest.raises(ValueError):
            schedule_fixed_durations(diamond, [-1.0] * diamond.n_edges)

    def test_asap_property(self, diamond):
        d = np.ones(diamond.n_edges)
        s = schedule_fixed_durations(diamond, d)
        for e in diamond.edges:
            assert s.vertex_times[e.dst] >= s.vertex_times[e.src] + d[e.id] - 1e-12
        # Every non-init vertex has at least one tight in-edge.
        for v in diamond.vertices:
            ins = diamond.in_edges(v.id)
            if ins:
                gaps = [
                    s.vertex_times[v.id] - s.vertex_times[e.src] - d[e.id]
                    for e in ins
                ]
                assert min(gaps) == pytest.approx(0.0, abs=1e-9)

    def test_makespan_is_finalize_time(self, diamond):
        s = schedule_fixed_durations(diamond, np.ones(diamond.n_edges))
        assert s.makespan == pytest.approx(s.vertex_times.max())

    def test_task_window(self, diamond):
        s = schedule_fixed_durations(diamond, np.ones(diamond.n_edges))
        e = diamond.compute_edges()[0]
        lo, hi = s.task_window(diamond, e.id)
        assert lo == pytest.approx(s.vertex_times[e.src])
        assert hi == pytest.approx(s.vertex_times[e.dst])


class TestUnconstrainedSchedule:
    def test_durations_are_fastest(self, diamond, time_model):
        d = fastest_durations(diamond, time_model)
        for e in diamond.compute_edges():
            best = time_model.best_duration(e.kernel)
            assert d[e.id] == pytest.approx(best)

    def test_fastest_configurations_at_fmax(self, diamond, time_model):
        configs = fastest_configurations(diamond, time_model)
        assert all(
            c.freq_ghz == XEON_E5_2670.fmax_ghz for c in configs.values()
        )

    def test_heavy_task_on_critical_path(self, diamond, time_model):
        s = unconstrained_schedule(diamond, time_model)
        critical = set(critical_path_edges(diamond, s))
        heavy = max(
            diamond.compute_edges(), key=lambda e: e.kernel.cpu_seconds
        )
        assert heavy.id in critical

    def test_critical_path_connects_init_to_finalize(self, diamond, time_model):
        s = unconstrained_schedule(diamond, time_model)
        path = critical_path_edges(diamond, s)
        assert diamond.edges[path[0]].src == 0  # INIT is vertex 0
        for a, b in zip(path, path[1:]):
            assert diamond.edges[a].dst == diamond.edges[b].src

    def test_critical_path_durations_sum_to_makespan(self, diamond, time_model):
        s = unconstrained_schedule(diamond, time_model)
        path = critical_path_edges(diamond, s)
        total = sum(s.edge_durations[e] for e in path)
        assert total == pytest.approx(s.makespan)


class TestSlack:
    def test_critical_edges_have_zero_slack(self, diamond, time_model):
        s = unconstrained_schedule(diamond, time_model)
        slack = edge_slack(diamond, s)
        for e in critical_path_edges(diamond, s):
            assert slack[e] == pytest.approx(0.0, abs=1e-9)

    def test_light_task_has_slack(self, diamond, time_model):
        s = unconstrained_schedule(diamond, time_model)
        slack = edge_slack(diamond, s)
        light = min(
            diamond.compute_edges(), key=lambda e: e.kernel.cpu_seconds
        )
        heavy = max(
            diamond.compute_edges(), key=lambda e: e.kernel.cpu_seconds
        )
        # The light first-phase task idles while the heavy one finishes.
        if light.dst == heavy.dst:
            assert slack[light.id] > 0

    def test_slack_nonnegative(self, diamond, time_model):
        s = unconstrained_schedule(diamond, time_model)
        assert (edge_slack(diamond, s) >= 0).all()
