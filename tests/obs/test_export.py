"""Chrome trace export: structure, determinism, and the schema validator."""

from __future__ import annotations

import json

from repro.obs.events import (
    CapExceededEvent,
    CounterEvent,
    ReallocEvent,
    SolveEvent,
    TaskEvent,
)
from repro.obs.export import (
    COUNTER_TID,
    RAPL_TID,
    RUNTIME_TID,
    SOLVER_TID,
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    validate_chrome_trace,
    validate_trace_file,
)
from repro.obs.recorder import TraceRecorder


def _sample_recorder() -> TraceRecorder:
    rec = TraceRecorder()
    with rec.run_scope("static demo"):
        for rank in range(2):
            rec.emit(TaskEvent(label="work", rank=rank, iteration=0,
                               ts_s=0.1 * rank, dur_s=0.5, freq_ghz=2.6,
                               threads=8, duty=1.0, power_w=55.0))
        rec.emit(CounterEvent(name="job_power_w", ts_s=0.0,
                              values={"watts": 110.0}))
        rec.emit(CapExceededEvent(cap_w=30.0, power_w=31.0))
    with rec.run_scope("conductor demo"):
        rec.emit(ReallocEvent(ts_s=0.4, iteration=1, job_cap_w=100.0,
                              alloc_before_w=(40.0, 60.0),
                              alloc_after_w=(50.0, 50.0)))
        rec.emit(SolveEvent(program="lp", source="cold",
                            backend="highs-direct", rows=3, cols=4, nnz=8,
                            status="optimal"))
    return rec


class TestChromeTrace:
    def test_runs_become_processes_and_ranks_become_threads(self):
        doc = chrome_trace(_sample_recorder().snapshot())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        procs = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert procs == {"static demo", "conductor demo"}
        threads = {(e["pid"], e["args"]["name"])
                   for e in meta if e["name"] == "thread_name"}
        assert (1, "rank 0") in threads and (1, "rank 1") in threads

    def test_special_tracks_get_reserved_tids(self):
        events = [e for e in chrome_trace(_sample_recorder().snapshot())
                  ["traceEvents"] if e["ph"] != "M"]
        tids = {e.get("cat", e["name"]): e["tid"] for e in events}
        assert tids["realloc"] == RUNTIME_TID
        assert tids["solve"] == SOLVER_TID
        assert tids["cap_exceeded"] == RAPL_TID
        assert tids["job_power_w"] == COUNTER_TID

    def test_task_spans_are_complete_events_in_microseconds(self):
        doc = chrome_trace(_sample_recorder().snapshot())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        assert spans[0]["dur"] == 500000.0  # 0.5 s

    def test_output_passes_own_validator(self):
        assert validate_chrome_trace(chrome_trace(_sample_recorder().snapshot())) == []

    def test_unknown_kinds_are_skipped(self):
        doc = chrome_trace([{"kind": "martian", "name": "x", "rank": None,
                             "ts_s": 0.0, "dur_s": None, "args": {},
                             "seq": 0, "run": "r"}])
        assert [e for e in doc["traceEvents"] if e["ph"] != "M"] == []


class TestExportFiles:
    def test_chrome_export_is_byte_deterministic(self, tmp_path):
        events = _sample_recorder().snapshot()
        a = export_chrome_trace(events, tmp_path / "a.json")
        b = export_chrome_trace(events, tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()
        assert validate_trace_file(a) == []

    def test_jsonl_is_one_event_per_line(self, tmp_path):
        events = _sample_recorder().snapshot()
        path = export_jsonl(events, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(events)
        assert json.loads(lines[0])["kind"] == "task"


class TestValidator:
    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def test_missing_required_keys(self):
        errors = validate_chrome_trace({"traceEvents": [{"ph": "X", "ts": 0}]})
        assert errors and "missing keys" in errors[0]

    def test_unknown_phase_type(self):
        event = {"ph": "Z", "ts": 0, "pid": 1, "tid": 1, "name": "x"}
        errors = validate_chrome_trace({"traceEvents": [event]})
        assert errors and "unknown phase" in errors[0]

    def test_backwards_timestamps_on_a_track(self):
        events = [
            {"ph": "i", "ts": 5, "pid": 1, "tid": 1, "name": "a"},
            {"ph": "i", "ts": 3, "pid": 1, "tid": 1, "name": "b"},
            {"ph": "i", "ts": 0, "pid": 1, "tid": 2, "name": "c"},  # new track
        ]
        errors = validate_chrome_trace({"traceEvents": events})
        assert len(errors) == 1 and "goes backwards" in errors[0]

    def test_unreadable_file(self, tmp_path):
        errors = validate_trace_file(tmp_path / "nope.json")
        assert errors and "unreadable trace" in errors[0]
