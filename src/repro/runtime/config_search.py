"""Energy-optimal configuration search (Silva et al., arXiv:1805.00998).

Silva et al. find, per application phase, the single-node (frequency,
thread count) configuration that minimizes energy subject to a bounded
slowdown: measure the whole configuration space once, discard points that
exceed the node's power budget, then take the cheapest point within the
allowed slowdown of the fastest admissible one.  This runtime reproduces
that search against the repo's power/perf models, one search per distinct
kernel per rank (kernels recur every iteration, so the search amortizes
to nothing).

The chosen configuration is history-free — the search depends only on the
kernel and the machine — so the policy also offers the vectorized
``plan_run`` whole-run path, like :class:`~repro.runtime.static.StaticPolicy`.
"""

from __future__ import annotations

from ..machine.configuration import (
    ConfigPoint,
    Configuration,
    enumerate_configurations,
    measure_task,
)
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.performance import TaskKernel, TaskTimeModel
from ..machine.power import SocketPowerModel
from ..simulator.engine import (
    Engine,
    RunPlan,
    TaskRecord,
    plan_from_configs,
    rank_kernel_arrays,
)
from ..simulator.program import Application, TaskRef

__all__ = ["ConfigSearchPolicy", "energy_optimal_point"]


def energy_optimal_point(
    points: list[ConfigPoint],
    power_budget_w: float | None = None,
    max_slowdown: float = 0.1,
) -> ConfigPoint:
    """The min-energy point within a slowdown bound of the fastest.

    Points above ``power_budget_w`` are inadmissible; when *every* point
    is, the least-power point is returned (the budget is unreachable and
    nothing admissible exists to slow down from).  Among admissible
    points, candidates run within ``(1 + max_slowdown)`` of the fastest
    admissible duration, and the cheapest (duration x power) wins, ties
    broken toward the faster point.
    """
    if not points:
        raise ValueError("empty configuration space")
    if max_slowdown < 0:
        raise ValueError(f"max_slowdown must be >= 0, got {max_slowdown}")
    admissible = (
        points
        if power_budget_w is None
        else [p for p in points if p.power_w <= power_budget_w]
    )
    if not admissible:
        return min(points, key=lambda p: (p.power_w, p.duration_s))
    fastest_s = min(p.duration_s for p in admissible)
    budget_s = (1.0 + max_slowdown) * fastest_s
    candidates = [p for p in admissible if p.duration_s <= budget_s]
    return min(candidates, key=lambda p: (p.duration_s * p.power_w, p.duration_s))


class ConfigSearchPolicy:
    """Exhaustive per-kernel (freq, threads) search for minimal energy.

    Parameters
    ----------
    power_models:
        One per rank; each rank searches its own socket's space.
    job_cap_w:
        Total job power budget; each rank's search is bounded by an equal
        share, mirroring the uniform-division baseline.  ``None`` runs the
        search fully provisioned (pure energy minimization).
    max_slowdown:
        Allowed relative slowdown over the fastest admissible
        configuration (Silva et al.'s performance constraint).
    """

    def __init__(
        self,
        power_models: list[SocketPowerModel],
        job_cap_w: float | None,
        spec: CpuSpec = XEON_E5_2670,
        max_slowdown: float = 0.1,
    ) -> None:
        if job_cap_w is not None and job_cap_w <= 0:
            raise ValueError(f"job cap must be positive, got {job_cap_w}")
        if max_slowdown < 0:
            raise ValueError(f"max_slowdown must be >= 0, got {max_slowdown}")
        self.power_models = power_models
        self.spec = spec
        self.max_slowdown = max_slowdown
        self.cap_per_socket_w = (
            None if job_cap_w is None else job_cap_w / len(power_models)
        )
        self._time_models = [TaskTimeModel(pm.spec) for pm in power_models]
        self._configs = [enumerate_configurations(pm.spec) for pm in power_models]
        self._memo: dict[tuple[int, TaskKernel], Configuration] = {}

    def _search(self, rank: int, kernel: TaskKernel) -> Configuration:
        key = (rank, kernel)
        chosen = self._memo.get(key)
        if chosen is None:
            pm = self.power_models[rank]
            tm = self._time_models[rank]
            points = [
                measure_task(kernel, cfg, pm, tm) for cfg in self._configs[rank]
            ]
            chosen = energy_optimal_point(
                points, self.cap_per_socket_w, self.max_slowdown
            ).config
            self._memo[key] = chosen
        return chosen

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """The kernel's searched optimum (memoized, history-free)."""
        return self._search(ref.rank, kernel)

    def plan_run(self, app: Application, engine: Engine) -> RunPlan:
        """Whole-run plan: the search is history-free, so each rank's
        optimum per distinct kernel is found once and batch-applied.
        Bit-identical to the scalar per-task path."""
        per_rank = []
        for rank, ka in enumerate(rank_kernel_arrays(app)):
            per_rank.append([self._search(rank, kernel) for kernel in ka.kernels])
        return plan_from_configs(app, engine, per_rank)

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        return 0.0  # the searched configuration is static

    def switch_cost_s(self) -> float:
        return 0.0  # configurations are pinned before the run starts
