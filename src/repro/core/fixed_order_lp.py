"""The fixed-vertex-order LP (paper Figures 4-6) — the central contribution.

Minimizes application makespan under a job-level power constraint by
choosing, per task, a convex mixture of configurations from the task's
convex Pareto frontier.  Power is constrained at *events* (DAG vertices)
whose order is fixed to a power-unconstrained initial schedule, which
keeps the formulation purely linear — and solvable for realistic traces
(thousands of processes / hundreds of edges per process, per the paper).

Variable layout:

* ``v[k]``   — time of vertex k (eq. 2 pins Init at 0; objective eq. 1
  minimizes the Finalize vertex's time);
* ``c[e,j]`` — fraction of task e run in frontier configuration j
  (eqs. 6-9; durations and powers substitute in via eqs. 7-8).

Constraints:

* precedence (eqs. 3-4): ``v_dst - v_src >= sum_j d_ej c_ej`` per compute
  edge, ``v_dst - v_src >= duration`` per message edge;
* event power (eqs. 10-11): ``sum_{e in R_k} sum_j p_ej c_ej <= PC`` per
  event;
* event order (eqs. 12-13): vertex times follow the initial order, with
  coincident-in-initial-schedule vertices tied equal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dag.graph import VertexKind
from ..exec.timing import span
from ..machine.configuration import ConfigPoint
from ..machine.cpu import XEON_E5_2670
from ..machine.performance import TaskTimeModel
from ..simulator.program import TaskRef
from ..simulator.trace import Trace
from .events import EventStructure, build_event_structure
from .schedule import PowerSchedule, TaskAssignment
from .solver import InfeasibleError, LinearProgram, LpSolution, LpStatus

__all__ = ["FixedOrderLpResult", "solve_fixed_order_lp"]


@dataclass
class FixedOrderLpResult:
    """LP outcome: a continuous schedule (None when infeasible) + solver data."""

    schedule: PowerSchedule | None
    solution: LpSolution
    events: EventStructure

    @property
    def feasible(self) -> bool:
        return self.schedule is not None

    @property
    def makespan_s(self) -> float:
        if self.schedule is None:
            raise InfeasibleError("LP was infeasible; no makespan")
        return self.schedule.objective_s


#: Discrete (binary-configuration) instances beyond this many tasks are
#: rejected — "a significantly less efficient solution method, which
#: prohibits us from solving realistic problems" (paper §3.2).
MAX_DISCRETE_TASKS = 64


def solve_fixed_order_lp(
    trace: Trace,
    cap_w: float,
    events: EventStructure | None = None,
    power_tiebreak: float = 1e-9,
    time_limit_s: float | None = None,
    discrete: bool = False,
) -> FixedOrderLpResult:
    """Solve the fixed-vertex-order LP for a traced application.

    Parameters
    ----------
    trace:
        Traced application (graph + per-task convex frontiers).
    cap_w:
        Job-level power constraint PC (total watts across all sockets).
    events:
        Precomputed event structure; recomputed from the trace when None.
        Passing one in lets a power sweep share the (fixed) event order.
    power_tiebreak:
        Tiny objective weight on total task power that selects the
        minimum-power optimum among equal-makespan solutions; keeps slack
        tasks on the Pareto frontier instead of arbitrary vertices.
        Must stay small enough not to trade makespan for power.
    discrete:
        Solve the paper's *discrete* variant (equation 5: each task runs a
        single configuration for its whole duration) as a mixed-integer
        program over the full Pareto set.  Exact but only tractable for
        small traces — the continuous LP plus rounding is the production
        path (paper §3.2).
    """
    if cap_w <= 0:
        raise ValueError(f"cap must be positive, got {cap_w}")
    graph = trace.graph
    if discrete and len(trace.task_edges) > MAX_DISCRETE_TASKS:
        raise ValueError(
            f"discrete formulation limited to {MAX_DISCRETE_TASKS} tasks "
            f"(got {len(trace.task_edges)}); solve continuously and round"
        )
    with span("assemble"):
        if events is None:
            events = build_event_structure(graph, TaskTimeModel(XEON_E5_2670))

        # The discrete variant selects one configuration outright, so
        # convexity is unnecessary and the (larger) full Pareto set is
        # strictly better.
        frontiers = trace.pareto if discrete else trace.frontiers
        lp, v_idx, c_idx, fin_id = _assemble_lp(
            trace, frontiers, events, cap_w, power_tiebreak, discrete
        )

    with span("solve"):
        solution = lp.solve(time_limit_s=time_limit_s)
    if solution.status is not LpStatus.OPTIMAL:
        return FixedOrderLpResult(schedule=None, solution=solution, events=events)

    schedule = _extract_schedule(
        trace, cap_w, solution, lp, v_idx, c_idx, fin_id,
        frontiers=frontiers, kind="discrete" if discrete else "continuous",
    )
    return FixedOrderLpResult(schedule=schedule, solution=solution, events=events)


def _assemble_lp(
    trace: Trace,
    frontiers: dict[int, list[ConfigPoint]],
    events: EventStructure,
    cap_w: float,
    power_tiebreak: float,
    discrete: bool,
) -> tuple[LinearProgram, list[int], dict[int, list[int]], int]:
    """Build the LP rows/columns (eqs. 1-13); returns variable indexes."""
    graph = trace.graph
    lp = LinearProgram(name=f"fixed-order-{trace.app.name}")

    # Vertex time variables (eq. 2: Init fixed at 0 via bounds).
    init_id = graph.find_vertex(VertexKind.INIT).id
    fin_id = graph.find_vertex(VertexKind.FINALIZE).id
    v_idx: list[int] = []
    for vertex in graph.vertices:
        ub = 0.0 if vertex.id == init_id else np.inf
        v_idx.append(lp.add_var(f"v{vertex.id}", lb=0.0, ub=ub))

    # Configuration fraction variables per compute edge (eqs. 6, 9 — or the
    # binary eq. 5 in the discrete variant).
    c_idx: dict[int, list[int]] = {}
    for edge_id, frontier in frontiers.items():
        if not frontier:
            raise ValueError(f"task edge {edge_id} has an empty frontier")
        cols = [
            lp.add_var(f"c{edge_id}_{j}", lb=0.0, ub=1.0, integer=discrete)
            for j in range(len(frontier))
        ]
        c_idx[edge_id] = cols
        lp.add_eq({col: 1.0 for col in cols}, 1.0, label=f"onehot{edge_id}")

    # Precedence (eqs. 3-4, 7): v_dst - v_src - sum d_ej c_ej >= 0.
    for e in graph.edges:
        if e.is_compute:
            frontier = frontiers[e.id]
            terms = {v_idx[e.dst]: 1.0, v_idx[e.src]: -1.0}
            for col, point in zip(c_idx[e.id], frontier):
                terms[col] = terms.get(col, 0.0) - point.duration_s
            lp.add_ge(terms, 0.0, label=f"prec-task{e.id}")
        else:
            lp.add_ge(
                {v_idx[e.dst]: 1.0, v_idx[e.src]: -1.0},
                e.duration_s,
                label=f"prec-msg{e.id}",
            )

    # Event power (eqs. 8, 10-11): one constraint per event group (tied
    # vertices share identical activity sets by construction, so one row
    # per group representative suffices).  Consecutive groups with the
    # same activity set yield *identical* rows — e.g. the many per-rank
    # wait events inside a halo exchange — so only the first is emitted;
    # this cuts LULESH-scale models by an order of magnitude with no
    # change to the feasible region.
    seen_sets: set[frozenset[int]] = set()
    for group in events.groups:
        rep = group[0]
        act = frozenset(events.active[rep])
        if not act or act in seen_sets:
            continue
        seen_sets.add(act)
        terms: dict[int, float] = {}
        for edge_id in act:
            frontier = frontiers[edge_id]
            for col, point in zip(c_idx[edge_id], frontier):
                terms[col] = terms.get(col, 0.0) + point.power_w
        lp.add_le(terms, cap_w, label=f"power@v{rep}")

    # Event order (eqs. 12-13).
    for group in events.groups:
        rep = group[0]
        for other in group[1:]:
            lp.add_eq(
                {v_idx[other]: 1.0, v_idx[rep]: -1.0}, 0.0, label=f"tie{other}"
            )
    for prev, nxt in zip(events.groups, events.groups[1:]):
        lp.add_ge(
            {v_idx[nxt[0]]: 1.0, v_idx[prev[0]]: -1.0}, 0.0,
            label=f"order{prev[0]}-{nxt[0]}",
        )

    # Objective (eq. 1) plus the minimal-power tiebreak.
    objective: dict[int, float] = {v_idx[fin_id]: 1.0}
    if power_tiebreak > 0:
        for edge_id, cols in c_idx.items():
            for col, point in zip(cols, frontiers[edge_id]):
                objective[col] = objective.get(col, 0.0) + (
                    power_tiebreak * point.power_w
                )
    lp.set_objective(objective)
    return lp, v_idx, c_idx, fin_id


def _extract_schedule(
    trace: Trace,
    cap_w: float,
    solution: LpSolution,
    lp: LinearProgram,
    v_idx: list[int],
    c_idx: dict[int, list[int]],
    fin_id: int,
    frontiers: dict[int, list[ConfigPoint]] | None = None,
    kind: str = "continuous",
    frac_tol: float = 1e-7,
) -> PowerSchedule:
    """Turn the primal vector into a PowerSchedule."""
    if frontiers is None:
        frontiers = trace.frontiers
    x = solution.x
    vertex_times = np.array([x[i] for i in v_idx])
    assignments: dict[TaskRef, TaskAssignment] = {}
    for ref, edge_id in trace.task_edges.items():
        frontier = frontiers[edge_id]
        fracs = np.array([x[c] for c in c_idx[edge_id]])
        fracs = np.clip(fracs, 0.0, 1.0)
        keep = fracs > frac_tol
        if not keep.any():
            keep[int(np.argmax(fracs))] = True
        kept_points: list[ConfigPoint] = [
            p for p, k in zip(frontier, keep) if k
        ]
        kept_fracs = fracs[keep]
        kept_fracs = kept_fracs / kept_fracs.sum()
        duration = float(
            sum(p.duration_s * f for p, f in zip(kept_points, kept_fracs))
        )
        power = float(sum(p.power_w * f for p, f in zip(kept_points, kept_fracs)))
        assignments[ref] = TaskAssignment(
            ref=ref,
            edge_id=edge_id,
            mixture=tuple(zip(kept_points, map(float, kept_fracs))),
            duration_s=duration,
            power_w=power,
        )
    return PowerSchedule(
        kind=kind,
        cap_w=cap_w,
        objective_s=float(x[v_idx[fin_id]]),
        assignments=assignments,
        vertex_times=vertex_times,
        solver_info={
            "n_vars": lp.n_vars,
            "n_constraints": lp.n_constraints,
            "objective_raw": solution.objective,
        },
    )
