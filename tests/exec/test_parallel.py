"""ParallelRunner: ordering, serial fallback, retries, timeouts, telemetry."""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.exec.parallel import (
    CellOutcome,
    ParallelExecutionError,
    ParallelRunner,
    PoolBrokenError,
    resolve_workers,
    retry_delay_s,
)
from repro.exec.timing import Telemetry, count, span, use_telemetry
from repro.obs.audit import SolveAudit, SolveRecord, record_solve, use_audit
from repro.obs.events import CounterEvent
from repro.obs.recorder import TraceRecorder, emit, use_recorder


# Module-level task functions so worker processes can unpickle them.
def _slow_identity(item: int) -> int:
    time.sleep(0.02 * item)
    return item * 10


def _boom(item: int) -> int:
    raise ValueError(f"boom {item}")


def _boom_on_two(item: int) -> int:
    if item == 2:
        raise ValueError("boom 2")
    return item * 10


def _flaky(marker: str) -> str:
    """Fails once per marker path, then succeeds (exercises retries)."""
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError("first attempt always fails")
    return "ok"


def _sleepy(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _flaky_n(marker_and_n: tuple[str, int]) -> str:
    """Fails until the marker directory holds n attempt files."""
    marker, n = marker_and_n
    base = Path(marker)
    base.mkdir(parents=True, exist_ok=True)
    attempt = len(list(base.iterdir()))
    (base / f"a{attempt}").write_text("attempted")
    if attempt < n:
        raise RuntimeError(f"attempt {attempt} fails")
    return "ok"


def _kill_self_once(marker: str) -> str:
    """Kills its own worker process on the first attempt, then succeeds."""
    path = Path(marker)
    if not path.exists():
        path.write_text("dying")
        os._exit(13)  # hard kill: breaks the pool, not just the task
    return "survived"


def _kill_self_always(item: int) -> int:
    os._exit(13)


def _instrumented(item: int) -> int:
    with span("worker.phase"):
        count("worker.count", item)
    return item


def _emits_observability(item: int) -> int:
    emit(CounterEvent(name="w", ts_s=float(item), values={"v": item}))
    record_solve(SolveRecord(
        program=f"p{item}", backend="linprog", source="cold", rows=1, cols=1,
        nnz=1, iterations=1, status="optimal", objective=0.0, wall_s=0.001,
    ))
    return item


class TestResolveWorkers:
    def test_mapping(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestConstruction:
    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            ParallelRunner(max_workers=2, timeout_s=0.0)

    def test_bad_retries(self):
        with pytest.raises(ValueError):
            ParallelRunner(max_workers=2, retries=-1)


class TestSerialFallback:
    def test_one_worker_runs_in_process(self):
        # A closure is unpicklable: success proves no pool was involved.
        runner = ParallelRunner(max_workers=1)
        assert runner.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_single_item_runs_in_process(self):
        runner = ParallelRunner(max_workers=4)
        assert runner.map(lambda x: x + 1, [41]) == [42]

    def test_empty_items(self):
        assert ParallelRunner(max_workers=4).map(_slow_identity, []) == []

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            ParallelRunner(max_workers=1).map(_boom, [7])


class TestParallelMap:
    def test_results_in_submission_order(self):
        runner = ParallelRunner(max_workers=4)
        items = [3, 1, 2, 0, 4]
        assert runner.map(_slow_identity, items) == [30, 10, 20, 0, 40]

    def test_matches_serial(self):
        items = list(range(6))
        serial = ParallelRunner(max_workers=1).map(_slow_identity, items)
        parallel = ParallelRunner(max_workers=3).map(_slow_identity, items)
        assert parallel == serial

    def test_failure_exhausts_retries(self):
        runner = ParallelRunner(max_workers=2, retries=1)
        with pytest.raises(ParallelExecutionError, match="failed on all 2"):
            runner.map(_boom, [1, 2])

    def test_retry_recovers_transient_failure(self, tmp_path):
        runner = ParallelRunner(max_workers=2, retries=1)
        markers = [str(tmp_path / f"m{i}") for i in range(3)]
        assert runner.map(_flaky, markers) == ["ok"] * 3

    def test_no_retries_fails_fast(self, tmp_path):
        runner = ParallelRunner(max_workers=2, retries=0)
        with pytest.raises(ParallelExecutionError, match="1 attempt"):
            runner.map(_flaky, [str(tmp_path / "m0"), str(tmp_path / "m1")])

    def test_timeout_raises_after_attempts(self):
        runner = ParallelRunner(max_workers=2, timeout_s=0.2, retries=0)
        with pytest.raises(ParallelExecutionError, match="timed out"):
            runner.map(_sleepy, [1.5, 1.5])

    def test_generous_timeout_passes(self):
        runner = ParallelRunner(max_workers=2, timeout_s=30.0)
        assert runner.map(_sleepy, [0.01, 0.02]) == [0.01, 0.02]

    def test_worker_telemetry_merges_into_parent(self):
        tel = Telemetry()
        with use_telemetry(tel):
            results = ParallelRunner(max_workers=2).map(_instrumented, [1, 2, 3])
        assert results == [1, 2, 3]
        assert tel.phases["worker.phase"].calls == 3
        assert tel.counter("worker.count") == 6

    def test_no_parent_telemetry_is_fine(self):
        assert ParallelRunner(max_workers=2).map(_instrumented, [1, 2]) == [1, 2]

    def test_worker_traces_merge_in_submission_order(self):
        rec = TraceRecorder()
        audit = SolveAudit()
        with use_recorder(rec), use_audit(audit):
            ParallelRunner(max_workers=2).map(_emits_observability, [2, 0, 1])
        counters = [d for d in rec.snapshot() if d["kind"] == "counter"]
        # Batches fold in submission order, not completion order.
        assert [d["ts_s"] for d in counters] == [2.0, 0.0, 1.0]
        assert [d["seq"] for d in counters] == [0, 1, 2]
        assert [r.program for r in audit.records] == ["p2", "p0", "p1"]

    def test_workers_skip_observability_when_parent_has_none(self):
        # No recorder/audit in the parent: workers must not build them.
        results = ParallelRunner(max_workers=2).map(_emits_observability, [1, 2])
        assert results == [1, 2]


class TestRetryBackoff:
    def test_deterministic(self):
        a = retry_delay_s(7, 3, 2, 0.05)
        assert a == retry_delay_s(7, 3, 2, 0.05)

    def test_varies_by_cell_and_attempt(self):
        delays = {
            retry_delay_s(0, i, a, 0.05) for i in range(4) for a in (1, 2, 3)
        }
        assert len(delays) == 12  # every (cell, attempt) de-synchronizes

    def test_exponential_within_jitter_band(self):
        for attempt in (1, 2, 3):
            exp = min(2.0, 0.1 * 2 ** (attempt - 1))
            d = retry_delay_s(0, 0, attempt, 0.1)
            assert 0.5 * exp <= d < exp

    def test_caps_out(self):
        assert retry_delay_s(0, 0, 20, 0.1) <= 2.0

    def test_zero_base_disables(self):
        assert retry_delay_s(0, 0, 1, 0.0) == 0.0


class TestMapOutcomes:
    def test_all_ok_outcomes(self):
        runner = ParallelRunner(max_workers=2, retries=1, backoff_s=0.0)
        outcomes = runner.map_outcomes(_slow_identity, [0, 1])
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [0, 10]

    def test_failed_cell_reports_attempts_and_type(self):
        runner = ParallelRunner(max_workers=2, retries=1, backoff_s=0.0)
        outcomes = runner.map_outcomes(_boom, [5, 6])
        for i, outcome in enumerate(outcomes):
            assert not outcome.ok
            assert outcome.index == i
            assert outcome.error_type == "ValueError"
            assert outcome.attempts == 2  # first try + one retry
            assert "boom" in outcome.error_message

    def test_flaky_task_succeeds_with_attempt_count(self, tmp_path):
        runner = ParallelRunner(max_workers=2, retries=3, backoff_s=0.0)
        items = [(str(tmp_path / f"m{i}"), 2) for i in range(3)]
        outcomes = runner.map_outcomes(_flaky_n, items)
        assert [o.value for o in outcomes] == ["ok"] * 3
        assert [o.attempts for o in outcomes] == [3, 3, 3]

    def test_serial_matches_parallel(self):
        serial = ParallelRunner(max_workers=1, retries=1, backoff_s=0.0)
        parallel = ParallelRunner(max_workers=3, retries=1, backoff_s=0.0)
        items = [0, 1, 2, 3]
        s = serial.map_outcomes(_slow_identity, items)
        p = parallel.map_outcomes(_slow_identity, items)
        assert [o.value for o in s] == [o.value for o in p]
        assert [o.attempts for o in s] == [o.attempts for o in p]

    def test_on_outcome_fires_in_submission_order(self):
        seen: list[int] = []
        runner = ParallelRunner(max_workers=3)
        runner.map_outcomes(
            _slow_identity, [3, 0, 1], on_outcome=lambda o: seen.append(o.index)
        )
        assert seen == [0, 1, 2]

    def test_serial_on_outcome_and_retries(self, tmp_path):
        seen: list[CellOutcome] = []
        runner = ParallelRunner(max_workers=1, retries=1, backoff_s=0.0)
        outcomes = runner.map_outcomes(
            _flaky, [str(tmp_path / "m0")], on_outcome=seen.append
        )
        assert outcomes[0].ok and outcomes[0].attempts == 2
        assert seen == outcomes

    def test_failure_doc_is_deterministic_fields_only(self):
        outcome = ParallelRunner(max_workers=1, retries=0).map_outcomes(
            _boom, [1]
        )[0]
        doc = outcome.failure_doc()
        assert doc == {
            "error_type": "ValueError",
            "error_message": "boom 1",
            "attempts": 1,
        }
        assert "elapsed_s" not in doc  # wall clock never reaches journals

    def test_failure_doc_rejected_on_ok(self):
        outcome = CellOutcome(index=0, ok=True, value=1)
        with pytest.raises(ValueError):
            outcome.failure_doc()


class TestDeadlines:
    def test_deadline_measured_from_submission(self):
        # Both cells start together and share one wall-clock budget; when
        # the first times out, the second's deadline has already passed,
        # so it settles immediately instead of earning a fresh timeout.
        settled: list[float] = []
        runner = ParallelRunner(max_workers=2, timeout_s=0.4, retries=0)
        outcomes = runner.map_outcomes(
            _sleepy, [1.2, 1.2],
            on_outcome=lambda o: settled.append(time.monotonic()),
        )
        assert all(not o.ok for o in outcomes)
        assert all(o.error_type == "TimeoutError" for o in outcomes)
        assert settled[1] - settled[0] < 0.3


class TestBrokenPool:
    def test_worker_death_rebuilds_pool_and_retries(self, tmp_path):
        # Breakage is charged to the awaited index, so one cell may absorb
        # blame for both kills; retries=3 covers the worst interleaving.
        tel = Telemetry()
        runner = ParallelRunner(max_workers=2, retries=3, backoff_s=0.0)
        markers = [str(tmp_path / "k0"), str(tmp_path / "k1")]
        with use_telemetry(tel):
            results = runner.map(_kill_self_once, markers)
        assert results == ["survived", "survived"]
        assert tel.counter("pool.rebuilt") >= 1

    def test_persistent_breakage_raises_pool_broken(self):
        runner = ParallelRunner(max_workers=2, retries=0)
        with pytest.raises(PoolBrokenError, match="broke the worker pool"):
            runner.map(_kill_self_always, [1, 2])

    def test_keep_going_records_pool_breakage(self):
        runner = ParallelRunner(max_workers=2, retries=0)
        outcomes = runner.map_outcomes(_kill_self_always, [1, 2])
        assert all(not o.ok for o in outcomes)
        assert all(o.error_type == "BrokenProcessPool" for o in outcomes)

    def test_pool_broken_is_a_parallel_execution_error(self):
        assert issubclass(PoolBrokenError, ParallelExecutionError)


class TestBatchedDispatch:
    """batch_size > 1: same results, outcomes, and retry schedule as the
    unbatched map — only the dispatch granularity changes."""

    @pytest.mark.parametrize("batch_size", [2, 3, 5, 8])
    def test_map_matches_unbatched_across_batch_sizes(self, batch_size):
        items = list(range(6))
        plain = ParallelRunner(max_workers=2).map(_slow_identity, items)
        batched = ParallelRunner(max_workers=2, batch_size=batch_size).map(
            _slow_identity, items
        )
        assert batched == plain == [i * 10 for i in items]

    @pytest.mark.parametrize("max_workers", [2, 3])
    def test_identical_across_worker_counts(self, max_workers):
        items = list(range(5))
        runner = ParallelRunner(max_workers=max_workers, batch_size=2)
        assert runner.map(_slow_identity, items) == [i * 10 for i in items]

    def test_item_failure_does_not_discard_batch_mates(self):
        runner = ParallelRunner(max_workers=2, batch_size=3, retries=0)
        outcomes = runner.map_outcomes(_boom_on_two, [1, 2, 3])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error_type == "ValueError"
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert outcomes[0].value == 10 and outcomes[2].value == 30

    def test_in_worker_retries_report_attempts(self, tmp_path):
        runner = ParallelRunner(
            max_workers=2, batch_size=2, retries=3, backoff_s=0.0
        )
        items = [(str(tmp_path / f"m{i}"), 2) for i in range(4)]
        outcomes = runner.map_outcomes(_flaky_n, items)
        assert [o.value for o in outcomes] == ["ok"] * 4
        assert [o.attempts for o in outcomes] == [3, 3, 3, 3]

    def test_exhausted_batched_map_raises(self):
        runner = ParallelRunner(max_workers=2, batch_size=2, retries=1)
        with pytest.raises(ParallelExecutionError, match="failed on all 2"):
            runner.map(_boom, [1, 2, 3])

    def test_on_outcome_fires_per_item_in_order(self):
        seen: list[int] = []
        runner = ParallelRunner(max_workers=2, batch_size=2)
        runner.map_outcomes(
            _slow_identity, [3, 0, 1, 2],
            on_outcome=lambda o: seen.append(o.index),
        )
        assert seen == [0, 1, 2, 3]

    def test_worker_telemetry_merges_into_parent(self):
        tel = Telemetry()
        with use_telemetry(tel):
            results = ParallelRunner(max_workers=2, batch_size=2).map(
                _instrumented, [1, 2, 3]
            )
        assert results == [1, 2, 3]
        assert tel.phases["worker.phase"].calls == 3
        assert tel.counter("worker.count") == 6
