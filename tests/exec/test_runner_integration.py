"""End-to-end execution subsystem: parallel == serial, warm cache skips solves."""

from __future__ import annotations

import json

from repro.exec.cache import SolverCache
from repro.exec.options import (
    ExecutionOptions,
    execution_options,
    get_execution_options,
    set_execution_options,
)
from repro.exec.timing import TELEMETRY_SCHEMA_VERSION, Telemetry, use_telemetry
from repro.experiments.cli import main
from repro.experiments.runner import (
    ExperimentConfig,
    run_comparison,
    sweep_caps,
)

_CFG = ExperimentConfig(
    benchmark="comd",
    n_ranks=4,
    run_iterations=8,
    lp_iterations=2,
    discard_iterations=2,
    steady_window=4,
)
_CAPS = (45.0, 60.0)


def test_parallel_sweep_identical_to_serial():
    serial = sweep_caps(_CFG, _CAPS, workers=1)
    parallel = sweep_caps(_CFG, _CAPS, workers=2)
    assert parallel == serial  # dataclass equality: every float bit-identical


def test_warm_cache_returns_identical_results(tmp_path):
    cache = SolverCache(tmp_path)
    cold = sweep_caps(_CFG, _CAPS, workers=1, cache=cache)
    assert cache.stores > 0
    warm = sweep_caps(_CFG, _CAPS, workers=1, cache=cache)
    assert warm == cold
    assert cache.hits >= len(_CAPS)


def test_warm_cache_skips_all_solves(tmp_path):
    cache = SolverCache(tmp_path)
    sweep_caps(_CFG, _CAPS, workers=1, cache=cache)
    tel = Telemetry()
    with use_telemetry(tel):
        sweep_caps(_CFG, _CAPS, workers=1, cache=SolverCache(tmp_path))
    assert tel.counter("cache.hit") == len(_CAPS)
    assert "solve" not in tel.phases
    assert "replay" not in tel.phases
    assert "trace" not in tel.phases


def test_parallel_warm_cache_counts_hits_across_processes(tmp_path):
    cache = SolverCache(tmp_path)
    cold = sweep_caps(_CFG, _CAPS, workers=1, cache=cache)
    tel = Telemetry()
    with use_telemetry(tel):
        warm = sweep_caps(_CFG, _CAPS, workers=2, cache=SolverCache(tmp_path))
    assert warm == cold
    assert tel.counter("cache.hit") == len(_CAPS)
    assert "solve" not in tel.phases


def test_uncached_comparison_matches_cached(tmp_path):
    plain = run_comparison(_CFG, 60.0)
    cached = run_comparison(_CFG, 60.0, cache=SolverCache(tmp_path))
    assert cached == plain


def test_ambient_options_feed_the_sweep(tmp_path):
    assert get_execution_options().workers == 1
    with execution_options(cache_dir=str(tmp_path), workers=1):
        sweep_caps(_CFG, _CAPS)
    cache = SolverCache(tmp_path)
    assert len(cache) > 0
    with execution_options(cache_dir=str(tmp_path), use_cache=False):
        assert get_execution_options().make_cache() is None
    assert get_execution_options().make_cache() is None  # default: no cache


def test_cli_flags_wire_through(tmp_path, capsys):
    timings = tmp_path / "timings.json"
    argv = [
        "fig1",
        "--quick",
        "--workers",
        "1",
        "--cache-dir",
        str(tmp_path / "cache"),
        "--timings",
        "--timings-json",
        str(timings),
    ]
    try:
        rc = main(argv)
    finally:
        set_execution_options(ExecutionOptions())  # the CLI mutates the context
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig1 regenerated" in out
    doc = json.loads(timings.read_text())
    assert set(doc) == {"version", "phases", "counters", "solve_audit"}
    assert doc["version"] == TELEMETRY_SCHEMA_VERSION
