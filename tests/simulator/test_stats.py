"""Unit tests for simulation statistics."""

import numpy as np
import pytest

from repro.machine import Configuration, TaskKernel
from repro.simulator import (
    Engine,
    MaxPerformancePolicy,
    TaskRecord,
    TaskRef,
    imbalance_factor,
    iteration_stats,
    power_utilization,
)
from repro.runtime import StaticPolicy
from repro.workloads import imbalanced_collective_app

from ..conftest import make_p2p_app


def rec(rank, seq, start, dur, power=30.0, it=0):
    return TaskRecord(
        ref=TaskRef(rank, seq), iteration=it, label="",
        config=Configuration(2.6, 8), start_s=start, duration_s=dur,
        power_w=power, kernel=TaskKernel(cpu_seconds=dur),
    )


class TestIterationStats:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            iteration_stats([], 2)

    def test_reductions(self):
        records = [
            rec(0, 0, 0.0, 1.0, power=25.0),
            rec(0, 1, 1.5, 0.5, power=35.0),
            rec(1, 0, 0.0, 2.5, power=30.0),
        ]
        s = iteration_stats(records, 2)
        np.testing.assert_allclose(s.busy_s, [1.5, 2.5])
        np.testing.assert_allclose(s.arrival_s, [2.0, 2.5])
        assert s.barrier_s == 2.5
        assert s.critical_rank == 1
        np.testing.assert_allclose(s.earliness_s, [0.5, 0.0])
        np.testing.assert_allclose(s.peak_task_power_w, [35.0, 30.0])
        assert s.energy_j[0] == pytest.approx(25.0 + 17.5)
        assert s.imbalance() == pytest.approx(2.5 / 2.0)

    def test_iteration_filter(self):
        records = [rec(0, 0, 0.0, 1.0, it=0), rec(0, 1, 2.0, 3.0, it=1),
                   rec(1, 0, 0.0, 1.0, it=0), rec(1, 1, 2.0, 1.0, it=1)]
        s = iteration_stats(records, 2, iteration=1)
        assert s.iteration == 1
        np.testing.assert_allclose(s.busy_s, [3.0, 1.0])


class TestImbalanceFactor:
    def test_balanced_app_near_one(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=1)
        res = Engine(two_rank_models).run(app, MaxPerformancePolicy())
        f = imbalance_factor(res, 0)
        assert 1.0 <= f < 1.5

    def test_imbalanced_app_reflects_spread(self):
        from repro.experiments import make_power_models

        app = imbalanced_collective_app(n_ranks=4, iterations=1, spread=1.5)
        models = make_power_models(4)
        res = Engine(models).run(app, MaxPerformancePolicy())
        assert imbalance_factor(res, 0) > 1.15  # spread 1.5 -> max/mean = 1.2


class TestPowerUtilization:
    def test_bounds(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=2)
        res = Engine(two_rank_models).run(
            app, StaticPolicy(two_rank_models, 70.0)
        )
        u = power_utilization(res, two_rank_models, 70.0)
        assert 0.0 < u <= 1.0

    def test_tighter_cap_raises_utilization(self, kernel, two_rank_models):
        """Under a loose cap most of the budget is headroom; a tight cap
        is mostly consumed."""
        app = make_p2p_app(kernel, iterations=2)
        engine = Engine(two_rank_models)
        tight = power_utilization(
            engine.run(app, StaticPolicy(two_rank_models, 55.0)),
            two_rank_models, 55.0,
        )
        loose = power_utilization(
            engine.run(app, StaticPolicy(two_rank_models, 160.0)),
            two_rank_models, 160.0,
        )
        assert tight > loose

    def test_validation(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=1)
        res = Engine(two_rank_models).run(app, MaxPerformancePolicy())
        with pytest.raises(ValueError):
            power_utilization(res, two_rank_models, 0.0)
