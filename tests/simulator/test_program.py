"""Unit tests for the program representation."""

import pytest

from repro.simulator import (
    Application,
    CollectiveOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    PcontrolOp,
    RecvOp,
    SendOp,
    TaskRef,
    WaitOp,
)


class TestApplication:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Application("x", [])

    def test_bad_iterations(self, kernel):
        with pytest.raises(ValueError):
            Application("x", [[ComputeOp(kernel)]], iterations=0)

    def test_n_ranks_and_tasks(self, p2p_app):
        assert p2p_app.n_ranks == 2
        assert p2p_app.n_tasks() == 8  # 2 per rank per iteration, 2 iters

    def test_compute_ops_order(self, p2p_app):
        labels = [op.label for op in p2p_app.compute_ops(0)]
        assert labels == ["a0", "b0", "a0", "b0"]

    def test_task_kernel_lookup(self, p2p_app, kernel):
        k = p2p_app.task_kernel(TaskRef(0, 0))
        assert k.cpu_seconds == pytest.approx(kernel.cpu_seconds)
        with pytest.raises(KeyError):
            p2p_app.task_kernel(TaskRef(0, 99))


class TestValidation:
    def test_collective_misalignment_caught(self, kernel):
        p0 = [ComputeOp(kernel), CollectiveOp()]
        p1 = [ComputeOp(kernel)]
        with pytest.raises(ValueError, match="collectives"):
            Application("x", [p0, p1]).validate()

    def test_request_reuse_caught(self, kernel):
        prog = [
            IsendOp(dst=0, size_bytes=8, request=1),
            IsendOp(dst=0, size_bytes=8, request=1),
            WaitOp(1),
            WaitOp(1),
        ]
        with pytest.raises(ValueError, match="reused"):
            Application("x", [prog]).validate()

    def test_wait_on_unknown_request_caught(self):
        with pytest.raises(ValueError, match="unknown request"):
            Application("x", [[WaitOp(3)]]).validate()

    def test_unwaited_request_caught(self):
        prog = [IsendOp(dst=0, size_bytes=8, request=1)]
        with pytest.raises(ValueError, match="unwaited"):
            Application("x", [prog]).validate()

    def test_valid_program_passes(self, p2p_app):
        p2p_app.validate()


class TestTaskRef:
    def test_hashable_identity(self):
        assert TaskRef(1, 2) == TaskRef(1, 2)
        assert len({TaskRef(0, 0), TaskRef(0, 0), TaskRef(0, 1)}) == 2


class TestOps:
    def test_ops_are_frozen(self, kernel):
        op = ComputeOp(kernel)
        with pytest.raises(AttributeError):
            op.iteration = 5

    def test_defaults(self):
        c = CollectiveOp()
        assert c.kind == "allreduce"
        assert c.participants is None
        s = SendOp(dst=1, size_bytes=100)
        assert s.tag == 0
        r = RecvOp(src=0)
        assert r.iteration == -1
        ir = IrecvOp(src=0, request=2)
        assert ir.tag == 0
        p = PcontrolOp(3)
        assert p.iteration == 3
