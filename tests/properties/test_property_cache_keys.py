"""Property: cache keys are injective over model inputs.

Two solver invocations share a key *iff* every input the answer depends
on is identical — the trace (workload shape, kernels, message sizes,
machine efficiencies), the cap, and the formulation parameters.
"""

from __future__ import annotations

import functools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.exec.keys import solver_key, trace_fingerprint
from repro.experiments.runner import make_power_models
from repro.simulator import trace_application
from repro.workloads import two_rank_exchange

# The whole input space is finite and small so traces can be memoized;
# hypothesis explores the cross product of perturbations.
PHASES = (1, 2)
CPU_SECONDS = (0.6, 0.8)
MESSAGE_BYTES = (1 << 20, 1 << 21)
EFF_SEEDS = (7, 8)
CAPS = (45.0, 50.0)
TIEBREAKS = (1e-9, 1e-8)

BASE = (PHASES[0], CPU_SECONDS[0], MESSAGE_BYTES[0], EFF_SEEDS[0],
        CAPS[0], TIEBREAKS[0], False)


@functools.lru_cache(maxsize=None)
def _trace(phases: int, cpu_seconds: float, message_bytes: int, eff_seed: int):
    app = two_rank_exchange(
        phases=phases, cpu_seconds=cpu_seconds, message_bytes=message_bytes
    )
    pm = make_power_models(2, efficiency_seed=eff_seed, sigma=0.02)
    return trace_application(app, pm)


def _key(phases, cpu_seconds, message_bytes, eff_seed, cap, tiebreak, discrete):
    trace = _trace(phases, cpu_seconds, message_bytes, eff_seed)
    return solver_key(
        trace, cap,
        params={"power_tiebreak": tiebreak, "discrete": discrete},
    )


model_inputs = st.tuples(
    st.sampled_from(PHASES),
    st.sampled_from(CPU_SECONDS),
    st.sampled_from(MESSAGE_BYTES),
    st.sampled_from(EFF_SEEDS),
    st.sampled_from(CAPS),
    st.sampled_from(TIEBREAKS),
    st.booleans(),
)


class TestKeyInjectivity:
    @given(inputs=model_inputs)
    @settings(max_examples=60, deadline=None)
    def test_key_equal_iff_inputs_equal(self, inputs):
        assert (_key(*inputs) == _key(*BASE)) == (inputs == BASE)

    @given(a=model_inputs, b=model_inputs)
    @settings(max_examples=60, deadline=None)
    def test_pairwise(self, a, b):
        assert (_key(*a) == _key(*b)) == (a == b)

    @given(inputs=model_inputs)
    @settings(max_examples=30, deadline=None)
    def test_key_is_deterministic(self, inputs):
        assert _key(*inputs) == _key(*inputs)


class TestTraceFingerprint:
    @given(
        phases=st.sampled_from(PHASES),
        cpu=st.sampled_from(CPU_SECONDS),
        eff_seed=st.sampled_from(EFF_SEEDS),
    )
    @settings(max_examples=20, deadline=None)
    def test_rebuilt_trace_has_same_fingerprint(self, phases, cpu, eff_seed):
        """Tracing is deterministic: an independently rebuilt trace of the
        same workload on the same machine fingerprints identically."""
        fp_memo = trace_fingerprint(_trace(phases, cpu, MESSAGE_BYTES[0], eff_seed))
        app = two_rank_exchange(
            phases=phases, cpu_seconds=cpu, message_bytes=MESSAGE_BYTES[0]
        )
        pm = make_power_models(2, efficiency_seed=eff_seed, sigma=0.02)
        rebuilt = trace_application(app, pm)
        assert trace_fingerprint(rebuilt) == fp_memo
