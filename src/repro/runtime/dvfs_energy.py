"""Slack-driven energy-minimizing DVFS (Guermouche et al., arXiv:1502.06733).

Guermouche et al. save energy in MPI programs by lowering the *frequency*
of ranks whose tasks are followed by MPI wait time: stretching computation
into the wait costs no makespan but drops power quadratically.  Unlike
Adagio — which picks the *slowest* configuration that fits the slack
(maximal slack absorption) — this runtime picks the *minimum-energy*
frequency among those that fit, and it scales frequency only: thread
width stays at the socket's full core count, matching the MPI-process
model of the original system (one process per core set, no concurrency
throttling).

Both runtimes are fully-provisioned (no cap enforcement); the scenario
layer evaluates them against the capped LP bounds on the energy axis.
"""

from __future__ import annotations

from ..machine.configuration import ConfigPoint, Configuration, measure_task
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.performance import TaskKernel, TaskTimeModel
from ..machine.power import SocketPowerModel
from ..simulator.engine import TaskRecord
from ..simulator.program import Application, ComputeOp, TaskRef
from .adagio import SlackEstimator
from .conductor import task_key_for

__all__ = ["DvfsEnergyPolicy", "min_energy_fitting_point"]


def min_energy_fitting_point(
    ladder: list[ConfigPoint], max_duration_s: float
) -> ConfigPoint:
    """Lowest-energy ladder point not exceeding a duration budget.

    The ladder is sorted by descending duration (ascending frequency), so
    the fastest point is last; when even it misses the budget the task is
    critical and runs fastest, exactly as Adagio treats critical tasks.
    """
    if not ladder:
        raise ValueError("empty frequency ladder")
    fitting = [p for p in ladder if p.duration_s <= max_duration_s]
    if not fitting:
        return ladder[-1]
    return min(fitting, key=lambda p: (p.duration_s * p.power_w, p.duration_s))


class DvfsEnergyPolicy:
    """Per-rank frequency scaling into MPI wait, minimizing task energy."""

    def __init__(
        self,
        power_models: list[SocketPowerModel],
        app: Application,
        spec: CpuSpec = XEON_E5_2670,
        safety: float = 0.9,
        switch_overhead_s: float = 145e-6,
        min_switch_duration_s: float = 1e-3,
    ) -> None:
        if not (0.0 <= safety <= 1.0):
            raise ValueError(f"safety must be in [0,1], got {safety}")
        self.power_models = power_models
        self.spec = spec
        self.safety = safety
        self.switch_overhead_s = switch_overhead_s
        self.min_switch_duration_s = min_switch_duration_s
        tpi = {
            r: max(
                1,
                sum(
                    1
                    for op in app.programs[r]
                    if isinstance(op, ComputeOp) and op.iteration == 0
                ),
            )
            for r in range(len(power_models))
        }
        self.tasks_per_iteration = tpi
        self.slack = SlackEstimator(tpi)
        self._time_models = [TaskTimeModel(pm.spec) for pm in power_models]
        self._ladders: dict[tuple[int, TaskKernel], list[ConfigPoint]] = {}

    def _ladder(self, rank: int, kernel: TaskKernel) -> list[ConfigPoint]:
        """The rank's frequency-only ladder for a kernel (full threads).

        One measured point per P-state at the socket's core count, sorted
        fastest-last; memoized — kernels recur every iteration.
        """
        key = (rank, kernel)
        ladder = self._ladders.get(key)
        if ladder is None:
            pm = self.power_models[rank]
            tm = self._time_models[rank]
            points = [
                measure_task(kernel, Configuration(f, pm.spec.cores), pm, tm)
                for f in pm.spec.pstates
            ]
            points.sort(key=lambda p: -p.duration_s)
            self._ladders[key] = ladder = points
        return ladder

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """Fastest frequency, trimmed to the min-energy point in the slack."""
        ladder = self._ladder(ref.rank, kernel)
        fastest = ladder[-1]
        chosen = fastest
        slack_s = self.slack.slack_estimate(
            task_key_for(ref, self.tasks_per_iteration[ref.rank])
        )
        if slack_s is not None:
            chosen = min_energy_fitting_point(
                ladder, fastest.duration_s + self.safety * slack_s
            )
        if (
            current is not None
            and chosen.config != current
            and chosen.duration_s < self.min_switch_duration_s
        ):
            return current
        return chosen.config

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        self.slack.update(records)
        return 0.0

    def switch_cost_s(self) -> float:
        return self.switch_overhead_s
