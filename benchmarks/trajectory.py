#!/usr/bin/env python3
"""Perf-trajectory points: schema-versioned benchmark snapshots over time.

Where ``check_regression.py`` answers "did this run regress against the
committed baseline?", this harness records *where on the performance
trajectory* each commit sits.  ``emit`` turns a pytest-benchmark JSON
into a ``BENCH_<date>_<sha>.json`` point carrying:

* the raw per-benchmark wall times (pytest-benchmark-compatible
  ``benchmarks`` list, so ``check_regression.py`` reads a point too);
* machine-speed-calibrated times (divided by the trace-construction
  probe's fresh/baseline ratio, so points from different machines are
  comparable);
* the geometric-mean speedup over ``benchmarks/baseline.json``;
* a machine fingerprint and the emitting commit.

``check`` gates a fresh run against the *best historical point* (highest
calibrated geomean speedup) in ``benchmarks/trajectory/`` — the
trajectory may plateau but must not slide back.  CI emits a point per
push to main and appends it to the history; local points land at the
repo root (gitignored).

Stdlib-only so the gate runs anywhere the tests do.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import re
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

TRAJECTORY_SCHEMA_VERSION = 1
POINT_KIND = "perf_trajectory_point"

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_BASELINE = BENCH_DIR / "baseline.json"
HISTORY_DIR = BENCH_DIR / "trajectory"

#: Substring of the benchmark used as the machine-speed probe: trace
#: construction is pure Python + numpy with no solver, so its
#: fresh/baseline ratio approximates how much faster or slower this
#: machine is than the one that recorded the baseline.
CALIBRATION_PROBE = "test_trace_construction_speed"

_POINT_NAME = re.compile(r"^BENCH_(\d{8})_([0-9a-f]{7,40})\.json$")


# ----------------------------------------------------------------------
# Point construction.

def load_times(doc: dict) -> dict[str, float]:
    """Map benchmark fullname -> representative seconds (median, else mean)."""
    times: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        stats = bench.get("stats", {})
        value = stats.get("median", stats.get("mean"))
        if value is not None:
            times[bench["fullname"]] = float(value)
    return times


def machine_fingerprint() -> dict:
    """Where this point was measured (coarse, stable identifiers only)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def git_sha() -> str:
    """The current short commit hash, or 'unknown' outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def calibration_scale(
    fresh: dict[str, float], baseline: dict[str, float], probe: str
) -> float | None:
    """fresh/baseline machine-speed ratio from the probe benchmarks.

    None when the probe is absent from either side (times stay raw).
    """
    probes = [n for n in baseline if probe in n and n in fresh]
    if not probes:
        return None
    return sum(fresh[n] / baseline[n] for n in probes) / len(probes)


def build_point(
    fresh_doc: dict,
    baseline_doc: dict,
    sha: str,
    date: str,
    probe: str = CALIBRATION_PROBE,
) -> dict:
    """One trajectory point from a pytest-benchmark run + the baseline."""
    fresh = load_times(fresh_doc)
    if not fresh:
        raise ValueError("fresh run contains no benchmarks")
    baseline = load_times(baseline_doc)
    scale = calibration_scale(fresh, baseline, probe)
    calibrated = {
        name: t / (scale if scale is not None else 1.0)
        for name, t in fresh.items()
    }
    shared = [
        n for n in sorted(set(baseline) & set(fresh)) if probe not in n
    ]
    speedup = (
        _geomean([baseline[n] / calibrated[n] for n in shared])
        if shared else None
    )
    return {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "kind": POINT_KIND,
        "date": date,
        "sha": sha,
        "machine": machine_fingerprint(),
        "calibration": {"probe": probe, "scale": scale},
        "geomean_speedup_vs_baseline": speedup,
        "times": calibrated,
        "benchmarks": [
            {"fullname": name, "stats": {"median": t, "mean": t}}
            for name, t in sorted(fresh.items())
        ],
    }


def validate_point(doc: object) -> list[str]:
    """Schema errors of one trajectory point ([] = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["point is not a JSON object"]
    if doc.get("schema") != TRAJECTORY_SCHEMA_VERSION:
        errors.append(
            f"schema must be {TRAJECTORY_SCHEMA_VERSION}, "
            f"got {doc.get('schema')!r}"
        )
    if doc.get("kind") != POINT_KIND:
        errors.append(f"kind must be {POINT_KIND!r}, got {doc.get('kind')!r}")
    for field, typ in (
        ("date", str), ("sha", str), ("machine", dict),
        ("calibration", dict), ("times", dict), ("benchmarks", list),
    ):
        if not isinstance(doc.get(field), typ):
            errors.append(f"{field} must be a {typ.__name__}")
    speedup = doc.get("geomean_speedup_vs_baseline")
    if speedup is not None and not isinstance(speedup, (int, float)):
        errors.append("geomean_speedup_vs_baseline must be a number or null")
    times = doc.get("times")
    if isinstance(times, dict):
        bad = [
            n for n, t in times.items()
            if not isinstance(t, (int, float)) or t <= 0
        ]
        if bad:
            errors.append(f"non-positive or non-numeric times: {sorted(bad)}")
    if isinstance(doc.get("benchmarks"), list):
        for i, bench in enumerate(doc["benchmarks"]):
            if not isinstance(bench, dict) or "fullname" not in bench \
                    or "stats" not in bench:
                errors.append(f"benchmarks[{i}] needs fullname + stats")
                break
    return errors


def point_filename(point: dict) -> str:
    return f"BENCH_{point['date']}_{point['sha']}.json"


def write_point(point: dict, out_dir: Path) -> Path:
    errors = validate_point(point)
    if errors:
        raise ValueError(f"refusing to write invalid point: {errors}")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / point_filename(point)
    path.write_text(json.dumps(point, indent=1, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# History + gate.

def load_history(dirs: list[Path]) -> list[dict]:
    """All valid trajectory points under ``dirs``, sorted by (date, sha)."""
    points = []
    for d in dirs:
        if not d.is_dir():
            continue
        for path in sorted(d.iterdir()):
            if not _POINT_NAME.match(path.name):
                continue
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                print(f"warning: unreadable trajectory point {path}")
                continue
            if validate_point(doc):
                print(f"warning: invalid trajectory point {path} (skipped)")
                continue
            points.append(doc)
    points.sort(key=lambda p: (p["date"], p["sha"]))
    return points


def best_point(points: list[dict]) -> dict | None:
    """The historical point with the highest calibrated geomean speedup."""
    scored = [
        p for p in points if p.get("geomean_speedup_vs_baseline") is not None
    ]
    if not scored:
        return None
    return max(scored, key=lambda p: p["geomean_speedup_vs_baseline"])


def check_point(point: dict, history: list[dict], threshold_pct: float) -> int:
    """Gate ``point`` against the best historical point (0 = pass).

    The trajectory may plateau but must not slide back: the fresh
    calibrated geomean speedup must stay within ``threshold_pct`` of the
    best the history has recorded.  Prints a per-benchmark diff table
    against the best point so a trip is diagnosable from the log alone.
    """
    best = best_point(history)
    if best is None:
        print("no historical trajectory points: first point always passes")
        return 0
    fresh_speedup = point.get("geomean_speedup_vs_baseline")
    best_speedup = best["geomean_speedup_vs_baseline"]
    print(
        f"best historical point: {point_filename(best)} "
        f"(geomean speedup {best_speedup:.3f}x vs baseline)"
    )
    shared = sorted(set(best.get("times", {})) & set(point.get("times", {})))
    if shared:
        width = max(len(n) for n in shared)
        print(f"{'benchmark':<{width}}  {'best':>10}  {'fresh':>10}  {'delta':>8}")
        for name in shared:
            b, f = best["times"][name], point["times"][name]
            print(
                f"{name:<{width}}  {b:>9.4f}s  {f:>9.4f}s  "
                f"{(f / b - 1.0) * 100.0:>+7.1f}%"
            )
    if fresh_speedup is None:
        print("FAIL: fresh point has no geomean (no benchmarks shared "
              "with the baseline)")
        return 1
    floor = best_speedup * (1.0 - threshold_pct / 100.0)
    print(
        f"\nfresh geomean speedup {fresh_speedup:.3f}x "
        f"(gate: >= {floor:.3f}x, i.e. within {threshold_pct:.0f}% of best)"
    )
    if fresh_speedup < floor:
        print("FAIL: performance slid back from the best recorded point")
        return 1
    print("OK: trajectory holds")
    return 0


# ----------------------------------------------------------------------
def _load_point_or_run(path: Path, baseline: Path) -> dict:
    """A trajectory point from ``path``: either an emitted point file or
    a raw pytest-benchmark JSON (converted on the fly)."""
    doc = json.loads(path.read_text())
    if isinstance(doc, dict) and doc.get("kind") == POINT_KIND:
        errors = validate_point(doc)
        if errors:
            raise ValueError(f"{path} is not a valid point: {errors}")
        return doc
    return build_point(
        doc,
        json.loads(baseline.read_text()),
        sha=git_sha(),
        date=datetime.now(timezone.utc).strftime("%Y%m%d"),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_emit = sub.add_parser("emit", help="write a BENCH_<date>_<sha>.json point")
    p_emit.add_argument("fresh", type=Path,
                        help="pytest-benchmark JSON from the current run")
    p_emit.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    p_emit.add_argument("--out-dir", type=Path, default=REPO_ROOT,
                        help="where the point lands (default: repo root; "
                             "CI uses benchmarks/trajectory)")
    p_emit.add_argument("--sha", default=None,
                        help="override the emitting commit (default: HEAD)")
    p_emit.add_argument("--date", default=None,
                        help="override the point date, YYYYMMDD (default: today)")

    p_check = sub.add_parser(
        "check", help="gate a fresh run against the best historical point"
    )
    p_check.add_argument("fresh", type=Path,
                         help="pytest-benchmark JSON or an emitted point")
    p_check.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    p_check.add_argument("--history", type=Path, action="append", default=None,
                         help="trajectory directories "
                              "(default: benchmarks/trajectory)")
    p_check.add_argument("--threshold", type=float, default=25.0,
                         help="allowed geomean backslide in percent "
                              "(default 25)")

    p_val = sub.add_parser("validate", help="schema-check point files")
    p_val.add_argument("points", type=Path, nargs="+")

    args = parser.parse_args(argv)

    if args.command == "emit":
        fresh_doc = json.loads(args.fresh.read_text())
        point = build_point(
            fresh_doc,
            json.loads(args.baseline.read_text()),
            sha=args.sha or git_sha(),
            date=args.date
            or datetime.now(timezone.utc).strftime("%Y%m%d"),
        )
        path = write_point(point, args.out_dir)
        speedup = point["geomean_speedup_vs_baseline"]
        note = (
            f"geomean speedup {speedup:.3f}x vs baseline"
            if speedup is not None else "no baseline overlap"
        )
        print(f"trajectory point: {path} ({note})")
        return 0

    if args.command == "check":
        point = _load_point_or_run(args.fresh, args.baseline)
        dirs = args.history or [HISTORY_DIR]
        return check_point(point, load_history(dirs), args.threshold)

    rc = 0
    for path in args.points:
        try:
            errors = validate_point(json.loads(path.read_text()))
        except (OSError, ValueError) as exc:
            errors = [str(exc)]
        if errors:
            rc = 1
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
            print(f"{path}: INVALID ({len(errors)} error(s))")
        else:
            print(f"{path}: OK")
    return rc


if __name__ == "__main__":
    sys.exit(main())
