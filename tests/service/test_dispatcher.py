"""FleetDispatcher: drain, journal fast path, failure settling, serve."""

from __future__ import annotations

from repro.exec.checkpoint import SweepJournal
from repro.scenarios.run import run_scenarios
from repro.scenarios.spec import PolicySpec, ScenarioSpec
from repro.service import FleetDispatcher, JobQueue


def spec(caps=(40.0, 60.0)) -> ScenarioSpec:
    return ScenarioSpec(
        benchmark="synthetic",
        caps_per_socket_w=caps,
        policies=(PolicySpec("static"), PolicySpec("lp")),
        n_ranks=4,
        run_iterations=8,
        lp_iterations=2,
        discard_iterations=2,
        steady_window=4,
    )


class RecordingProgress:
    """A ProgressReporter stand-in capturing (ok, resumed) updates."""

    def __init__(self):
        self.updates = []

    def update(self, ok=True, resumed=False):
        self.updates.append((ok, resumed))


class TestDrain:
    def test_empty_queue_is_a_noop(self, tmp_path):
        summary = FleetDispatcher(JobQueue(tmp_path)).drain()
        assert summary == {
            "claimed": 0, "resumed": 0, "computed": 0, "failed": 0,
        }

    def test_computes_and_settles_every_job(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit_cells(spec())
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        summary = FleetDispatcher(queue, journal=journal).drain()
        assert summary == {
            "claimed": 2, "resumed": 0, "computed": 2, "failed": 0,
        }
        assert all(j.state == "done" for j in queue.jobs.values())
        records = journal.load()
        assert set(records) == set(queue.jobs)
        assert all(doc["status"] == "ok" for doc in records.values())

    def test_journal_fast_path_skips_computation(self, tmp_path):
        s = spec()
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        # A CLI sweep settles the cells first; the service then serves
        # the same cells from the shared journal without recomputing.
        run_scenarios(s, workers=1, journal=journal)
        queue = JobQueue(tmp_path / "q")
        queue.submit_cells(s)
        progress = RecordingProgress()
        dispatcher = FleetDispatcher(
            queue, journal=journal, progress=progress
        )
        summary = dispatcher.drain()
        assert summary == {
            "claimed": 2, "resumed": 2, "computed": 0, "failed": 0,
        }
        assert all(j.state == "done" for j in queue.jobs.values())
        assert progress.updates == [(True, True), (True, True)]

    def test_journaled_payloads_match_a_cli_sweep(self, tmp_path):
        s = spec()
        queue = JobQueue(tmp_path / "q")
        queue.submit_cells(s)
        service_journal = SweepJournal(tmp_path / "service.jsonl")
        FleetDispatcher(queue, journal=service_journal).drain()
        cli_journal = SweepJournal(tmp_path / "cli.jsonl")
        run_scenarios(s, workers=1, journal=cli_journal)
        service_docs = service_journal.load()
        cli_docs = cli_journal.load()
        assert set(service_docs) == set(cli_docs)
        for key, doc in cli_docs.items():
            # Identical keys, identical rehydratable payloads: either
            # side resumes byte-identically from the other's journal.
            assert service_docs[key]["payload"] == doc["payload"]

    def test_timed_out_cells_settle_as_failed_jobs(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit_cells(spec())
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        # An impossible submit-time deadline (out-of-process transport
        # enforces it) fails every cell without aborting the drain.
        summary = FleetDispatcher(
            queue, workers=2, journal=journal,
            timeout_s=0.001, retries=0, backoff_s=0.0,
        ).drain()
        assert summary["failed"] == 2 and summary["computed"] == 0
        assert all(j.state == "failed" for j in queue.jobs.values())
        assert all(
            j.failure["error_type"] == "TimeoutError"
            for j in queue.jobs.values()
        )
        assert all(
            doc["status"] == "failed" for doc in journal.load().values()
        )


class TestServe:
    def test_drain_once_accumulates_totals(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit_cells(spec())
        totals = FleetDispatcher(queue).serve(drain_once=True)
        assert totals["claimed"] == 2 and totals["computed"] == 2

    def test_max_idle_exits_an_empty_queue(self, tmp_path):
        totals = FleetDispatcher(JobQueue(tmp_path)).serve(
            poll_s=0.01, max_idle_s=0.05
        )
        assert totals["claimed"] == 0
