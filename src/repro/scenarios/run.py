"""The N-way scenario executor: one spec in, one result table out.

:func:`run_scenarios` evaluates every policy of a
:class:`~repro.scenarios.spec.ScenarioSpec` at every cap of its grid.
Each (spec, cap) cell is an independent, fully seeded computation:

* shared per-benchmark state (applications, power models, the traced DAG
  and its compiled :class:`~repro.core.model.ProblemInstance`) is built
  once per process and reused across the cap grid;
* with ``workers > 1`` the cells fan out over a process pool in cap
  order — bit-identical to the serial sweep, worker observability folded
  back in submission order (see :mod:`repro.exec.parallel`);
* each cell is memoized in the ambient
  :class:`~repro.exec.cache.SolverCache` under a key derived from the
  spec's :meth:`~repro.scenarios.spec.ScenarioSpec.cell_hash` and the
  ``SCENARIO_LAYER_VERSION`` — never from a hardwired field list — and a
  payload whose policy-name set does not exactly match the spec is
  recomputed, not mis-mapped;
* every policy run lands in its own trace scope
  (``"<name> <benchmark> cap=<cap>W"``), so Perfetto shows one process
  group per policy instance.

The legacy three-way ``run_comparison``/``sweep_caps`` entry points are
thin wrappers over a ``{static, conductor, lp}`` spec (see
:mod:`repro.experiments.runner`) and reproduce their historical numbers
exactly.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

from ..exec.backends import make_backend
from ..exec.checkpoint import SweepJournal
from ..core.model import ProblemInstance, build_problem_instance
from ..exec.cache import SolverCache
from ..exec.faults import FaultInjector
from ..exec.keys import scenario_cell_key
from ..exec.options import get_execution_options
from ..exec.parallel import (
    CellOutcome,
    ParallelExecutionError,
    ParallelRunner,
    resolve_workers,
)
from ..exec.timing import count
from ..machine.device import LEGACY_NODE, NodeSpec, get_node, rank_nodes
from ..machine.frontiers import FrontierStore, NodeFrontierStore
from ..machine.power import SocketPowerModel
from ..machine.variability import make_power_models
from ..obs.events import CellFailureEvent, CounterEvent
from ..obs.metrics import COUNT_BUCKETS, current_metrics
from ..obs.metrics import inc as metric_inc
from ..obs.profiling import profile_block
from ..obs.progress import ProgressReporter
from ..obs.recorder import TraceRecorder, current_recorder, emit
from ..simulator.engine import Engine, SimulationResult
from ..simulator.telemetry import job_power_timeline
from ..simulator.trace import Trace, trace_application
from ..workloads import WorkloadSpec
from .registry import PolicyContext, PolicyRegistry, default_registry
from .spec import SCENARIO_BENCHMARKS, SCENARIO_LAYER_VERSION, ScenarioSpec

__all__ = [
    "CellFailure",
    "PolicyOutcome",
    "ScenarioCell",
    "ScenarioResult",
    "cell_payload",
    "reset_cap_solvers",
    "run_scenario_cell",
    "run_scenarios",
    "policy_iteration_time",
]


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's measured (or bounded) per-iteration time at one cap.

    ``energy_j`` is the per-iteration task energy over the same
    measurement window as ``time_s`` (runtimes) or of the formulation's
    schedule (bounds); None when the policy yields no energy figure
    (infeasible bounds, unschedulable caps, schedule-free bounds)."""

    name: str  # instance label from the spec
    policy: str  # registry name
    kind: str  # "runtime" | "bound"
    time_s: float | None  # None: unschedulable cap or infeasible bound
    extra: dict = field(default_factory=dict)
    energy_j: float | None = None

    def to_payload(self) -> dict:
        """JSON-safe cache payload for this outcome."""
        return {
            "policy": self.policy,
            "kind": self.kind,
            "time_s": self.time_s,
            "energy_j": self.energy_j,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_payload(cls, name: str, doc: dict) -> "PolicyOutcome":
        """Rehydrate an outcome from :meth:`to_payload` output."""
        return cls(
            name=name,
            policy=str(doc["policy"]),
            kind=str(doc["kind"]),
            time_s=doc["time_s"],
            extra=dict(doc.get("extra") or {}),
            energy_j=doc.get("energy_j"),
        )


@dataclass(frozen=True)
class CellFailure:
    """How one sweep cell failed, as stable data.

    Everything here is deterministic for deterministic failures —
    exception type, message, and attempt count, never wall-clock — so
    failures may be journaled, stamped into manifests, and compared
    byte-for-byte across an interrupted run and its resumed twin.
    """

    error_type: str
    error_message: str
    attempts: int

    def to_doc(self) -> dict:
        return {
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "CellFailure":
        return cls(
            error_type=str(doc["error_type"]),
            error_message=str(doc["error_message"]),
            attempts=int(doc["attempts"]),
        )

    @classmethod
    def from_outcome(cls, outcome: CellOutcome) -> "CellFailure":
        return cls.from_doc(outcome.failure_doc())


@dataclass
class ScenarioCell:
    """All policy outcomes of one scenario at one per-socket cap.

    A cell that could not be computed at all (its task exhausted every
    attempt under ``keep_going``) carries a :class:`CellFailure` and
    ``None`` times for every policy — exhibits render it as a gap, never
    as a number.
    """

    benchmark: str
    cap_per_socket_w: float
    n_ranks: int
    schedulable: bool
    outcomes: dict[str, PolicyOutcome]  # insertion order = spec order
    failure: CellFailure | None = None

    @property
    def job_cap_w(self) -> float:
        """Total job power: per-socket cap times rank count."""
        return self.cap_per_socket_w * self.n_ranks

    @property
    def failed(self) -> bool:
        """Whether this cell's computation failed outright."""
        return self.failure is not None

    def time_s(self, name: str) -> float | None:
        """Per-iteration time of one policy instance (by label)."""
        return self.outcomes[name].time_s


@dataclass
class ScenarioResult:
    """The N-way table: one :class:`ScenarioCell` per cap, in cap order."""

    spec: ScenarioSpec
    cells: list[ScenarioCell]

    def policy_names(self) -> list[str]:
        """Instance labels in spec (evaluation) order."""
        return self.spec.policy_labels()

    def series(self, name: str) -> list[float | None]:
        """One policy's per-iteration times across the cap grid."""
        return [cell.time_s(name) for cell in self.cells]

    def cell_at(self, cap_per_socket_w: float) -> ScenarioCell:
        """The cell for one cap of the grid."""
        for cell in self.cells:
            if cell.cap_per_socket_w == cap_per_socket_w:
                return cell
        raise KeyError(f"no cell at {cap_per_socket_w} W/socket")

    def failed_cells(self) -> list[ScenarioCell]:
        """Cells whose computation failed, in cap order."""
        return [cell for cell in self.cells if cell.failed]

    def failure_docs(self) -> list[dict]:
        """Deterministic per-failure documents (manifest ``failures``)."""
        return [
            {"cap_per_socket_w": cell.cap_per_socket_w, **cell.failure.to_doc()}
            for cell in self.cells
            if cell.failure is not None
        ]


# ----------------------------------------------------------------------
@dataclass
class _Shared:
    """Per-benchmark reusables across a cap grid."""

    app_run: object
    app_lp: object
    power_models: list[SocketPowerModel]
    engine: Engine
    trace: Trace
    frontiers: FrontierStore | NodeFrontierStore
    instance: ProblemInstance
    # Per-rank typed-device nodes; None on the legacy homogeneous machine
    # (that path stays byte-for-byte identical to the pre-node layer).
    nodes: list[NodeSpec] | None = None
    # power_tiebreak -> ParametricCapSolver: the fixed-order LP frozen
    # once per benchmark and re-solved across the whole cap grid (and
    # every cell of it) through one persistent HiGHS handle.  Lazily
    # populated by the lp bound entry (registry._solve_lp).
    cap_solvers: dict = field(default_factory=dict)


_shared_cache: dict[tuple, _Shared] = {}


def _shared_key(spec: ScenarioSpec) -> tuple:
    return (
        spec.benchmark, spec.n_ranks, spec.run_iterations, spec.lp_iterations,
        spec.seed, spec.efficiency_seed, spec.efficiency_sigma, spec.node,
    )


def reset_cap_solvers(spec: ScenarioSpec) -> None:
    """Drop any warm parametric solvers for this spec's benchmark.

    The solver pool is shared across the *cells of one sweep*, not
    across top-level invocations: a fresh ``run_scenarios`` (or a
    single-cell ``run_comparison``) must behave identically whether or
    not an earlier run in this process warmed the pool (otherwise solve
    audits — cold vs re-solve — would depend on test or call order).
    """
    shared = _shared_cache.get(_shared_key(spec))
    if shared is not None:
        shared.cap_solvers.clear()


def _shared_for(spec: ScenarioSpec) -> _Shared:
    key = _shared_key(spec)
    if key not in _shared_cache:
        gen = SCENARIO_BENCHMARKS[spec.benchmark]
        app_run = gen(WorkloadSpec(n_ranks=spec.n_ranks,
                                   iterations=spec.run_iterations, seed=spec.seed))
        app_lp = gen(WorkloadSpec(n_ranks=spec.n_ranks,
                                  iterations=spec.lp_iterations, seed=spec.seed))
        pm = make_power_models(
            spec.n_ranks, spec.efficiency_seed, sigma=spec.efficiency_sigma
        )
        # One frontier store per machine: the tracer fills it, every
        # runtime policy in the scenario reads it back.  Heterogeneous
        # nodes swap in the typed-device store (and device-aware engine);
        # the legacy node keeps the original code path untouched.
        nodes: list[NodeSpec] | None = None
        if spec.node != LEGACY_NODE:
            nodes = rank_nodes(get_node(spec.node), pm)
            store: FrontierStore | NodeFrontierStore = NodeFrontierStore(nodes)
        else:
            store = FrontierStore(pm)
        trace = trace_application(app_lp, pm, frontier_store=store)
        _shared_cache[key] = _Shared(
            app_run=app_run,
            app_lp=app_lp,
            power_models=pm,
            engine=Engine(pm, nodes=nodes),
            trace=trace,
            frontiers=store,
            instance=build_problem_instance(trace),
            nodes=nodes,
        )
    return _shared_cache[key]


def _steady_per_iteration(
    result: SimulationResult, first_iteration: int, n_iterations: int
) -> float:
    start = min(r.start_s for r in result.records if r.iteration >= first_iteration)
    return (result.makespan_s - start) / n_iterations


def _measured_time(result: SimulationResult, spec: ScenarioSpec, measure: str) -> float:
    """Per-iteration time over the entry's measurement window."""
    if measure == "steady":
        first = spec.run_iterations - spec.steady_window
        return _steady_per_iteration(result, first, spec.steady_window)
    first = spec.discard_iterations
    return _steady_per_iteration(
        result, first, spec.run_iterations - spec.discard_iterations
    )


def _measured_energy(
    result: SimulationResult, spec: ScenarioSpec, measure: str
) -> float:
    """Per-iteration task energy over the same window as the time."""
    if measure == "steady":
        first = spec.run_iterations - spec.steady_window
        n = spec.steady_window
    else:
        first = spec.discard_iterations
        n = spec.run_iterations - spec.discard_iterations
    return (
        sum(r.energy_j for r in result.records if r.iteration >= first) / n
    )


def _scope(rec: TraceRecorder | None, label: str):
    """The recorder's run scope, or a no-op when tracing is disabled."""
    return rec.run_scope(label) if rec is not None else nullcontext()


def _emit_power_counters(
    rec: TraceRecorder,
    result: SimulationResult,
    power_models: list[SocketPowerModel],
    job_cap_w: float,
) -> None:
    """Counter samples for the job power timeline and the cap it ran under.

    Every breakpoint of the piecewise-constant timeline becomes a sample,
    so the Perfetto counter track reproduces the timeline exactly; the cap
    is sampled at both ends to draw as a flat line over the same span.
    """
    timeline = job_power_timeline(result, power_models)
    for t, p in zip(timeline.times[:-1], timeline.power):
        rec.emit(
            CounterEvent(
                name="job_power_w", ts_s=float(t), values={"watts": float(p)}
            )
        )
    end_s = float(timeline.times[-1])
    final_w = float(timeline.power[-1]) if len(timeline.power) else 0.0
    rec.emit(CounterEvent(name="job_power_w", ts_s=end_s, values={"watts": final_w}))
    for t in (0.0, end_s):
        rec.emit(CounterEvent(name="cap_w", ts_s=t, values={"watts": job_cap_w}))


# ----------------------------------------------------------------------
def cell_payload(spec: ScenarioSpec, cell: ScenarioCell) -> dict:
    """The cache/journal payload of one cell: schema-guarded, spec-derived.

    Public because the service dispatcher journals cells it computes on
    behalf of queued jobs with exactly the payload ``run_scenarios``
    writes — the two must stay byte-compatible for resume to work across
    the CLI and the service.
    """
    return {
        "scenario_layer": SCENARIO_LAYER_VERSION,
        "cell_hash": spec.cell_hash(),
        "schedulable": cell.schedulable,
        "outcomes": {
            name: outcome.to_payload() for name, outcome in cell.outcomes.items()
        },
    }


def _cell_from_payload(
    spec: ScenarioSpec, cap_per_socket_w: float, payload: dict
) -> ScenarioCell | None:
    """Rehydrate a cached cell; None when the payload is stale or foreign.

    The guard is structural, not positional: the payload must carry the
    current ``SCENARIO_LAYER_VERSION``, the spec's own cell hash, and an
    outcome per policy instance name of the spec — a payload written by a
    different spec (or by the pre-scenario three-way field list) misses
    instead of silently mis-mapping fields.
    """
    if not isinstance(payload, dict):
        return None
    if payload.get("scenario_layer") != SCENARIO_LAYER_VERSION:
        return None
    if payload.get("cell_hash") != spec.cell_hash():
        return None
    outcomes_doc = payload.get("outcomes")
    if not isinstance(outcomes_doc, dict):
        return None
    labels = spec.policy_labels()
    if sorted(outcomes_doc) != sorted(labels):
        return None
    try:
        outcomes = {
            name: PolicyOutcome.from_payload(name, outcomes_doc[name])
            for name in labels
        }
    except (KeyError, TypeError, ValueError):
        return None
    return ScenarioCell(
        benchmark=spec.benchmark,
        cap_per_socket_w=cap_per_socket_w,
        n_ranks=spec.n_ranks,
        schedulable=bool(payload.get("schedulable", True)),
        outcomes=outcomes,
    )


def run_scenario_cell(
    spec: ScenarioSpec,
    cap_per_socket_w: float,
    cache: SolverCache | None = None,
    registry: PolicyRegistry | None = None,
) -> ScenarioCell:
    """Evaluate every policy of ``spec`` at one per-socket cap.

    ``cache`` memoizes the whole cell (all simulator replays and solver
    calls) by content address; None falls back to the ambient
    :class:`~repro.exec.options.ExecutionOptions` (default: no caching).
    A warm cell skips tracing, every engine run, and every solve.
    """
    registry = registry if registry is not None else default_registry()
    if cache is None:
        cache = get_execution_options().make_cache()
    key = None
    if cache is not None:
        key = scenario_cell_key(
            spec.cell_hash(), cap_per_socket_w, SCENARIO_LAYER_VERSION
        )
        payload = cache.get(key)
        if payload is not None:
            cell = _cell_from_payload(spec, cap_per_socket_w, payload)
            if cell is not None:
                metric_inc("cells.cached")
                return cell
            # Stale or foreign payload under our key: recompute (and
            # overwrite) rather than mis-map fields.
    metrics = current_metrics()
    t0 = time.perf_counter() if metrics is not None else 0.0
    c0 = time.process_time() if metrics is not None else 0.0
    with profile_block():
        cell = _run_scenario_cell(spec, cap_per_socket_w, cache, registry)
    if metrics is not None:
        metrics.inc("cells.computed")
        for outcome in cell.outcomes.values():
            if outcome.energy_j is not None:
                # Rounded to whole joules so the histogram stays in the
                # deterministic (integer-exact, merge-stable) family.
                metrics.observe(
                    "cell.energy_j",
                    int(round(outcome.energy_j)),
                    buckets=COUNT_BUCKETS,
                )
        metrics.observe(
            "cell.wall_s", time.perf_counter() - t0, operational=True
        )
        metrics.observe(
            "cell.cpu_s", time.process_time() - c0, operational=True
        )
    if cache is not None:
        cache.put(key, cell_payload(spec, cell))
    return cell


def _run_scenario_cell(
    spec: ScenarioSpec,
    cap_per_socket_w: float,
    cache: SolverCache | None,
    registry: PolicyRegistry,
) -> ScenarioCell:
    shared = _shared_for(spec)
    job_cap = cap_per_socket_w * spec.n_ranks
    rec = current_recorder()
    tag = f"{spec.benchmark} cap={cap_per_socket_w:g}W"

    min_cap = shared.app_run.metadata.get("min_cap_per_socket_w")
    if min_cap is not None and cap_per_socket_w < min_cap:
        outcomes = {
            p.label: PolicyOutcome(
                name=p.label, policy=p.policy,
                kind=registry.get(p.policy).kind, time_s=None,
            )
            for p in spec.policies
        }
        return ScenarioCell(
            benchmark=spec.benchmark,
            cap_per_socket_w=cap_per_socket_w,
            n_ranks=spec.n_ranks,
            schedulable=False,
            outcomes=outcomes,
        )

    ctx = PolicyContext(
        power_models=shared.power_models,
        job_cap_w=job_cap,
        app=shared.app_run,
        frontier_store=shared.frontiers,
        trace=shared.trace,
        instance=shared.instance,
        cache=cache,
        lp_iterations=spec.lp_iterations,
        cap_solvers=shared.cap_solvers,
        nodes=shared.nodes,
    )
    outcomes: dict[str, PolicyOutcome] = {}
    for pspec in spec.policies:
        entry = registry.get(pspec.policy)
        cfg = entry.resolve_config(pspec.config)
        label = pspec.label
        scope = partial(_scope, rec, f"{label} {tag}")
        if entry.kind == "runtime":
            policy = entry.build(ctx, cfg)
            with scope():
                result = shared.engine.run(shared.app_run, policy)
                if rec is not None:
                    _emit_power_counters(rec, result, shared.power_models, job_cap)
            extra: dict = {}
            reallocs = getattr(policy, "realloc_count", None)
            if reallocs is not None:
                extra["reallocs"] = reallocs
            outcomes[label] = PolicyOutcome(
                name=label, policy=pspec.policy, kind="runtime",
                time_s=_measured_time(result, spec, entry.measure), extra=extra,
                energy_j=_measured_energy(result, spec, entry.measure),
            )
        else:
            bound = entry.solve(ctx, cfg, scope)
            outcomes[label] = PolicyOutcome(
                name=label, policy=pspec.policy, kind="bound",
                time_s=bound.time_s, extra=dict(bound.extra),
                energy_j=bound.energy_j,
            )
    return ScenarioCell(
        benchmark=spec.benchmark,
        cap_per_socket_w=cap_per_socket_w,
        n_ranks=spec.n_ranks,
        schedulable=True,
        outcomes=outcomes,
    )


# ----------------------------------------------------------------------
def _scenario_cell_task(cell: tuple[str, float, str | None]) -> ScenarioCell:
    """One (spec, cap) cell — module-level so workers can unpickle it."""
    spec_json, cap, cache_root = cell
    spec = ScenarioSpec.from_json(spec_json)
    cache = SolverCache(cache_root) if cache_root is not None else None
    return run_scenario_cell(spec, cap, cache=cache)


def _cell_fault_key(item) -> str:
    """The stable fault-selection identity of one sweep item.

    Works for both task shapes — the pool's ``(spec_json, cap, root)``
    tuples and the serial path's bare caps — and deliberately excludes
    run-scoped paths (cache/temp directories), so two runs of the same
    scenario fault exactly the same cells regardless of where their
    caches live.  Module-level so it pickles to workers.
    """
    cap = item[1] if isinstance(item, tuple) else item
    return f"cap={float(cap):g}"


def _failed_cell(
    spec: ScenarioSpec,
    cap_per_socket_w: float,
    registry: PolicyRegistry,
    failure: CellFailure,
) -> ScenarioCell:
    """The gap cell standing in for a computation that failed outright."""
    outcomes = {
        p.label: PolicyOutcome(
            name=p.label, policy=p.policy,
            kind=registry.get(p.policy).kind, time_s=None,
        )
        for p in spec.policies
    }
    return ScenarioCell(
        benchmark=spec.benchmark,
        cap_per_socket_w=cap_per_socket_w,
        n_ranks=spec.n_ranks,
        schedulable=True,
        outcomes=outcomes,
        failure=failure,
    )


def run_scenarios(
    spec: ScenarioSpec,
    workers: int | None = None,
    cache: SolverCache | None = None,
    registry: PolicyRegistry | None = None,
    *,
    keep_going: bool = False,
    journal: SweepJournal | str | Path | None = None,
    faults: FaultInjector | None = None,
    progress: ProgressReporter | None = None,
) -> ScenarioResult:
    """Run the full scenario: every policy at every cap of the grid.

    Every cap is an independent, fully seeded cell; with ``workers > 1``
    the cells fan out over a process pool with results in cap order —
    bit-identical to the serial sweep.  ``workers``/``cache`` default to
    the ambient :class:`~repro.exec.options.ExecutionOptions` (serial,
    uncached).  A non-default ``registry`` runs serially: worker
    processes rebuild policies from the default registry only.

    Resilience (see ``docs/execution.md``):

    * ``keep_going`` — a cell that exhausts its attempts becomes a
      failed :class:`ScenarioCell` (a rendered gap, a journal record, a
      ``cell_failure`` trace event, a manifest entry) instead of
      aborting the sweep;
    * ``journal`` — a :class:`~repro.exec.checkpoint.SweepJournal`
      (or its path) checkpointing every settled cell as it completes;
      on entry, journaled-ok cells are rehydrated without recomputation,
      so an interrupted sweep resumes where it stopped and produces
      byte-identical output.  Failed cells are retried on resume.
      Without ``keep_going``, a failure still aborts — after the
      remaining cells settle and are journaled;
    * ``faults`` — a :class:`~repro.exec.faults.FaultInjector` wrapped
      around the cell task (chaos testing; cells are selected by their
      stable ``cap=<cap>`` identity, never by run-scoped paths).

    ``progress`` — an optional
    :class:`~repro.obs.progress.ProgressReporter` receiving one
    ``update(ok)`` per settled cell, in cap order (journal-resumed cells
    settle immediately).  The heartbeat stream is out-of-band: it never
    alters results, journals, or any byte-deterministic artifact.
    """
    opts = get_execution_options()
    if workers is None:
        workers = opts.workers
    workers = resolve_workers(workers)  # 0 -> all cores, negative -> error
    if cache is None:
        cache = opts.make_cache()
    if isinstance(journal, (str, Path)):
        journal = SweepJournal(journal)
    reg = registry if registry is not None else default_registry()
    reset_cap_solvers(spec)
    caps = [float(cap) for cap in spec.caps_per_socket_w]
    keys = {
        cap: scenario_cell_key(spec.cell_hash(), cap, SCENARIO_LAYER_VERSION)
        for cap in caps
    }

    cells: dict[float, ScenarioCell] = {}
    if journal is not None:
        records = journal.load()
        for cap in caps:
            doc = records.get(keys[cap])
            if doc is not None and doc.get("status") == "ok":
                cell = _cell_from_payload(spec, cap, doc.get("payload"))
                if cell is not None:
                    # Same structural guard as the cache path: a stale
                    # or foreign payload is recomputed, not mis-mapped.
                    cells[cap] = cell
                    count("journal.resumed")
                    # Resumption depends on what a prior (possibly
                    # interrupted) run got through: operational.
                    metric_inc("journal.resumed", operational=True)
                    if progress is not None:
                        progress.update(ok=True, resumed=True)
    pending = [cap for cap in caps if cap not in cells]
    # Within-run dedup: a grid listing the same cap twice computes that
    # cell once; `cells` is keyed by cap, so result assembly fans the
    # single outcome out to every occurrence.  The multiplicity map
    # keeps progress honest — `done` must still reach len(caps).
    multiplicity = {cap: pending.count(cap) for cap in dict.fromkeys(pending)}
    deduped = len(pending) - len(multiplicity)
    if deduped:
        count("cells.deduped", deduped)
        # Derived from the spec's cap grid alone, so deterministic.
        metric_inc("cells.deduped", deduped)
    pending = list(multiplicity)

    use_pool = workers > 1 and len(pending) > 1 and registry is None
    if use_pool:
        cache_root = str(cache.root) if cache is not None else None
        spec_json = spec.to_json()
        items: list = [(spec_json, cap, cache_root) for cap in pending]
        fn = _scenario_cell_task
    else:
        items = list(pending)
        fn = partial(run_scenario_cell, spec, cache=cache, registry=registry)
    if faults is not None:
        # Re-anchor the injector on the stable cell identity and the
        # actual cache root, whatever shape the items take.
        faults = FaultInjector(
            faults.spec,
            key_fn=faults.key_fn if faults.key_fn is not None else _cell_fault_key,
            cache_root=(
                faults.cache_root if faults.cache_root is not None
                else (str(cache.root) if cache is not None else None)
            ),
        )
        fn = faults.wrap(fn)

    # Non-default transport (a spawned socket worker fleet, or inline
    # for debugging) per the ambient options; "process" leaves backend
    # None so the runner builds its classic per-map process pool.
    backend = None
    if use_pool and opts.task_backend != "process":
        backend = make_backend(opts.task_backend)

    if (
        keep_going
        or journal is not None
        or faults is not None
        or progress is not None
    ):
        def on_outcome(outcome: CellOutcome) -> None:
            # Fires in submission (cap) order as each cell settles, so
            # an interrupted sweep has journaled its whole settled
            # prefix.  Worker cache hit/miss accounting arrives via the
            # telemetry snapshots ParallelRunner merges.
            cap = pending[outcome.index]
            if progress is not None:
                for _ in range(multiplicity[cap]):
                    progress.update(ok=outcome.ok)
            if outcome.ok:
                if journal is not None:
                    # wall_s is a diagnostic extra (slowest-cell tables
                    # in `repro-exp report`); journal *payloads* stay
                    # byte-deterministic and resume ignores it.
                    journal.record_ok(
                        keys[cap], cap, cell_payload(spec, outcome.value),
                        spec_hash=spec.spec_hash(),
                        wall_s=round(outcome.elapsed_s, 6),
                    )
                return
            count("cell.failed")
            metric_inc("cell.failed")
            emit(CellFailureEvent(
                benchmark=spec.benchmark,
                cap_per_socket_w=cap,
                error_type=outcome.error_type,
                error_message=outcome.error_message,
                attempts=outcome.attempts,
            ))
            if journal is not None:
                journal.record_failed(
                    keys[cap], cap, outcome.failure_doc(),
                    spec_hash=spec.spec_hash(),
                )

        runner = ParallelRunner(
            max_workers=workers if use_pool else 1,
            timeout_s=opts.task_timeout_s,
            retries=opts.task_retries,
            backoff_s=opts.task_backoff_s,
            backoff_seed=spec.seed,
            batch_size=opts.task_batch_size,
            backend=backend,
        )
        first_failed: CellOutcome | None = None
        try:
            for cap, outcome in zip(
                pending, runner.map_outcomes(fn, items, on_outcome=on_outcome)
            ):
                if outcome.ok:
                    cells[cap] = outcome.value
                else:
                    cells[cap] = _failed_cell(
                        spec, cap, reg, CellFailure.from_outcome(outcome)
                    )
                    if first_failed is None:
                        first_failed = outcome
        finally:
            if backend is not None:
                backend.shutdown()
        if first_failed is not None and not keep_going:
            raise ParallelExecutionError(
                f"cell cap={pending[first_failed.index]:g} "
                f"{first_failed.error_type} on all {first_failed.attempts} "
                f"attempt(s): {first_failed.error_message}"
            ) from first_failed.error
    elif use_pool:
        runner = ParallelRunner(
            max_workers=workers,
            timeout_s=opts.task_timeout_s,
            retries=opts.task_retries,
            backoff_s=opts.task_backoff_s,
            backoff_seed=spec.seed,
            batch_size=opts.task_batch_size,
            backend=backend,
        )
        try:
            for cap, cell in zip(pending, runner.map(fn, items)):
                cells[cap] = cell
        finally:
            if backend is not None:
                backend.shutdown()
    else:
        for cap in pending:
            cells[cap] = fn(cap)

    metrics = current_metrics()
    if metrics is not None:
        metrics.set_gauge("sweep.cells_total", len(caps))
    return ScenarioResult(spec=spec, cells=[cells[cap] for cap in caps])


# ----------------------------------------------------------------------
def policy_iteration_time(
    policy: str,
    app,
    power_models: list[SocketPowerModel],
    job_cap_w: float,
    iterations: int,
    config: dict | None = None,
    trace: Trace | None = None,
    cache: SolverCache | None = None,
    registry: PolicyRegistry | None = None,
    label: str | None = None,
) -> float | None:
    """Raw per-iteration time of one registered policy on one app + cap.

    The building block for callers that model performance as a function
    of power (the cluster co-scheduler's anchor evaluations): a runtime
    policy is engine-run over the whole application (makespan divided by
    ``iterations``); a bound is solved on ``trace`` (traced on demand
    when omitted).  Returns None when the bound is infeasible at the cap.
    ``label``, when given, wraps the evaluation in a trace scope so
    cluster anchors are attributable in exported traces.
    """
    registry = registry if registry is not None else default_registry()
    entry = registry.get(policy)
    cfg = entry.resolve_config(config)
    rec = current_recorder()
    scope = partial(_scope, rec, label) if label is not None else nullcontext
    if entry.kind == "bound":
        if trace is None:
            trace = trace_application(app, power_models)
        ctx = PolicyContext(
            power_models=power_models, job_cap_w=job_cap_w, app=app,
            trace=trace, cache=cache, lp_iterations=iterations,
        )
        bound = entry.solve(ctx, cfg, scope)
        return bound.time_s
    ctx = PolicyContext(
        power_models=power_models, job_cap_w=job_cap_w, app=app,
        lp_iterations=iterations,
    )
    policy_obj = entry.build(ctx, cfg)
    with scope():
        result = Engine(power_models).run(app, policy_obj)
    return result.makespan_s / iterations
