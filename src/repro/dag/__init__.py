"""Application DAG substrate: graphs of MPI events, tasks, and messages."""

from .analysis import (
    DagSchedule,
    critical_path_edges,
    edge_slack,
    fastest_configurations,
    fastest_durations,
    frontier_fastest_configurations,
    frontier_fastest_durations,
    frontier_unconstrained_schedule,
    schedule_fixed_durations,
    unconstrained_schedule,
)
from .builder import DagBuilder
from .transform import reduce_slack, stretch_limits
from .graph import EdgeKind, TaskEdge, TaskGraph, Vertex, VertexKind
from .validate import deep_validate, to_networkx

__all__ = [
    "DagBuilder",
    "DagSchedule",
    "EdgeKind",
    "TaskEdge",
    "TaskGraph",
    "Vertex",
    "VertexKind",
    "critical_path_edges",
    "deep_validate",
    "edge_slack",
    "fastest_configurations",
    "fastest_durations",
    "frontier_fastest_configurations",
    "frontier_fastest_durations",
    "frontier_unconstrained_schedule",
    "reduce_slack",
    "stretch_limits",
    "schedule_fixed_durations",
    "to_networkx",
    "unconstrained_schedule",
]
