"""Figure 13: BT — LP and Conductor improvement vs Static.

Paper: Static trails the optimum by ~75% at 30 W/socket (RAPL pushes some
processors far below nominal frequency while the LP and Conductor shift
power to the heavy zones); the three methods converge within a few percent
at high caps.
"""

from conftest import engage, improvements


def test_fig13_regeneration(benchmark, sweeps):
    rows = benchmark(
        lambda: [
            (r.cap_per_socket_w, r.lp_vs_static_pct, r.conductor_vs_static_pct)
            for r in sweeps["bt"]
        ]
    )
    assert len(rows) == 5


def test_fig13_big_low_cap_gain(benchmark, sweeps):
    engage(benchmark)
    r30 = sweeps["bt"][0]
    assert r30.cap_per_socket_w == 30.0
    # Paper: 74.9%; the shape requirement is a massive (>45%) gain.
    assert r30.lp_vs_static_pct > 45.0


def test_fig13_conductor_gains_substantially(benchmark, sweeps):
    """Conductor's nonuniform allocation captures a large share at 30 W
    (paper: Static trails LP by 75%, Conductor by 24%)."""
    engage(benchmark)
    r30 = sweeps["bt"][0]
    assert r30.conductor_vs_static_pct > 10.0
    assert r30.lp_vs_conductor_pct > 5.0


def test_fig13_decays_with_cap(benchmark, sweeps):
    engage(benchmark)
    vals = improvements(sweeps["bt"], "lp_vs_static_pct")
    assert vals == sorted(vals, reverse=True)
    # Paper: within ~5-12% at the highest tested cap.
    assert vals[-1] < 20.0


def test_fig13_static_throttles_below_nominal(benchmark, sweeps):
    """Mechanism check: at 30 W/socket, Static must run BT tasks below the
    lowest P-state on leaky sockets (the paper's '22% of max clock')."""
    engage(benchmark)
    from repro.experiments.runner import make_power_models
    from repro.machine import RaplController
    from repro.workloads import BT_KERNEL

    models = make_power_models(BENCH_RANKS := 16, 42)
    leakiest = max(models, key=lambda m: m.efficiency)
    heavy = BT_KERNEL.scaled(1.8)
    decision = RaplController(leakiest).decide(heavy, 8, 30.0)
    assert decision.config.effective_freq_ghz < 1.2 + 1e-9
