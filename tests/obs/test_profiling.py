"""ProfileCollector: per-cell cProfile aggregation and the top-N table."""

from __future__ import annotations

import pytest

from repro.obs.profiling import (
    PROFILE_SCHEMA_VERSION,
    ProfileCollector,
    current_profile,
    profile_block,
    use_profile,
)


def _burn(n: int = 2000) -> int:
    return sum(i * i for i in range(n))


def test_profile_block_is_a_noop_without_a_collector():
    assert current_profile() is None
    with profile_block():
        _burn()
    assert current_profile() is None


def test_profile_block_records_into_the_active_collector():
    collector = ProfileCollector()
    with use_profile(collector):
        assert current_profile() is collector
        with profile_block():
            _burn()
        with profile_block():
            _burn()
    assert current_profile() is None
    assert collector.blocks == 2
    assert any("_burn" in key for key in collector.stats)
    # Two profiled blocks, one _burn call each.
    (burn_key,) = [k for k in collector.stats if "(_burn)" in k]
    assert collector.stats[burn_key][0] == 2


def test_snapshot_round_trip_and_merge():
    a, b = ProfileCollector(), ProfileCollector()
    with use_profile(a), profile_block():
        _burn()
    with use_profile(b), profile_block():
        _burn()
    snapshot = b.to_dict()
    assert snapshot["version"] == PROFILE_SCHEMA_VERSION
    a.merge(snapshot)
    assert a.blocks == 2
    (burn_key,) = [k for k in a.stats if "(_burn)" in k]
    assert a.stats[burn_key][0] == 2


def test_merge_rejects_version_mismatch():
    snapshot = ProfileCollector().to_dict()
    snapshot["version"] = PROFILE_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        ProfileCollector().merge(snapshot)


def test_top_sorts_by_cumtime_with_key_tiebreak():
    collector = ProfileCollector()
    collector.stats = {
        "b.py:1(slow)": [1, 0.0, 2.0],
        "a.py:1(tied)": [1, 0.0, 1.0],
        "c.py:1(tied2)": [1, 0.0, 1.0],
    }
    keys = [row[0] for row in collector.top(3)]
    assert keys == ["b.py:1(slow)", "a.py:1(tied)", "c.py:1(tied2)"]
    assert len(collector.top(1)) == 1


def test_table_renders_header_and_rows():
    collector = ProfileCollector()
    empty = collector.table()
    assert "0 profiled cell(s)" in empty
    assert "(no profile data recorded)" in empty
    with use_profile(collector), profile_block():
        _burn()
    table = collector.table(5)
    assert "1 profiled cell(s)" in table
    assert "ncalls" in table and "cumtime" in table
    assert "_burn" in table
