"""Typed metrics: recording, snapshots, deterministic merges, exporters.

The load-bearing property is the determinism contract of
:mod:`repro.obs.metrics`: counters and integer histograms merge
order-insensitively, so the deterministic subset of a snapshot is
byte-identical no matter how the work was sharded across workers.  A
hypothesis property drives that directly; golden serial-vs-parallel
sweeps assert it end to end in ``tests/scenarios``.
"""

from __future__ import annotations

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.obs.metrics import (
    COUNT_BUCKETS,
    ITERATION_BUCKETS,
    METRICS_SCHEMA_VERSION,
    TIME_BUCKETS_S,
    Histogram,
    Metrics,
    current_metrics,
    inc,
    observe,
    prometheus_text,
    set_gauge,
    timed,
    use_metrics,
    validate_metrics_doc,
)


# ----------------------------------------------------------------------
# Histogram mechanics
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_observe_buckets_by_upper_bound(self):
        h = Histogram((1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        # le=1.0 catches 0.5 and 1.0; le=10.0 catches 5.0 and 10.0;
        # the implicit +Inf bucket catches 11.0.
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert (h.min, h.max) == (0.5, 11)

    def test_integral_floats_become_exact_ints(self):
        h = Histogram((10.0,))
        h.observe(3.0)
        h.observe(4)
        assert h.sum == 7
        assert isinstance(h.sum, int)

    def test_round_trip_and_merge(self):
        a, b = Histogram(ITERATION_BUCKETS), Histogram(ITERATION_BUCKETS)
        for v in (1, 7, 300):
            a.observe(v)
        b.observe(12)
        a.merge(b.to_dict())
        assert a.count == 4
        assert a.sum == 1 + 7 + 300 + 12
        back = Histogram.from_dict(a.to_dict())
        assert back.to_dict() == a.to_dict()

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(ITERATION_BUCKETS)
        with pytest.raises(ValueError, match="bounds mismatch"):
            a.merge(Histogram(COUNT_BUCKETS).to_dict())

    def test_merge_empty_keeps_min_max_none(self):
        a = Histogram((1.0,))
        a.merge(Histogram((1.0,)).to_dict())
        assert a.count == 0
        assert a.min is None and a.max is None
        assert a.mean() is None


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counters_gauges_histograms(self):
        m = Metrics()
        m.inc("cache.hit")
        m.inc("cache.hit", 2)
        m.set_gauge("sweep.cells_total", 9)
        m.observe("solve.iterations", 42, buckets=ITERATION_BUCKETS)
        assert m.counter("cache.hit") == 3
        assert m.counter("never.touched") == 0
        assert m.gauges["sweep.cells_total"] == 9
        assert m.histograms["solve.iterations"].count == 1

    def test_operational_names_drop_from_deterministic_view(self):
        m = Metrics()
        m.inc("cache.hit")
        m.inc("solve.cold", operational=True)
        m.set_gauge("eta_s", 12.5, operational=True)
        m.observe("cell.wall_s", 0.25, operational=True)
        full = m.to_dict()
        det = m.to_dict(deterministic_only=True)
        assert full["operational"] == ["cell.wall_s", "eta_s", "solve.cold"]
        assert "operational" not in det
        assert set(det["counters"]) == {"cache.hit"}
        assert det["gauges"] == {}
        assert det["histograms"] == {}

    def test_merge_adds_counters_and_histograms(self):
        a, b = Metrics(), Metrics()
        a.inc("cache.hit", 2)
        b.inc("cache.hit", 3)
        b.inc("cache.miss")
        b.observe("solve.iterations", 5, buckets=ITERATION_BUCKETS)
        b.set_gauge("sweep.cells_total", 4)
        a.merge(b.to_dict())
        assert a.counter("cache.hit") == 5
        assert a.counter("cache.miss") == 1
        assert a.gauges["sweep.cells_total"] == 4
        assert a.histograms["solve.iterations"].sum == 5

    def test_merge_rejects_version_mismatch(self):
        doc = Metrics().to_dict()
        doc["version"] = METRICS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            Metrics().merge(doc)

    def test_snapshot_json_is_sorted_and_stable(self):
        m = Metrics()
        m.inc("zz")
        m.inc("aa")
        doc = m.to_dict()
        assert list(doc["counters"]) == ["aa", "zz"]
        assert json.loads(m.to_json()) == doc

    def test_summary_renders_every_type(self):
        m = Metrics()
        assert "(no metrics recorded)" in m.summary()
        m.inc("cache.hit", 7)
        m.set_gauge("sweep.cells_total", 3)
        m.observe("solve.iterations", 10, buckets=ITERATION_BUCKETS)
        text = m.summary()
        assert "cache.hit" in text and "7" in text
        assert "n=1" in text


# ----------------------------------------------------------------------
# Contextvar activation
# ----------------------------------------------------------------------
class TestActivation:
    def test_module_helpers_are_noops_when_disabled(self):
        assert current_metrics() is None
        inc("cache.hit")
        set_gauge("g", 1)
        observe("h", 0.5)
        with timed("t"):
            pass
        assert current_metrics() is None

    def test_use_metrics_routes_helpers(self):
        m = Metrics()
        with use_metrics(m) as active:
            assert active is m and current_metrics() is m
            inc("cache.hit")
            set_gauge("g", 2.0)
            observe("solve.iterations", 3, buckets=ITERATION_BUCKETS)
            with timed("cell.wall_s"):
                pass
        assert current_metrics() is None
        assert m.counter("cache.hit") == 1
        assert m.gauges["g"] == 2.0
        # timed() is always operational: wall seconds never leak into
        # the deterministic view.
        assert "cell.wall_s" in m.operational
        assert m.histograms["cell.wall_s"].count == 1


# ----------------------------------------------------------------------
# The order-insensitivity property behind serial == parallel
# ----------------------------------------------------------------------
EVENTS = st.lists(
    st.one_of(
        st.tuples(
            st.just("inc"),
            st.sampled_from(["cache.hit", "cache.miss", "solve.total"]),
            st.integers(min_value=1, max_value=5),
        ),
        st.tuples(
            st.just("observe"),
            st.sampled_from(["sim.tasks", "solve.iterations"]),
            st.integers(min_value=0, max_value=20_000),
        ),
    ),
    max_size=40,
)


@given(events=EVENTS, data=st.data())
@settings(max_examples=60, deadline=None)
def test_merge_is_order_insensitive_for_deterministic_fields(events, data):
    """Any sharding of an event stream across workers, merged in any
    order, yields the same deterministic snapshot as one serial worker —
    counter addition and integer histogram sums are commutative and
    exact."""
    serial = Metrics()
    n_workers = data.draw(st.integers(min_value=1, max_value=4))
    workers = [Metrics() for _ in range(n_workers)]
    for event in events:
        kind, name, value = event
        target = data.draw(
            st.integers(min_value=0, max_value=n_workers - 1), label="worker"
        )
        for m in (serial, workers[target]):
            if kind == "inc":
                m.inc(name, value)
            else:
                m.observe(name, value, buckets=COUNT_BUCKETS)
    merged = Metrics()
    order = data.draw(st.permutations(list(range(n_workers))), label="order")
    for i in order:
        merged.merge(workers[i].to_dict())
    assert (
        json.dumps(merged.to_dict(deterministic_only=True), sort_keys=True)
        == json.dumps(serial.to_dict(deterministic_only=True), sort_keys=True)
    )


# ----------------------------------------------------------------------
# Exporters and the validator
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_counter_gauge_histogram_shapes(self):
        m = Metrics()
        m.inc("cache.hit", 3)
        m.set_gauge("sweep.cells_total", 5)
        h = Histogram((1.0, 10.0))
        for v in (0.5, 5, 20):
            h.observe(v)
        m.histograms["solve.wall_s"] = h
        text = prometheus_text(m)
        assert "# TYPE repro_cache_hit_total counter" in text
        assert "repro_cache_hit_total 3" in text
        assert "repro_sweep_cells_total 5" in text
        # Cumulative buckets: le=1 sees 1, le=10 sees 2, +Inf sees all 3.
        assert 'repro_solve_wall_s_bucket{le="1.0"} 1' in text
        assert 'repro_solve_wall_s_bucket{le="10.0"} 2' in text
        assert 'repro_solve_wall_s_bucket{le="+Inf"} 3' in text
        assert "repro_solve_wall_s_count 3" in text
        assert text.endswith("\n")

    def test_accepts_snapshot_dicts_and_is_stable(self):
        m = Metrics()
        m.inc("a.b")
        assert prometheus_text(m) == prometheus_text(m.to_dict())
        assert prometheus_text(Metrics()) == ""


def _parse_prom(text: str) -> dict[str, float]:
    """Parse exposition text into ``{series_name: value}`` (floats)."""
    series: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name not in series, f"duplicate series {name}"
        series[name] = float(value)
    return series


class TestPrometheusValues:
    def test_infinities_render_exposition_spellings(self):
        m = Metrics()
        m.set_gauge("frontier.cap_w", float("inf"))
        m.set_gauge("frontier.floor_w", float("-inf"))
        m.set_gauge("frontier.slack", float("nan"))
        text = prometheus_text(m)
        assert "repro_frontier_cap_w +Inf\n" in text
        assert "repro_frontier_floor_w -Inf\n" in text
        assert "repro_frontier_slack NaN\n" in text
        # Python's repr spellings ("inf"/"-inf"/"nan") do not parse under
        # the exposition grammar and must never appear as values.
        for line in text.splitlines():
            if not line.startswith("#"):
                assert line.rsplit(" ", 1)[1] not in ("inf", "-inf", "nan")

    def test_infinite_gauge_output_parses(self):
        m = Metrics()
        m.inc("cache.hit")
        m.set_gauge("frontier.cap_w", float("inf"))
        m.observe("solve.iterations", 3, buckets=ITERATION_BUCKETS)
        series = _parse_prom(prometheus_text(m))
        assert series["repro_frontier_cap_w"] == float("inf")


class TestPrometheusCollisions:
    def test_sanitization_collisions_get_deterministic_suffixes(self):
        m = Metrics()
        m.set_gauge("cell.wall_s", 1.0)
        m.set_gauge("cell_wall_s", 2.0)
        text = prometheus_text(m)
        series = _parse_prom(text)
        # "cell.wall_s" sorts first ("." < "_") and keeps the base name.
        assert series["repro_cell_wall_s"] == 1.0
        assert series["repro_cell_wall_s_2"] == 2.0
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines)) == 2

    def test_suffix_skips_identifiers_already_taken(self):
        m = Metrics()
        m.set_gauge("a.b", 1.0)
        m.set_gauge("a_b", 2.0)
        m.set_gauge("a_b_2", 3.0)  # a singleton already owns the _2 spot
        series = _parse_prom(prometheus_text(m))
        assert series["repro_a_b"] == 1.0
        assert series["repro_a_b_2"] == 3.0
        assert series["repro_a_b_3"] == 2.0

    def test_cross_family_collisions_disambiguate(self):
        m = Metrics()
        m.inc("x", 1)
        m.set_gauge("x", 2.0)
        series = _parse_prom(prometheus_text(m))
        # Same original name: family order breaks the tie, so the counter
        # keeps the base (its _total suffix lands on repro_x_total).
        assert series["repro_x_total"] == 1
        assert series["repro_x_2"] == 2.0

    def test_output_stays_byte_stable(self):
        m = Metrics()
        m.set_gauge("cell.wall_s", 1.0)
        m.set_gauge("cell_wall_s", 2.0)
        m.inc("cell.wall_s".replace(".", "-"), 4)
        assert prometheus_text(m) == prometheus_text(m.to_dict())


class TestPrometheusRoundTrip:
    def test_three_kind_round_trip(self):
        m = Metrics()
        m.inc("cache.hit", 3)
        m.set_gauge("queue.depth", 7)
        m.observe("solve.iterations", 5, buckets=(1.0, 10.0))
        m.observe("solve.iterations", 50, buckets=(1.0, 10.0))
        series = _parse_prom(prometheus_text(m))
        assert series["repro_cache_hit_total"] == 3
        assert series["repro_queue_depth"] == 7
        assert series['repro_solve_iterations_bucket{le="1.0"}'] == 0
        assert series['repro_solve_iterations_bucket{le="10.0"}'] == 1
        assert series['repro_solve_iterations_bucket{le="+Inf"}'] == 2
        assert series["repro_solve_iterations_sum"] == 55
        assert series["repro_solve_iterations_count"] == 2


class TestValidator:
    def test_valid_snapshots_pass(self):
        m = Metrics()
        m.inc("cache.hit")
        m.observe("solve.iterations", 3, buckets=ITERATION_BUCKETS)
        m.observe("cell.wall_s", 0.01, operational=True)
        assert validate_metrics_doc(m.to_dict()) == []
        assert validate_metrics_doc(m.to_dict(deterministic_only=True)) == []

    def test_rejects_structural_problems(self):
        assert validate_metrics_doc("nope") == ["snapshot is not an object"]
        assert any(
            "version" in e for e in validate_metrics_doc({"version": 99})
        )
        doc = {
            "version": METRICS_SCHEMA_VERSION,
            "counters": {"c": 1.5},
            "gauges": {"g": "high"},
            "histograms": {
                "h": {
                    "bounds": [1.0, 1.0],
                    "counts": [1],
                    "count": 3,
                    "sum": 0,
                    "min": 5,
                    "max": 2,
                }
            },
        }
        errors = "\n".join(validate_metrics_doc(doc))
        assert "counter c" in errors
        assert "gauge g" in errors
        assert "counts" in errors
        assert "strictly increasing" in errors
        assert "min 5 > max 2" in errors

    def test_rejects_malformed_sections_and_summaries(self):
        base = {
            "version": METRICS_SCHEMA_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert "counters missing or not an object" in validate_metrics_doc(
            dict(base, counters=[])
        )
        assert "gauges missing or not an object" in validate_metrics_doc(
            dict(base, gauges=3)
        )
        assert "histograms missing or not an object" in validate_metrics_doc(
            dict(base, histograms="h")
        )
        assert "operational is not a list" in validate_metrics_doc(
            dict(base, operational="cell.wall_s")
        )
        # Booleans are ints in Python but not valid metric values.
        errors = validate_metrics_doc(
            dict(base, counters={"c": True}, gauges={"g": False})
        )
        assert any("counter c" in e for e in errors)
        assert any("gauge g" in e for e in errors)

    def test_rejects_inconsistent_histograms(self):
        def doc_with(hist):
            return {
                "version": METRICS_SCHEMA_VERSION,
                "counters": {},
                "gauges": {},
                "histograms": {"h": hist},
            }

        errors = "\n".join(validate_metrics_doc(doc_with("nope")))
        assert "not an object" in errors
        errors = "\n".join(validate_metrics_doc(doc_with({"count": 1})))
        assert "bounds/counts missing" in errors
        # One count too many for the bounds.
        errors = "\n".join(validate_metrics_doc(doc_with({
            "bounds": [1.0], "counts": [1, 0, 0], "count": 1,
            "sum": 1, "min": 1, "max": 1,
        })))
        assert "want bounds+1" in errors
        # Bucket counts disagreeing with the total.
        errors = "\n".join(validate_metrics_doc(doc_with({
            "bounds": [1.0], "counts": [1, 0], "count": 3,
            "sum": 1, "min": 1, "max": 1,
        })))
        assert "bucket counts sum to 1, count says 3" in errors
        # Populated histogram missing its summary extremes.
        errors = "\n".join(validate_metrics_doc(doc_with({
            "bounds": [1.0], "counts": [1, 0], "count": 1,
            "sum": 1, "min": None, "max": None,
        })))
        assert "min/max missing" in errors

    def test_default_bucket_families_are_valid_histograms(self):
        for buckets in (TIME_BUCKETS_S, ITERATION_BUCKETS, COUNT_BUCKETS):
            Histogram(buckets)  # constructor enforces strict monotonicity
