"""Typed trace events: what the instrumented layers report, as data.

Every decision loop in the system — the discrete-event engine advancing
rank clocks, Conductor shifting watts between sockets, RAPL bottoming
out below a cap, the LP solver answering a re-solve from a frozen model
— emits one of the event types below into the active
:class:`~repro.obs.recorder.TraceRecorder`.  Events are plain frozen
dataclasses with a canonical :meth:`to_dict` form; the recorder stores
and ships that dict form, and :mod:`repro.obs.export` renders it as
Chrome trace-event JSON and JSONL.

Two timestamp conventions coexist:

* *simulated* events (tasks, MPI waits, collectives, reallocations,
  counters) carry ``ts_s`` in simulated seconds — they land on the run's
  timeline and are byte-identical across repeated seeded runs;
* *logical* events (solver activity, cap-exceeded reports) carry
  ``ts_s=None`` — they have no simulated time and are ordered by
  emission sequence on dedicated tracks.

The module is stdlib-only: it sits below every other layer (the
simulator, the runtimes, and the solver all import it), so it must not
import anything from ``repro`` or from third-party packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

__all__ = [
    "TaskEvent",
    "MpiWaitEvent",
    "CollectiveEvent",
    "ReallocEvent",
    "CapExceededEvent",
    "SolveEvent",
    "CounterEvent",
    "CellFailureEvent",
    "EVENT_KINDS",
]


@dataclass(frozen=True)
class TaskEvent:
    """One task execution: where, when, and in which DVFS state."""

    kind: ClassVar[str] = "task"

    label: str
    rank: int
    iteration: int
    ts_s: float
    dur_s: float
    freq_ghz: float
    threads: int
    duty: float
    power_w: float

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.label,
            "rank": self.rank,
            "ts_s": self.ts_s,
            "dur_s": self.dur_s,
            "args": {
                "iteration": self.iteration,
                "freq_ghz": self.freq_ghz,
                "threads": self.threads,
                "duty": self.duty,
                "power_w": self.power_w,
            },
        }


@dataclass(frozen=True)
class MpiWaitEvent:
    """Time a rank spent blocked in a receive or wait call."""

    kind: ClassVar[str] = "mpi_wait"

    name: str  # "recv" or "wait"
    rank: int
    ts_s: float
    dur_s: float

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "rank": self.rank,
            "ts_s": self.ts_s,
            "dur_s": self.dur_s,
            "args": {},
        }


@dataclass(frozen=True)
class CollectiveEvent:
    """One rank's span inside a collective (or Pcontrol barrier)."""

    kind: ClassVar[str] = "collective"

    name: str  # collective kind, or "pcontrol"
    rank: int
    ts_s: float
    dur_s: float

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "rank": self.rank,
            "ts_s": self.ts_s,
            "dur_s": self.dur_s,
            "args": {},
        }


@dataclass(frozen=True)
class ReallocEvent:
    """A Conductor power-reallocation decision at a Pcontrol barrier."""

    kind: ClassVar[str] = "realloc"

    ts_s: float
    iteration: int
    job_cap_w: float
    alloc_before_w: tuple[float, ...]
    alloc_after_w: tuple[float, ...]

    def to_dict(self) -> dict:
        moved = sum(
            abs(a - b) for a, b in zip(self.alloc_after_w, self.alloc_before_w)
        ) / 2.0
        return {
            "kind": self.kind,
            "name": "power_realloc",
            "rank": None,
            "ts_s": self.ts_s,
            "dur_s": None,
            "args": {
                "iteration": self.iteration,
                "job_cap_w": self.job_cap_w,
                "alloc_before_w": list(self.alloc_before_w),
                "alloc_after_w": list(self.alloc_after_w),
                "moved_w": moved,
            },
        }


@dataclass(frozen=True)
class CapExceededEvent:
    """RAPL bottomed out: even the deepest throttle exceeds the cap."""

    kind: ClassVar[str] = "cap_exceeded"

    cap_w: float
    power_w: float

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": "cap_exceeded",
            "rank": None,
            "ts_s": None,
            "dur_s": None,
            "args": {"cap_w": self.cap_w, "power_w": self.power_w},
        }


@dataclass(frozen=True)
class SolveEvent:
    """One LP/MILP solve: which model, cold or parametric re-solve."""

    kind: ClassVar[str] = "solve"

    program: str
    source: str  # "cold" | "resolve"
    backend: str  # "highs-direct" | "linprog" | "milp"
    rows: int
    cols: int
    nnz: int
    status: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": f"solve:{self.program}",
            "rank": None,
            "ts_s": None,
            "dur_s": None,
            "args": {
                "source": self.source,
                "backend": self.backend,
                "rows": self.rows,
                "cols": self.cols,
                "nnz": self.nnz,
                "status": self.status,
            },
        }


@dataclass(frozen=True)
class CounterEvent:
    """A sampled counter series (e.g. instantaneous job power, the cap)."""

    kind: ClassVar[str] = "counter"

    name: str
    ts_s: float
    values: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "rank": None,
            "ts_s": self.ts_s,
            "dur_s": None,
            "args": dict(self.values),
        }


@dataclass(frozen=True)
class CellFailureEvent:
    """A sweep cell that exhausted its attempts under ``--keep-going``.

    Logical (``ts_s=None``): the failure has no simulated time — it is a
    property of the run that computed the cell, not of the workload.
    ``error_type``/``error_message``/``attempts`` mirror the structured
    :class:`~repro.exec.parallel.CellOutcome` recorded in the journal
    and manifest, so trace, journal, and manifest agree on every
    failure.
    """

    kind: ClassVar[str] = "cell_failure"

    benchmark: str
    cap_per_socket_w: float
    error_type: str
    error_message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": f"cell_failure:{self.benchmark}",
            "rank": None,
            "ts_s": None,
            "dur_s": None,
            "args": {
                "cap_per_socket_w": self.cap_per_socket_w,
                "error_type": self.error_type,
                "error_message": self.error_message,
                "attempts": self.attempts,
            },
        }


#: Every kind the exporter understands, in taxonomy order.
EVENT_KINDS = (
    TaskEvent.kind,
    MpiWaitEvent.kind,
    CollectiveEvent.kind,
    ReallocEvent.kind,
    CapExceededEvent.kind,
    SolveEvent.kind,
    CounterEvent.kind,
    CellFailureEvent.kind,
)
