"""Declarative N-way experiment scenarios.

This layer replaces the hardwired Static/Conductor/LP triple with data: a
:class:`ScenarioSpec` names a benchmark, a cap grid, and an ordered list
of policies drawn from a :class:`PolicyRegistry`, and
:func:`run_scenarios` evaluates the full cross product into a
:class:`ScenarioResult` table.  Every policy the repo implements — the
:mod:`repro.runtime` runtimes and the LP/ILP bounds — is pre-registered
in :func:`default_registry`, so comparisons like
``static vs conductor vs adagio vs lp`` are one spec away, with caching,
parallel fan-out, trace scopes, and manifest provenance all derived from
the spec itself.  See ``docs/scenarios.md``.
"""

from .registry import (
    BoundResult,
    PolicyContext,
    PolicyEntry,
    PolicyRegistry,
    default_registry,
)
from .run import (
    PolicyOutcome,
    ScenarioCell,
    ScenarioResult,
    policy_iteration_time,
    run_scenario_cell,
    run_scenarios,
)
from .spec import (
    SCENARIO_BENCHMARKS,
    SCENARIO_LAYER_VERSION,
    PolicySpec,
    ScenarioSpec,
    make_synthetic,
)

__all__ = [
    "SCENARIO_BENCHMARKS",
    "SCENARIO_LAYER_VERSION",
    "BoundResult",
    "PolicyContext",
    "PolicyEntry",
    "PolicyOutcome",
    "PolicyRegistry",
    "PolicySpec",
    "ScenarioCell",
    "ScenarioResult",
    "ScenarioSpec",
    "default_registry",
    "make_synthetic",
    "policy_iteration_time",
    "run_scenario_cell",
    "run_scenarios",
]
