#!/usr/bin/env python
"""Facility-level power planning: from a machine budget to per-job bounds.

The paper's premise (§1) is that future machines divide a fixed power
budget across concurrent jobs.  This example plays the facility operator:

1. partition a 1.8 kW machine budget across three jobs with different node
   counts and priorities (``repro.cluster``);
2. for each admitted job, compute the LP performance bound under its
   allocated power (``repro.core``);
3. report the marginal value of power — how much faster each job would run
   with 10% more — which is the signal a power-aware scheduler trades on.

Run:  python examples/facility_power_planning.py
"""

from repro import (
    JobRequest,
    WorkloadSpec,
    make_bt,
    make_comd,
    make_lulesh,
    make_power_models,
    partition_power,
    solve_fixed_order_lp,
    trace_application,
)
from repro.experiments import render_table

MACHINE_W = 1150.0

JOBS = [
    ("comd", make_comd, JobRequest("md-prod", n_sockets=8, priority=2,
                                   min_w_per_socket=25, max_w_per_socket=60)),
    ("bt", make_bt, JobRequest("cfd-batch", n_sockets=8, priority=1,
                               min_w_per_socket=28, max_w_per_socket=70)),
    ("lulesh", make_lulesh, JobRequest("hydro-dev", n_sockets=8, priority=0,
                                       min_w_per_socket=40,
                                       max_w_per_socket=60)),
]


def lp_bound(maker, n_sockets: int, cap_w: float) -> float:
    app = maker(WorkloadSpec(n_ranks=n_sockets, iterations=3, seed=11))
    sockets = make_power_models(n_sockets, efficiency_seed=11)
    res = solve_fixed_order_lp(trace_application(app, sockets), cap_w)
    if not res.feasible:
        return float("nan")
    return res.makespan_s / 3  # per iteration


def main() -> None:
    allocations = partition_power(MACHINE_W, [j[2] for j in JOBS],
                                  policy="uniform")
    rows = []
    for (bench, maker, _), alloc in zip(JOBS, allocations):
        if not alloc.admitted:
            rows.append([alloc.request.name, bench, "rejected", None, None,
                         None])
            continue
        t_now = lp_bound(maker, alloc.request.n_sockets, alloc.power_w)
        t_more = lp_bound(maker, alloc.request.n_sockets, alloc.power_w * 1.1)
        marginal = (t_now / t_more - 1) * 100 if t_more == t_more else None
        rows.append([
            alloc.request.name, bench, f"{alloc.w_per_socket:.1f} W/socket",
            round(t_now, 3), round(t_more, 3),
            None if marginal is None else round(marginal, 1),
        ])
    print(f"machine budget: {MACHINE_W:.0f} W, "
          f"allocated {sum(a.power_w for a in allocations):.0f} W")
    print(render_table(
        ["job", "benchmark", "allocation", "LP bound (s/iter)",
         "with +10% power", "marginal speedup (%)"],
        rows, title="Facility power plan",
    ))
    print("\nreading: jobs with a high marginal speedup (imbalanced or "
          "throttled) are where the facility's next watt belongs.")

    # 4. Co-scheduling to completion, with and without repartitioning.
    from repro import ClusterJob, simulate_cluster
    from repro.cluster import JobPerformanceModel

    cluster_jobs = [
        ClusterJob("md-prod", "comd", n_sockets=8, iterations=12, priority=2,
                   min_w_per_socket=25, max_w_per_socket=60, seed=11),
        # The long-running job is power-hungry BT: once the short jobs
        # drain, repartitioning hands it their watts.
        ClusterJob("cfd-batch", "bt", n_sockets=8, iterations=40, priority=1,
                   min_w_per_socket=28, max_w_per_socket=80, seed=11),
        ClusterJob("hydro-dev", "lulesh", n_sockets=8, iterations=6,
                   priority=0, min_w_per_socket=40, max_w_per_socket=60,
                   seed=11),
    ]
    # Jobs execute under the production runtime (Static): their speed
    # scales with the cap everywhere, unlike the LP bound which saturates
    # once the critical rank reaches fmax.
    perf = {j.name: JobPerformanceModel(j, "static") for j in cluster_jobs}
    dyn = simulate_cluster(cluster_jobs, MACHINE_W, performance_models=perf,
                           repartition=True)
    frozen = simulate_cluster(cluster_jobs, MACHINE_W,
                              performance_models=perf, repartition=False)
    print("\nco-scheduling to completion:")
    for name in sorted(dyn.finish_times_s):
        print(f"  {name:<10} finishes at {dyn.finish_times_s[name]:7.1f}s "
              f"(frozen split: {frozen.finish_times_s[name]:7.1f}s)")
    print(f"  mean turnaround: {dyn.mean_turnaround_s():.1f}s dynamic vs "
          f"{frozen.mean_turnaround_s():.1f}s frozen — repartitioning the "
          "power of finished jobs is free throughput.")


if __name__ == "__main__":
    main()
