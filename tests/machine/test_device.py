"""Typed devices and heterogeneous nodes: the machine layer's new unit."""

import numpy as np
import pytest

from repro.machine.configuration import Configuration, measure_task_space
from repro.machine.cpu import XEON_E5_2670
from repro.machine.device import (
    AcceleratorDevice,
    CpuDevice,
    DeviceKind,
    DeviceSpec,
    GpuDevice,
    LEGACY_DEVICE_ID,
    LEGACY_NODE,
    NodeSpec,
    device_power_groups,
    get_node,
    measure_device_task_space,
    node_names,
    node_registry,
    rank_nodes,
    single_socket_node,
)
from repro.machine.frontiers import FrontierStore, NodeFrontierStore
from repro.machine.performance import TaskKernel
from repro.machine.power import SocketPowerModel
from repro.machine.variability import make_power_models

KERNEL = TaskKernel(cpu_seconds=0.5, mem_seconds=0.1, name="unit")
PARALLEL = TaskKernel(
    cpu_seconds=1.0, mem_seconds=0.05, parallel_fraction=0.995, name="wide"
)
SERIAL = TaskKernel(cpu_seconds=0.5, parallel_fraction=0.3, name="narrow")


class TestCpuDevice:
    def test_satisfies_protocol(self):
        assert isinstance(CpuDevice(), DeviceSpec)
        assert isinstance(GpuDevice(), DeviceSpec)
        assert isinstance(AcceleratorDevice(), DeviceSpec)

    def test_legacy_device_matches_legacy_models_exactly(self):
        dev = CpuDevice()  # reserved empty id, XEON_E5_2670, efficiency 1.0
        pm = SocketPowerModel()
        legacy = measure_task_space(KERNEL, pm)
        mine = measure_device_task_space(KERNEL, dev)
        assert mine == legacy  # same order, bit-identical numbers

    def test_operating_points_tagged_with_device_id(self):
        dev = CpuDevice(device_id="cpu0")
        pts = dev.operating_points()
        assert pts and all(cfg.device == "cpu0" for cfg in pts)

    def test_kind_must_be_cpu(self):
        with pytest.raises(ValueError, match="CPU kind"):
            CpuDevice(kind=DeviceKind.GPU)

    def test_time_scale_stretches_duration(self):
        fast = CpuDevice(device_id="a")
        slow = CpuDevice(device_id="a", time_scale=1.3)
        cfg = fast.operating_points()[0]
        assert slow.duration(KERNEL, cfg) == pytest.approx(
            1.3 * fast.duration(KERNEL, cfg)
        )


class TestGpuDevice:
    def test_pstates_descending_and_bounded(self):
        gpu = GpuDevice()
        ps = gpu.pstates
        assert ps[0] == gpu.fmax_ghz and ps[-1] == gpu.fmin_ghz
        assert all(a > b for a, b in zip(ps, ps[1:]))

    def test_wide_kernels_beat_cpu_serial_kernels_lose(self):
        gpu, cpu = GpuDevice(), CpuDevice()
        fast_gpu = min(
            p.duration_s for p in measure_device_task_space(PARALLEL, gpu)
        )
        fast_cpu = min(
            p.duration_s for p in measure_device_task_space(PARALLEL, cpu)
        )
        assert fast_gpu < fast_cpu
        slow_gpu = min(
            p.duration_s for p in measure_device_task_space(SERIAL, gpu)
        )
        slow_cpu = min(
            p.duration_s for p in measure_device_task_space(SERIAL, cpu)
        )
        assert slow_cpu < slow_gpu

    def test_power_monotone_in_frequency(self):
        gpu = GpuDevice()
        powers = [
            gpu.power(KERNEL, cfg) for cfg in gpu.operating_points()
        ]
        assert all(a > b for a, b in zip(powers, powers[1:]))


class TestAcceleratorDevice:
    def test_supports_filter(self):
        acc = AcceleratorDevice(supported=("fft",))
        assert acc.supports(TaskKernel(cpu_seconds=1.0, name="fft"))
        assert not acc.supports(TaskKernel(cpu_seconds=1.0, name="other"))
        assert AcceleratorDevice().supports(KERNEL)  # empty tuple: everything

    def test_single_operating_point(self):
        acc = AcceleratorDevice()
        pts = acc.operating_points()
        assert len(pts) == 1 and pts[0].device == "acc0"


class TestNodeSpec:
    def test_needs_devices(self):
        with pytest.raises(ValueError, match="at least one device"):
            NodeSpec(name="empty", devices=())

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate device ids"):
            NodeSpec(name="dup", devices=(CpuDevice(device_id="x"),
                                          GpuDevice(device_id="x")))

    def test_empty_id_reserved_for_single_device(self):
        with pytest.raises(ValueError, match="reserved"):
            NodeSpec(name="bad", devices=(CpuDevice(), GpuDevice()))

    def test_device_lookup_and_error(self):
        node = get_node("cpu-gpu")
        assert node.device("gpu0").kind is DeviceKind.GPU
        with pytest.raises(KeyError, match="no device 'nope'"):
            node.device("nope")

    def test_heterogeneity_flag(self):
        assert not single_socket_node().is_heterogeneous
        assert get_node("cpu-gpu").is_heterogeneous

    def test_idle_power_sums_devices(self):
        node = get_node("cpu-gpu")
        assert node.idle_power() == pytest.approx(
            sum(d.idle_power() for d in node.devices)
        )

    def test_with_cpu_efficiency_spares_non_cpu_devices(self):
        node = get_node("cpu-gpu").with_cpu_efficiency(1.1)
        assert node.device("cpu0").efficiency == 1.1
        assert node.device("gpu0").efficiency == 1.0


class TestRegistry:
    def test_names_and_lookup(self):
        names = node_names()
        assert LEGACY_NODE in names and "cpu-gpu" in names
        for name in names:
            assert get_node(name).name == name

    def test_unknown_node_lists_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_node("beefy")

    def test_registry_is_fresh_per_call(self):
        assert node_registry() == node_registry()

    def test_rank_nodes_applies_per_rank_cpu_efficiency(self):
        pm = make_power_models(3, efficiency_seed=7)
        nodes = rank_nodes(get_node("cpu-gpu"), pm)
        assert [n.device("cpu0").efficiency for n in nodes] == [
            m.efficiency for m in pm
        ]
        assert all(n.device("gpu0").efficiency == 1.0 for n in nodes)

    def test_device_power_groups(self):
        groups = device_power_groups(get_node("cpu-gpu-acc"))
        assert groups == {"cpu": ("cpu0",), "offload": ("gpu0", "acc0")}
        legacy = device_power_groups(single_socket_node())
        assert legacy == {"cpu": (LEGACY_DEVICE_ID,), "offload": ()}


class TestConfigurationOrdering:
    """Satellite: stable, total ordering across device kinds."""

    def test_device_is_the_final_tiebreak(self):
        a = Configuration(2.0, 4, device="cpu0")
        b = Configuration(2.0, 4, device="gpu0")
        assert a < b  # equal operating point: device id decides
        assert sorted([b, a]) == [a, b]

    def test_legacy_configs_sort_before_device_tagged(self):
        legacy = Configuration(2.0, 4)
        tagged = Configuration(2.0, 4, device="cpu0")
        assert legacy < tagged

    def test_sort_is_deterministic_across_mixed_kinds(self):
        node = get_node("cpu-gpu-acc")
        pts = [cfg for d in node.devices for cfg in d.operating_points()]
        assert sorted(pts) == sorted(reversed(pts))

    def test_describe_tags_device(self):
        assert Configuration(2.0, 4).describe() == "2.0 GHz x 4t"
        assert (
            Configuration(1.4, 1, device="gpu0").describe()
            == "[gpu0] 1.4 GHz x 1t"
        )


class TestNodeFrontierStore:
    def test_one_device_node_equals_legacy_store_exactly(self):
        pm = make_power_models(4, efficiency_seed=42)
        legacy = FrontierStore(pm)
        node_store = NodeFrontierStore(rank_nodes(single_socket_node(), pm))
        for rank in range(4):
            a = legacy.profile(rank, KERNEL)
            b = node_store.profile(rank, KERNEL)
            assert a.points == b.points
            assert a.pareto == b.pareto
            assert a.convex == b.convex

    def test_heterogeneous_profile_merges_devices(self):
        store = NodeFrontierStore([get_node("cpu-gpu")])
        prof = store.profile(0, PARALLEL)
        devices = {p.config.device for p in prof.points}
        assert devices == {"cpu0", "gpu0"}
        # The wide kernel's fastest point lives on the GPU.
        assert min(prof.pareto, key=lambda p: p.duration_s).config.device == "gpu0"

    def test_unsupported_devices_are_omitted(self):
        node = NodeSpec(
            name="picky",
            devices=(
                CpuDevice(device_id="cpu0"),
                AcceleratorDevice(device_id="acc0", supported=("fft",)),
            ),
        )
        store = NodeFrontierStore([node])
        prof = store.profile(0, KERNEL)  # kernel not named "fft"
        assert {p.config.device for p in prof.points} == {"cpu0"}

    def test_no_supporting_device_is_an_error(self):
        node = NodeSpec(
            name="useless",
            devices=(AcceleratorDevice(device_id="acc0", supported=("fft",)),),
        )
        store = NodeFrontierStore([node])
        with pytest.raises(ValueError, match="no device"):
            store.profile(0, KERNEL)

    def test_profiles_memoized_across_equal_nodes(self):
        node = get_node("cpu-gpu")
        store = NodeFrontierStore([node, node, node])
        store.profile(0, KERNEL)
        store.profile(2, KERNEL)
        assert len(store) == 1

    def test_noise_draw_discipline_matches_legacy_on_one_device_node(self):
        pm = make_power_models(2, efficiency_seed=1)
        legacy = FrontierStore(
            pm, measurement_noise=0.05, rng=np.random.default_rng(9)
        )
        node_store = NodeFrontierStore(
            rank_nodes(single_socket_node(), pm),
            measurement_noise=0.05,
            rng=np.random.default_rng(9),
        )
        for rank in range(2):
            assert (
                legacy.profile(rank, KERNEL).points
                == node_store.profile(rank, KERNEL).points
            )
