"""Facility-level substrate: dividing machine power across jobs (§1)."""

from .budget import JobAllocation, JobRequest, partition_power
from .scheduler import (
    ClusterJob,
    ClusterOutcome,
    JobPerformanceModel,
    simulate_cluster,
)

__all__ = [
    "ClusterJob",
    "ClusterOutcome",
    "JobAllocation",
    "JobPerformanceModel",
    "JobRequest",
    "partition_power",
    "simulate_cluster",
]
