"""Unit tests for the flow ILP (appendix formulation)."""

import pytest

from repro.core import (
    MAX_FLOW_ILP_EDGES,
    solve_fixed_order_lp,
    solve_flow_ilp,
)
from repro.dag import unconstrained_schedule
from repro.machine import SocketPowerModel
from repro.simulator import trace_application
from repro.workloads import WorkloadSpec, make_comd, two_rank_exchange



@pytest.fixture(scope="module")
def exchange_trace():
    app = two_rank_exchange(phases=1)
    models = [SocketPowerModel(efficiency=1.0), SocketPowerModel(efficiency=1.03)]
    return trace_application(app, models)


class TestGuards:
    def test_size_limit(self):
        app = make_comd(WorkloadSpec(n_ranks=4, iterations=4))
        models = [SocketPowerModel() for _ in range(4)]
        trace = trace_application(app, models)
        assert trace.graph.n_edges > MAX_FLOW_ILP_EDGES
        with pytest.raises(ValueError, match="flow ILP limited"):
            solve_flow_ilp(trace, 100.0)

    def test_invalid_cap(self, exchange_trace):
        with pytest.raises(ValueError):
            solve_flow_ilp(exchange_trace, 0.0)


class TestSolutions:
    def test_generous_cap_matches_unconstrained(self, exchange_trace, time_model):
        res = solve_flow_ilp(exchange_trace, 400.0)
        assert res.feasible
        best = unconstrained_schedule(exchange_trace.graph, time_model).makespan
        assert res.makespan_s == pytest.approx(best, rel=1e-4)

    def test_monotone_in_cap(self, exchange_trace):
        spans = []
        for cap in (40.0, 55.0, 75.0, 120.0):
            r = solve_flow_ilp(exchange_trace, cap)
            assert r.feasible
            spans.append(r.makespan_s)
        assert all(b <= a + 1e-6 for a, b in zip(spans, spans[1:]))

    def test_infeasible_at_tiny_cap(self, exchange_trace):
        res = solve_flow_ilp(exchange_trace, 3.0)
        assert not res.feasible

    def test_assignments_complete(self, exchange_trace):
        res = solve_flow_ilp(exchange_trace, 60.0)
        assert set(res.schedule.assignments) == set(exchange_trace.task_edges)
        for a in res.schedule.assignments.values():
            assert sum(f for _, f in a.mixture) == pytest.approx(1.0)


class TestAgreementWithFixedOrder:
    """The paper's Figure 8 claim: the two formulations agree within 1.9%
    on the two-rank exchange (flow may be slightly better — it chooses the
    event order and frees slack power)."""

    @pytest.mark.parametrize("cap", [45.0, 55.0, 70.0, 90.0])
    def test_close_agreement(self, exchange_trace, cap):
        lp = solve_fixed_order_lp(exchange_trace, cap)
        ilp = solve_flow_ilp(exchange_trace, cap)
        assert lp.feasible and ilp.feasible
        gap = abs(lp.makespan_s - ilp.makespan_s) / ilp.makespan_s
        assert gap <= 0.019

    def test_flow_never_meaningfully_worse(self, exchange_trace):
        """Flow chooses its own event order, so it can only do as well or
        better (up to solver tolerance)."""
        for cap in (50.0, 80.0):
            lp = solve_fixed_order_lp(exchange_trace, cap)
            ilp = solve_flow_ilp(exchange_trace, cap)
            assert ilp.makespan_s <= lp.makespan_s * (1 + 1e-4)


class TestPrecedenceRespected:
    def test_vertex_times_valid(self, exchange_trace):
        res = solve_flow_ilp(exchange_trace, 60.0)
        v = res.schedule.vertex_times
        for e in exchange_trace.graph.edges:
            if e.is_compute:
                d = res.schedule.assignments[
                    exchange_trace.edge_refs[e.id]
                ].duration_s
            else:
                d = e.duration_s
            assert v[e.dst] >= v[e.src] + d - 1e-5


class TestPrecedenceClosure:
    def test_closure_through_messages(self, kernel):
        """Task i precedes task j when a path (through messages and other
        tasks) runs from dst(i) to src(j)."""
        from repro.core.flow_ilp import _task_precedence_closure
        from repro.machine import SocketPowerModel
        from repro.simulator import (
            Application, ComputeOp, RecvOp, SendOp, trace_application,
        )

        app = Application(
            "chain",
            [
                [ComputeOp(kernel, 0), SendOp(dst=1, size_bytes=8)],
                [RecvOp(src=0), ComputeOp(kernel, 0)],
            ],
        )
        models = [SocketPowerModel(), SocketPowerModel()]
        trace = trace_application(app, models)
        tasks = [e.id for e in trace.graph.compute_edges()]
        te = _task_precedence_closure(trace.graph, tasks)
        by_rank = {trace.graph.edges[t].rank: t for t in tasks}
        # Rank 0's task (before the send) precedes rank 1's (after recv).
        assert (by_rank[0], by_rank[1]) in te
        assert (by_rank[1], by_rank[0]) not in te

    def test_parallel_tasks_unordered(self, kernel):
        from repro.core.flow_ilp import _task_precedence_closure
        from repro.machine import SocketPowerModel
        from repro.simulator import Application, ComputeOp, trace_application

        app = Application(
            "par", [[ComputeOp(kernel, 0)], [ComputeOp(kernel, 0)]]
        )
        models = [SocketPowerModel(), SocketPowerModel()]
        trace = trace_application(app, models)
        tasks = [e.id for e in trace.graph.compute_edges()]
        te = _task_precedence_closure(trace.graph, tasks)
        assert te == set()
