"""Experiment orchestration: Static vs Conductor vs LP comparisons.

The measurement protocol mirrors the paper's (§5.3, §6):

* Static and Conductor execute ``run_iterations`` time steps; the first
  ``discard_iterations`` (Conductor's configuration-exploration phase) are
  dropped.  Conductor's steady state is taken from the trailing window,
  where its reallocation loop has converged — the paper amortizes the
  adaptation over hundreds of iterations, which the window stands in for.
* The LP schedules a shorter trace (iterations are statistically
  identical), and its per-iteration bound is compared against the measured
  per-iteration times of the runtimes.

Improvements are reported the way the paper states them: "A improves on B
by x%" means ``t_B / t_A - 1`` in per-iteration time.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..core.model import ProblemInstance, build_problem_instance
from ..core.rounding import round_schedule
from ..exec.cache import SolverCache, cached_solve_fixed_order_lp
from ..exec.keys import experiment_key
from ..exec.options import get_execution_options
from ..exec.parallel import ParallelRunner, resolve_workers
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.frontiers import FrontierStore
from ..machine.power import SocketPowerModel
from ..machine.variability import sample_socket_efficiencies
from ..obs.events import CounterEvent
from ..obs.recorder import TraceRecorder, current_recorder
from ..runtime.conductor import ConductorConfig, ConductorPolicy
from ..runtime.static import StaticPolicy
from ..simulator.engine import Engine, SimulationResult
from ..simulator.telemetry import job_power_timeline
from ..simulator.trace import Trace, trace_application
from ..workloads import BENCHMARKS, WorkloadSpec

__all__ = [
    "ExperimentConfig",
    "ComparisonResult",
    "make_power_models",
    "run_comparison",
    "sweep_caps",
    "improvement_pct",
    "DEFAULT_CAPS_W",
]

#: The paper's per-socket cap sweep (Figures 9-15).
DEFAULT_CAPS_W = (30.0, 40.0, 50.0, 60.0, 70.0, 80.0)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared parameters of a benchmark comparison."""

    benchmark: str
    n_ranks: int = 32
    run_iterations: int = 24
    lp_iterations: int = 4
    discard_iterations: int = 3
    steady_window: int = 12
    seed: int = 2015
    efficiency_seed: int = 42
    efficiency_sigma: float = 0.04
    conductor: ConductorConfig = field(
        default_factory=lambda: ConductorConfig(
            realloc_period=4, measurement_noise=0.01, step_w=2.5
        )
    )

    def __post_init__(self) -> None:
        if self.benchmark not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {self.benchmark!r}; "
                f"choose from {sorted(BENCHMARKS)}"
            )
        if self.run_iterations <= self.discard_iterations:
            raise ValueError("run_iterations must exceed discard_iterations")
        if self.steady_window > self.run_iterations - self.discard_iterations:
            raise ValueError("steady_window larger than the measured region")
        if self.efficiency_sigma < 0:
            raise ValueError("efficiency_sigma must be >= 0")

    def cache_document(self) -> dict:
        """Canonical JSON-safe dictionary of every field (cache keying)."""
        return dataclasses.asdict(self)


@dataclass
class ComparisonResult:
    """Per-iteration times of the three strategies under one cap.

    All three times are None when the benchmark is not schedulable at the
    cap (the paper's missing lowest-power bars for SP and LULESH).
    """

    benchmark: str
    cap_per_socket_w: float
    n_ranks: int
    static_s: float | None
    conductor_s: float | None
    lp_s: float | None  # None when the LP is infeasible at this cap
    lp_discrete_s: float | None = None
    conductor_reallocs: int = 0
    schedulable: bool = True

    @property
    def job_cap_w(self) -> float:
        return self.cap_per_socket_w * self.n_ranks

    @property
    def feasible(self) -> bool:
        return self.lp_s is not None

    @property
    def lp_vs_static_pct(self) -> float | None:
        return improvement_pct(self.static_s, self.lp_s)

    @property
    def lp_vs_conductor_pct(self) -> float | None:
        return improvement_pct(self.conductor_s, self.lp_s)

    @property
    def conductor_vs_static_pct(self) -> float | None:
        return improvement_pct(self.static_s, self.conductor_s)


def improvement_pct(slower: float | None, faster: float | None) -> float | None:
    """Potential speedup of ``faster`` over ``slower`` as the paper reports
    it: positive when ``faster`` wins."""
    if slower is None or faster is None:
        return None
    return (slower / faster - 1.0) * 100.0


def make_power_models(
    n_ranks: int,
    efficiency_seed: int = 42,
    spec: CpuSpec = XEON_E5_2670,
    sigma: float = 0.04,
    rng: np.random.Generator | None = None,
) -> list[SocketPowerModel]:
    """One socket per rank, with the seeded manufacturing-variability spread.

    The efficiency draw is always explicit — either the ``rng`` passed in
    or a fresh generator from ``efficiency_seed`` — never global numpy
    state, so parallel workers rebuild identical machines and cache keys
    derived from (seed, sigma) are well-defined.
    """
    eff = sample_socket_efficiencies(
        n_ranks, sigma=sigma, seed=rng if rng is not None else efficiency_seed
    )
    return [SocketPowerModel(spec=spec, efficiency=float(e)) for e in eff]


@dataclass
class _Shared:
    """Per-benchmark reusables across a cap sweep."""

    app_run: object
    app_lp: object
    power_models: list[SocketPowerModel]
    engine: Engine
    trace: Trace
    frontiers: FrontierStore
    instance: ProblemInstance


_shared_cache: dict[tuple, _Shared] = {}


def _shared_for(cfg: ExperimentConfig) -> _Shared:
    key = (
        cfg.benchmark, cfg.n_ranks, cfg.run_iterations, cfg.lp_iterations,
        cfg.seed, cfg.efficiency_seed, cfg.efficiency_sigma,
    )
    if key not in _shared_cache:
        gen = BENCHMARKS[cfg.benchmark]
        app_run = gen(WorkloadSpec(n_ranks=cfg.n_ranks,
                                   iterations=cfg.run_iterations, seed=cfg.seed))
        app_lp = gen(WorkloadSpec(n_ranks=cfg.n_ranks,
                                  iterations=cfg.lp_iterations, seed=cfg.seed))
        pm = make_power_models(
            cfg.n_ranks, cfg.efficiency_seed, sigma=cfg.efficiency_sigma
        )
        # One frontier store per machine: the tracer fills it, every
        # runtime policy in the sweep reads it back.
        store = FrontierStore(pm)
        trace = trace_application(app_lp, pm, frontier_store=store)
        _shared_cache[key] = _Shared(
            app_run=app_run,
            app_lp=app_lp,
            power_models=pm,
            engine=Engine(pm),
            trace=trace,
            frontiers=store,
            instance=build_problem_instance(trace),
        )
    return _shared_cache[key]


def _steady_per_iteration(
    result: SimulationResult, first_iteration: int, n_iterations: int
) -> float:
    start = min(r.start_s for r in result.records if r.iteration >= first_iteration)
    return (result.makespan_s - start) / n_iterations


def _comparison_key(
    cfg: ExperimentConfig, cap_per_socket_w: float, include_discrete: bool
) -> str:
    return experiment_key(
        cfg.cache_document(),
        cap_per_socket_w,
        include_discrete=include_discrete,
        spec=XEON_E5_2670.name,
    )


_COMPARISON_FIELDS = (
    "static_s", "conductor_s", "lp_s", "lp_discrete_s",
    "conductor_reallocs", "schedulable",
)


def run_comparison(
    cfg: ExperimentConfig,
    cap_per_socket_w: float,
    include_discrete: bool = False,
    cache: SolverCache | None = None,
) -> ComparisonResult:
    """Run Static, Conductor, and the LP for one benchmark and cap.

    ``cache`` memoizes the whole comparison cell (both simulator replays
    and the LP solution) by content address; None falls back to the
    ambient :class:`~repro.exec.options.ExecutionOptions` (whose default
    is no caching).  A warm cell skips tracing, both engine runs, and the
    LP solve entirely.
    """
    if cache is None:
        cache = get_execution_options().make_cache()
    if cache is not None:
        key = _comparison_key(cfg, cap_per_socket_w, include_discrete)
        payload = cache.get(key)
        if payload is not None:
            return ComparisonResult(
                benchmark=cfg.benchmark,
                cap_per_socket_w=cap_per_socket_w,
                n_ranks=cfg.n_ranks,
                **{name: payload[name] for name in _COMPARISON_FIELDS},
            )
    result = _run_comparison(cfg, cap_per_socket_w, include_discrete, cache)
    if cache is not None:
        cache.put(
            key, {name: getattr(result, name) for name in _COMPARISON_FIELDS}
        )
    return result


def _scope(rec: TraceRecorder | None, label: str):
    """The recorder's run scope, or a no-op when tracing is disabled."""
    return rec.run_scope(label) if rec is not None else nullcontext()


def _emit_power_counters(
    rec: TraceRecorder,
    result: SimulationResult,
    power_models: list[SocketPowerModel],
    job_cap_w: float,
) -> None:
    """Counter samples for the job power timeline and the cap it ran under.

    Every breakpoint of the piecewise-constant timeline becomes a sample,
    so the Perfetto counter track reproduces the timeline exactly; the cap
    is sampled at both ends to draw as a flat line over the same span.
    """
    timeline = job_power_timeline(result, power_models)
    for t, p in zip(timeline.times[:-1], timeline.power):
        rec.emit(
            CounterEvent(
                name="job_power_w", ts_s=float(t), values={"watts": float(p)}
            )
        )
    end_s = float(timeline.times[-1])
    final_w = float(timeline.power[-1]) if len(timeline.power) else 0.0
    rec.emit(CounterEvent(name="job_power_w", ts_s=end_s, values={"watts": final_w}))
    for t in (0.0, end_s):
        rec.emit(CounterEvent(name="cap_w", ts_s=t, values={"watts": job_cap_w}))


def _run_comparison(
    cfg: ExperimentConfig,
    cap_per_socket_w: float,
    include_discrete: bool,
    cache: SolverCache | None,
) -> ComparisonResult:
    shared = _shared_for(cfg)
    job_cap = cap_per_socket_w * cfg.n_ranks
    rec = current_recorder()
    tag = f"{cfg.benchmark} cap={cap_per_socket_w:g}W"

    min_cap = shared.app_run.metadata.get("min_cap_per_socket_w")
    if min_cap is not None and cap_per_socket_w < min_cap:
        return ComparisonResult(
            benchmark=cfg.benchmark,
            cap_per_socket_w=cap_per_socket_w,
            n_ranks=cfg.n_ranks,
            static_s=None,
            conductor_s=None,
            lp_s=None,
            schedulable=False,
        )

    static = StaticPolicy(shared.power_models, job_cap)
    with _scope(rec, f"static {tag}"):
        res_static = shared.engine.run(shared.app_run, static)
        if rec is not None:
            _emit_power_counters(rec, res_static, shared.power_models, job_cap)
    t_static = _steady_per_iteration(
        res_static, cfg.discard_iterations,
        cfg.run_iterations - cfg.discard_iterations,
    )

    conductor = ConductorPolicy(
        shared.power_models, job_cap, shared.app_run, config=cfg.conductor,
        frontier_store=shared.frontiers,
    )
    with _scope(rec, f"conductor {tag}"):
        res_cond = shared.engine.run(shared.app_run, conductor)
        if rec is not None:
            _emit_power_counters(rec, res_cond, shared.power_models, job_cap)
    first_steady = cfg.run_iterations - cfg.steady_window
    t_cond = _steady_per_iteration(res_cond, first_steady, cfg.steady_window)

    with _scope(rec, f"lp {tag}"):
        lp = cached_solve_fixed_order_lp(
            shared.trace, job_cap, cache=cache, instance=shared.instance
        )
    t_lp = lp.makespan_s / cfg.lp_iterations if lp.feasible else None
    t_lp_disc = None
    if include_discrete and lp.feasible:
        disc = round_schedule(shared.trace, lp.schedule)
        t_lp_disc = disc.objective_s / cfg.lp_iterations

    return ComparisonResult(
        benchmark=cfg.benchmark,
        cap_per_socket_w=cap_per_socket_w,
        n_ranks=cfg.n_ranks,
        static_s=t_static,
        conductor_s=t_cond,
        lp_s=t_lp,
        lp_discrete_s=t_lp_disc,
        conductor_reallocs=conductor.realloc_count,
    )


def _sweep_cell(cell: tuple[ExperimentConfig, float, str | None]) -> ComparisonResult:
    """One (config, cap) sweep cell — module-level so workers can unpickle it."""
    cfg, cap, cache_root = cell
    cache = SolverCache(cache_root) if cache_root is not None else None
    return run_comparison(cfg, cap, cache=cache)


def sweep_caps(
    cfg: ExperimentConfig,
    caps_per_socket_w: tuple[float, ...] = DEFAULT_CAPS_W,
    workers: int | None = None,
    cache: SolverCache | None = None,
) -> list[ComparisonResult]:
    """Run the full cap sweep for one benchmark (one paper figure line).

    Every cap is an independent, fully seeded cell; with ``workers > 1``
    the cells fan out over a process pool with results in cap order —
    bit-identical to the serial sweep.  ``workers``/``cache`` default to
    the ambient :class:`~repro.exec.options.ExecutionOptions` (serial,
    uncached), which is also the benchmark harness's measured path.
    """
    opts = get_execution_options()
    if workers is None:
        workers = opts.workers
    workers = resolve_workers(workers)  # 0 -> all cores, negative -> error
    if cache is None:
        cache = opts.make_cache()
    if workers <= 1 or len(caps_per_socket_w) <= 1:
        return [run_comparison(cfg, cap, cache=cache) for cap in caps_per_socket_w]
    runner = ParallelRunner(
        max_workers=workers,
        timeout_s=opts.task_timeout_s,
        retries=opts.task_retries,
    )
    cache_root = str(cache.root) if cache is not None else None
    cells = [(cfg, float(cap), cache_root) for cap in caps_per_socket_w]
    # Worker-side cache hit/miss accounting arrives via the telemetry
    # snapshots that ParallelRunner merges into the active telemetry.
    return runner.map(_sweep_cell, cells)
