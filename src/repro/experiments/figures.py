"""One function per paper figure: regenerate the exact exhibit.

Each function returns a small result object carrying the raw series plus a
``render()`` method that prints the figure's content as a text table.  The
benchmark harness under ``benchmarks/`` invokes these and asserts the
paper's qualitative claims (who wins, by roughly what factor, where the
crossovers sit).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ..core.fixed_order_lp import solve_fixed_order_lp
from ..core.flow_ilp import solve_flow_ilp
from ..core.model import build_problem_instance
from ..exec.cache import SolverCache
from ..exec.keys import solver_key
from ..exec.options import get_execution_options
from ..exec.parallel import ParallelRunner
from ..machine.configuration import ConfigPoint, measure_task_space
from ..machine.pareto import convex_frontier, pareto_frontier
from ..machine.power import SocketPowerModel
from ..runtime.static import StaticPolicy
from ..simulator.engine import Engine
from ..simulator.trace import trace_application
from ..workloads import WorkloadSpec, make_comd, two_rank_exchange
from ..workloads.comd import FORCE_KERNEL
from ..scenarios.run import ScenarioResult, run_scenarios
from ..scenarios.spec import PolicySpec, ScenarioSpec
from .report import render_kv, render_series, render_table
from .runner import (
    DEFAULT_CAPS_W,
    ComparisonResult,
    ExperimentConfig,
    improvement_pct,
    make_power_models,
    sweep_caps,
)

__all__ = [
    "figure1_pareto_frontier",
    "figure8_flow_vs_fixed",
    "figure9_lp_vs_static",
    "figure10_lp_vs_conductor",
    "figure11_comd",
    "figure12_comd_task_scatter",
    "figure13_bt",
    "figure14_sp",
    "figure15_lulesh",
    "headline_summary",
    "powershift_figure",
    "benchmark_config",
    "scenario_sweep_figure",
    "ScenarioSweepFigure",
    "BENCH_CAPS",
]

#: Per-benchmark cap ranges as shown in the paper's figures.
BENCH_CAPS: dict[str, tuple[float, ...]] = {
    "comd": DEFAULT_CAPS_W,
    "bt": (30.0, 40.0, 50.0, 60.0, 70.0),
    "sp": (40.0, 50.0, 60.0, 70.0, 80.0),
    "lulesh": (40.0, 50.0, 60.0, 70.0, 80.0),
}


def benchmark_config(benchmark: str, n_ranks: int = 32) -> ExperimentConfig:
    """Standard experiment configuration for one benchmark."""
    lp_iters = 3 if benchmark == "lulesh" else 4
    return ExperimentConfig(
        benchmark=benchmark, n_ranks=n_ranks, lp_iterations=lp_iters
    )


# ----------------------------------------------------------------------
@dataclass
class Figure1Result:
    """Time-vs-power scatter for one CoMD task + its frontiers (Fig. 1)."""

    points: list[ConfigPoint]
    pareto: list[ConfigPoint]
    convex: list[ConfigPoint]

    def table1_rows(self, head: int = 2, tail: int = 5) -> list[list]:
        """The paper's Table 1: a sample of Pareto configurations."""
        rows = []
        n = len(self.pareto)
        # Table 1 lists fastest-first (highest power first).
        ordered = list(reversed(self.pareto))
        for i, p in enumerate(ordered):
            if i < head or i >= n - tail:
                rows.append(
                    [f"C_i,{i + 1}", p.config.freq_ghz, p.config.threads,
                     round(p.power_w, 1), round(p.duration_s, 4)]
                )
            elif i == head:
                rows.append(["C_i,...", "...", "...", "...", "..."])
        return rows

    def render(self) -> str:
        parts = [
            render_kv(
                {
                    "configurations": len(self.points),
                    "pareto-efficient": len(self.pareto),
                    "convex frontier": len(self.convex),
                    "power range (W)": f"{min(p.power_w for p in self.points):.1f}"
                    f" - {max(p.power_w for p in self.points):.1f}",
                },
                title="Figure 1: time vs. power for a CoMD task",
            ),
            render_table(
                ["config", "freq (GHz)", "threads", "power (W)", "time (s)"],
                self.table1_rows(),
                title="Table 1: sample of Pareto-efficient configurations",
            ),
        ]
        return "\n\n".join(parts)


def figure1_pareto_frontier(
    efficiency: float = 1.0,
) -> Figure1Result:
    """Reproduce Figure 1 / Table 1 on the CoMD force task."""
    pm = SocketPowerModel(efficiency=efficiency)
    points = measure_task_space(FORCE_KERNEL, pm)
    return Figure1Result(
        points=points,
        pareto=pareto_frontier(points),
        convex=convex_frontier(points),
    )


# ----------------------------------------------------------------------
@dataclass
class Figure8Result:
    """Fixed-order LP vs flow ILP over a total-power sweep (Fig. 8)."""

    caps_w: list[float]
    fixed_s: list[float | None]
    flow_s: list[float | None]
    tolerance_pct: float = 1.9

    def comparable(self) -> list[tuple[float, float, float]]:
        return [
            (c, f, g)
            for c, f, g in zip(self.caps_w, self.fixed_s, self.flow_s)
            if f is not None and g is not None
        ]

    def agreement_fraction(self) -> float:
        """Fraction of caps where the two agree within the tolerance."""
        comp = self.comparable()
        if not comp:
            return 0.0
        ok = sum(
            1 for _, f, g in comp if abs(f - g) / max(g, 1e-12) * 100 <= self.tolerance_pct
        )
        return ok / len(comp)

    def max_gap_pct(self) -> float:
        comp = self.comparable()
        return max(
            (abs(f - g) / max(g, 1e-12) * 100 for _, f, g in comp), default=0.0
        )

    def render(self) -> str:
        rows = [
            [c, f, g,
             None if (f is None or g is None) else (f - g) / g * 100]
            for c, f, g in zip(self.caps_w, self.fixed_s, self.flow_s)
        ]
        head = render_kv(
            {
                "caps tested": len(self.caps_w),
                "solved by both": len(self.comparable()),
                "agreement (<=1.9%)": f"{self.agreement_fraction() * 100:.1f}%",
                "max gap": f"{self.max_gap_pct():.2f}%",
            },
            title="Figure 8: flow ILP vs fixed-vertex-order LP "
                  "(two-rank async exchange)",
        )
        # The full 100+ row table is long; show every 8th row.
        sample = rows[:: max(1, len(rows) // 14)]
        return head + "\n\n" + render_table(
            ["total power (W)", "fixed LP (s)", "flow ILP (s)", "gap (%)"],
            sample, digits=4,
        )


@functools.lru_cache(maxsize=4)
def _fig8_trace(phases: int):
    """Figure 8's traced two-rank exchange (memoized per process)."""
    app = two_rank_exchange(phases=phases)
    pm = make_power_models(2, efficiency_seed=7, sigma=0.02)
    return trace_application(app, pm)


@functools.lru_cache(maxsize=4)
def _fig8_instance(phases: int):
    """The trace's shared problem IR — both formulations compile from it."""
    return build_problem_instance(_fig8_trace(phases))


def _fig8_cell(
    cell: tuple[float, int, float, str | None],
) -> tuple[float | None, float | None]:
    """(fixed LP, flow ILP) makespans at one cap — one fan-out unit."""
    cap, phases, time_limit_s, cache_root = cell
    trace = _fig8_trace(phases)
    instance = _fig8_instance(phases)
    cache = SolverCache(cache_root) if cache_root is not None else None
    if cache is not None:
        key = solver_key(
            trace, cap, formulation="fig8_cell",
            params={"time_limit_s": time_limit_s},
        )
        payload = cache.get(key)
        if payload is not None:
            return payload["fixed"], payload["flow"]
    lp = solve_fixed_order_lp(trace, cap, instance=instance)
    fixed = lp.makespan_s if lp.feasible else None
    ilp = solve_flow_ilp(trace, cap, time_limit_s=time_limit_s, instance=instance)
    flow = ilp.makespan_s if ilp.feasible else None
    if cache is not None:
        cache.put(key, {"fixed": fixed, "flow": flow})
    return fixed, flow


def figure8_flow_vs_fixed(
    cap_min_w: float = 35.0,
    cap_max_w: float = 61.25,
    n_caps: int = 106,
    phases: int = 2,
    time_limit_s: float = 60.0,
) -> Figure8Result:
    """Reproduce Figure 8 on the two-rank asynchronous exchange.

    The per-cap cells (an LP plus an ILP each) fan out over the ambient
    :class:`~repro.exec.options.ExecutionOptions` workers and are
    memoized in the ambient cache; the default options run the paper's
    serial, uncached loop.
    """
    caps = [float(c) for c in np.linspace(cap_min_w, cap_max_w, n_caps)]
    opts = get_execution_options()
    cache = opts.make_cache()
    cache_root = str(cache.root) if cache is not None else None
    runner = ParallelRunner(
        max_workers=opts.workers,
        timeout_s=opts.task_timeout_s,
        retries=opts.task_retries,
    )
    cells = [(cap, phases, time_limit_s, cache_root) for cap in caps]
    pairs = runner.map(_fig8_cell, cells)
    return Figure8Result(
        caps_w=caps,
        fixed_s=[fixed for fixed, _ in pairs],
        flow_s=[flow for _, flow in pairs],
    )


# ----------------------------------------------------------------------
@dataclass
class SweepFigure:
    """A potential-improvement-vs-cap figure (Figs. 9-11, 13-15)."""

    title: str
    series: dict[str, list[ComparisonResult]]
    metric: str  # 'lp_vs_static' | 'lp_vs_conductor' | 'both_vs_static'

    def rows(self) -> tuple[list[str], list[list]]:
        if self.metric == "both_vs_static":
            headers = ["cap (W/socket)", "LP vs Static (%)",
                       "Conductor vs Static (%)"]
            (name, results), = self.series.items()
            rows = [
                [r.cap_per_socket_w, r.lp_vs_static_pct, r.conductor_vs_static_pct]
                for r in results
            ]
            return headers, rows
        headers = ["cap (W/socket)"] + [f"{n} (%)" for n in self.series]
        caps = sorted(
            {r.cap_per_socket_w for rs in self.series.values() for r in rs}
        )
        attr = f"{self.metric}_pct"
        rows = []
        for cap in caps:
            row: list = [cap]
            for results in self.series.values():
                match = [r for r in results if r.cap_per_socket_w == cap]
                row.append(getattr(match[0], attr) if match else None)
            rows.append(row)
        return headers, rows

    def max_improvement(self, name: str | None = None) -> float:
        attr = (
            "lp_vs_static_pct" if self.metric in ("lp_vs_static", "both_vs_static")
            else f"{self.metric}_pct"
        )
        vals = [
            getattr(r, attr)
            for key, rs in self.series.items()
            if name is None or key == name
            for r in rs
            if getattr(r, attr) is not None
        ]
        return max(vals, default=float("nan"))

    def render(self) -> str:
        headers, rows = self.rows()
        return render_table(headers, rows, title=self.title, digits=1)


@dataclass
class ScenarioSweepFigure:
    """An N-way time-vs-cap figure for one scenario result.

    One ``s/iter`` column per policy instance, plus — when a ``baseline``
    is named — one improvement column per non-baseline policy, computed
    the way the paper reports improvements (``t_base / t_policy - 1``).
    """

    title: str
    result: ScenarioResult
    baseline: str | None = None

    def __post_init__(self) -> None:
        names = self.result.policy_names()
        if self.baseline is not None and self.baseline not in names:
            raise ValueError(
                f"baseline {self.baseline!r} is not in the scenario; "
                f"policies: {names}"
            )

    def series(self) -> dict[str, list[float | None]]:
        """Per-policy s/iter across the cap grid, in spec order."""
        return {n: self.result.series(n) for n in self.result.policy_names()}

    def improvement_series(self) -> dict[str, list[float | None]]:
        """Per-policy improvement (%) over the baseline across the grid."""
        if self.baseline is None:
            return {}
        base = self.result.series(self.baseline)
        return {
            name: [
                improvement_pct(b, t)
                for b, t in zip(base, self.result.series(name))
            ]
            for name in self.result.policy_names()
            if name != self.baseline
        }

    def render(self) -> str:
        """The N-way table: caps x (times + improvement columns).

        Cells that failed outright (a ``--keep-going`` sweep) render as
        gaps in the table and are itemized in a footer, so a partial
        sweep is never mistaken for a complete one.
        """
        caps = list(self.result.spec.caps_per_socket_w)
        columns: dict[str, list] = {
            f"{n} (s/iter)": vs for n, vs in self.series().items()
        }
        for name, vals in self.improvement_series().items():
            columns[f"{name} vs {self.baseline} (%)"] = [
                None if v is None else round(v, 1) for v in vals
            ]
        text = render_series(
            "cap (W/socket)", caps, columns, title=self.title, digits=4
        )
        failed = self.result.failed_cells()
        if failed:
            lines = [text, "", f"failed cells ({len(failed)}):"]
            lines += [
                f"  cap={cell.cap_per_socket_w:g} W/socket: "
                f"{cell.failure.error_type} after {cell.failure.attempts} "
                f"attempt(s): {cell.failure.error_message}"
                for cell in failed
            ]
            text = "\n".join(lines)
        return text


def scenario_sweep_figure(
    result: ScenarioResult,
    baseline: str | None = None,
    title: str | None = None,
) -> ScenarioSweepFigure:
    """The standard exhibit for an N-way scenario sweep."""
    spec = result.spec
    if title is None:
        title = (
            f"Scenario: {spec.benchmark}, {spec.n_ranks} ranks, "
            f"{len(spec.policies)}-way {{{', '.join(spec.policy_labels())}}}"
        )
    return ScenarioSweepFigure(title=title, result=result, baseline=baseline)


def powershift_figure(
    n_ranks: int = 4,
    quick: bool = False,
    node: str = "cpu-gpu",
) -> ScenarioSweepFigure:
    """CPU<->GPU power shifting: aggregate node cap vs best static split.

    Runs the phased-offload workload on a heterogeneous node three ways:
    ``static`` (the CPU-only uniform runtime), ``lp-split`` (the LP under
    the *best* fixed per-device cap partition — the EcoShift-style
    baseline a firmware split can achieve), and ``lp`` (the LP under one
    aggregate node cap, free to move watts between devices per event).
    The lp-over-lp-split column is the measured value of dynamic
    cross-device power shifting.
    """
    caps = (40.0, 60.0, 80.0) if quick else (30.0, 40.0, 50.0, 60.0, 70.0, 80.0)
    spec = ScenarioSpec(
        benchmark="phased-offload",
        caps_per_socket_w=caps,
        policies=(
            PolicySpec("static"),
            PolicySpec("lp-split"),
            PolicySpec("lp"),
        ),
        n_ranks=n_ranks,
        run_iterations=12,
        lp_iterations=2,
        steady_window=6,
        node=node,
    )
    result = run_scenarios(spec)
    return scenario_sweep_figure(
        result,
        baseline="lp-split",
        title=(
            f"Power shifting: aggregate node cap (lp) vs best static "
            f"CPU/GPU split (lp-split) on {node!r}, {n_ranks} ranks"
        ),
    )


def _sweep(benchmark: str, n_ranks: int = 32) -> list[ComparisonResult]:
    return sweep_caps(benchmark_config(benchmark, n_ranks), BENCH_CAPS[benchmark])


def figure9_lp_vs_static(n_ranks: int = 32) -> SweepFigure:
    """Fig. 9: LP potential improvement over Static, all four benchmarks."""
    series = {b: _sweep(b, n_ranks) for b in ("bt", "comd", "lulesh", "sp")}
    return SweepFigure(
        title="Figure 9: potential speedup of LP-derived schedules vs Static",
        series=series,
        metric="lp_vs_static",
    )


def figure10_lp_vs_conductor(n_ranks: int = 32) -> SweepFigure:
    """Fig. 10: LP potential improvement over Conductor."""
    series = {b: _sweep(b, n_ranks) for b in ("bt", "comd", "lulesh", "sp")}
    return SweepFigure(
        title="Figure 10: potential speedup of LP-derived schedules vs Conductor",
        series=series,
        metric="lp_vs_conductor",
    )


def _single_benchmark_figure(benchmark: str, title: str, n_ranks: int) -> SweepFigure:
    return SweepFigure(
        title=title, series={benchmark: _sweep(benchmark, n_ranks)},
        metric="both_vs_static",
    )


def figure11_comd(n_ranks: int = 32) -> SweepFigure:
    """Fig. 11: CoMD — LP and Conductor improvement vs Static."""
    return _single_benchmark_figure(
        "comd", "Figure 11: CoMD improvement vs Static", n_ranks
    )


def figure13_bt(n_ranks: int = 32) -> SweepFigure:
    """Fig. 13: BT — LP and Conductor improvement vs Static."""
    return _single_benchmark_figure(
        "bt", "Figure 13: BT improvement vs Static", n_ranks
    )


def figure14_sp(n_ranks: int = 32) -> SweepFigure:
    """Fig. 14: SP — LP and Conductor improvement vs Static."""
    return _single_benchmark_figure(
        "sp", "Figure 14: SP improvement vs Static", n_ranks
    )


def figure15_lulesh(n_ranks: int = 32) -> SweepFigure:
    """Fig. 15: LULESH — LP and Conductor improvement vs Static."""
    return _single_benchmark_figure(
        "lulesh", "Figure 15: LULESH improvement vs Static", n_ranks
    )


# ----------------------------------------------------------------------
@dataclass
class Figure12Result:
    """CoMD long-task duration-vs-power scatter at 30 W/socket (Fig. 12)."""

    cap_per_socket_w: float
    lp_points: list[tuple[float, float]]      # (power W, duration s)
    static_points: list[tuple[float, float]]
    long_task_cutoff_s: float = 0.5

    def stats(self, points: list[tuple[float, float]]) -> dict:
        if not points:
            return {}
        p = np.array([x for x, _ in points])
        d = np.array([y for _, y in points])
        return {
            "tasks": len(points),
            "power min/max (W)": f"{p.min():.1f} / {p.max():.1f}",
            "duration min/max (s)": f"{d.min():.3f} / {d.max():.3f}",
            "duration median (s)": float(np.median(d)),
        }

    def render(self) -> str:
        return "\n\n".join(
            [
                render_kv(
                    self.stats(self.lp_points),
                    title="Figure 12 (LP schedule, cap "
                          f"{self.cap_per_socket_w:.0f} W/socket)",
                ),
                render_kv(self.stats(self.static_points), title="(Static)"),
            ]
        )


def figure12_comd_task_scatter(
    cap_per_socket_w: float = 30.0,
    n_ranks: int = 32,
    iterations: int = 8,
    seed: int = 2015,
    efficiency_seed: int = 42,
    long_task_cutoff_s: float = 0.5,
) -> Figure12Result:
    """Reproduce Figure 12: long-task characteristics, LP vs Static.

    The paper plots 100 iterations; ``iterations`` trades statistics for
    LP size (32 ranks x 8 iterations already gives 256 long tasks).
    """
    app = make_comd(WorkloadSpec(n_ranks=n_ranks, iterations=iterations, seed=seed))
    pm = make_power_models(n_ranks, efficiency_seed)
    job_cap = cap_per_socket_w * n_ranks

    trace = trace_application(app, pm)
    lp = solve_fixed_order_lp(trace, job_cap)
    if not lp.feasible:
        raise RuntimeError(f"LP infeasible at {cap_per_socket_w} W/socket")
    lp_points = [
        (a.power_w, a.duration_s)
        for a in lp.schedule.assignments.values()
        if a.duration_s > long_task_cutoff_s
    ]

    engine = Engine(pm)
    res = engine.run(app, StaticPolicy(pm, job_cap))
    static_points = [
        (r.power_w, r.duration_s)
        for r in res.records
        if r.duration_s > long_task_cutoff_s
    ]
    return Figure12Result(
        cap_per_socket_w=cap_per_socket_w,
        lp_points=lp_points,
        static_points=static_points,
        long_task_cutoff_s=long_task_cutoff_s,
    )


# ----------------------------------------------------------------------
@dataclass
class HeadlineSummary:
    """The abstract's headline numbers, recomputed."""

    max_lp_vs_static_pct: float
    max_lp_vs_conductor_pct: float
    avg_lp_vs_static_pct: float
    avg_conductor_vs_static_pct: float

    def render(self) -> str:
        return render_kv(
            {
                "max LP vs Static (paper: 74.9%)":
                    f"{self.max_lp_vs_static_pct:.1f}%",
                "max LP vs Conductor (paper: 41.1%)":
                    f"{self.max_lp_vs_conductor_pct:.1f}%",
                "avg LP vs Static (paper: 10.8%)":
                    f"{self.avg_lp_vs_static_pct:.1f}%",
                "avg Conductor vs Static (paper: 6.7%)":
                    f"{self.avg_conductor_vs_static_pct:.1f}%",
            },
            title="Headline summary (all benchmarks, all caps)",
        )


def headline_summary(n_ranks: int = 32) -> HeadlineSummary:
    """Aggregate the abstract's headline claims over the full sweep."""
    all_results = [
        r
        for b in ("comd", "bt", "sp", "lulesh")
        for r in _sweep(b, n_ranks)
        if r.schedulable and r.feasible
    ]
    lp_static = [r.lp_vs_static_pct for r in all_results]
    lp_cond = [r.lp_vs_conductor_pct for r in all_results]
    cond_static = [r.conductor_vs_static_pct for r in all_results]
    return HeadlineSummary(
        max_lp_vs_static_pct=max(lp_static),
        max_lp_vs_conductor_pct=max(lp_cond),
        avg_lp_vs_static_pct=float(np.mean(lp_static)),
        avg_conductor_vs_static_pct=float(np.mean(cond_static)),
    )
