"""The fixed-vertex-order LP (paper Figures 4-6) — the central contribution.

Minimizes application makespan under a job-level power constraint by
choosing, per task, a convex mixture of configurations from the task's
convex Pareto frontier.  Power is constrained at *events* (DAG vertices)
whose order is fixed to a power-unconstrained initial schedule, which
keeps the formulation purely linear — and solvable for realistic traces
(thousands of processes / hundreds of edges per process, per the paper).

Variable layout (compiled from the shared :mod:`.model` IR):

* ``v[k]``   — time of vertex k (eq. 2 pins Init at 0; objective eq. 1
  minimizes the Finalize vertex's time);
* ``c[e,j]`` — fraction of task e run in frontier configuration j
  (eqs. 6-9; durations and powers substitute in via eqs. 7-8).

Constraints:

* precedence (eqs. 3-4): ``v_dst - v_src >= sum_j d_ej c_ej`` per compute
  edge, ``v_dst - v_src >= duration`` per message edge;
* event power (eqs. 10-11): ``sum_{e in R_k} sum_j p_ej c_ej <= PC`` per
  event — these rows carry :data:`~.model.CAP_ROW_TAG`, so a compiled
  model re-solves at any other cap by updating only the RHS;
* event order (eqs. 12-13): vertex times follow the initial order, with
  coincident-in-initial-schedule vertices tied equal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exec.timing import span
from ..simulator.trace import Trace
from .events import EventStructure
from .schedule import PowerSchedule
from .model import (
    CAP_ROW_TAG,
    CompiledModel,
    ProblemInstance,
    base_model,
    build_problem_instance,
    extract_schedule,
)
from .solver import InfeasibleError, LpSolution, LpStatus

__all__ = ["FixedOrderLpResult", "solve_fixed_order_lp", "compile_fixed_order"]


@dataclass
class FixedOrderLpResult:
    """LP outcome: a continuous schedule (None when infeasible) + solver data."""

    schedule: PowerSchedule | None
    solution: LpSolution
    events: EventStructure

    @property
    def feasible(self) -> bool:
        return self.schedule is not None

    @property
    def makespan_s(self) -> float:
        if self.schedule is None:
            raise InfeasibleError("LP was infeasible; no makespan")
        return self.schedule.objective_s


#: Discrete (binary-configuration) instances beyond this many tasks are
#: rejected — "a significantly less efficient solution method, which
#: prohibits us from solving realistic problems" (paper §3.2).
MAX_DISCRETE_TASKS = 64


def compile_fixed_order(
    instance: ProblemInstance,
    cap_w: float,
    power_tiebreak: float = 1e-9,
    discrete: bool = False,
    assembly: str = "bulk",
) -> CompiledModel:
    """Compile the fixed-order LP (eqs. 1-13) from the shared IR.

    The cap appears only in the RHS of the event-power rows, which are
    tagged :data:`~.model.CAP_ROW_TAG`: freeze the compiled model once and
    re-solve it at any cap via ``frozen.solve(rhs={CAP_ROW_TAG: cap})``.

    ``assembly`` selects bulk (default) vs row-by-row reference matrix
    assembly; both compile the identical model (see :func:`base_model`).
    """
    if cap_w <= 0:
        raise ValueError(f"cap must be positive, got {cap_w}")
    frontiers = instance.frontier_family(discrete)
    lp, v_idx, c_idx = base_model(
        instance,
        name=f"fixed-order-{instance.trace.app.name}",
        frontiers=frontiers,
        integer=discrete,
        assembly=assembly,
    )
    events = instance.events

    # Event power (eqs. 8, 10-11): one constraint per event group (tied
    # vertices share identical activity sets by construction, so one row
    # per group representative suffices).  Consecutive groups with the
    # same activity set yield *identical* rows — e.g. the many per-rank
    # wait events inside a halo exchange — so only the first is emitted;
    # this cuts LULESH-scale models by an order of magnitude with no
    # change to the feasible region.
    seen_sets: set[frozenset[int]] = set()
    emit: list[frozenset[int]] = []
    for group in events.groups:
        act = frozenset(events.active[group[0]])
        if not act or act in seen_sets:
            continue
        seen_sets.add(act)
        emit.append(act)
    if assembly == "bulk":
        c_arr = {
            e: np.asarray(cols, dtype=np.int64) for e, cols in c_idx.items()
        }
        if emit:
            col_parts = []
            val_parts = []
            widths = []
            for act in emit:
                width = 0
                for edge_id in act:
                    col_parts.append(c_arr[edge_id])
                    val_parts.append(frontiers[edge_id].powers)
                    width += len(frontiers[edge_id])
                widths.append(width)
            lp.add_block(
                indptr=np.concatenate(
                    [[0], np.cumsum(np.asarray(widths, dtype=np.int64))]
                ),
                cols=np.concatenate(col_parts),
                vals=np.concatenate(val_parts),
                lo=-np.inf,
                hi=cap_w,
                label="power",
                tag=CAP_ROW_TAG,
            )
    else:
        for act in emit:
            terms: dict[int, float] = {}
            for edge_id in act:
                for col, power in zip(
                    c_idx[edge_id], frontiers[edge_id].powers
                ):
                    terms[col] = terms.get(col, 0.0) + power
            lp.add_le(terms, cap_w, label="power", tag=CAP_ROW_TAG)

    # Event order (eqs. 12-13).
    if assembly == "bulk":
        tie_cols = []
        order_cols = []
        for group in events.groups:
            rep = group[0]
            for other in group[1:]:
                tie_cols.append((v_idx[other], v_idx[rep]))
        for prev, nxt in zip(events.groups, events.groups[1:]):
            order_cols.append((v_idx[nxt[0]], v_idx[prev[0]]))
        for pairs, lo_b, hi_b, lbl in (
            (tie_cols, 0.0, 0.0, "tie"),
            (order_cols, 0.0, np.inf, "order"),
        ):
            if not pairs:
                continue
            flat = np.asarray(pairs, dtype=np.int64).ravel()
            lp.add_block(
                indptr=np.arange(0, 2 * len(pairs) + 1, 2, dtype=np.int64),
                cols=flat,
                vals=np.tile(np.array([1.0, -1.0]), len(pairs)),
                lo=lo_b,
                hi=hi_b,
                label=lbl,
            )
    else:
        for group in events.groups:
            rep = group[0]
            for other in group[1:]:
                lp.add_eq(
                    {v_idx[other]: 1.0, v_idx[rep]: -1.0},
                    0.0,
                    label=f"tie{other}",
                )
        for prev, nxt in zip(events.groups, events.groups[1:]):
            lp.add_ge(
                {v_idx[nxt[0]]: 1.0, v_idx[prev[0]]: -1.0}, 0.0,
                label=f"order{prev[0]}-{nxt[0]}",
            )

    # Objective (eq. 1) plus the minimal-power tiebreak.
    if assembly == "bulk":
        obj = np.zeros(lp.n_vars)
        obj[v_idx[instance.fin_id]] = 1.0
        if power_tiebreak > 0:
            for edge_id, cols in c_arr.items():
                obj[cols] += power_tiebreak * frontiers[edge_id].powers
        lp.set_objective_dense(obj)
    else:
        objective: dict[int, float] = {v_idx[instance.fin_id]: 1.0}
        if power_tiebreak > 0:
            for edge_id, cols in c_idx.items():
                for col, power in zip(cols, frontiers[edge_id].powers):
                    objective[col] = (
                        objective.get(col, 0.0) + power_tiebreak * power
                    )
        lp.set_objective(objective)

    return CompiledModel(
        instance=instance,
        lp=lp,
        v_idx=v_idx,
        c_idx=c_idx,
        frontiers=frontiers,
        formulation="fixed-order",
        kind="discrete" if discrete else "continuous",
        cap_w=float(cap_w),
    )


def solve_fixed_order_lp(
    trace: Trace,
    cap_w: float,
    events: EventStructure | None = None,
    power_tiebreak: float = 1e-9,
    time_limit_s: float | None = None,
    discrete: bool = False,
    instance: ProblemInstance | None = None,
    assembly: str = "bulk",
) -> FixedOrderLpResult:
    """Solve the fixed-vertex-order LP for a traced application.

    Parameters
    ----------
    trace:
        Traced application (graph + per-task convex frontiers).
    cap_w:
        Job-level power constraint PC (total watts across all sockets).
    events:
        Precomputed event structure; recomputed from the trace when None.
        Passing one in lets a power sweep share the (fixed) event order.
    power_tiebreak:
        Tiny objective weight on total task power that selects the
        minimum-power optimum among equal-makespan solutions; keeps slack
        tasks on the Pareto frontier instead of arbitrary vertices.
        Must stay small enough not to trade makespan for power.
    discrete:
        Solve the paper's *discrete* variant (equation 5: each task runs a
        single configuration for its whole duration) as a mixed-integer
        program over the full Pareto set.  Exact but only tractable for
        small traces — the continuous LP plus rounding is the production
        path (paper §3.2).
    instance:
        A prebuilt :class:`ProblemInstance` for this trace.  Callers
        solving the same trace repeatedly (sweeps, experiment grids)
        should build it once and pass it here; ``events`` is ignored
        in that case.
    """
    if cap_w <= 0:
        raise ValueError(f"cap must be positive, got {cap_w}")
    if discrete and len(trace.task_edges) > MAX_DISCRETE_TASKS:
        raise ValueError(
            f"discrete formulation limited to {MAX_DISCRETE_TASKS} tasks "
            f"(got {len(trace.task_edges)}); solve continuously and round"
        )
    with span("assemble"):
        if instance is None:
            instance = build_problem_instance(trace, events=events)
        compiled = compile_fixed_order(
            instance,
            cap_w,
            power_tiebreak=power_tiebreak,
            discrete=discrete,
            assembly=assembly,
        )

    with span("solve"):
        solution = compiled.lp.solve(time_limit_s=time_limit_s)
    if solution.status is not LpStatus.OPTIMAL:
        return FixedOrderLpResult(
            schedule=None, solution=solution, events=instance.events
        )

    schedule = extract_schedule(
        compiled, solution, reference=(assembly == "reference")
    )
    return FixedOrderLpResult(
        schedule=schedule, solution=solution, events=instance.events
    )
