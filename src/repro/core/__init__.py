"""Core contribution: LP and ILP formulations of power-constrained scheduling.

All formulations compile from the shared :mod:`.model` IR: build a
:class:`ProblemInstance` once per trace, compile each formulation's
:class:`LinearProgram` from it, and decode solutions through the public
:func:`extract_schedule`.
"""

from .bottleneck import BottleneckReport, analyze_bottlenecks
from .device_split import (
    SPLIT_ROW_TAG,
    DeviceSplitResult,
    best_static_split,
    compile_device_split,
    solve_device_split_lp,
)
from .energy_lp import EnergyLpResult, compile_energy, solve_energy_lp
from .events import EventStructure, build_event_structure
from .fixed_order_lp import (
    MAX_DISCRETE_TASKS,
    FixedOrderLpResult,
    compile_fixed_order,
    solve_fixed_order_lp,
)
from .flow_ilp import (
    MAX_FLOW_ILP_EDGES,
    FlowIlpResult,
    compile_flow_ilp,
    solve_flow_ilp,
)
from .model import (
    CAP_ROW_TAG,
    MODEL_LAYER_VERSION,
    CompiledModel,
    ProblemInstance,
    TaskFrontier,
    base_model,
    build_problem_instance,
    extract_schedule,
)
from .rounding import round_schedule
from .schedule import PowerSchedule, TaskAssignment
from .serialize import (
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from .solver import (
    FrozenProgram,
    InfeasibleError,
    LinearProgram,
    LpSolution,
    LpStatus,
)
from .sweep import (
    CapSweepResult,
    ParametricCapSolver,
    minimum_feasible_cap,
    solve_cap_sweep,
)
from .validate_schedule import ValidationReport, validate_schedule

__all__ = [
    "BottleneckReport",
    "CAP_ROW_TAG",
    "CapSweepResult",
    "CompiledModel",
    "DeviceSplitResult",
    "EnergyLpResult",
    "EventStructure",
    "FixedOrderLpResult",
    "FlowIlpResult",
    "FrozenProgram",
    "InfeasibleError",
    "LinearProgram",
    "LpSolution",
    "LpStatus",
    "MAX_DISCRETE_TASKS",
    "MAX_FLOW_ILP_EDGES",
    "MODEL_LAYER_VERSION",
    "ParametricCapSolver",
    "PowerSchedule",
    "ProblemInstance",
    "SPLIT_ROW_TAG",
    "TaskAssignment",
    "TaskFrontier",
    "ValidationReport",
    "analyze_bottlenecks",
    "base_model",
    "best_static_split",
    "build_event_structure",
    "build_problem_instance",
    "compile_device_split",
    "compile_energy",
    "compile_fixed_order",
    "compile_flow_ilp",
    "extract_schedule",
    "solve_device_split_lp",
    "load_schedule",
    "round_schedule",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
    "solve_energy_lp",
    "solve_fixed_order_lp",
    "solve_flow_ilp",
    "validate_schedule",
    "minimum_feasible_cap",
    "solve_cap_sweep",
]
