"""Unit tests for schedule value objects."""

import numpy as np
import pytest

from repro.core import PowerSchedule, TaskAssignment
from repro.machine import ConfigPoint, Configuration
from repro.simulator import TaskRef


def point(power, duration, freq=2.0, threads=4):
    return ConfigPoint(Configuration(freq, threads), duration, power)


@pytest.fixture
def assignment():
    lo, hi = point(20.0, 2.0, freq=1.6), point(30.0, 1.0, freq=2.4)
    return TaskAssignment(
        ref=TaskRef(0, 0),
        edge_id=3,
        mixture=((lo, 0.25), (hi, 0.75)),
        duration_s=1.25,
        power_w=27.5,
    )


class TestTaskAssignment:
    def test_fraction_sum_checked(self):
        with pytest.raises(ValueError):
            TaskAssignment(
                ref=TaskRef(0, 0), edge_id=0,
                mixture=((point(10, 1), 0.5),), duration_s=1.0, power_w=10.0,
            )
        with pytest.raises(ValueError):
            TaskAssignment(
                ref=TaskRef(0, 0), edge_id=0, mixture=(),
                duration_s=1.0, power_w=10.0,
            )

    def test_dominant(self, assignment):
        assert assignment.dominant.power_w == 30.0
        assert assignment.configuration == Configuration(2.4, 4)

    def test_dominant_tie_prefers_lower_power(self):
        lo, hi = point(20.0, 2.0), point(30.0, 1.0)
        a = TaskAssignment(
            ref=TaskRef(0, 0), edge_id=0,
            mixture=((lo, 0.5), (hi, 0.5)), duration_s=1.5, power_w=25.0,
        )
        assert a.dominant.power_w == 20.0

    def test_is_discrete(self, assignment):
        assert not assignment.is_discrete
        single = TaskAssignment(
            ref=TaskRef(0, 1), edge_id=1, mixture=((point(10, 1), 1.0),),
            duration_s=1.0, power_w=10.0,
        )
        assert single.is_discrete


class TestPowerSchedule:
    def make(self, assignment):
        return PowerSchedule(
            kind="continuous",
            cap_w=60.0,
            objective_s=2.0,
            assignments={assignment.ref: assignment},
            vertex_times=np.array([0.0, 2.0]),
        )

    def test_validation(self, assignment):
        with pytest.raises(ValueError):
            PowerSchedule(kind="weird", cap_w=60, objective_s=1,
                          assignments={}, vertex_times=np.array([0.0]))
        with pytest.raises(ValueError):
            PowerSchedule(kind="discrete", cap_w=0, objective_s=1,
                          assignments={}, vertex_times=np.array([0.0]))
        with pytest.raises(ValueError):
            PowerSchedule(kind="discrete", cap_w=60, objective_s=-1,
                          assignments={}, vertex_times=np.array([0.0]))

    def test_config_map(self, assignment):
        sched = self.make(assignment)
        assert sched.config_map() == {TaskRef(0, 0): Configuration(2.4, 4)}

    def test_average_power(self, assignment):
        sched = self.make(assignment)
        assert sched.total_average_power() == pytest.approx(27.5)

    def test_accessors(self, assignment):
        sched = self.make(assignment)
        assert sched.task_powers()[TaskRef(0, 0)] == pytest.approx(27.5)
        assert sched.task_durations()[TaskRef(0, 0)] == pytest.approx(1.25)

    def test_describe(self, assignment):
        text = self.make(assignment).describe()
        assert "continuous" in text and "60W" in text
