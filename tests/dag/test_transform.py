"""Unit tests for slack reduction (paper §3.3)."""

import pytest

from repro.dag import (
    DagBuilder,
    edge_slack,
    reduce_slack,
    stretch_limits,
    unconstrained_schedule,
)
from repro.simulator import trace_application

from ..conftest import make_p2p_app


@pytest.fixture
def imbalanced(kernel):
    b = DagBuilder(2)
    b.compute(0, kernel)               # slack-rich
    b.compute(1, kernel.scaled(2.0))   # critical
    b.collective("allreduce", duration_s=1e-4)
    b.compute(0, kernel)
    b.compute(1, kernel)
    return b.finalize()


class TestReduceSlack:
    def test_makespan_unchanged(self, imbalanced, time_model):
        sched = unconstrained_schedule(imbalanced, time_model)
        reduced = reduce_slack(imbalanced, sched)
        assert reduced.makespan == pytest.approx(sched.makespan)
        # Interior vertices may shift (stretched tasks end later); the
        # collective completions and Finalize may not.
        from repro.dag import VertexKind

        for v in imbalanced.vertices:
            if v.kind in (VertexKind.FINALIZE,):
                assert reduced.vertex_times[v.id] == pytest.approx(
                    sched.vertex_times[v.id]
                )

    def test_slack_absorbed(self, imbalanced, time_model):
        """The light rank's idle wait (which sits on the collective wire
        edge in this DAG construction) is converted into task time."""
        sched = unconstrained_schedule(imbalanced, time_model)
        reduced = reduce_slack(imbalanced, sched)
        before = edge_slack(imbalanced, sched)
        after = edge_slack(imbalanced, reduced)
        assert after.sum() < before.sum()
        # Unbounded stretching absorbs the waits completely here.
        assert after.max() == pytest.approx(0.0, abs=1e-9)
        # The light first-phase task was the one stretched.
        light = min(
            (e for e in imbalanced.compute_edges()),
            key=lambda e: e.kernel.cpu_seconds,
        )
        assert (
            reduced.edge_durations[light.id]
            > sched.edge_durations[light.id] * 1.5
        )

    def test_durations_never_shrink(self, imbalanced, time_model):
        sched = unconstrained_schedule(imbalanced, time_model)
        reduced = reduce_slack(imbalanced, sched)
        assert (reduced.edge_durations >= sched.edge_durations - 1e-12).all()

    def test_messages_untouched(self, imbalanced, time_model):
        sched = unconstrained_schedule(imbalanced, time_model)
        reduced = reduce_slack(imbalanced, sched)
        for e in imbalanced.message_edges():
            assert reduced.edge_durations[e.id] == pytest.approx(
                sched.edge_durations[e.id]
            )

    def test_frontier_limits_respected(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=1)
        trace = trace_application(app, two_rank_models)
        from repro.machine import TaskTimeModel

        sched = unconstrained_schedule(trace.graph, TaskTimeModel())
        reduced = reduce_slack(trace.graph, sched, trace.frontiers)
        limits = stretch_limits(trace.graph, trace.frontiers)
        assert (reduced.edge_durations <= limits + 1e-12).all()

    def test_critical_path_tasks_not_stretched(self, imbalanced, time_model):
        sched = unconstrained_schedule(imbalanced, time_model)
        reduced = reduce_slack(imbalanced, sched)
        heavy = max(
            imbalanced.compute_edges(), key=lambda e: e.kernel.cpu_seconds
        )
        assert reduced.edge_durations[heavy.id] == pytest.approx(
            sched.edge_durations[heavy.id]
        )


class TestStretchLimits:
    def test_shapes_and_values(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=1)
        trace = trace_application(app, two_rank_models)
        limits = stretch_limits(trace.graph, trace.frontiers)
        assert limits.shape == (trace.graph.n_edges,)
        for e in trace.graph.compute_edges():
            slowest = max(p.duration_s for p in trace.frontiers[e.id])
            assert limits[e.id] == pytest.approx(slowest)
