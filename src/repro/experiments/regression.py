"""Reference-result regression checking.

``results/`` pins the exhibits' rendered text; this module re-renders any
subset and diffs against the pinned files, so refactors can prove they
changed nothing (the whole pipeline is seeded and deterministic).  Exposed
on the CLI as ``repro-experiments verify-results <dir>``.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["DriftReport", "verify_reference_results"]


@dataclass
class DriftReport:
    """Outcome of a reference comparison."""

    checked: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    drifted: dict[str, str] = field(default_factory=dict)  # name -> diff

    @property
    def ok(self) -> bool:
        return not self.missing and not self.drifted

    def summary(self) -> str:
        if self.ok:
            return (
                f"reference check OK: {len(self.checked)} exhibits "
                "regenerated identically"
            )
        parts = [f"reference check FAILED ({len(self.checked)} checked)"]
        if self.missing:
            parts.append(f"missing reference files: {self.missing}")
        for name, diff in self.drifted.items():
            parts.append(f"--- drift in {name} ---\n{diff}")
        return "\n".join(parts)


def verify_reference_results(
    reference_dir: str | Path,
    exhibit_results: dict[str, object],
) -> DriftReport:
    """Diff freshly-rendered exhibits against pinned reference text.

    ``exhibit_results`` maps exhibit names to result objects exposing
    ``render()`` (the harness's standard interface).  Exhibits without a
    pinned file are reported as missing rather than silently skipped —
    an unpinned exhibit is itself drift.
    """
    ref = Path(reference_dir)
    report = DriftReport()
    for name, result in exhibit_results.items():
        report.checked.append(name)
        path = ref / f"{name}.txt"
        if not path.exists():
            report.missing.append(name)
            continue
        expected = path.read_text().rstrip("\n")
        actual = result.render().rstrip("\n")
        if expected != actual:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(), actual.splitlines(),
                    fromfile=f"reference/{name}", tofile=f"current/{name}",
                    lineterm="", n=1,
                )
            )
            report.drifted[name] = diff
    return report
