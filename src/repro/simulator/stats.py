"""Per-iteration and per-rank statistics over simulation records.

The runtimes (Conductor's reallocator), the figures (Fig. 12's scatter,
Table 3's medians), and user diagnostics all need the same reductions over
:class:`TaskRecord` streams — busy time, arrival at the barrier, load
imbalance, power utilization.  This module is the one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.power import SocketPowerModel
from .engine import SimulationResult, TaskRecord

__all__ = ["IterationStats", "iteration_stats", "imbalance_factor",
           "power_utilization"]


@dataclass(frozen=True)
class IterationStats:
    """Reductions over one iteration's records, indexed by rank."""

    iteration: int
    n_ranks: int
    busy_s: np.ndarray          # sum of task durations per rank
    arrival_s: np.ndarray       # last task end per rank
    first_start_s: float
    peak_task_power_w: np.ndarray
    energy_j: np.ndarray

    @property
    def barrier_s(self) -> float:
        """When the slowest rank arrived (the iteration's critical time)."""
        return float(self.arrival_s.max())

    @property
    def span_s(self) -> float:
        return self.barrier_s - self.first_start_s

    @property
    def earliness_s(self) -> np.ndarray:
        """Per-rank idle wait at the end-of-iteration barrier."""
        return self.barrier_s - self.arrival_s

    @property
    def critical_rank(self) -> int:
        return int(np.argmax(self.arrival_s))

    def imbalance(self) -> float:
        """max/mean busy-time ratio — 1.0 is perfectly balanced."""
        mean = float(self.busy_s.mean())
        return float(self.busy_s.max() / mean) if mean > 0 else 1.0


def iteration_stats(
    records: list[TaskRecord], n_ranks: int, iteration: int | None = None
) -> IterationStats:
    """Reduce one iteration's records (optionally filtering by iteration)."""
    if iteration is not None:
        records = [r for r in records if r.iteration == iteration]
    if not records:
        raise ValueError("no records to reduce")
    it = iteration if iteration is not None else records[0].iteration
    busy = np.zeros(n_ranks)
    arrival = np.zeros(n_ranks)
    peak = np.zeros(n_ranks)
    energy = np.zeros(n_ranks)
    first = min(r.start_s for r in records)
    for r in records:
        rank = r.ref.rank
        busy[rank] += r.duration_s
        arrival[rank] = max(arrival[rank], r.end_s)
        peak[rank] = max(peak[rank], r.power_w)
        energy[rank] += r.energy_j
    return IterationStats(
        iteration=it, n_ranks=n_ranks, busy_s=busy, arrival_s=arrival,
        first_start_s=first, peak_task_power_w=peak, energy_j=energy,
    )


def imbalance_factor(result: SimulationResult, iteration: int) -> float:
    """max/mean busy-time ratio of one iteration of a run."""
    stats = iteration_stats(
        result.records_for_iteration(iteration), result.n_ranks
    )
    return stats.imbalance()


def power_utilization(
    result: SimulationResult,
    power_models: list[SocketPowerModel],
    job_cap_w: float,
) -> float:
    """Fraction of the job's power budget actually converted to task power
    over the run (time-weighted).  Low utilization under a tight cap is
    the signature of misallocated power (Static on imbalanced apps)."""
    if job_cap_w <= 0:
        raise ValueError("job cap must be positive")
    if result.makespan_s <= 0:
        return 0.0
    task_energy = result.total_energy_j()
    return float(task_energy / (job_cap_w * result.makespan_s))
