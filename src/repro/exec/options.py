"""Ambient execution options: workers, cache directory, telemetry.

The figure/table entry points have stable, paper-shaped signatures
(``figure11_comd(n_ranks)``); execution policy — how many workers, which
cache directory — is orthogonal to *what* is computed.  Rather than
threading ``workers=``/``cache=`` through every exhibit function, the CLI
(or a test) installs an :class:`ExecutionOptions` for the current
context, and the sweep layer picks it up as its default.  Explicit
keyword arguments always override the ambient options.

The default options (serial, no cache) reproduce the pre-subsystem
behavior exactly, which keeps the benchmark harness measuring the
uncached path.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace

from .cache import SolverCache

__all__ = [
    "ExecutionOptions",
    "get_execution_options",
    "set_execution_options",
    "execution_options",
]


@dataclass(frozen=True)
class ExecutionOptions:
    """How sweep-shaped experiments execute (not what they compute)."""

    workers: int = 1
    cache_dir: str | None = None
    use_cache: bool = True
    task_timeout_s: float | None = None
    task_retries: int = 1
    task_backoff_s: float = 0.05
    #: Sweep cells per pool dispatch (> 1 amortizes pickling/IPC when
    #: individual cells are cheap; see ParallelRunner.batch_size).
    task_batch_size: int = 1
    #: Task transport for parallel sweeps: "process" (the classic
    #: per-map ProcessPoolExecutor), "socket" (a spawned local worker
    #: fleet), or "inline" (in-process; tests/debugging).  See
    #: repro.exec.backends.
    task_backend: str = "process"

    def make_cache(self) -> SolverCache | None:
        """A cache handle per these options (None when caching is off)."""
        if self.cache_dir is None or not self.use_cache:
            return None
        return SolverCache(self.cache_dir)


_current: ContextVar[ExecutionOptions] = ContextVar(
    "repro_execution_options", default=ExecutionOptions()
)


def get_execution_options() -> ExecutionOptions:
    """The options active in this context (defaults: serial, uncached)."""
    return _current.get()


def set_execution_options(options: ExecutionOptions) -> None:
    """Install options for the rest of this context (the CLI's entry path)."""
    _current.set(options)


@contextmanager
def execution_options(**overrides):
    """Temporarily override fields of the active options (tests, scripts)."""
    token = _current.set(replace(_current.get(), **overrides))
    try:
        yield _current.get()
    finally:
        _current.reset(token)
