"""Figure 9: potential speedup of LP-derived schedules over Static.

Checks the paper's claims across the shared cap sweep: the largest gains
sit at the lowest caps, BT peaks highest (74.9% in the paper), LULESH
stays above ~14% at every cap, and some benchmarks are not schedulable at
the lowest cap.
"""

from conftest import engage, improvements


def test_fig9_sweep(benchmark, sweeps):
    # The sweep fixture is session-cached; time one incremental comparison.
    from repro.experiments.figures import benchmark_config
    from repro.experiments.runner import run_comparison
    from conftest import BENCH_RANKS

    cfg = benchmark_config("comd", n_ranks=BENCH_RANKS)
    benchmark.pedantic(
        run_comparison, args=(cfg, 45.0), rounds=1, iterations=1
    )

    for bench in ("comd", "bt", "sp", "lulesh"):
        assert improvements(sweeps[bench], "lp_vs_static_pct")


def test_fig9_bt_peaks_highest(benchmark, sweeps):
    engage(benchmark)
    peaks = {
        b: max(improvements(sweeps[b], "lp_vs_static_pct"))
        for b in sweeps
    }
    assert peaks["bt"] == max(peaks.values())
    # Paper: up to 74.9%.  Same order of magnitude required here.
    assert peaks["bt"] > 45.0


def test_fig9_low_caps_dominate(benchmark, sweeps):
    """Largest LP-vs-Static advantages occur at the lowest power caps."""
    engage(benchmark)
    for bench in ("bt", "comd"):
        vals = improvements(sweeps[bench], "lp_vs_static_pct")
        assert vals[0] == max(vals)


def test_fig9_lulesh_floor(benchmark, sweeps):
    """Paper: LULESH shows >14% potential at ALL tested caps."""
    engage(benchmark)
    vals = improvements(sweeps["lulesh"], "lp_vs_static_pct")
    assert min(vals) > 14.0


def test_fig9_sp_small(benchmark, sweeps):
    """Paper Fig. 14: SP's LP gain is small (axis tops out near 3%)."""
    engage(benchmark)
    vals = improvements(sweeps["sp"], "lp_vs_static_pct")
    assert max(vals) < 10.0


def test_fig9_unschedulable_at_lowest_cap(benchmark, sweeps):
    """Paper: 'Some benchmarks were not able to be scheduled at the lowest
    average per-socket power constraint' — SP and LULESH start at 40 W."""
    engage(benchmark)
    for bench in ("sp", "lulesh"):
        caps = [r.cap_per_socket_w for r in sweeps[bench] if r.schedulable]
        assert min(caps) >= 40.0


def test_fig9_lp_never_loses(benchmark, sweeps):
    """The LP bound can only trail a measured runtime by measurement-window
    effects: its trace covers different (seeded) jitter iterations than the
    steady-state window, worth a few tenths of a percent at most."""
    engage(benchmark)
    for bench, results in sweeps.items():
        for v in improvements(results, "lp_vs_static_pct"):
            assert v >= -0.5
