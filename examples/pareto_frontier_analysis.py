#!/usr/bin/env python
"""Explore configuration Pareto frontiers across task types (Figure 1).

Different kernels have very differently-shaped power/time frontiers, and
that shape is what decides whether thread throttling (DCT) ever pays:

* compute-bound kernels (CoMD force): 8 threads dominate everywhere except
  the lowest frequencies — the paper's Table 1;
* contended memory-bound kernels (LULESH stress): 4-5 threads enter the
  frontier at mid power, which is why Table 3 shows the LP and Conductor
  choosing 5 threads under a 50 W cap.

This example prints each kernel's convex frontier and an ASCII rendering
of the time-vs-power scatter.

Run:  python examples/pareto_frontier_analysis.py
"""

from repro import SocketPowerModel, convex_frontier, pareto_frontier
from repro.machine import measure_task_space
from repro.workloads import BT_KERNEL, FORCE_KERNEL, SP_KERNEL, STRESS_KERNEL


def ascii_scatter(points, frontier, width=64, height=18):
    """Rough terminal plot: '.' = configuration, 'o' = convex frontier."""
    pmin = min(p.power_w for p in points)
    pmax = max(p.power_w for p in points)
    dmin = min(p.duration_s for p in points)
    dmax = max(p.duration_s for p in points)
    grid = [[" "] * width for _ in range(height)]

    def put(p, ch):
        x = int((p.power_w - pmin) / (pmax - pmin) * (width - 1))
        y = int((p.duration_s - dmin) / (dmax - dmin) * (height - 1))
        grid[y][x] = ch

    for p in points:
        put(p, ".")
    for p in frontier:
        put(p, "o")
    rows = ["".join(r) for r in grid]
    rows.append(f"{pmin:.0f}W{' ' * (width - 8)}{pmax:.0f}W")
    return "\n".join(rows)


def main() -> None:
    socket = SocketPowerModel()
    kernels = {
        "CoMD force (compute-bound)": FORCE_KERNEL,
        "LULESH stress (contended, memory-bound)": STRESS_KERNEL,
        "BT-MZ solve (power-hungry)": BT_KERNEL,
        "SP-MZ solve (balanced mix)": SP_KERNEL,
    }
    for name, kernel in kernels.items():
        points = measure_task_space(kernel, socket)
        pareto = pareto_frontier(points)
        hull = convex_frontier(points)
        print(f"\n=== {name} ===")
        print(f"{len(points)} configurations, {len(pareto)} Pareto, "
              f"{len(hull)} on the convex frontier")
        threads_on_hull = sorted({p.config.threads for p in hull})
        print(f"thread counts on the convex frontier: {threads_on_hull}")
        fastest = hull[-1]
        print(f"fastest: {fastest.config.describe()} "
              f"({fastest.duration_s:.3f} s @ {fastest.power_w:.1f} W)")
        frugal = hull[0]
        print(f"most frugal: {frugal.config.describe()} "
              f"({frugal.duration_s:.3f} s @ {frugal.power_w:.1f} W)")
        print(ascii_scatter(points, hull))


if __name__ == "__main__":
    main()
