"""Figure 11: CoMD — LP and Conductor improvement vs Static.

Paper: LP gains 2.4-12.6% (median 4.6%), shrinking as the cap rises;
Conductor stays close to the LP.
"""

import numpy as np

from conftest import engage, improvements


def test_fig11_regeneration(benchmark, sweeps):
    rows = benchmark(
        lambda: [
            (r.cap_per_socket_w, r.lp_vs_static_pct, r.conductor_vs_static_pct)
            for r in sweeps["comd"]
        ]
    )
    assert len(rows) == 6


def test_fig11_magnitudes(benchmark, sweeps):
    engage(benchmark)
    vals = improvements(sweeps["comd"], "lp_vs_static_pct")
    assert 5.0 < max(vals) < 25.0   # paper max 12.6%
    assert min(vals) < 5.0          # paper min 2.4%
    assert 0.0 < float(np.median(vals)) < 10.0  # paper median 4.6%


def test_fig11_decays_with_power(benchmark, sweeps):
    """The gain is largest at the lowest cap and ~vanishes at high caps."""
    engage(benchmark)
    vals = improvements(sweeps["comd"], "lp_vs_static_pct")
    assert vals[0] == max(vals)
    assert vals[-1] < 3.0


def test_fig11_conductor_tracks_lp(benchmark, sweeps):
    """Conductor captures a meaningful share of the LP's gain at the caps
    where there is a gain to capture."""
    engage(benchmark)
    r30 = sweeps["comd"][0]
    assert r30.conductor_vs_static_pct > 0.0
    assert r30.conductor_vs_static_pct <= r30.lp_vs_static_pct + 1e-9
