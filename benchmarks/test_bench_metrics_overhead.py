"""Metrics overhead: typed metrics disabled must be effectively free.

Every :mod:`repro.obs.metrics` emission site costs one contextvar read
when no :class:`Metrics` registry is active — the same gating discipline
as the trace recorder, benchmarked the same way:

* a timed quick comparison with metrics *off* (the default path, and
  the number the CI trajectory tracks for the <3% overhead guard), and
* an interleaved off-vs-on measurement asserting that even with a live
  registry — every cache lookup, solve, simulated task, and per-cell
  wall/CPU observation counted — the comparison stays within a loose
  in-file factor.  The tight cross-run bound lives in CI, where this
  file's off-path timing is compared against the committed baseline.
"""

from __future__ import annotations

import time

from conftest import engage

from repro.experiments.runner import ExperimentConfig, run_comparison
from repro.obs.metrics import Metrics, use_metrics

#: The CLI's --quick comparison (see repro.experiments.cli._run_config).
QUICK = ExperimentConfig(
    benchmark="comd", n_ranks=4, run_iterations=12, lp_iterations=2,
    steady_window=6,
)
CAP_W = 50.0
N_REPS = 5


def _cell():
    return run_comparison(QUICK, CAP_W)


def test_quick_comparison_metrics_off_speed(benchmark):
    """The default path: no registry active, one contextvar read per site."""
    _cell()  # warm the per-benchmark shared state (trace, frontiers, IR)
    benchmark(_cell)


def test_metrics_on_overhead_is_bounded(benchmark):
    """Registry active: counting everything stays cheap.

    Interleaved min-of-N on both sides, so a scheduler hiccup cannot
    fake or mask the ratio.  The bound is deliberately loose (2x) to be
    hiccup-proof; the recorded ratio is typically well under the CI
    guard's 3%, and the metrics-*off* overhead this transitively bounds
    is far smaller still.
    """
    _cell()  # warm shared state
    t_off: list[float] = []
    t_on: list[float] = []
    for _ in range(N_REPS):
        t0 = time.perf_counter()
        _cell()
        t_off.append(time.perf_counter() - t0)

        metrics = Metrics()
        t0 = time.perf_counter()
        with use_metrics(metrics):
            _cell()
        t_on.append(time.perf_counter() - t0)
        assert metrics.counter("solve.total") > 0  # really counted

    assert min(t_on) <= 2.0 * min(t_off) + 1e-3, (
        f"metrics-on {min(t_on):.4f}s vs off {min(t_off):.4f}s"
    )
    engage(benchmark)
