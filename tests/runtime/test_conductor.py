"""Unit and behavioral tests for the Conductor runtime."""

import numpy as np
import pytest

from repro.machine import sample_socket_efficiencies, SocketPowerModel
from repro.runtime import ConductorConfig, ConductorPolicy, StaticPolicy
from repro.simulator import Engine, TaskRef, job_power_timeline
from repro.workloads import imbalanced_collective_app

FAST_CONDUCTOR = ConductorConfig(
    exploration_iterations=2, realloc_period=1, step_w=4.0,
    measurement_noise=0.0, seed=1,
)


@pytest.fixture
def models():
    eff = sample_socket_efficiencies(4, seed=9)
    return [SocketPowerModel(efficiency=float(e)) for e in eff]


@pytest.fixture
def app():
    return imbalanced_collective_app(n_ranks=4, iterations=12, spread=1.6)


class TestConductorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"exploration_iterations": -1},
            {"realloc_period": 0},
            {"step_w": 0.0},
            {"receiver_fraction": 0.0},
            {"measurement_noise": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ConductorConfig(**kwargs)


class TestConductorPolicy:
    def test_initial_allocation_uniform(self, models, app):
        policy = ConductorPolicy(models, 120.0, app)
        np.testing.assert_allclose(policy.alloc_w, 30.0)

    def test_invalid_cap(self, models, app):
        with pytest.raises(ValueError):
            ConductorPolicy(models, 0.0, app)

    def test_exploration_configs_heterogeneous(self, models, app, kernel):
        policy = ConductorPolicy(models, 120.0, app, config=FAST_CONDUCTOR)
        cfgs = {
            policy.configure(TaskRef(r, 0), kernel, 0, None)
            for r in range(4)
        }
        assert len(cfgs) > 1  # different ranks profile different configs

    def test_exploration_respects_budget(self, models, app, kernel):
        policy = ConductorPolicy(models, 120.0, app, config=FAST_CONDUCTOR)
        for r in range(4):
            cfg = policy.configure(TaskRef(r, 0), kernel, 0, None)
            power = models[r].power(
                cfg.freq_ghz, cfg.threads, kernel.activity,
                kernel.mem_intensity, cfg.duty,
            )
            assert power <= policy.alloc_w[r] * 1.001 or cfg.duty < 1.0

    def test_steady_state_fastest_under_budget(self, models, app, kernel):
        policy = ConductorPolicy(models, 120.0, app, config=FAST_CONDUCTOR)
        cfg = policy.configure(TaskRef(0, 0), kernel, 5, None)
        _, frontier = policy._profiles(0, kernel)
        budget = policy.alloc_w[0]
        fits = [p for p in frontier if p.power_w <= budget]
        assert cfg == fits[-1].config  # no slack info yet -> fastest

    def test_rapl_fallback_below_frontier(self, models, app, kernel):
        policy = ConductorPolicy(models, 120.0, app, config=FAST_CONDUCTOR)
        policy.alloc_w[:] = 8.0  # below any frontier point
        cfg = policy.configure(TaskRef(0, 0), kernel, 5, None)
        assert cfg.effective_freq_ghz <= 1.2

    def test_switch_cost(self, models, app):
        policy = ConductorPolicy(models, 120.0, app)
        assert policy.switch_cost_s() == pytest.approx(145e-6)


class TestConductorEndToEnd:
    def test_allocations_conserve_cap(self, models, app):
        job_cap = 120.0
        policy = ConductorPolicy(models, job_cap, app, config=FAST_CONDUCTOR)
        Engine(models).run(app, policy)
        assert policy.realloc_count > 0
        for alloc in policy.alloc_history:
            assert alloc.sum() <= job_cap + 1e-6
            assert (alloc > 0).all()

    def test_power_shifts_toward_heavy_ranks(self, models, app):
        policy = ConductorPolicy(models, 120.0, app, config=FAST_CONDUCTOR)
        res = Engine(models).run(app, policy)
        # Heaviest rank by total work:
        busy = np.zeros(4)
        for r in res.records:
            if r.iteration >= 8:
                busy[r.ref.rank] += r.duration_s * r.power_w
        heavy = int(np.argmax([
            sum(rec.duration_s for rec in res.records
                if rec.ref.rank == r and rec.iteration == 11)
            for r in range(4)
        ]))
        final = policy.alloc_w
        assert final[heavy] >= np.median(final) - 1e-9

    def test_beats_static_on_imbalanced_app(self, models, app):
        job_cap = 4 * 28.0
        engine = Engine(models)
        engine.run(app, StaticPolicy(models, job_cap))
        policy = ConductorPolicy(models, job_cap, app, config=FAST_CONDUCTOR)
        res = engine.run(app, policy)
        # Compare the last few iterations (post-convergence).
        start_s = min(r.start_s for r in res.records if r.iteration >= 9)
        start_t = None
        res_static = engine.run(app, StaticPolicy(models, job_cap))
        start_t = min(r.start_s for r in res_static.records if r.iteration >= 9)
        cond_tail = res.makespan_s - start_s
        static_tail = res_static.makespan_s - start_t
        assert cond_tail < static_tail

    def test_job_cap_never_violated(self, models, app):
        job_cap = 4 * 30.0
        policy = ConductorPolicy(models, job_cap, app, config=FAST_CONDUCTOR)
        res = Engine(models).run(app, policy)
        tl = job_power_timeline(res, models, slack_mode="idle")
        assert tl.max_power() <= job_cap * 1.005

    def test_realloc_overhead_charged(self, models, app):
        policy = ConductorPolicy(models, 120.0, app, config=FAST_CONDUCTOR)
        res = Engine(models).run(app, policy)
        expected = policy.realloc_count * FAST_CONDUCTOR.realloc_overhead_s
        assert res.pcontrol_overhead_s == pytest.approx(expected)

    def test_noise_changes_decisions(self, models, app):
        noisy_cfg = ConductorConfig(
            exploration_iterations=2, realloc_period=1, step_w=4.0,
            measurement_noise=0.05, seed=3,
        )
        p_clean = ConductorPolicy(models, 120.0, app, config=FAST_CONDUCTOR)
        p_noisy = ConductorPolicy(models, 120.0, app, config=noisy_cfg)
        engine = Engine(models)
        engine.run(app, p_clean)
        engine.run(app, p_noisy)
        assert not np.allclose(p_clean.alloc_w, p_noisy.alloc_w)
