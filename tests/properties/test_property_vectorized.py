"""Property tests: vectorized replay == scalar replay, bit for bit.

Random deadlock-free DAGs, random per-task configuration assignments,
and random cap grids; the vectorized engine path and the sweep-batched
DAG walk must reproduce the scalar reference oracle exactly — same
floats, same record order, same schedules.  Deterministic worker-count
and batch-size identity (which needs real process pools) lives in
``tests/exec/test_parallel.py``.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.machine import Configuration, SocketPowerModel
from repro.simulator import (
    Engine,
    ReplayPolicy,
    TaskRef,
    job_power_timeline,
    replay_schedule,
    replay_schedule_sweep,
)
from repro.workloads import random_application

apps = st.builds(
    random_application,
    n_ranks=st.integers(1, 4),
    iterations=st.integers(1, 3),
    seed=st.integers(0, 10_000),
    p_p2p=st.floats(0.0, 1.0),
)

#: Valid operating points to assign (frequencies on the Xeon grid, one
#: clock-modulated point the Static fallback can produce).
PALETTE = (
    Configuration(2.6, 8),
    Configuration(2.0, 4),
    Configuration(1.2, 8),
    Configuration(1.8, 2, duty=0.75),
)


def models_for(app):
    return [
        SocketPowerModel(efficiency=1.0 + 0.02 * r) for r in range(app.n_ranks)
    ]


def random_assignment(app, seed):
    """Configuration per task, drawn from the palette; ~30% of non-first
    tasks are left absent to exercise the carry-current rule."""
    rng = random.Random(seed)
    assignment = {}
    for r in range(app.n_ranks):
        for s in range(len(app.compute_ops(r))):
            if s == 0 or rng.random() < 0.7:
                assignment[TaskRef(r, s)] = rng.choice(PALETTE)
    return assignment


def assert_identical(ref, vec):
    assert ref.makespan_s == vec.makespan_s
    assert ref.dvfs_switch_count == vec.dvfs_switch_count
    assert ref.mpi_call_count == vec.mpi_call_count
    assert ref.collective_count == vec.collective_count
    assert len(ref.records) == len(vec.records)
    for a, b in zip(ref.records, vec.records):
        assert (a.ref, a.iteration, a.label, a.config) == (
            b.ref, b.iteration, b.label, b.config
        )
        assert a.start_s == b.start_s
        assert a.duration_s == b.duration_s
        assert a.power_w == b.power_w


class TestVectorizedReplayProperties:
    @given(app=apps, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_vectorized_run_bitwise_equals_scalar(self, app, seed):
        models = models_for(app)
        policy = ReplayPolicy(random_assignment(app, seed))
        vec = Engine(models).run(app, policy)
        ref = Engine(models, vectorized=False).run(app, policy)
        assert_identical(ref, vec)

    @given(
        app=apps,
        seed=st.integers(0, 2**31 - 1),
        caps=st.lists(st.floats(20.0, 2000.0), min_size=1, max_size=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_sweep_bitwise_equals_per_cap_scalar(self, app, seed, caps):
        """One vectorized walk over a random cap grid == that many
        scalar replays, including the power verification verdicts."""
        models = models_for(app)
        assignments = [
            random_assignment(app, seed + c) for c in range(len(caps))
        ]
        vec = replay_schedule_sweep(app, assignments, models, caps)
        for (assignment, cap), b in zip(zip(assignments, caps), vec):
            a = replay_schedule(app, assignment, models, cap)
            assert a.cap_w == b.cap_w
            assert a.peak_power_w == b.peak_power_w
            assert a.cap_respected == b.cap_respected
            assert_identical(a.result, b.result)

    @given(app=apps, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_timeline_accounting_bitwise_equals_reference(self, app, seed):
        """Array-built job power timelines == the per-event Python
        accumulation, breakpoint for breakpoint."""
        models = models_for(app)
        result = Engine(models).run(app, ReplayPolicy(random_assignment(app, seed)))
        for slack_mode in ("task", "idle"):
            vec = job_power_timeline(result, models, slack_mode=slack_mode)
            ref = job_power_timeline(
                result, models, slack_mode=slack_mode, reference=True
            )
            assert np.array_equal(ref.times, vec.times)
            assert np.array_equal(ref.power, vec.power)
