"""The sweep journal: checkpoint cells as they settle, resume later.

A production sweep dies for reasons that have nothing to do with the
cells it computes — ``Ctrl-C``, an OOM-killed parent, a pre-empted node.
The :class:`SweepJournal` is an append-only JSONL file that records every
*settled* cell (ok with its cache payload, or failed with its structured
failure) keyed by the cell's content address
(:func:`~repro.exec.keys.scenario_cell_key`).  A re-run with the same
journal rehydrates every journaled-ok cell without recomputation and
only runs the rest — and because payloads round-trip exactly (same
guarantee as :class:`~repro.exec.cache.SolverCache`), the resumed sweep's
final tables and manifest are byte-identical to an uninterrupted run.

Failed cells are journaled too — that is what the manifest's failure
report is rebuilt from — but they are *retried* on resume: a resume is a
fresh chance, and deterministic failures (e.g. injected ones) simply
fail identically again.

Durability: each record is one line, flushed and fsynced before the
append returns, so a journal is never missing a cell the caller was told
about.  Loading is tolerant by construction — a torn trailing line
(the process died mid-append) is skipped, unknown schemas are ignored,
and the *last* record per key wins, so a cell that failed in one run and
succeeded in the next reads back as ok.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["JOURNAL_SCHEMA_VERSION", "SweepJournal"]

#: Bump when the record layout changes; old records are then ignored.
JOURNAL_SCHEMA_VERSION = 1


class SweepJournal:
    """Append-only JSONL checkpoint of settled sweep cells."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def __len__(self) -> int:
        return len(self.load())

    # ------------------------------------------------------------------
    def load(self) -> dict[str, dict]:
        """All usable records, keyed by cell key; later records win.

        A missing file is an empty journal; torn lines and records with
        an unknown schema or no key are skipped, never fatal.
        """
        records: dict[str, dict] = {}
        try:
            text = self.path.read_text()
        except OSError:
            return records
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # torn trailing write from a killed process
            if not isinstance(doc, dict):
                continue
            if doc.get("schema") != JOURNAL_SCHEMA_VERSION:
                continue
            key = doc.get("key")
            if not isinstance(key, str):
                continue
            records[key] = doc
        return records

    # ------------------------------------------------------------------
    def record_ok(
        self, key: str, cap_per_socket_w: float, payload: dict, **extra
    ) -> None:
        """Journal one completed cell with its rehydratable payload."""
        self._append(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "key": key,
                "cap_per_socket_w": float(cap_per_socket_w),
                "status": "ok",
                "payload": payload,
                **extra,
            }
        )

    def record_failed(
        self, key: str, cap_per_socket_w: float, failure: dict, **extra
    ) -> None:
        """Journal one failed cell with its structured failure document."""
        self._append(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "key": key,
                "cap_per_socket_w": float(cap_per_socket_w),
                "status": "failed",
                "failure": failure,
                **extra,
            }
        )

    def _append(self, doc: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with self.path.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
