"""Measurement-based tracing: build frontiers from executed runs.

:func:`repro.simulator.trace.trace_application` profiles tasks by
evaluating the machine model directly — the oracle path.  Real systems
(and the paper) must *measure*: run the application some number of times
with deliberately varied configurations and assemble each task's
power/time profile from the observations.  This module implements that
path against the simulator:

* a :class:`RotatingExplorationPolicy` assigns every task a different
  configuration each round (round-robin over the admissible space, offset
  per task so a rank's tasks don't all sample the same point);
* :func:`trace_from_exploration` executes ``rounds`` runs, collects the
  per-task :class:`TaskRecord` observations, reduces them to Pareto and
  convex frontiers, and returns a :class:`Trace` interchangeable with the
  oracle one.

With few rounds the frontiers are sparse and the LP bound is pessimistic;
as rounds grow the measured bound converges to the oracle bound — the
"bound quality vs profiling effort" trade-off quantified in
``benchmarks/test_bench_exploration.py``.
"""

from __future__ import annotations

from ..machine.configuration import ConfigPoint, Configuration, enumerate_configurations
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.frontiers import FrontierStore
from ..machine.performance import TaskKernel
from ..machine.power import SocketPowerModel
from .engine import Engine, TaskRecord
from .network import IB_QDR, NetworkModel
from .program import Application, TaskRef
from .trace import Trace, build_dag

__all__ = ["RotatingExplorationPolicy", "trace_from_exploration"]


class RotatingExplorationPolicy:
    """Assign each task a distinct configuration per round.

    The configuration index for task (rank, seq) in round r is
    ``(seq * stride + rank + r) mod n_configs`` — tasks cover the space in
    interleaved arithmetic progressions, so ``rounds ~= n_configs`` visits
    every configuration for every task exactly once.
    """

    def __init__(self, round_index: int, spec: CpuSpec = XEON_E5_2670,
                 stride: int = 7) -> None:
        if round_index < 0:
            raise ValueError("round_index must be >= 0")
        self.round_index = round_index
        self.configs = enumerate_configurations(spec)
        self.stride = stride

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """This round's sample point for the task (round-robin)."""
        idx = (
            ref.seq * self.stride + ref.rank + self.round_index
        ) % len(self.configs)
        return self.configs[idx]

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        return 0.0

    def switch_cost_s(self) -> float:
        return 0.0  # exploration timing is discarded; only profiles matter


def trace_from_exploration(
    app: Application,
    power_models: list[SocketPowerModel],
    rounds: int,
    network: NetworkModel = IB_QDR,
    spec: CpuSpec = XEON_E5_2670,
) -> Trace:
    """Trace an application from ``rounds`` heterogeneous executions.

    Each round executes the whole application once under a
    :class:`RotatingExplorationPolicy`; every task contributes one
    (configuration, duration, power) observation per round.  Frontiers are
    built per task from its own observations only — no model evaluation,
    no cross-task sharing — so this is the "pure measurement" worst case
    (the paper additionally shares profiles across ranks at Pcontrol,
    which converges faster).
    """
    if rounds < 1:
        raise ValueError("need at least one exploration round")
    if len(power_models) != app.n_ranks:
        raise ValueError(
            f"need {app.n_ranks} power models, got {len(power_models)}"
        )
    graph, task_edges = build_dag(app, network)
    engine = Engine(power_models, network=network, spec=spec)

    observations: dict[TaskRef, dict[Configuration, ConfigPoint]] = {
        ref: {} for ref in task_edges
    }
    for r in range(rounds):
        result = engine.run(app, RotatingExplorationPolicy(r, spec))
        for rec in result.records:
            observations[rec.ref][rec.config] = ConfigPoint(
                config=rec.config,
                duration_s=rec.duration_s,
                power_w=rec.power_w,
            )

    pareto: dict[int, list[ConfigPoint]] = {}
    frontiers: dict[int, list[ConfigPoint]] = {}
    for ref, edge_id in task_edges.items():
        points = list(observations[ref].values())
        if not points:
            raise RuntimeError(f"task {ref} was never observed")
        pareto[edge_id], frontiers[edge_id] = FrontierStore.reduce(points)

    edge_refs = {eid: ref for ref, eid in task_edges.items()}
    return Trace(
        app=app,
        graph=graph,
        task_edges=task_edges,
        edge_refs=edge_refs,
        pareto=pareto,
        frontiers=frontiers,
    )
