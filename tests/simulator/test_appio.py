"""Unit tests for application JSON import/export."""

import json

import pytest

from repro.simulator import (
        ComputeOp,
    Engine,
    MaxPerformancePolicy,
    application_from_dict,
    application_to_dict,
    load_application,
    save_application,
)
from repro.machine import SocketPowerModel
from repro.workloads import WorkloadSpec, make_comd, make_lulesh

from ..conftest import make_p2p_app


class TestRoundtrip:
    @pytest.mark.parametrize("maker", [make_comd, make_lulesh])
    def test_benchmark_roundtrip(self, maker):
        app = maker(WorkloadSpec(n_ranks=4, iterations=2, seed=1))
        back = application_from_dict(application_to_dict(app))
        assert back.name == app.name
        assert back.n_ranks == app.n_ranks
        for pa, pb in zip(app.programs, back.programs):
            assert pa == pb

    def test_p2p_roundtrip(self, kernel):
        app = make_p2p_app(kernel, iterations=2)
        back = application_from_dict(application_to_dict(app))
        for pa, pb in zip(app.programs, back.programs):
            assert pa == pb

    def test_file_roundtrip_and_execution(self, kernel, two_rank_models,
                                          tmp_path):
        app = make_p2p_app(kernel, iterations=1)
        path = tmp_path / "app.json"
        save_application(app, path)
        loaded = load_application(path)
        a = Engine(two_rank_models).run(app, MaxPerformancePolicy())
        b = Engine(two_rank_models).run(loaded, MaxPerformancePolicy())
        assert a.makespan_s == pytest.approx(b.makespan_s)

    def test_json_is_human_editable(self, kernel, tmp_path):
        app = make_p2p_app(kernel, iterations=1)
        path = tmp_path / "app.json"
        save_application(app, path)
        data = json.loads(path.read_text())
        assert data["programs"][0][0]["op"] == "compute"
        assert "cpu_seconds" in data["programs"][0][0]

    def test_metadata_preserved(self):
        app = make_lulesh(WorkloadSpec(n_ranks=4, iterations=1, seed=1))
        back = application_from_dict(application_to_dict(app))
        assert back.metadata["min_cap_per_socket_w"] == 40.0


class TestHandAuthored:
    def test_minimal_document(self):
        doc = {
            "format_version": 1,
            "name": "byo",
            "iterations": 1,
            "programs": [
                [
                    {"op": "compute", "cpu_seconds": 1.0},
                    {"op": "send", "dst": 1, "size_bytes": 64},
                    {"op": "pcontrol", "iteration": 0},
                ],
                [
                    {"op": "recv", "src": 0},
                    {"op": "compute", "cpu_seconds": 0.5, "mem_seconds": 0.2},
                    {"op": "pcontrol", "iteration": 0},
                ],
            ],
        }
        app = application_from_dict(doc)
        assert app.n_tasks() == 2
        models = [SocketPowerModel(), SocketPowerModel()]
        res = Engine(models).run(app, MaxPerformancePolicy())
        assert res.makespan_s > 0

    def test_defaults_applied(self):
        doc = {
            "format_version": 1,
            "name": "x",
            "programs": [[{"op": "compute", "cpu_seconds": 1.0}]],
        }
        app = application_from_dict(doc)
        op = app.programs[0][0]
        assert isinstance(op, ComputeOp)
        assert op.kernel.parallel_fraction == 0.99  # TaskKernel default

    def test_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            application_from_dict({"format_version": 2, "name": "x",
                                   "programs": [[]]})

    def test_unknown_op(self):
        doc = {"format_version": 1, "name": "x",
               "programs": [[{"op": "teleport"}]]}
        with pytest.raises(ValueError, match="unknown op"):
            application_from_dict(doc)

    def test_invalid_program_rejected_at_load(self):
        doc = {
            "format_version": 1, "name": "x",
            "programs": [
                [{"op": "wait", "request": 1}],  # wait without irecv
            ],
        }
        with pytest.raises(ValueError):
            application_from_dict(doc)
