"""Unit tests for the tracing library (program -> DAG + profiles)."""

import pytest

from repro.dag import deep_validate, unconstrained_schedule
from repro.machine import TaskTimeModel
from repro.simulator import (
    Application,
    ComputeOp,
    Engine,
    MaxPerformancePolicy,
    RecvOp,
    SendOp,
    TaskRef,
    build_dag,
    trace_application,
)

from .. import conftest


class TestBuildDag:
    def test_structure(self, p2p_app):
        graph, task_edges = build_dag(p2p_app)
        deep_validate(graph)
        assert len(task_edges) == p2p_app.n_tasks()

    def test_task_refs_cover_programs(self, p2p_app):
        _, task_edges = build_dag(p2p_app)
        for rank in range(p2p_app.n_ranks):
            n = len(p2p_app.compute_ops(rank))
            for seq in range(n):
                assert TaskRef(rank, seq) in task_edges

    def test_task_edges_in_program_order(self, p2p_app):
        graph, task_edges = build_dag(p2p_app)
        for rank in range(p2p_app.n_ranks):
            ops = p2p_app.compute_ops(rank)
            for seq, op in enumerate(ops):
                edge = graph.edges[task_edges[TaskRef(rank, seq)]]
                assert edge.kernel == op.kernel

    def test_message_duration_from_network(self, kernel, two_rank_models):
        app = Application(
            "t",
            [[ComputeOp(kernel), SendOp(dst=1, size_bytes=1 << 20)],
             [RecvOp(src=0), ComputeOp(kernel)]],
        )
        graph, _ = build_dag(app)
        from repro.simulator import IB_QDR

        msgs = [e for e in graph.message_edges() if e.size_bytes == 1 << 20]
        assert len(msgs) == 1
        assert msgs[0].duration_s == pytest.approx(IB_QDR.message_time(1 << 20))

    def test_deadlock_detected(self, kernel):
        app = Application(
            "t",
            [[RecvOp(src=1), ComputeOp(kernel)],
             [RecvOp(src=0), ComputeOp(kernel)]],
        )
        with pytest.raises(RuntimeError, match="deadlock"):
            build_dag(app)


class TestDagMatchesEngine:
    def test_makespan_agreement(self, kernel, two_rank_models):
        """The DAG's unconstrained schedule and the engine must agree
        (modulo per-call overheads, which the DAG does not model)."""
        app = conftest.make_p2p_app(kernel, iterations=2)
        engine = Engine(two_rank_models, mpi_call_overhead_s=0.0)
        res = engine.run(app, MaxPerformancePolicy())
        graph, _ = build_dag(app)
        sched = unconstrained_schedule(graph, TaskTimeModel())
        assert sched.makespan == pytest.approx(res.makespan_s, rel=1e-9)


class TestTraceProfiles:
    def test_every_task_profiled(self, p2p_trace, p2p_app):
        assert len(p2p_trace.frontiers) == p2p_app.n_tasks()
        assert len(p2p_trace.pareto) == p2p_app.n_tasks()

    def test_frontiers_convex_subsets(self, p2p_trace):
        for edge_id, convex in p2p_trace.frontiers.items():
            pareto = p2p_trace.pareto[edge_id]
            assert len(convex) <= len(pareto)
            powers = [p.power_w for p in convex]
            assert powers == sorted(powers)

    def test_frontier_for_ref(self, p2p_trace):
        front = p2p_trace.frontier_for(TaskRef(0, 0))
        assert front and front[0].power_w < front[-1].power_w

    def test_profiles_reflect_socket_efficiency(self, p2p_app, two_rank_models):
        tr = trace_application(p2p_app, two_rank_models)
        # Rank 1's socket is 5% leakier: same kernel, higher frontier power.
        k0 = tr.frontier_for(TaskRef(0, 0))[-1]
        # find a rank-1 task with the same kernel shape scaled differently —
        # compare via the max-power config of the first tasks instead.
        k1 = tr.frontier_for(TaskRef(1, 0))[-1]
        assert k1.power_w > k0.power_w * 0.99  # heavier work AND leakier

    def test_measurement_noise_perturbs(self, p2p_app, two_rank_models):
        clean = trace_application(p2p_app, two_rank_models)
        noisy = trace_application(
            p2p_app, two_rank_models, measurement_noise=0.05, seed=1
        )
        c = clean.frontier_for(TaskRef(0, 0))[0]
        n = noisy.frontier_for(TaskRef(0, 0))[0]
        assert n.duration_s != pytest.approx(c.duration_s, rel=1e-6)

    def test_noise_validation(self, p2p_app, two_rank_models):
        with pytest.raises(ValueError):
            trace_application(p2p_app, two_rank_models, measurement_noise=-0.1)

    def test_model_count_checked(self, p2p_app, two_rank_models):
        with pytest.raises(ValueError):
            trace_application(p2p_app, two_rank_models[:1])

    def test_describe(self, p2p_trace):
        assert "p2p-test" in p2p_trace.describe()
