"""Unit tests for Pareto and convex frontiers."""

import pytest

from repro.machine import (
    Configuration,
    ConfigPoint,
    bracket_for_power,
    convex_frontier,
    interpolate_duration,
    measure_task_space,
    nearest_point,
    pareto_frontier,
)


def pt(power: float, duration: float) -> ConfigPoint:
    return ConfigPoint(Configuration(2.0, 4), duration, power)


class TestParetoFrontier:
    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_single(self):
        p = pt(10, 1)
        assert pareto_frontier([p]) == [p]

    def test_dominated_removed(self):
        good, bad = pt(10, 1.0), pt(12, 1.5)
        assert pareto_frontier([good, bad]) == [good]

    def test_frontier_sorted_and_tradeoff(self):
        pts = [pt(10, 3.0), pt(20, 1.5), pt(15, 2.0), pt(25, 1.0), pt(18, 2.5)]
        front = pareto_frontier(pts)
        powers = [p.power_w for p in front]
        durs = [p.duration_s for p in front]
        assert powers == sorted(powers)
        assert durs == sorted(durs, reverse=True)
        assert pt(18, 2.5) not in front  # dominated by (15, 2.0)

    def test_no_member_dominated(self, kernel, power_model):
        points = measure_task_space(kernel, power_model)
        front = pareto_frontier(points)
        for a in front:
            assert not any(b.dominates(a) for b in points)

    def test_duplicates_collapse(self):
        front = pareto_frontier([pt(10, 1.0), pt(10, 1.0)])
        assert len(front) == 1


class TestConvexFrontier:
    def test_subset_of_pareto(self, kernel, power_model):
        points = measure_task_space(kernel, power_model)
        pareto = pareto_frontier(points)
        convex = convex_frontier(points)
        pareto_keys = {(p.power_w, p.duration_s) for p in pareto}
        assert all((p.power_w, p.duration_s) in pareto_keys for p in convex)
        assert len(convex) <= len(pareto)

    def test_convexity(self, kernel, power_model):
        """Successive slopes (d duration / d power) must be non-decreasing."""
        convex = convex_frontier(measure_task_space(kernel, power_model))
        slopes = [
            (b.duration_s - a.duration_s) / (b.power_w - a.power_w)
            for a, b in zip(convex, convex[1:])
        ]
        assert all(s < 0 for s in slopes)  # more power is always faster
        assert all(b >= a - 1e-12 for a, b in zip(slopes, slopes[1:]))

    def test_interior_point_removed(self):
        # Middle point lies above the chord between the extremes.
        pts = [pt(10, 3.0), pt(20, 2.5), pt(30, 1.0)]
        convex = convex_frontier(pts)
        assert [p.power_w for p in convex] == [10, 30]

    def test_point_below_chord_kept(self):
        pts = [pt(10, 3.0), pt(20, 1.2), pt(30, 1.0)]
        convex = convex_frontier(pts)
        assert [p.power_w for p in convex] == [10, 20, 30]

    def test_endpoints_always_kept(self, kernel, power_model):
        points = measure_task_space(kernel, power_model)
        pareto = pareto_frontier(points)
        convex = convex_frontier(points)
        assert convex[0].power_w == pareto[0].power_w
        assert convex[-1].power_w == pareto[-1].power_w

    def test_max_threads_dominates_high_frequencies(self, kernel, power_model):
        """Paper Table 1: away from the lowest frequencies, only full-width
        (8-thread) configurations are Pareto-efficient for CoMD-like tasks."""
        convex = convex_frontier(measure_task_space(kernel, power_model))
        high = [p for p in convex if p.config.freq_ghz >= 1.8]
        assert high and all(p.config.threads == 8 for p in high)


class TestInterpolation:
    def setup_method(self):
        self.hull = [pt(10, 3.0), pt(20, 1.5), pt(40, 1.0)]

    def test_bracket_interior(self):
        lo, hi, frac = bracket_for_power(self.hull, 15.0)
        assert (lo.power_w, hi.power_w) == (10, 20)
        assert frac == pytest.approx(0.5)

    def test_bracket_clamps(self):
        lo, hi, frac = bracket_for_power(self.hull, 5.0)
        assert lo.power_w == hi.power_w == 10
        lo, hi, frac = bracket_for_power(self.hull, 99.0)
        assert lo.power_w == hi.power_w == 40

    def test_interpolate_matches_vertices(self):
        for p in self.hull:
            assert interpolate_duration(self.hull, p.power_w) == pytest.approx(
                p.duration_s
            )

    def test_interpolate_linear_between(self):
        assert interpolate_duration(self.hull, 15.0) == pytest.approx(2.25)
        assert interpolate_duration(self.hull, 30.0) == pytest.approx(1.25)

    def test_nearest_point(self):
        assert nearest_point(self.hull, 12.0).power_w == 10
        assert nearest_point(self.hull, 18.0).power_w == 20
        assert nearest_point(self.hull, 500.0).power_w == 40

    def test_empty_hull_raises(self):
        with pytest.raises(ValueError):
            bracket_for_power([], 10.0)
        with pytest.raises(ValueError):
            nearest_point([], 10.0)
