"""Pareto and convex frontiers over (power, time) configuration points.

The LP requires, per task, a *convex* Pareto-efficient configuration set:
without convexity a non-convex frontier cannot be represented as a convex
piecewise-linear function, and the formulation would degrade into an ILP
(paper §3.2).  The pipeline is:

1. filter the raw configuration scatter down to the Pareto-efficient set
   (no point may be improved in both time and power simultaneously);
2. take the *lower convex hull* of that set in the (power, time) plane —
   the "Convex Pareto Frontier" drawn through Figure 1.

Any convex combination of two adjacent hull points is then realizable by
switching configuration mid-task (the continuous LP's interpretation), and
rounding to the nearest hull point realizes the discrete case.
"""

from __future__ import annotations

from bisect import bisect_left

from .configuration import ConfigPoint

__all__ = [
    "pareto_frontier",
    "convex_frontier",
    "interpolate_duration",
    "nearest_point",
    "bracket_for_power",
]


def pareto_frontier(points: list[ConfigPoint]) -> list[ConfigPoint]:
    """Pareto-efficient subset, sorted by increasing power (decreasing time).

    A point is kept iff no other point has both lower-or-equal power and
    lower-or-equal duration (with at least one strict).  Duplicate
    (power, duration) pairs collapse to one representative.
    """
    if not points:
        return []
    # Sort by power asc, then duration asc: scanning in this order, a point
    # is Pareto-efficient iff its duration is strictly below every duration
    # seen so far.  The configuration itself is the final sort key so that
    # exact (power, duration) ties pick a deterministic representative even
    # when the scatter mixes points from several devices — input order is
    # not stable across node compositions.
    ordered = sorted(points, key=lambda p: (p.power_w, p.duration_s, p.config))
    frontier: list[ConfigPoint] = []
    best_duration = float("inf")
    for p in ordered:
        if p.duration_s < best_duration:
            frontier.append(p)
            best_duration = p.duration_s
    return frontier


def convex_frontier(points: list[ConfigPoint]) -> list[ConfigPoint]:
    """Lower convex hull of the Pareto frontier, sorted by increasing power.

    Uses the monotone-chain construction on (power, duration) with a
    cross-product turn test.  The result is convex and strictly decreasing
    in duration as power increases, so the LP's convex mixtures are always
    Pareto-efficient.
    """
    frontier = pareto_frontier(points)
    if len(frontier) <= 2:
        return frontier
    hull: list[ConfigPoint] = []
    for p in frontier:
        while len(hull) >= 2 and _turns_up(hull[-2], hull[-1], p):
            hull.pop()
        hull.append(p)
    return hull


def _turns_up(a: ConfigPoint, b: ConfigPoint, c: ConfigPoint) -> bool:
    """True if b lies on or above segment a-c (b is not a lower-hull vertex).

    Cross product of (a->b, a->c) in the (power, duration) plane: negative
    when b sits above the chord, zero when collinear — both cases mean b
    contributes nothing to the lower hull.
    """
    cross = (b.power_w - a.power_w) * (c.duration_s - a.duration_s) - (
        b.duration_s - a.duration_s
    ) * (c.power_w - a.power_w)
    return cross <= 0.0


def bracket_for_power(
    hull: list[ConfigPoint], power_w: float
) -> tuple[ConfigPoint, ConfigPoint, float]:
    """Locate ``power_w`` on the hull: returns (lo, hi, fraction toward hi).

    Powers outside the hull's range clamp to the endpoints.  The convex
    combination ``(1 - frac) * lo + frac * hi`` reproduces ``power_w``
    exactly for in-range values.
    """
    if not hull:
        raise ValueError("empty frontier")
    powers = [p.power_w for p in hull]
    if power_w <= powers[0]:
        return hull[0], hull[0], 0.0
    if power_w >= powers[-1]:
        return hull[-1], hull[-1], 0.0
    hi_idx = bisect_left(powers, power_w)
    lo, hi = hull[hi_idx - 1], hull[hi_idx]
    span = hi.power_w - lo.power_w
    frac = 0.0 if span <= 0 else (power_w - lo.power_w) / span
    return lo, hi, frac


def interpolate_duration(hull: list[ConfigPoint], power_w: float) -> float:
    """Duration of the convex frontier evaluated at an average power budget.

    This is the continuous-configuration duration the LP assigns a task
    given its power allocation.
    """
    lo, hi, frac = bracket_for_power(hull, power_w)
    return (1.0 - frac) * lo.duration_s + frac * hi.duration_s


def nearest_point(hull: list[ConfigPoint], power_w: float) -> ConfigPoint:
    """Hull point closest in power — the paper's discrete rounding rule.

    Exact ties break on the configuration so the pick is stable across
    device kinds (mixed-device hulls have no meaningful input order).
    """
    if not hull:
        raise ValueError("empty frontier")
    return min(hull, key=lambda p: (abs(p.power_w - power_w), p.duration_s, p.config))
