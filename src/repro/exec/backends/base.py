"""The transport contract: submit a task, await its payload, survive its worker.

:class:`ExecBackend` is the seam :class:`~repro.exec.parallel.ParallelRunner`
was split along.  The runner keeps every backend-independent guarantee —
submission-order results, seeded retry backoff, submit-time deadlines,
batching, observability merging — and drives a backend through five verbs:

* :meth:`ExecBackend.submit` — hand one :class:`TaskSpec` to the
  transport, get an opaque handle back;
* :meth:`ExecBackend.result` — block (up to the caller's deadline) for
  that handle's payload.  Three things can come out: the payload, the
  task's own exception (re-raised raw), or one of two *normalized*
  transport signals — :class:`BackendTimeoutError` when the deadline
  passed, :class:`WorkerLostError` when the worker underneath the task
  died (the worker-death signal);
* :meth:`ExecBackend.cancel` — release a handle the runner gave up on;
* :meth:`ExecBackend.recover` — restore transport capacity after a
  worker death (rebuild the pool, respawn fleet workers);
* :meth:`ExecBackend.needs_resubmit` — whether a handle's work was lost
  to that death (versus settled for real) and must be submitted again.

Both transport signals carry the underlying exception as ``.cause`` so
the runner's structured outcomes name the real culprit
(``TimeoutError``, ``BrokenProcessPool``, ``WorkerDiedError``) exactly
as the pre-backend code did.

:func:`run_task` is the worker-side half of the contract: every remote
transport runs tasks through it so results travel with their
observability snapshots (telemetry, trace events, solver audits,
metrics, profiles) and the parent can fold them in submission order —
the mechanism behind serial-vs-parallel byte-identity.  In-process
transports return ``None`` snapshots instead: the parent's own
observability context already saw everything.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any, Callable

from ...obs.audit import SolveAudit, use_audit
from ...obs.metrics import Metrics, use_metrics
from ...obs.profiling import ProfileCollector, use_profile
from ...obs.recorder import TraceRecorder, use_recorder
from ..timing import Telemetry, use_telemetry

__all__ = [
    "BackendTimeoutError",
    "ExecBackend",
    "TaskPayload",
    "TaskSpec",
    "WorkerLostError",
    "make_backend",
    "run_task",
]

#: The observability-bearing result every transport ships back:
#: ``(value, telemetry, trace_events, audit, metrics, profile)`` with
#: ``None`` for each snapshot the parent did not ask for (or that an
#: in-process transport recorded directly into the parent's context).
TaskPayload = tuple


class BackendTimeoutError(Exception):
    """The caller's deadline passed before the task's payload arrived.

    ``cause`` is the underlying timeout exception (e.g. the future's
    ``TimeoutError``); the runner records its type and message in the
    task's structured outcome.
    """

    def __init__(self, cause: BaseException) -> None:
        super().__init__(repr(cause))
        self.cause = cause


class WorkerLostError(Exception):
    """The worker executing (or queued to execute) a task died.

    The transport-agnostic worker-death signal: a ``ProcessPoolExecutor``
    that broke, a socket worker that was SIGKILLed mid-task, a
    connection that stopped heartbeating.  ``cause`` is the underlying
    exception (``BrokenProcessPool``, :class:`~repro.exec.backends.
    sockets.WorkerDiedError`); the runner charges the death as one
    failed attempt, calls :meth:`ExecBackend.recover`, and resubmits
    every handle :meth:`ExecBackend.needs_resubmit` reports lost.
    """

    def __init__(self, cause: BaseException) -> None:
        super().__init__(repr(cause))
        self.cause = cause


@dataclass(frozen=True)
class TaskSpec:
    """One unit of transport work: a function, its item, and what to observe.

    ``index`` is the task's submission index — transports treat it as
    opaque (it names the task in logs and wire messages); the runner
    owns its meaning.  The ``want_*`` flags mirror the parent's active
    observability sinks so remote workers only pay for the snapshots
    the parent will actually fold in.
    """

    index: int
    fn: Callable[[Any], Any]
    item: Any
    want_trace: bool = False
    want_audit: bool = False
    want_metrics: bool = False
    want_profile: bool = False


def run_task(
    fn: Callable[[Any], Any],
    item: Any,
    want_trace: bool = False,
    want_audit: bool = False,
    want_metrics: bool = False,
    want_profile: bool = False,
) -> TaskPayload:
    """Worker-side wrapper: run one task under fresh observability state.

    Telemetry is always collected; a trace recorder, solve audit, metrics
    registry, and profile collector are activated only when the parent
    had them active (``want_*``), keeping the common path free of
    event-buffer overhead.  Every remote transport (process pool, socket
    fleet) runs tasks through this function, so the payload shape — and
    therefore the parent's submission-order merge — is identical across
    backends.
    """
    telemetry = Telemetry()
    recorder = TraceRecorder() if want_trace else None
    audit = SolveAudit() if want_audit else None
    metrics = Metrics() if want_metrics else None
    profile = ProfileCollector() if want_profile else None
    with ExitStack() as stack:
        stack.enter_context(use_telemetry(telemetry))
        if recorder is not None:
            stack.enter_context(use_recorder(recorder))
        if audit is not None:
            stack.enter_context(use_audit(audit))
        if metrics is not None:
            stack.enter_context(use_metrics(metrics))
        if profile is not None:
            stack.enter_context(use_profile(profile))
        result = fn(item)
    return (
        result,
        telemetry.to_dict(),
        recorder.snapshot() if recorder is not None else None,
        audit.to_dicts() if audit is not None else None,
        metrics.to_dict() if metrics is not None else None,
        profile.to_dict() if profile is not None else None,
    )


def run_task_spec(spec: TaskSpec) -> TaskPayload:
    """:func:`run_task` on a :class:`TaskSpec` (the socket wire shape)."""
    return run_task(
        spec.fn,
        spec.item,
        spec.want_trace,
        spec.want_audit,
        spec.want_metrics,
        spec.want_profile,
    )


class ExecBackend(ABC):
    """One task transport: in-process, a process pool, or a socket fleet.

    Lifecycle: :meth:`start` is idempotent — the runner calls it at the
    top of every map, so a long-lived backend (a fleet shared by a
    dispatcher) starts once and is reused, while the runner's default
    per-map backend starts fresh each time.  The party that *created*
    the backend owns :meth:`shutdown`; the runner only shuts down
    backends it built itself.
    """

    #: True when tasks run in the calling process: observability is
    #: recorded directly into the parent's active context, payload
    #: snapshots come back ``None``, and deadlines cannot be enforced.
    in_process: bool = False

    @abstractmethod
    def start(self, n_workers: int) -> None:
        """Bring up to ``n_workers`` of transport capacity (idempotent)."""

    @abstractmethod
    def submit(self, spec: TaskSpec) -> Any:
        """Queue one task; returns an opaque handle for :meth:`result`."""

    @abstractmethod
    def result(self, handle: Any, timeout_s: float | None) -> TaskPayload:
        """The handle's payload, its task's exception, or a transport signal.

        Blocks up to ``timeout_s`` (forever when None).  Raises
        :class:`BackendTimeoutError` when the deadline passes first,
        :class:`WorkerLostError` when the handle's worker died, and the
        task's own exception raw when the task itself failed.
        """

    @abstractmethod
    def cancel(self, handle: Any) -> None:
        """Release a handle the runner has given up waiting on.

        Queued work is dropped; running work cannot be interrupted (its
        abandoned worker finishes in the background, exactly as a
        process pool behaves) but its late result is discarded.
        """

    @abstractmethod
    def recover(self) -> None:
        """Restore capacity after a worker death (rebuild / respawn)."""

    @abstractmethod
    def needs_resubmit(self, handle: Any) -> bool:
        """Whether this handle's work was lost to a worker death.

        A handle that settled for real — with a result or with its own
        task exception — keeps its state and returns False; one whose
        work died with its worker must be submitted again.
        """

    @abstractmethod
    def shutdown(self) -> None:
        """Tear the transport down; further submits are an error."""


def make_backend(name: str, **kwargs: Any) -> ExecBackend:
    """Construct a backend by registry name.

    ``inline`` (in-process serial), ``process`` (the default
    ``ProcessPoolExecutor`` transport), or ``socket`` (a worker fleet
    over local sockets; see :class:`~repro.exec.backends.sockets.
    SocketWorkerBackend` for its keyword arguments).
    """
    from .inline import InlineBackend
    from .pool import ProcessPoolBackend
    from .sockets import SocketWorkerBackend

    factories: dict[str, Callable[..., ExecBackend]] = {
        "inline": InlineBackend,
        "process": ProcessPoolBackend,
        "socket": SocketWorkerBackend,
    }
    if name not in factories:
        raise ValueError(
            f"unknown exec backend {name!r}; choose from {sorted(factories)}"
        )
    return factories[name](**kwargs)
