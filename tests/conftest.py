"""Shared fixtures: small machines, kernels, applications, traces."""

from __future__ import annotations

import pytest

from repro.machine import (
    SocketPowerModel,
    TaskKernel,
    TaskTimeModel,
    XEON_E5_2670,
    sample_socket_efficiencies,
)
from repro.simulator import (
    Application,
    CollectiveOp,
    ComputeOp,
    Engine,
    IsendOp,
    PcontrolOp,
    RecvOp,
    WaitOp,
    trace_application,
)

CORES = XEON_E5_2670.cores
FMAX = XEON_E5_2670.fmax_ghz
FMIN = XEON_E5_2670.fmin_ghz


@pytest.fixture
def spec():
    return XEON_E5_2670


@pytest.fixture
def power_model():
    return SocketPowerModel()


@pytest.fixture
def time_model():
    return TaskTimeModel()


@pytest.fixture
def kernel():
    """A generic compute-dominant kernel."""
    return TaskKernel(
        cpu_seconds=1.0,
        mem_seconds=0.2,
        parallel_fraction=0.98,
        mem_parallel_fraction=0.9,
        bw_saturation_threads=4,
        mem_intensity=0.3,
        name="test-kernel",
    )


@pytest.fixture
def memory_kernel():
    """A memory-bound kernel with cache contention above 5 threads."""
    return TaskKernel(
        cpu_seconds=0.4,
        mem_seconds=1.0,
        parallel_fraction=0.99,
        mem_parallel_fraction=0.97,
        bw_saturation_threads=4,
        contention_threshold=5,
        contention_penalty=0.25,
        mem_intensity=0.7,
        name="test-memory-kernel",
    )


@pytest.fixture
def two_rank_models():
    return [SocketPowerModel(efficiency=1.0), SocketPowerModel(efficiency=1.05)]


@pytest.fixture
def four_rank_models():
    eff = sample_socket_efficiencies(4, seed=3)
    return [SocketPowerModel(efficiency=float(e)) for e in eff]


def make_p2p_app(kernel: TaskKernel, iterations: int = 1) -> Application:
    """Two ranks: compute, isend/recv exchange, compute, allreduce, pcontrol."""
    p0, p1 = [], []
    for it in range(iterations):
        p0 += [
            ComputeOp(kernel, it, label="a0"),
            IsendOp(dst=1, size_bytes=4096, request=1, iteration=it),
            ComputeOp(kernel.scaled(0.6), it, label="b0"),
            WaitOp(1, iteration=it),
            CollectiveOp("allreduce", 8, iteration=it),
            PcontrolOp(it),
        ]
        p1 += [
            ComputeOp(kernel.scaled(1.3), it, label="a1"),
            RecvOp(src=0, iteration=it),
            ComputeOp(kernel.scaled(0.8), it, label="b1"),
            CollectiveOp("allreduce", 8, iteration=it),
            PcontrolOp(it),
        ]
    return Application("p2p-test", [p0, p1], iterations=iterations)


@pytest.fixture
def p2p_app(kernel):
    return make_p2p_app(kernel, iterations=2)


@pytest.fixture
def p2p_trace(p2p_app, two_rank_models):
    return trace_application(p2p_app, two_rank_models)


@pytest.fixture
def engine(two_rank_models):
    return Engine(two_rank_models)
