"""Boundary-condition tests for the fixed-order LP."""

import pytest

from repro.core import build_event_structure, solve_fixed_order_lp
from repro.machine import SocketPowerModel, TaskKernel
from repro.simulator import (
    Application,
    ComputeOp,
    trace_application,
)


@pytest.fixture(scope="module")
def simple_trace():
    """Two ranks, one task each, fully overlapping in time."""
    kernel = TaskKernel(cpu_seconds=1.0, mem_seconds=0.1, mem_intensity=0.2)
    app = Application(
        "boundary",
        [[ComputeOp(kernel, 0)], [ComputeOp(kernel, 0)]],
        iterations=1,
    )
    models = [SocketPowerModel(), SocketPowerModel()]
    return trace_application(app, models)


class TestFeasibilityBoundary:
    def test_exact_minimum_cap(self, simple_trace):
        """The LP is feasible exactly at the sum of the two tasks' minimum
        frontier powers, and infeasible just below it."""
        floor = sum(
            min(p.power_w for p in simple_trace.frontiers[eid])
            for eid in simple_trace.task_edges.values()
        )
        at = solve_fixed_order_lp(simple_trace, floor * (1 + 1e-9))
        below = solve_fixed_order_lp(simple_trace, floor * 0.98)
        assert at.feasible
        assert not below.feasible

    def test_at_floor_all_tasks_at_cheapest(self, simple_trace):
        floor = sum(
            min(p.power_w for p in simple_trace.frontiers[eid])
            for eid in simple_trace.task_edges.values()
        )
        res = solve_fixed_order_lp(simple_trace, floor * (1 + 1e-6))
        for a in res.schedule.assignments.values():
            cheapest = min(
                p.power_w for p in simple_trace.frontiers[a.edge_id]
            )
            assert a.power_w == pytest.approx(cheapest, rel=1e-4)

    def test_saturation_cap(self, simple_trace):
        """Above the sum of maximum frontier powers, more cap changes
        nothing."""
        ceiling = sum(
            max(p.power_w for p in simple_trace.frontiers[eid])
            for eid in simple_trace.task_edges.values()
        )
        at = solve_fixed_order_lp(simple_trace, ceiling)
        way_above = solve_fixed_order_lp(simple_trace, ceiling * 10)
        assert at.makespan_s == pytest.approx(way_above.makespan_s, rel=1e-9)

    def test_objective_continuous_in_cap(self, simple_trace):
        """No jumps: small cap changes produce small makespan changes
        (the LP value function is piecewise-linear in PC)."""
        caps = [60 + 0.5 * i for i in range(20)]
        spans = [solve_fixed_order_lp(simple_trace, c).makespan_s for c in caps]
        for a, b in zip(spans, spans[1:]):
            assert a - b < 0.05 * a  # <5% per half-watt step


class TestDegenerateGraphs:
    def test_single_rank_app(self):
        kernel = TaskKernel(cpu_seconds=0.5)
        app = Application("solo", [[ComputeOp(kernel, 0)]], iterations=1)
        trace = trace_application(app, [SocketPowerModel()])
        res = solve_fixed_order_lp(trace, 60.0)
        assert res.feasible
        assert len(res.schedule.assignments) == 1

    def test_single_configuration_frontier(self):
        """A task whose frontier collapses to one point (e.g. fully
        memory-bound at one thread) still solves."""
        kernel = TaskKernel(
            cpu_seconds=0.0, mem_seconds=1.0, mem_parallel_fraction=0.0,
            parallel_fraction=0.0,
        )
        app = Application("flat", [[ComputeOp(kernel, 0)]], iterations=1)
        trace = trace_application(app, [SocketPowerModel()])
        # Frequency doesn't change time for pure-memory work, so the
        # Pareto set is the single cheapest point.
        assert len(trace.frontiers[0]) == 1
        res = solve_fixed_order_lp(trace, 60.0)
        assert res.feasible

    def test_event_structure_reuse_across_caps(self, simple_trace):
        ev = build_event_structure(simple_trace.graph)
        r1 = solve_fixed_order_lp(simple_trace, 50.0, events=ev)
        r2 = solve_fixed_order_lp(simple_trace, 70.0, events=ev)
        assert r2.makespan_s <= r1.makespan_s
