"""Content-addressed on-disk memoization of solver results.

The cache is a directory of JSON files addressed by SHA-256 keys (see
:mod:`repro.exec.keys`): ``<root>/v<schema>/<key[:2]>/<key>.json``.
Writes are atomic (temp file + rename), so concurrent workers can share
one cache directory — at worst two workers compute the same entry and one
rename wins, which is correct either way because entries are pure
functions of their key.

Invalidation is versioned twice over: the *key* version changes whenever
the canonical model documents change (different keys, old entries simply
never hit), and the *schema* version below changes whenever the payload
layout changes (old files are ignored and a fresh subdirectory is used).

Round-trip fidelity: floats are serialized via JSON's shortest-repr and
parsed back exactly, so a cache hit reproduces the solver's
:class:`~repro.core.solver.LpSolution` and schedule bit-for-bit.
"""

from __future__ import annotations

import functools
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from ..core.energy_lp import EnergyLpResult, solve_energy_lp
from ..core.fixed_order_lp import FixedOrderLpResult, solve_fixed_order_lp
from ..core.model import MODEL_LAYER_VERSION
from ..core.serialize import schedule_from_dict, schedule_to_dict
from ..core.solver import LpSolution, LpStatus
from ..obs.audit import note_cache
from ..obs.metrics import inc as metric_inc
from ..obs.provenance import collect_manifest
from .keys import energy_lp_key, fixed_order_lp_key
from .timing import count

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "SolverCache",
    "solution_to_dict",
    "solution_from_dict",
    "lp_result_payload",
    "lp_result_from_payload",
    "cached_solve_fixed_order_lp",
    "energy_result_payload",
    "energy_result_from_payload",
    "cached_solve_energy_lp",
]

#: Bump when the payload layout changes; old entries are then ignored.
CACHE_SCHEMA_VERSION = 1


@functools.lru_cache(maxsize=1)
def _entry_provenance() -> dict:
    """The manifest stamped into every stored entry (built once).

    Forensics, not keying: readers never look at it, but a cache
    directory inspected later says exactly which code produced each
    entry (see :mod:`repro.obs.provenance`).
    """
    manifest = collect_manifest(
        config={"kind": "solver-cache", "cache_schema": CACHE_SCHEMA_VERSION},
        model_layer_version=MODEL_LAYER_VERSION,
    )
    return manifest.to_dict()


class SolverCache:
    """A content-addressed JSON store with hit/miss/store accounting.

    ``stale_tmp_age_s`` bounds how long an orphaned ``*.tmp`` file — the
    debris of a worker killed between ``mkstemp`` and ``os.replace`` —
    may linger before construction sweeps it.  The age gate keeps a
    freshly constructed cache from deleting a temp file a *live*
    concurrent worker is still writing.
    """

    def __init__(
        self, root: str | Path, stale_tmp_age_s: float = 3600.0
    ) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.tmp_swept = self._sweep_stale_tmp(stale_tmp_age_s)

    def _sweep_stale_tmp(self, age_s: float) -> int:
        """Delete orphaned temp files older than ``age_s``; returns count.

        Without this, every worker death mid-:meth:`put` leaks one temp
        file into a shared cache directory, which then grows unboundedly
        across chaos-prone production sweeps.
        """
        if not self.root.is_dir():
            return 0
        cutoff = time.time() - age_s
        swept = 0
        for tmp in self.root.glob("v*/*/*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:
                pass  # another sweeper won the race, or a live writer
        if swept:
            count("cache.tmp_swept", swept)
            # Sweeping depends on prior crashes and file mtimes, never on
            # the work being computed: operational by definition.
            metric_inc("cache.tmp_swept", swept, operational=True)
        return swept

    def _path(self, key: str) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or None on a miss.

        Unreadable, corrupt, or schema-mismatched files count as misses —
        a damaged cache degrades to recomputation, never to an error.
        """
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            count("cache.miss")
            metric_inc("cache.miss")
            note_cache(False)
            return None
        if data.get("schema") != CACHE_SCHEMA_VERSION or data.get("key") != key:
            self.misses += 1
            count("cache.miss")
            metric_inc("cache.miss")
            note_cache(False)
            return None
        self.hits += 1
        count("cache.hit")
        metric_inc("cache.hit")
        note_cache(True)
        return data["payload"]

    def put(self, key: str, payload: dict) -> None:
        """Atomically store ``payload`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "payload": payload,
            "provenance": _entry_provenance(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        count("cache.store")
        metric_inc("cache.store")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        base = self.root / f"v{CACHE_SCHEMA_VERSION}"
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.json"))

    @property
    def hit_rate(self) -> float | None:
        """hits / (hits + misses), or None before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else None

    def stats(self) -> dict[str, int | float | None]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


# ----------------------------------------------------------------------
def solution_to_dict(solution: LpSolution) -> dict:
    """JSON-safe representation of an LP solution (exact round trip)."""
    return {
        "status": solution.status.value,
        "objective": solution.objective,
        "x": [float(v) for v in solution.x],
        "message": solution.message,
    }


def solution_from_dict(data: dict) -> LpSolution:
    return LpSolution(
        status=LpStatus(data["status"]),
        objective=float(data["objective"]),
        x=np.asarray(data["x"], dtype=float),
        message=data.get("message", ""),
    )


def lp_result_payload(result: FixedOrderLpResult) -> dict:
    """JSON-safe cache payload for a fixed-order LP result."""
    return {
        "solution": solution_to_dict(result.solution),
        "schedule": (
            schedule_to_dict(result.schedule) if result.schedule is not None else None
        ),
    }


def lp_result_from_payload(payload: dict, events) -> FixedOrderLpResult:
    """Rehydrate a cached fixed-order LP result (exact round trip)."""
    schedule = payload.get("schedule")
    return FixedOrderLpResult(
        schedule=schedule_from_dict(schedule) if schedule is not None else None,
        solution=solution_from_dict(payload["solution"]),
        events=events,
    )


def cached_solve_fixed_order_lp(
    trace,
    cap_w: float,
    cache: SolverCache | None = None,
    events=None,
    power_tiebreak: float = 1e-9,
    time_limit_s: float | None = None,
    discrete: bool = False,
    instance=None,
) -> FixedOrderLpResult:
    """Memoized :func:`~repro.core.fixed_order_lp.solve_fixed_order_lp`.

    With ``cache=None`` this is a plain pass-through.  On a hit the
    returned result carries the caller's ``events`` (or None): the event
    structure is a function of the trace alone and is only needed by
    callers that iterate further caps, which pass their own.  ``instance``
    (a prebuilt :class:`~repro.core.model.ProblemInstance`) skips the
    IR rebuild on misses; it does not affect the key, which fingerprints
    the trace the instance was built from.
    """
    if cache is None:
        return solve_fixed_order_lp(
            trace,
            cap_w,
            events=events,
            power_tiebreak=power_tiebreak,
            time_limit_s=time_limit_s,
            discrete=discrete,
            instance=instance,
        )
    key = fixed_order_lp_key(
        trace,
        cap_w,
        power_tiebreak=power_tiebreak,
        time_limit_s=time_limit_s,
        discrete=discrete,
    )
    payload = cache.get(key)
    if payload is not None:
        return lp_result_from_payload(
            payload, instance.events if instance is not None else events
        )
    result = solve_fixed_order_lp(
        trace,
        cap_w,
        events=events,
        power_tiebreak=power_tiebreak,
        time_limit_s=time_limit_s,
        discrete=discrete,
        instance=instance,
    )
    cache.put(key, lp_result_payload(result))
    return result


def energy_result_payload(result: EnergyLpResult) -> dict:
    """JSON-safe cache payload for an energy-LP result."""
    return {
        "solution": solution_to_dict(result.solution),
        "schedule": (
            schedule_to_dict(result.schedule) if result.schedule is not None else None
        ),
        "energy_j": result.energy_j,
        "time_budget_s": result.time_budget_s,
    }


def energy_result_from_payload(payload: dict) -> EnergyLpResult:
    """Rehydrate a cached energy-LP result (exact round trip)."""
    schedule = payload.get("schedule")
    energy = payload.get("energy_j")
    return EnergyLpResult(
        schedule=schedule_from_dict(schedule) if schedule is not None else None,
        solution=solution_from_dict(payload["solution"]),
        energy_j=None if energy is None else float(energy),
        time_budget_s=float(payload["time_budget_s"]),
    )


def cached_solve_energy_lp(
    trace,
    slowdown: float = 0.0,
    cache: SolverCache | None = None,
    time_limit_s: float | None = None,
    instance=None,
    cap_w: float | None = None,
    deadline_s: float | None = None,
) -> EnergyLpResult:
    """Memoized :func:`~repro.core.energy_lp.solve_energy_lp`.

    Mirrors :func:`cached_solve_fixed_order_lp`: ``cache=None`` is a plain
    pass-through, ``instance`` only skips the IR rebuild on misses, and
    the key covers everything the answer depends on — slowdown, time
    limit, the optional power cap, and the optional deadline anchor.
    """
    if cache is None:
        return solve_energy_lp(
            trace,
            slowdown=slowdown,
            time_limit_s=time_limit_s,
            instance=instance,
            cap_w=cap_w,
            deadline_s=deadline_s,
        )
    key = energy_lp_key(
        trace,
        slowdown=slowdown,
        time_limit_s=time_limit_s,
        cap_w=cap_w,
        deadline_s=deadline_s,
    )
    payload = cache.get(key)
    if payload is not None:
        return energy_result_from_payload(payload)
    result = solve_energy_lp(
        trace,
        slowdown=slowdown,
        time_limit_s=time_limit_s,
        instance=instance,
        cap_w=cap_w,
        deadline_s=deadline_s,
    )
    cache.put(key, energy_result_payload(result))
    return result
