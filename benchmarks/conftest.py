"""Shared fixtures for the benchmark harness.

The cap sweeps are the expensive part (Static run + Conductor run + LP per
benchmark per cap at 32 ranks); they are computed once per session and
shared by every figure that consumes them (Figs. 9, 10, 11, 13, 14, 15 and
the headline summary), exactly like the paper derives all its improvement
figures from one measurement campaign.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import BENCH_CAPS, benchmark_config
from repro.experiments.runner import sweep_caps

#: Rank count for the harness.  The paper uses 32; the harness defaults to
#: 16 to keep a full regeneration within minutes — set to 32 for the
#: paper-exact scale (EXPERIMENTS.md records both).
BENCH_RANKS = 16


@pytest.fixture(scope="session")
def sweeps():
    """ComparisonResults for all four benchmarks across their cap ranges."""
    out = {}
    for bench in ("comd", "bt", "sp", "lulesh"):
        cfg = benchmark_config(bench, n_ranks=BENCH_RANKS)
        out[bench] = sweep_caps(cfg, BENCH_CAPS[bench])
    return out


def improvements(results, attr):
    """Non-None improvement values from a sweep."""
    vals = [getattr(r, attr) for r in results]
    return [v for v in vals if v is not None]


def engage(benchmark):
    """Record a no-op timing so claim-assertion tests run (and appear) under
    ``pytest benchmarks/ --benchmark-only`` — the harness's single pass."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
