"""Figure 1 + Table 1: the configuration space and its frontiers.

Regenerates the time-vs-power scatter for a CoMD task and checks the
paper's qualitative claims: power spans roughly 10-60 W, full-width
(8-thread) configurations dominate the frontier except at the lowest
frequencies, and the convex frontier is a proper subset of the Pareto set.
"""

from repro.experiments import figure1_pareto_frontier


def test_fig1_regeneration(benchmark):
    fig = benchmark(figure1_pareto_frontier)

    # Paper Figure 1 axis: the scatter spans ~0-60 W.
    assert min(p.power_w for p in fig.points) > 5.0
    assert max(p.power_w for p in fig.points) < 65.0

    # Frontier containment: convex ⊆ pareto ⊆ points.
    assert len(fig.convex) < len(fig.pareto) < len(fig.points)

    # Table 1's structure: the fast end of the Pareto list runs 8 threads
    # at descending frequency; reduced thread counts appear only near the
    # lowest frequencies.
    ordered = list(reversed(fig.pareto))  # fastest first
    assert all(p.config.threads == 8 for p in ordered[:10])
    assert ordered[0].config.freq_ghz == 2.6
    reduced = [p for p in fig.pareto if p.config.threads < 8]
    assert reduced
    assert all(p.config.freq_ghz <= 2.0 for p in reduced)
    # And on the upper (high-power) half of the convex frontier, only
    # full-width configurations survive.
    upper = fig.convex[len(fig.convex) // 2:]
    assert all(p.config.threads == 8 for p in upper)


def test_table1_rows_shape(benchmark):
    fig = figure1_pareto_frontier()
    rows = benchmark(fig.table1_rows)
    assert rows[0][0] == "C_i,1"
    assert any(r[0] == "C_i,..." for r in rows)
