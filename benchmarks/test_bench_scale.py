"""Scalability claim (§3.3): "thousands of processes and hundreds of edges
per process with little difficulty".

Solves the fixed-order LP on CoMD traces of growing rank counts and checks
that solve time grows near-linearly in model size — the property that made
the LP the practical formulation where the flow ILP stalls at 30 edges.
"""

import time

import pytest

from repro.core import solve_fixed_order_lp
from repro.experiments.runner import make_power_models
from repro.simulator import trace_application
from repro.workloads import WorkloadSpec, make_comd

from conftest import engage


def _solve_at(n_ranks: int):
    app = make_comd(WorkloadSpec(n_ranks=n_ranks, iterations=4, seed=1))
    models = make_power_models(n_ranks)
    trace = trace_application(app, models)
    t0 = time.perf_counter()
    res = solve_fixed_order_lp(trace, 40.0 * n_ranks)
    return res, time.perf_counter() - t0


@pytest.mark.parametrize("n_ranks", [64, 128])
def test_large_rank_lp(benchmark, n_ranks):
    res, _ = benchmark.pedantic(
        _solve_at, args=(n_ranks,), rounds=1, iterations=1
    )
    assert res.feasible
    assert res.schedule.solver_info["n_vars"] > 10_000


def test_near_linear_scaling(benchmark):
    """Doubling the rank count must cost far less than quadratic solve
    time (HiGHS on the sparse event formulation)."""
    engage(benchmark)
    res64, t64 = _solve_at(64)
    res128, t128 = _solve_at(128)
    assert res64.feasible and res128.feasible
    assert t128 < t64 * 8  # generous bound; observed ~3x

    # Makespan is scale-invariant for this weak-scaled workload: the same
    # per-socket cap yields the same per-iteration schedule.
    assert res128.makespan_s == pytest.approx(res64.makespan_s, rel=0.02)


def test_hundreds_of_tasks_per_rank(benchmark):
    """Hundreds of edges per process: a long CoMD run on few ranks."""
    app = make_comd(WorkloadSpec(n_ranks=8, iterations=64, seed=1))
    models = make_power_models(8)
    trace = trace_application(app, models)
    assert len(trace.task_edges) == 8 * 2 * 64  # 128 tasks per rank

    res = benchmark.pedantic(
        solve_fixed_order_lp, args=(trace, 40.0 * 8), rounds=1, iterations=1
    )
    assert res.feasible
