#!/usr/bin/env python
"""Anatomy of an optimal schedule: the full diagnostic tour.

Solves the LP for a BT-like (imbalanced) run at a tight and a loose cap
and dissects both answers with the library's diagnostic stack:

* the **bottleneck report** — is the schedule power-bound or
  structure-bound, and which rank carries the critical path;
* the **Gantt timeline** — who runs what configuration when;
* the **power profile** — instantaneous job power against the cap;
* **static validation** — the schedule verifiably meets every constraint;
* the **minimum feasible cap** — how low this job could go at all.

Run:  python examples/schedule_anatomy.py
"""

from repro import (
    StaticPolicy,
    WorkloadSpec,
    make_bt,
    make_power_models,
    round_schedule,
    solve_fixed_order_lp,
    trace_application,
)
from repro.core import (
    analyze_bottlenecks,
    minimum_feasible_cap,
    validate_schedule,
)
from repro.experiments import (
    gantt_from_schedule,
    power_profile_ascii,
)
from repro.simulator import Engine, job_power_timeline

N_RANKS = 6
ITERATIONS = 2


def dissect(trace, cap_per_socket: float) -> None:
    cap = cap_per_socket * N_RANKS
    print(f"\n===== cap: {cap_per_socket:.0f} W/socket ({cap:.0f} W job) =====")
    res = solve_fixed_order_lp(trace, cap)
    if not res.feasible:
        print("not schedulable at this cap")
        return
    report = analyze_bottlenecks(trace, res)
    print(f"makespan {res.makespan_s:.3f}s — {report.summary()}")

    check = validate_schedule(trace, res.schedule)
    print(check.summary())
    assert check.ok

    print("\nper-rank timeline (glyph = thread count):")
    print(gantt_from_schedule(trace, res.schedule, width=64))


def main() -> None:
    app = make_bt(WorkloadSpec(n_ranks=N_RANKS, iterations=ITERATIONS, seed=4))
    sockets = make_power_models(N_RANKS, efficiency_seed=4)
    trace = trace_application(app, sockets)

    floor = minimum_feasible_cap(trace, 5.0 * N_RANKS, 100.0 * N_RANKS)
    print(f"minimum feasible job cap: {floor:.1f} W "
          f"({floor / N_RANKS:.1f} W/socket)")

    dissect(trace, 30.0)   # power-bound: most of the timeline at the cap
    dissect(trace, 90.0)   # structure-bound: the heavy rank's chain rules

    # What the cap looks like on the wire: replay the tight schedule and
    # chart instantaneous job power against the constraint.
    cap = 30.0 * N_RANKS
    res = solve_fixed_order_lp(trace, cap)
    disc = round_schedule(trace, res.schedule, mode="floor")
    from repro import replay_schedule

    outcome = replay_schedule(app, disc.config_map(), sockets, cap)
    tl = job_power_timeline(outcome.result, sockets)
    print(f"\nreplayed power profile (peak {outcome.peak_power_w:.1f} W, "
          f"cap respected: {outcome.cap_respected}):")
    print(power_profile_ascii(tl, cap_w=cap, width=64, height=10))

    # Contrast: Static's power profile at the same cap wastes budget on
    # the light ranks while the heavy rank starves.
    static_res = Engine(sockets).run(app, StaticPolicy(sockets, cap))
    tl_static = job_power_timeline(static_res, sockets)
    print("\nStatic at the same cap "
          f"({static_res.makespan_s / outcome.makespan_s:.2f}x slower):")
    print(power_profile_ascii(tl_static, cap_w=cap, width=64, height=10))


if __name__ == "__main__":
    main()
