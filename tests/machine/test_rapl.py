"""Unit tests for the RAPL firmware simulator."""

import pytest

from repro.machine import (
    RaplController,
    SocketPowerModel,
    TaskKernel,
    XEON_E5_2670,
)

FMAX = XEON_E5_2670.fmax_ghz
FMIN = XEON_E5_2670.fmin_ghz


@pytest.fixture
def controller(power_model):
    return RaplController(power_model)


@pytest.fixture
def hungry_kernel():
    """A BT-like power-hungry kernel that overflows low caps at 8 threads."""
    return TaskKernel(cpu_seconds=1.0, activity=1.7, mem_intensity=0.7)


class TestRaplDecisions:
    def test_generous_cap_gives_fmax(self, controller, kernel):
        d = controller.decide(kernel, 8, 200.0)
        assert d.config.freq_ghz == FMAX
        assert d.config.duty == 1.0
        assert d.cap_met

    def test_cap_respected(self, controller, kernel):
        for cap in (20.0, 25.0, 30.0, 40.0, 50.0):
            d = controller.decide(kernel, 8, cap)
            if d.cap_met:
                assert d.power_w <= cap + 1e-9
                assert d.headroom_w >= -1e-9

    def test_frequency_monotone_in_cap(self, controller, kernel):
        freqs = [
            controller.decide(kernel, 8, cap).config.effective_freq_ghz
            for cap in (15, 20, 25, 30, 40, 60)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(freqs, freqs[1:]))

    def test_picks_fastest_fitting_pstate(self, controller, kernel, power_model):
        cap = 35.0
        d = controller.decide(kernel, 8, cap)
        faster = [f for f in XEON_E5_2670.pstates if f > d.config.freq_ghz]
        for f in faster:
            assert (
                power_model.power(f, 8, kernel.activity, kernel.mem_intensity)
                > cap
            )

    def test_modulation_under_harsh_cap(self, controller, hungry_kernel):
        """When even fmin exceeds the cap, firmware falls back to duty
        cycling — the paper's '22% of max clock' mechanism."""
        floor = controller.power_model.power(
            FMIN, 8, hungry_kernel.activity, hungry_kernel.mem_intensity
        )
        d = controller.decide(hungry_kernel, 8, floor - 2.0)
        assert d.config.duty < 1.0
        assert d.config.freq_ghz == FMIN
        assert d.config.effective_freq_ghz < FMIN

    def test_bottoms_out_when_cap_unreachable(self, controller, hungry_kernel):
        d = controller.decide(hungry_kernel, 8, 5.0)
        assert not d.cap_met
        assert d.config.duty == min(XEON_E5_2670.duty_cycles)

    def test_leaky_socket_throttles_harder(self, kernel):
        """Manufacturing variability: the same cap yields a lower frequency
        on a less efficient socket — the load-imbalance source under
        Static."""
        efficient = RaplController(SocketPowerModel(efficiency=0.95))
        leaky = RaplController(SocketPowerModel(efficiency=1.10))
        cap = 30.0
        f_eff = efficient.decide(kernel, 8, cap).config.effective_freq_ghz
        f_leaky = leaky.decide(kernel, 8, cap).config.effective_freq_ghz
        assert f_leaky < f_eff

    def test_thread_count_is_an_input_not_a_choice(self, controller, kernel):
        """RAPL cannot change concurrency (firmware limitation, §4.1)."""
        for threads in (2, 4, 8):
            d = controller.decide(kernel, threads, 30.0)
            assert d.config.threads == threads

    def test_invalid_cap(self, controller, kernel):
        with pytest.raises(ValueError):
            controller.decide(kernel, 8, 0.0)

    def test_control_noise_bounds(self, power_model):
        with pytest.raises(ValueError):
            RaplController(power_model, control_noise=-0.1)
        with pytest.raises(ValueError):
            RaplController(power_model, control_noise=0.6)

    def test_control_noise_is_conservative(self, power_model, kernel):
        plain = RaplController(power_model).decide(kernel, 8, 32.0)
        guarded = RaplController(power_model, control_noise=0.05).decide(
            kernel, 8, 32.0
        )
        assert guarded.config.effective_freq_ghz <= plain.config.effective_freq_ghz


class TestRaplMeasure:
    def test_measure_returns_consistent_point(self, controller, kernel):
        point = controller.measure(kernel, 8, 30.0)
        d = controller.decide(kernel, 8, 30.0)
        assert point.config == d.config
        assert point.power_w == pytest.approx(d.power_w)

    def test_lower_cap_slower_task(self, controller, kernel):
        t_low = controller.measure(kernel, 8, 22.0).duration_s
        t_high = controller.measure(kernel, 8, 50.0).duration_s
        assert t_low > t_high
