"""Schedule objects: the output of the LP/ILP formulations.

A :class:`PowerSchedule` assigns every compute task a configuration —
either a convex *mixture* of two adjacent convex-frontier points (the
continuous LP's mid-task-switching interpretation) or a single discrete
configuration (after rounding, or from the discrete/flow formulations) —
together with the scheduled vertex times and the formulation's makespan
bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.configuration import ConfigPoint, Configuration
from ..simulator.program import TaskRef

__all__ = ["TaskAssignment", "PowerSchedule"]


@dataclass(frozen=True)
class TaskAssignment:
    """One task's scheduled operating point.

    ``mixture`` lists (frontier point, fraction) pairs with fractions
    summing to 1; a discrete assignment is a single pair with fraction 1.
    ``duration_s`` and ``power_w`` are the mixture-weighted expectations
    (LP equations 7-8).
    """

    ref: TaskRef
    edge_id: int
    mixture: tuple[tuple[ConfigPoint, float], ...]
    duration_s: float
    power_w: float

    def __post_init__(self) -> None:
        if not self.mixture:
            raise ValueError(f"task {self.ref}: empty mixture")
        total = sum(f for _, f in self.mixture)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"task {self.ref}: fractions sum to {total}")

    @property
    def dominant(self) -> ConfigPoint:
        """The highest-fraction frontier point (ties -> lower power)."""
        return max(self.mixture, key=lambda cf: (cf[1], -cf[0].power_w))[0]

    @property
    def is_discrete(self) -> bool:
        return len(self.mixture) == 1

    @property
    def configuration(self) -> Configuration:
        """The assigned configuration (dominant point for mixtures)."""
        return self.dominant.config


@dataclass
class PowerSchedule:
    """A complete schedule for one application under one power cap."""

    kind: str  # "continuous" | "discrete"
    cap_w: float
    objective_s: float
    assignments: dict[TaskRef, TaskAssignment]
    vertex_times: np.ndarray
    solver_info: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("continuous", "discrete"):
            raise ValueError(f"kind must be continuous/discrete, got {self.kind!r}")
        if self.cap_w <= 0:
            raise ValueError(f"cap must be positive, got {self.cap_w}")
        if self.objective_s < 0:
            raise ValueError(f"objective must be >= 0, got {self.objective_s}")

    def config_map(self) -> dict[TaskRef, Configuration]:
        """Per-task configurations for the simulator's replay policy."""
        return {ref: a.configuration for ref, a in self.assignments.items()}

    def total_average_power(self) -> float:
        """Duration-weighted mean of task powers (reporting aid)."""
        num = sum(a.power_w * a.duration_s for a in self.assignments.values())
        den = sum(a.duration_s for a in self.assignments.values())
        return num / den if den > 0 else 0.0

    def total_energy_j(self) -> float:
        """Total scheduled task energy: sum of duration x power per task.

        The quantity the energy LP minimizes; computed identically for
        every formulation so schedules are comparable on the energy axis.
        """
        return float(
            sum(a.duration_s * a.power_w for a in self.assignments.values())
        )

    def task_powers(self) -> dict[TaskRef, float]:
        return {ref: a.power_w for ref, a in self.assignments.items()}

    def task_durations(self) -> dict[TaskRef, float]:
        return {ref: a.duration_s for ref, a in self.assignments.items()}

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"PowerSchedule({self.kind}, cap={self.cap_w:.0f}W, "
            f"T={self.objective_s:.4f}s, {len(self.assignments)} tasks)"
        )
