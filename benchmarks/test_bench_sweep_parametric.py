"""Parametric cap-sweep benchmark: one assembled model, many caps.

The paper's Figures 9-15 re-solve the same trace at dozens of caps.  The
rebuild path pays trace -> events -> IR -> LP compilation -> sparse
assembly at every cap; the parametric path
(:class:`repro.core.ParametricCapSolver`) pays them once and re-solves
with an updated RHS.  This benchmark pins both properties the refactor
claims:

* **speed** — the parametric dense sweep is at least 2x faster than the
  per-cap rebuild on the same grid (measured as min over interleaved
  repetitions, so a scheduler hiccup on either side cannot fake or mask
  the speedup);
* **identity** — the two paths return byte-identical makespans and
  primal vectors (the model handed to HiGHS is the same, and HiGHS is
  deterministic).
"""

import time

import numpy as np

from repro.core import ParametricCapSolver, solve_cap_sweep
from repro.experiments.runner import make_power_models
from repro.simulator import trace_application
from repro.workloads import WorkloadSpec, make_bt

#: Dense grid, as in a production figure sweep.
N_CAPS = 50
#: Interleaved timing repetitions per path.
N_REPS = 3


def _bt_trace(n_ranks=8, iterations=2):
    app = make_bt(WorkloadSpec(n_ranks=n_ranks, iterations=iterations, seed=1))
    return trace_application(app, make_power_models(n_ranks))


def _cap_grid(n_ranks=8):
    return [float(c) * n_ranks for c in np.linspace(22.0, 70.0, N_CAPS)]


def test_parametric_sweep_2x_and_byte_identical(benchmark):
    trace = _bt_trace()
    caps = _cap_grid()

    t_rebuild, t_parametric = [], []
    rebuild = parametric = None
    for _ in range(N_REPS):
        t0 = time.perf_counter()
        rebuild = solve_cap_sweep(trace, caps, parametric=False)
        t_rebuild.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        parametric = solve_cap_sweep(trace, caps, parametric=True)
        t_parametric.append(time.perf_counter() - t0)

    # Identity first: same feasibility verdicts, bit-equal makespans and
    # primal vectors at every cap.
    assert parametric.makespans() == rebuild.makespans()
    for cap in caps:
        a, b = parametric.results[cap], rebuild.results[cap]
        assert np.array_equal(a.solution.x, b.solution.x)

    speedup = min(t_rebuild) / min(t_parametric)
    assert speedup >= 2.0, (
        f"parametric sweep only {speedup:.2f}x faster "
        f"({min(t_parametric):.2f}s vs {min(t_rebuild):.2f}s rebuild)"
    )

    # Record the parametric path for the regression baseline.
    result = benchmark.pedantic(
        solve_cap_sweep, args=(trace, caps), rounds=1, iterations=1
    )
    assert result.feasible_caps()


def test_parametric_solver_reuse(benchmark):
    """Per-cap cost on an already-frozen model (the sweep's steady state)."""
    trace = _bt_trace()
    solver = ParametricCapSolver(trace)
    solver.solve(400.0)  # warm: first HiGHS call passes the model once

    result = benchmark.pedantic(
        solver.solve, args=(320.0,), rounds=3, iterations=1
    )
    assert result.feasible
    assert solver.n_solves == 4
