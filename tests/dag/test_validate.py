"""Unit tests for deep DAG validation and networkx export."""

import networkx as nx
import pytest

from repro.dag import DagBuilder, TaskGraph, VertexKind, deep_validate, to_networkx


class TestToNetworkx:
    def test_roundtrip_counts(self, p2p_trace):
        g = p2p_trace.graph
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == g.n_vertices
        assert nxg.number_of_edges() == g.n_edges

    def test_attributes(self, kernel):
        b = DagBuilder(1)
        b.compute(0, kernel)
        g = b.finalize()
        nxg = to_networkx(g)
        assert nxg.nodes[0]["kind"] == "init"

    def test_is_dag(self, p2p_trace):
        assert nx.is_directed_acyclic_graph(to_networkx(p2p_trace.graph))


class TestDeepValidate:
    def test_traced_app_passes(self, p2p_trace):
        deep_validate(p2p_trace.graph)

    def test_disconnected_fails(self, kernel):
        g = TaskGraph(1)
        init = g.add_vertex(VertexKind.INIT)
        fin = g.add_vertex(VertexKind.FINALIZE)
        g.add_compute(init.id, fin.id, rank=0, kernel=kernel)
        g.add_vertex(VertexKind.SEND, rank=0)  # orphan vertex
        with pytest.raises(ValueError, match="connected"):
            deep_validate(g)

    def test_same_rank_costly_message_fails(self, kernel):
        g = TaskGraph(1)
        init = g.add_vertex(VertexKind.INIT)
        a = g.add_vertex(VertexKind.SEND, rank=0)
        fin = g.add_vertex(VertexKind.FINALIZE)
        g.add_compute(init.id, a.id, rank=0, kernel=kernel)
        b = g.add_vertex(VertexKind.RECV, rank=0)
        g.add_message(a.id, b.id, duration_s=1.0)  # same rank, nonzero cost
        g.add_message(b.id, fin.id, 0.0)
        with pytest.raises(ValueError, match="nonzero duration"):
            deep_validate(g)

    def test_zero_cost_program_order_edges_allowed(self, kernel):
        b = DagBuilder(2)
        b.compute(0, kernel)
        b.isend(0, 1)  # creates program-order edges on rank 1's side later
        b.compute(1, kernel)
        b.wait(0)
        g = b.finalize()
        deep_validate(g)
