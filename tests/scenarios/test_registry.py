"""PolicyRegistry: built-in entries, config resolution, error paths."""

import pytest

from repro.runtime import (
    AdagioPolicy,
    ConductorConfig,
    ConductorPolicy,
    ConfigSearchPolicy,
    DvfsEnergyPolicy,
    SelectionOnlyPolicy,
    StaticPolicy,
)
from repro.scenarios.registry import (
    BoundResult,
    PolicyEntry,
    PolicyRegistry,
    default_registry,
)


class TestDefaultRegistry:
    def test_all_builtins_registered(self):
        reg = default_registry()
        assert reg.names() == [
            "adagio", "conductor", "config-search", "dvfs-energy",
            "energy-lp", "flow-ilp", "lp", "lp-split",
            "selection-only", "static",
        ]

    def test_singleton(self):
        assert default_registry() is default_registry()

    def test_runtime_entries_carry_policy_classes(self):
        reg = default_registry()
        assert reg.get("static").policy_class is StaticPolicy
        assert reg.get("conductor").policy_class is ConductorPolicy
        assert reg.get("adagio").policy_class is AdagioPolicy
        assert reg.get("selection-only").policy_class is SelectionOnlyPolicy
        assert reg.get("dvfs-energy").policy_class is DvfsEnergyPolicy
        assert reg.get("config-search").policy_class is ConfigSearchPolicy

    def test_kinds(self):
        reg = default_registry()
        for name in ("static", "conductor", "adagio", "selection-only",
                     "dvfs-energy", "config-search"):
            assert reg.get(name).kind == "runtime"
        for name in ("lp", "lp-split", "flow-ilp", "energy-lp"):
            assert reg.get(name).kind == "bound"

    def test_measurement_windows(self):
        reg = default_registry()
        # Non-adaptive policies measure after the discard window.
        for fixed in ("static", "config-search"):
            assert reg.get(fixed).measure == "discard"
        for adaptive in ("conductor", "adagio", "selection-only",
                         "dvfs-energy"):
            assert reg.get(adaptive).measure == "steady"

    def test_conductor_defaults_match_config_dataclass(self):
        import dataclasses

        entry = default_registry().get("conductor")
        assert entry.default_config == dataclasses.asdict(ConductorConfig())

    def test_unknown_name_names_the_registry(self):
        with pytest.raises(KeyError, match="registered"):
            default_registry().get("magic")

    def test_contains_and_len(self):
        reg = default_registry()
        assert "lp" in reg and "magic" not in reg
        assert len(reg) == 10


class TestConfigResolution:
    def test_defaults_returned_untouched(self):
        entry = default_registry().get("lp")
        cfg = entry.resolve_config(None)
        assert cfg == entry.default_config
        assert cfg is not entry.default_config  # caller-safe copy

    def test_overrides_merge(self):
        entry = default_registry().get("conductor")
        cfg = entry.resolve_config({"step_w": 5.0})
        assert cfg["step_w"] == 5.0
        assert cfg["realloc_period"] == ConductorConfig().realloc_period

    def test_unknown_keys_rejected(self):
        entry = default_registry().get("static")
        with pytest.raises(ValueError, match="unknown config keys"):
            entry.resolve_config({"not_a_knob": 1})


class TestRegistryMechanics:
    def test_duplicate_registration_rejected(self):
        reg = PolicyRegistry()
        entry = PolicyEntry(
            name="x", kind="bound", summary="s", default_config={},
            solve=lambda ctx, cfg, scope: BoundResult(time_s=1.0),
        )
        reg.register(entry)
        with pytest.raises(ValueError, match="already registered"):
            reg.register(entry)

    def test_entry_validation(self):
        with pytest.raises(ValueError, match="kind"):
            PolicyEntry(name="x", kind="nope", summary="s", default_config={})
        with pytest.raises(ValueError, match="build"):
            PolicyEntry(name="x", kind="runtime", summary="s", default_config={})
        with pytest.raises(ValueError, match="solve"):
            PolicyEntry(name="x", kind="bound", summary="s", default_config={})
        with pytest.raises(ValueError, match="measure"):
            PolicyEntry(
                name="x", kind="runtime", summary="s", default_config={},
                measure="sometimes", build=lambda ctx, cfg: None,
            )

    def test_entries_in_registration_order(self):
        names = [e.name for e in default_registry().entries()]
        assert names[0] == "static"  # the paper's baseline registers first
        assert sorted(names) == default_registry().names()
