"""The perf-trajectory harness and the regression gate.

``benchmarks/trajectory.py`` and ``benchmarks/check_regression.py`` are
stdlib-only scripts (not part of the ``repro`` package), loaded here by
file path.  These tests pin the trajectory point schema, the
best-historical-point gate, and the per-benchmark ceiling that stops a
single wild regression from hiding inside a flat geomean.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


trajectory = _load("trajectory")
check_regression = _load("check_regression")


def bench_doc(times: dict[str, float]) -> dict:
    """A minimal pytest-benchmark JSON document."""
    return {
        "benchmarks": [
            {"fullname": name, "stats": {"median": t, "mean": t}}
            for name, t in times.items()
        ]
    }


PROBE = trajectory.CALIBRATION_PROBE
BASE_TIMES = {f"bench::{PROBE}": 1.0, "bench::test_a": 2.0, "bench::test_b": 4.0}


def write_doc(path: Path, times: dict[str, float]) -> Path:
    path.write_text(json.dumps(bench_doc(times)))
    return path


class TestTrajectoryPoint:
    def test_build_emits_schema_valid_point(self):
        point = trajectory.build_point(
            bench_doc(BASE_TIMES), bench_doc(BASE_TIMES),
            sha="abc1234", date="20260808",
        )
        assert trajectory.validate_point(point) == []
        assert point["schema"] == trajectory.TRAJECTORY_SCHEMA_VERSION
        assert point["kind"] == "perf_trajectory_point"
        assert point["geomean_speedup_vs_baseline"] == pytest.approx(1.0)
        assert trajectory.point_filename(point) == "BENCH_20260808_abc1234.json"

    def test_calibration_divides_out_machine_speed(self):
        """A uniformly 2x-slower machine is not a slowdown: the probe's
        ratio rescales every time, leaving the speedup at 1.0."""
        slow = {name: 2.0 * t for name, t in BASE_TIMES.items()}
        point = trajectory.build_point(
            bench_doc(slow), bench_doc(BASE_TIMES), sha="abc1234", date="20260808"
        )
        assert point["calibration"]["scale"] == pytest.approx(2.0)
        assert point["geomean_speedup_vs_baseline"] == pytest.approx(1.0)
        assert point["times"]["bench::test_a"] == pytest.approx(2.0)

    def test_real_speedup_survives_calibration(self):
        fast = dict(BASE_TIMES)
        fast["bench::test_a"] = 1.0  # 2x faster; probe unchanged
        point = trajectory.build_point(
            bench_doc(fast), bench_doc(BASE_TIMES), sha="abc1234", date="20260808"
        )
        assert point["geomean_speedup_vs_baseline"] > 1.0

    def test_validate_rejects_malformed_points(self):
        good = trajectory.build_point(
            bench_doc(BASE_TIMES), bench_doc(BASE_TIMES),
            sha="abc1234", date="20260808",
        )
        assert trajectory.validate_point("not a dict")
        assert trajectory.validate_point({**good, "schema": 99})
        assert trajectory.validate_point({**good, "kind": "something"})
        assert trajectory.validate_point({**good, "times": {"x": -1.0}})
        assert trajectory.validate_point({**good, "benchmarks": [{}]})

    def test_write_point_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError, match="invalid point"):
            trajectory.write_point({"schema": 99}, tmp_path)

    def test_emit_cli_writes_point_at_out_dir(self, tmp_path, capsys):
        fresh = write_doc(tmp_path / "fresh.json", BASE_TIMES)
        baseline = write_doc(tmp_path / "baseline.json", BASE_TIMES)
        rc = trajectory.main([
            "emit", str(fresh), "--baseline", str(baseline),
            "--out-dir", str(tmp_path), "--sha", "abc1234",
            "--date", "20260808",
        ])
        assert rc == 0
        out = tmp_path / "BENCH_20260808_abc1234.json"
        assert out.exists()
        assert trajectory.validate_point(json.loads(out.read_text())) == []
        assert "geomean speedup" in capsys.readouterr().out
        assert trajectory.main(["validate", str(out)]) == 0


class TestTrajectoryGate:
    def emit_history_point(self, tmp_path, times, sha) -> Path:
        history = tmp_path / "trajectory"
        point = trajectory.build_point(
            bench_doc(times), bench_doc(BASE_TIMES), sha=sha, date="20260101"
        )
        trajectory.write_point(point, history)
        return history

    def test_first_point_always_passes(self, tmp_path, capsys):
        fresh = write_doc(tmp_path / "fresh.json", BASE_TIMES)
        baseline = write_doc(tmp_path / "baseline.json", BASE_TIMES)
        rc = trajectory.main([
            "check", str(fresh), "--baseline", str(baseline),
            "--history", str(tmp_path / "empty"),
        ])
        assert rc == 0
        assert "first point always passes" in capsys.readouterr().out

    def test_plateau_within_threshold_passes(self, tmp_path):
        history = self.emit_history_point(tmp_path, BASE_TIMES, "aaaaaaa")
        fresh = write_doc(tmp_path / "fresh.json", BASE_TIMES)
        baseline = write_doc(tmp_path / "baseline.json", BASE_TIMES)
        rc = trajectory.main([
            "check", str(fresh), "--baseline", str(baseline),
            "--history", str(history), "--threshold", "25",
        ])
        assert rc == 0

    def test_backslide_from_best_point_fails_with_diff_table(
        self, tmp_path, capsys
    ):
        """The gate compares against the *best* historical point, and a
        trip prints a readable per-benchmark table, not a bare assert."""
        fast = dict(BASE_TIMES)
        fast["bench::test_a"] = 0.5  # the best point: 4x on test_a
        history = self.emit_history_point(tmp_path, fast, "aaaaaaa")
        fresh = write_doc(tmp_path / "fresh.json", BASE_TIMES)
        baseline = write_doc(tmp_path / "baseline.json", BASE_TIMES)
        rc = trajectory.main([
            "check", str(fresh), "--baseline", str(baseline),
            "--history", str(history), "--threshold", "10",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL: performance slid back" in out
        assert "best historical point: BENCH_20260101_aaaaaaa.json" in out
        assert "bench::test_a" in out  # the diff table names the culprit

    def test_invalid_history_points_are_skipped(self, tmp_path, capsys):
        history = tmp_path / "trajectory"
        history.mkdir()
        (history / "BENCH_20260101_aaaaaaa.json").write_text("{\"schema\": 99}")
        assert trajectory.load_history([history]) == []
        assert "invalid trajectory point" in capsys.readouterr().out


class TestRegressionPerBenchCeiling:
    def test_wild_single_regression_fails_despite_flat_geomean(self, capsys):
        """Many small improvements must not buy cover for one benchmark
        doubling its time."""
        fresh = dict(BASE_TIMES)
        fresh["bench::test_a"] = 4.4  # +120%
        fresh["bench::test_b"] = 1.8  # -55%: geomean stays within 5%
        rc = check_regression.compare(
            BASE_TIMES, fresh, threshold_pct=5.0, calibrate=PROBE,
            aggregate=True,
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "OK: aggregate within the 5% gate" in out
        assert "per-benchmark ceiling" in out
        assert "bench::test_a" in out

    def test_allow_list_exempts_known_noisy_bench(self, capsys):
        fresh = dict(BASE_TIMES)
        fresh["bench::test_a"] = 4.4
        fresh["bench::test_b"] = 1.8
        rc = check_regression.compare(
            BASE_TIMES, fresh, threshold_pct=5.0, calibrate=PROBE,
            aggregate=True, allow=["test_a"],
        )
        assert rc == 0
        assert "(allowed)" in capsys.readouterr().out

    def test_aggregate_breach_still_fails(self, capsys):
        fresh = {name: 1.5 * t for name, t in BASE_TIMES.items()}
        fresh[f"bench::{PROBE}"] = BASE_TIMES[f"bench::{PROBE}"]  # probe flat
        rc = check_regression.compare(
            BASE_TIMES, fresh, threshold_pct=5.0, calibrate=PROBE,
            aggregate=True,
        )
        assert rc == 1
        assert "FAIL: aggregate exceeds the 5% gate" in capsys.readouterr().out

    def test_calibration_probe_is_exempt(self):
        """A slow probe rescales the run instead of failing it."""
        fresh = {name: 2.0 * t for name, t in BASE_TIMES.items()}
        rc = check_regression.compare(
            BASE_TIMES, fresh, threshold_pct=5.0, calibrate=PROBE,
            aggregate=True,
        )
        assert rc == 0
