"""Property-based tests for the simulator, tracer, and DAG pipeline."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dag import deep_validate, unconstrained_schedule
from repro.machine import SocketPowerModel, TaskTimeModel
from repro.simulator import (
    Engine,
    MaxPerformancePolicy,
    build_dag,
    job_power_timeline,
    )
from repro.workloads import random_application

apps = st.builds(
    random_application,
    n_ranks=st.integers(1, 4),
    iterations=st.integers(1, 3),
    seed=st.integers(0, 10_000),
    p_p2p=st.floats(0.0, 1.0),
)


def models_for(app):
    return [
        SocketPowerModel(efficiency=1.0 + 0.02 * r) for r in range(app.n_ranks)
    ]


class TestSimulatorProperties:
    @given(app=apps)
    @settings(max_examples=30, deadline=None)
    def test_executes_without_deadlock(self, app):
        res = Engine(models_for(app)).run(app, MaxPerformancePolicy())
        assert res.makespan_s > 0
        assert len(res.records) == app.n_tasks()

    @given(app=apps)
    @settings(max_examples=30, deadline=None)
    def test_per_rank_clocks_monotone(self, app):
        res = Engine(models_for(app)).run(app, MaxPerformancePolicy())
        for recs in res.records_by_rank():
            for a, b in zip(recs, recs[1:]):
                assert b.start_s >= a.end_s - 1e-12

    @given(app=apps)
    @settings(max_examples=30, deadline=None)
    def test_trace_matches_engine_makespan(self, app):
        models = models_for(app)
        engine = Engine(models, mpi_call_overhead_s=0.0)
        res = engine.run(app, MaxPerformancePolicy())
        graph, _ = build_dag(app)
        deep_validate(graph)
        sched = unconstrained_schedule(graph, TaskTimeModel())
        assert sched.makespan == pytest.approx(res.makespan_s, rel=1e-9)

    @given(app=apps)
    @settings(max_examples=20, deadline=None)
    def test_energy_consistency(self, app):
        """Integral of the idle-mode power timeline equals task energy plus
        idle energy — conservation across the telemetry pipeline."""
        models = models_for(app)
        res = Engine(models).run(app, MaxPerformancePolicy())
        tl = job_power_timeline(res, models, slack_mode="idle")
        task_energy = res.total_energy_j()
        busy = [
            sum(r.duration_s for r in recs)
            for recs in res.records_by_rank()
        ]
        idle_energy = sum(
            pm.idle_power() * (res.makespan_s - b)
            for pm, b in zip(models, busy)
        )
        assert tl.energy_j() == pytest.approx(
            task_energy + idle_energy, rel=1e-6, abs=1e-9
        )

    @given(app=apps)
    @settings(max_examples=20, deadline=None)
    def test_timeline_nonnegative(self, app):
        models = models_for(app)
        res = Engine(models).run(app, MaxPerformancePolicy())
        tl = job_power_timeline(res, models, slack_mode="task")
        assert (tl.power >= -1e-9).all()
