"""Machine substrate: CPU, power, performance, Pareto frontiers, RAPL.

This package is the simulation stand-in for the paper's Cab cluster nodes
(dual-socket Xeon E5-2670).  Everything above it — the tracer, the LP, the
runtimes — consumes only the (duration, power) points this package produces
per task configuration, so the substitution of an analytic model for real
hardware leaves those code paths exactly as they would run on a cluster.
"""

from .calibration import (
    CalibrationResult,
    PowerSample,
    fit_power_model,
    sample_power_model,
)
from .configuration import (
    ConfigPoint,
    Configuration,
    enumerate_configurations,
    measure_task,
    measure_task_space,
)
from .cpu import XEON_E5_2670, CpuSpec, effective_frequency
from .device import (
    LEGACY_DEVICE_ID,
    LEGACY_NODE,
    AcceleratorDevice,
    CpuDevice,
    DeviceKind,
    DeviceSpec,
    GpuDevice,
    NodeSpec,
    device_power_groups,
    get_node,
    measure_device_task_space,
    node_names,
    node_registry,
    rank_nodes,
    single_socket_node,
)
from .frontiers import FrontierProfile, FrontierStore, NodeFrontierStore
from .pareto import (
    bracket_for_power,
    convex_frontier,
    interpolate_duration,
    nearest_point,
    pareto_frontier,
)
from .performance import TaskKernel, TaskTimeModel
from .power import DEFAULT_POWER_PARAMS, PowerModelParams, SocketPowerModel
from .rapl import RaplController, RaplDecision
from .variability import make_power_models, sample_socket_efficiencies

__all__ = [
    "AcceleratorDevice",
    "CalibrationResult",
    "ConfigPoint",
    "Configuration",
    "CpuDevice",
    "CpuSpec",
    "DEFAULT_POWER_PARAMS",
    "DeviceKind",
    "DeviceSpec",
    "FrontierProfile",
    "FrontierStore",
    "GpuDevice",
    "LEGACY_DEVICE_ID",
    "LEGACY_NODE",
    "NodeFrontierStore",
    "NodeSpec",
    "PowerModelParams",
    "RaplController",
    "RaplDecision",
    "SocketPowerModel",
    "TaskKernel",
    "TaskTimeModel",
    "XEON_E5_2670",
    "bracket_for_power",
    "convex_frontier",
    "device_power_groups",
    "effective_frequency",
    "enumerate_configurations",
    "get_node",
    "interpolate_duration",
    "make_power_models",
    "measure_device_task_space",
    "measure_task",
    "measure_task_space",
    "nearest_point",
    "node_names",
    "node_registry",
    "pareto_frontier",
    "rank_nodes",
    "sample_socket_efficiencies",
    "single_socket_node",
    "PowerSample",
    "fit_power_model",
    "sample_power_model",
]
