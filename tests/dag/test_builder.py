"""Unit tests for the DAG builder."""

import pytest

from repro.dag import DagBuilder, VertexKind, deep_validate


class TestBasicShapes:
    def test_compute_only(self, kernel):
        b = DagBuilder(2)
        b.compute(0, kernel)
        b.compute(1, kernel)
        g = b.finalize()
        assert len(g.compute_edges()) == 2
        deep_validate(g)

    def test_consecutive_computes_merge(self, kernel):
        b = DagBuilder(1)
        b.compute(0, kernel)
        b.compute(0, kernel.scaled(2.0))
        g = b.finalize()
        (edge,) = g.compute_edges()
        assert edge.kernel.cpu_seconds == pytest.approx(3 * kernel.cpu_seconds)
        assert edge.kernel.mem_seconds == pytest.approx(3 * kernel.mem_seconds)

    def test_merge_blends_characteristics(self, kernel, memory_kernel):
        b = DagBuilder(1)
        b.compute(0, kernel)
        b.compute(0, memory_kernel)
        g = b.finalize()
        (edge,) = g.compute_edges()
        k = edge.kernel
        assert min(kernel.mem_intensity, memory_kernel.mem_intensity) <= \
            k.mem_intensity <= max(kernel.mem_intensity, memory_kernel.mem_intensity)
        assert k.contention_threshold == min(
            kernel.contention_threshold, memory_kernel.contention_threshold
        )

    def test_send_recv(self, kernel):
        b = DagBuilder(2)
        b.compute(0, kernel)
        sv, rv = b.send(0, 1, duration_s=1e-5, size_bytes=1024)
        b.compute(1, kernel)
        g = b.finalize()
        msg = [
            e for e in g.message_edges() if e.src == sv and e.dst == rv
        ]
        assert len(msg) == 1
        assert msg[0].duration_s == pytest.approx(1e-5)
        deep_validate(g)

    def test_isend_recv_from(self, kernel):
        b = DagBuilder(2)
        b.compute(0, kernel)
        sv = b.isend(0, 1)
        b.compute(0, kernel)
        b.wait(0)
        b.compute(1, kernel)
        b.recv_from(1, sv, duration_s=2e-5)
        g = b.finalize()
        deep_validate(g)
        kinds = {v.kind for v in g.vertices}
        assert VertexKind.ISEND in kinds and VertexKind.WAIT in kinds

    def test_collective_shares_vertex(self, kernel):
        b = DagBuilder(3)
        for r in range(3):
            b.compute(r, kernel)
        shared = b.collective("allreduce", duration_s=1e-5)
        for r in range(3):
            b.compute(r, kernel)
        g = b.finalize()
        # Three wire edges converge on the shared vertex; three tasks leave.
        assert len(g.in_edges(shared)) == 3
        assert len(g.out_edges(shared)) == 3
        deep_validate(g)

    def test_pcontrol_is_zero_cost_barrier(self, kernel):
        b = DagBuilder(2)
        b.compute(0, kernel)
        b.compute(1, kernel)
        b.pcontrol(0)
        g = b.finalize()
        wires = [e for e in g.message_edges() if "pcontrol" in e.label]
        assert wires and all(e.duration_s == 0.0 for e in wires)


class TestBuilderGuards:
    def test_finalize_twice(self, kernel):
        b = DagBuilder(1)
        b.compute(0, kernel)
        b.finalize()
        with pytest.raises(RuntimeError):
            b.finalize()

    def test_compute_after_finalize(self, kernel):
        b = DagBuilder(1)
        b.compute(0, kernel)
        b.finalize()
        with pytest.raises(RuntimeError):
            b.compute(0, kernel)

    def test_bad_rank(self, kernel):
        b = DagBuilder(2)
        with pytest.raises(ValueError):
            b.compute(5, kernel)

    def test_empty_collective(self):
        b = DagBuilder(2)
        with pytest.raises(ValueError):
            b.collective(ranks=[])

    def test_rank_without_work_fails_deep_validation(self, kernel):
        b = DagBuilder(2)
        b.compute(0, kernel)
        g = b.finalize()
        with pytest.raises(ValueError, match="no compute"):
            deep_validate(g)


class TestIterationTagging:
    def test_iteration_propagates_to_edges(self, kernel):
        b = DagBuilder(1)
        b.compute(0, kernel, iteration=7)
        g = b.finalize()
        assert g.compute_edges()[0].iteration == 7

    def test_labels_kept(self, kernel):
        b = DagBuilder(1)
        b.compute(0, kernel, label="force")
        g = b.finalize()
        assert g.compute_edges()[0].label == "force"
