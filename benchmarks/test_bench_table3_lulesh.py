"""Table 3: LULESH long-task characteristics at 50 W/socket.

Paper values (Static / Conductor / LP): median time 4.889 / 3.614 / 3.611 s,
power std-dev 0.009 / 0.118 / 0.125, threads 8 / 5 / 4-5, median relative
frequency 0.8834 / 0.9942 / 1.0.  The harness asserts the relationships,
not the absolute numbers (our substrate is a model, not Cab).
"""

import pytest

from repro.experiments import table3_lulesh_task_characteristics

from conftest import engage, BENCH_RANKS


@pytest.fixture(scope="module")
def table3():
    return table3_lulesh_task_characteristics(
        cap_per_socket_w=50.0, n_ranks=BENCH_RANKS
    )


def test_table3_regeneration(benchmark):
    t = benchmark.pedantic(
        table3_lulesh_task_characteristics,
        kwargs=dict(cap_per_socket_w=50.0, n_ranks=8),
        rounds=1, iterations=1,
    )
    assert len(t.rows) == 3


def test_table3_thread_choices(benchmark, table3):
    """Static pinned at 8; LP and Conductor drop to 4-6 threads."""
    engage(benchmark)
    assert table3.row("Static").threads == "8"
    for method in ("Conductor", "LP"):
        low = int(table3.row(method).threads.split("-")[0])
        assert 4 <= low <= 6


def test_table3_time_ordering(benchmark, table3):
    """LP ~= Conductor, both distinctly faster than Static (paper ratio
    about 1.35)."""
    engage(benchmark)
    t_static = table3.row("Static").median_time_s
    t_cond = table3.row("Conductor").median_time_s
    t_lp = table3.row("LP").median_time_s
    assert t_lp < t_static and t_cond < t_static
    assert 1.1 < t_static / t_lp < 1.7
    assert abs(t_cond - t_lp) / t_lp < 0.12


def test_table3_power_spread(benchmark, table3):
    """Nonuniform allocation shows as a jump in task-power spread
    (0.009 -> ~0.12 in the paper)."""
    engage(benchmark)
    s = table3.row("Static").power_stddev_rel
    assert s < 0.06
    assert table3.row("Conductor").power_stddev_rel > s
    assert table3.row("LP").power_stddev_rel > s


def test_table3_frequency_ordering(benchmark, table3):
    """Static's 8 threads force a lower frequency than the LP's 4-5 under
    the same 50 W budget (0.8834 vs 1.0 in the paper)."""
    engage(benchmark)
    assert (
        table3.row("LP").median_freq_rel
        > table3.row("Static").median_freq_rel
    )
