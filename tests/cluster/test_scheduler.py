"""Tests for the multi-job co-scheduling simulation."""

import pytest

from repro.cluster import ClusterJob, JobPerformanceModel, simulate_cluster

MACHINE_W = 480.0


def jobs3():
    return [
        ClusterJob("md", "comd", n_sockets=4, iterations=20, seed=1),
        ClusterJob("cfd", "bt", n_sockets=4, iterations=10, seed=2,
                   min_w_per_socket=28),
        ClusterJob("hydro", "sp", n_sockets=4, iterations=15, seed=3,
                   min_w_per_socket=40),
    ]


@pytest.fixture(scope="module")
def perf_models():
    return {j.name: JobPerformanceModel(j, "lp") for j in jobs3()}


class TestClusterJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterJob("x", "hpl", 4, 10)
        with pytest.raises(ValueError):
            ClusterJob("x", "comd", 4, 0)

    def test_request_conversion(self):
        j = ClusterJob("x", "comd", 8, 10, min_w_per_socket=30, priority=2)
        r = j.request()
        assert r.n_sockets == 8 and r.priority == 2 and r.min_w == 240


class TestPerformanceModel:
    def test_iteration_time_monotone_in_cap(self, perf_models):
        m = perf_models["cfd"]
        caps = (30.0, 40.0, 55.0, 80.0)
        times = [m.iteration_time(c) for c in caps]
        assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))

    def test_clamps_outside_anchors(self, perf_models):
        m = perf_models["md"]
        assert m.iteration_time(5.0) == m.iteration_time(30.0)
        assert m.iteration_time(500.0) == m.iteration_time(80.0)

    def test_interpolation_between_anchors(self, perf_models):
        m = perf_models["cfd"]
        mid = m.iteration_time(47.5)
        lo, hi = m.iteration_time(55.0), m.iteration_time(40.0)
        assert lo <= mid <= hi

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            JobPerformanceModel(jobs3()[0], strategy="magic")

    def test_static_strategy_slower_than_lp(self):
        job = ClusterJob("cfd2", "bt", n_sockets=4, iterations=4, seed=2,
                         min_w_per_socket=28)
        lp = JobPerformanceModel(job, "lp")
        static = JobPerformanceModel(job, "static")
        assert static.iteration_time(30.0) >= lp.iteration_time(30.0) - 1e-9


class TestSimulation:
    def test_all_jobs_finish(self, perf_models):
        out = simulate_cluster(jobs3(), MACHINE_W,
                               performance_models=perf_models)
        assert set(out.finish_times_s) == {"md", "cfd", "hydro"}
        assert out.makespan_s == pytest.approx(
            max(out.finish_times_s.values())
        )
        assert not out.rejected

    def test_repartitioning_helps_turnaround(self, perf_models):
        """Re-spreading a finished job's power speeds the survivors."""
        dyn = simulate_cluster(jobs3(), MACHINE_W, repartition=True,
                               performance_models=perf_models)
        frozen = simulate_cluster(jobs3(), MACHINE_W, repartition=False,
                                  performance_models=perf_models)
        assert dyn.makespan_s <= frozen.makespan_s + 1e-9
        assert dyn.mean_turnaround_s() < frozen.mean_turnaround_s()

    def test_allocation_history_grows_on_completions(self, perf_models):
        out = simulate_cluster(jobs3(), MACHINE_W,
                               performance_models=perf_models)
        # initial split + one repartition per completion except the last
        assert len(out.allocations_over_time) == 3
        t_points = [t for t, _ in out.allocations_over_time]
        assert t_points == sorted(t_points)

    def test_machine_budget_respected_at_every_epoch(self, perf_models):
        out = simulate_cluster(jobs3(), MACHINE_W,
                               performance_models=perf_models)
        jobs = {j.name: j for j in jobs3()}
        for _, alloc in out.allocations_over_time:
            total = sum(
                w * jobs[name].n_sockets for name, w in alloc.items()
            )
            assert total <= MACHINE_W + 1e-6

    def test_rejected_job_reported(self, perf_models):
        starved = jobs3()
        out = simulate_cluster(starved, 330.0,
                               performance_models=perf_models)
        # Floors are 100 + 112 + 160 = 372 > 330: someone is rejected.
        assert out.rejected

    def test_more_power_never_slower(self, perf_models):
        small = simulate_cluster(jobs3(), 480.0,
                                 performance_models=perf_models)
        big = simulate_cluster(jobs3(), 900.0,
                               performance_models=perf_models)
        assert big.makespan_s <= small.makespan_s + 1e-9
