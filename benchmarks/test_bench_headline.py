"""Headline claims from the abstract and §6.3, recomputed over the sweep.

Paper: Static trails the LP by up to 74.9%; current runtimes (Conductor)
trail it by up to 41.1%; Conductor improves on Static by 6.7% on average
while the LP indicates 10.8% average potential.
"""

import numpy as np

from conftest import engage, improvements


def _all_results(sweeps):
    return [
        r
        for results in sweeps.values()
        for r in results
        if r.schedulable and r.feasible
    ]


def test_headline_regeneration(benchmark, sweeps):
    def compute():
        results = _all_results(sweeps)
        return {
            "max_lp_vs_static": max(r.lp_vs_static_pct for r in results),
            "max_lp_vs_conductor": max(r.lp_vs_conductor_pct for r in results),
            "avg_lp_vs_static": float(
                np.mean([r.lp_vs_static_pct for r in results])
            ),
            "avg_cond_vs_static": float(
                np.mean([r.conductor_vs_static_pct for r in results])
            ),
        }

    headline = benchmark(compute)

    # Shape requirements mirroring the paper's headline (74.9 / 41.1 /
    # 10.8 / 6.7): large static shortfall, substantial conductor shortfall,
    # both averages positive with LP > Conductor.
    assert headline["max_lp_vs_static"] > 45.0
    assert headline["max_lp_vs_conductor"] > 15.0
    assert headline["max_lp_vs_static"] > headline["max_lp_vs_conductor"]
    assert headline["avg_lp_vs_static"] > headline["avg_cond_vs_static"] > 0.0


def test_static_sufficient_in_places(benchmark, sweeps):
    """Paper §6.3: 'in some cases, Static is completely sufficient'."""
    engage(benchmark)
    small = [
        v
        for results in sweeps.values()
        for v in improvements(results, "lp_vs_static_pct")
        if v < 2.0
    ]
    assert small


def test_conductor_sometimes_matches_lp(benchmark, sweeps):
    """Paper: in some cases Conductor and the LP arrive at (near-)
    equivalent schedules."""
    engage(benchmark)
    close = [
        v
        for results in sweeps.values()
        for v in improvements(results, "lp_vs_conductor_pct")
        if abs(v) < 2.5
    ]
    assert close
