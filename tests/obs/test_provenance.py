"""Run provenance: config hashing and the manifest round trip."""

from __future__ import annotations

from repro.obs.provenance import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    collect_manifest,
    config_hash,
    read_manifest,
    write_manifest,
)


class TestConfigHash:
    def test_deterministic(self):
        cfg = {"benchmark": "comd", "ranks": 8, "caps": [30.0, 40.0]}
        assert config_hash(cfg) == config_hash(dict(cfg))

    def test_key_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})


class TestManifest:
    def test_collect_fills_environment_fields(self):
        manifest = collect_manifest({"x": 1}, seed=7, model_layer_version=2)
        assert manifest.schema == MANIFEST_SCHEMA_VERSION
        assert manifest.seed == 7
        assert manifest.model_layer_version == 2
        assert manifest.python_version
        assert manifest.platform

    def test_collect_is_deterministic(self):
        # No wall-clock field: two manifests of the same run are equal,
        # which is what lets saved artifacts be byte-compared.
        a = collect_manifest({"x": 1}, seed=7, model_layer_version=2)
        b = collect_manifest({"x": 1}, seed=7, model_layer_version=2)
        assert a == b

    def test_dict_roundtrip(self):
        manifest = collect_manifest({"x": 1}, seed=None, model_layer_version=None)
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_file_roundtrip(self, tmp_path):
        manifest = collect_manifest({"x": 1}, seed=3, model_layer_version=2)
        path = write_manifest(manifest, tmp_path / "results" / "manifest.json")
        assert read_manifest(path) == manifest
