"""Unit tests for Adagio slack reclamation."""

import numpy as np
import pytest

from repro.machine import Configuration, ConfigPoint, TaskKernel
from repro.runtime import SlackEstimator, slowest_fitting_point, task_key
from repro.simulator import TaskRecord, TaskRef


def record(rank, seq, start, duration, power=30.0, kernel=None):
    return TaskRecord(
        ref=TaskRef(rank, seq),
        iteration=0,
        label="",
        config=Configuration(2.6, 8),
        start_s=start,
        duration_s=duration,
        power_w=power,
        kernel=kernel or TaskKernel(cpu_seconds=duration),
    )


class TestTaskKey:
    def test_wraps_by_iteration(self):
        r = record(2, 7, 0.0, 1.0)
        assert task_key(r, tasks_per_iteration=3) == (2, 1)

    def test_invalid_tpi(self):
        with pytest.raises(ValueError):
            task_key(record(0, 0, 0, 1), 0)


class TestSlackEstimator:
    def test_slack_from_gap_to_next_task(self):
        est = SlackEstimator(tasks_per_iteration={0: 2, 1: 2})
        recs = [
            record(0, 0, 0.0, 1.0),   # gap of 0.5 before next
            record(0, 1, 1.5, 1.0),
            record(1, 0, 0.0, 2.0),   # no gap
            record(1, 1, 2.0, 0.5),   # ends at 2.5, barrier at 2.5
        ]
        est.update(recs)
        assert est.slack_s[(0, 0)] == pytest.approx(0.5)
        assert est.slack_s[(1, 0)] == pytest.approx(0.0)
        assert est.slack_s[(0, 1)] == pytest.approx(0.0)  # ends at barrier
        assert est.slack_s[(1, 1)] == pytest.approx(0.0)

    def test_smoothing(self):
        est = SlackEstimator(tasks_per_iteration={0: 1, 1: 1}, smoothing=0.5)
        # Rank 1 sets the barrier; rank 0's single task has 1.0s slack.
        est.update([record(0, 0, 0.0, 1.0), record(1, 0, 0.0, 2.0)])
        assert est.slack_s[(0, 0)] == pytest.approx(1.0)
        # Next iteration the slack observed is 3.0 -> smoothed halfway.
        est.update([record(0, 1, 0.0, 1.0), record(1, 1, 0.0, 4.0)])
        assert est.slack_s[(0, 0)] == pytest.approx(0.5 * 3.0 + 0.5 * 1.0)

    def test_empty_update_noop(self):
        est = SlackEstimator(tasks_per_iteration={})
        est.update([])
        assert est.slack_s == {}

    def test_noise_perturbs_but_stays_nonnegative(self):
        rng = np.random.default_rng(0)
        est = SlackEstimator(tasks_per_iteration={0: 1})
        est.update([record(0, 0, 0.0, 1.0)], rng=rng, noise=0.5)
        assert est.slack_s[(0, 0)] >= 0.0

    def test_allowed_duration(self):
        est = SlackEstimator(tasks_per_iteration={0: 1})
        assert est.allowed_duration((0, 0)) is None
        est.update([record(0, 0, 0.0, 1.0), record(1, 0, 0.0, 2.0)])
        # hmm rank 1 not in tpi map: defaults fine
        allowed = est.allowed_duration((0, 0), safety=0.9)
        assert allowed == pytest.approx(1.0 + 0.9 * 1.0)

    def test_slack_estimate_accessor(self):
        est = SlackEstimator(tasks_per_iteration={0: 1})
        assert est.slack_estimate((0, 0)) is None
        est.update([record(0, 0, 0.0, 1.0), record(1, 0, 0.0, 1.5)])
        assert est.slack_estimate((0, 0)) == pytest.approx(0.5)


class TestSlowestFittingPoint:
    def frontier(self):
        mk = lambda p, d: ConfigPoint(Configuration(2.0, 4), d, p)  # noqa
        return [mk(10, 4.0), mk(20, 2.0), mk(30, 1.0)]

    def test_picks_lowest_power_that_fits(self):
        front = self.frontier()
        assert slowest_fitting_point(front, 5.0).power_w == 10
        assert slowest_fitting_point(front, 2.5).power_w == 20
        assert slowest_fitting_point(front, 1.5).power_w == 30

    def test_critical_task_gets_fastest(self):
        front = self.frontier()
        assert slowest_fitting_point(front, 0.5).power_w == 30

    def test_empty_frontier(self):
        with pytest.raises(ValueError):
            slowest_fitting_point([], 1.0)
