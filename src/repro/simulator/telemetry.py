"""Power telemetry: instantaneous job power timelines and cap verification.

The paper verifies LP/ILP schedules by replaying them and checking that
the job-level power constraint holds at every instant.  This module turns
a :class:`SimulationResult` into piecewise-constant per-socket and job
power timelines, under either slack-power convention:

* ``slack_mode="task"`` — a rank's power between one task's start and the
  next task's start is the task's power (the LP formulation's assumption:
  slack power equals the associated task power);
* ``slack_mode="idle"`` — the socket drops to its idle power the moment a
  task finishes (the flow ILP's convention, and closer to hardware).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.power import SocketPowerModel
from .engine import SimulationResult

__all__ = ["PowerTimeline", "job_power_timeline", "job_power_timelines_sweep",
           "rank_power_timeline", "verify_power_cap"]


@dataclass(frozen=True)
class PowerTimeline:
    """Piecewise-constant power: ``power[i]`` holds on [times[i], times[i+1]).

    ``times`` has one more entry than ``power`` (the final entry closes the
    last segment at the makespan).
    """

    times: np.ndarray
    power: np.ndarray

    def __post_init__(self) -> None:
        if len(self.times) != len(self.power) + 1:
            raise ValueError("times must have exactly one more entry than power")

    def max_power(self) -> float:
        return float(self.power.max()) if len(self.power) else 0.0

    def average_power(self) -> float:
        """Time-weighted mean power over the whole timeline."""
        widths = np.diff(self.times)
        total = widths.sum()
        if total <= 0:
            return 0.0
        return float((self.power * widths).sum() / total)

    def energy_j(self) -> float:
        return float((self.power * np.diff(self.times)).sum())

    def power_at(self, t: float) -> float:
        """Power at an instant (right-continuous)."""
        if t < self.times[0] or t >= self.times[-1]:
            return 0.0
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        return float(self.power[min(idx, len(self.power) - 1)])


def job_power_timeline(
    result: SimulationResult,
    power_models: list[SocketPowerModel],
    slack_mode: str = "task",
    reference: bool = False,
) -> PowerTimeline:
    """Aggregate instantaneous job power across all sockets.

    Built from per-rank step events: at each change point the socket's
    power steps to the new level; summing deltas over a merged event
    list yields the job timeline in O(E log E).

    The default path builds the per-rank step events with array ops;
    ``reference=True`` runs the original per-event Python accumulation.
    Both produce bit-identical timelines (the tests assert this): the
    delta merge buckets by exact event time, and within a bucket the
    deltas are added in the same insertion order either way.
    """
    if slack_mode not in ("task", "idle"):
        raise ValueError(f"slack_mode must be 'task' or 'idle', got {slack_mode!r}")
    if len(power_models) != result.n_ranks:
        raise ValueError("one power model per rank required")
    if reference:
        return _job_power_timeline_reference(result, power_models, slack_mode)

    end = result.makespan_s
    time_parts: list[np.ndarray] = []
    delta_parts: list[np.ndarray] = []
    for rank, recs in enumerate(result.records_by_rank()):
        idle = power_models[rank].idle_power()
        n = len(recs)
        # Socket is at idle power from 0 to makespan as a baseline; each
        # task contributes (power - idle) between its start and stop.
        times = np.empty(2 * n + 2)
        deltas = np.empty(2 * n + 2)
        times[0] = 0.0
        times[1] = end
        deltas[0] = idle
        deltas[1] = -idle
        if n:
            starts_raw = np.array([r.start_s for r in recs])
            order = np.argsort(starts_raw, kind="stable")
            starts = starts_raw[order]
            durations = np.array([r.duration_s for r in recs])[order]
            powers = np.array([r.power_w for r in recs])[order]
            ends = starts + durations
            if slack_mode == "task":
                # Task power holds until the next task starts (or makespan).
                stop = np.empty(n)
                stop[:-1] = starts[1:]
                stop[-1] = end
                stop = np.maximum(stop, ends)  # overlap guard
            else:
                stop = np.minimum(ends, end)
            start = np.minimum(starts, stop)
            delta = powers - idle
            times[2::2] = start
            times[3::2] = stop
            deltas[2::2] = delta
            deltas[3::2] = -delta
        time_parts.append(times)
        delta_parts.append(deltas)

    if not time_parts:
        return PowerTimeline(times=np.array([0.0, 0.0]), power=np.array([]))

    times_raw = np.concatenate(time_parts)
    deltas = np.concatenate(delta_parts)
    return _merge_step_events(times_raw, deltas)


def job_power_timelines_sweep(
    starts: list[np.ndarray],
    durations: list[np.ndarray],
    powers: list[np.ndarray],
    makespans: np.ndarray,
    power_models: list[SocketPowerModel],
    slack_mode: str = "task",
) -> list[PowerTimeline]:
    """Job power timelines for a whole sweep, one column per sweep point.

    ``starts[rank]`` / ``durations[rank]`` / ``powers[rank]`` are
    ``[n_tasks, n_points]`` arrays in task-sequence order (a rank's task
    starts are nondecreasing, so sequence order is exactly the
    start-time order :func:`job_power_timeline` sorts into), and
    ``makespans[c]`` closes point ``c``'s timeline.  The per-rank step
    events are built for every point with one broadcast per rank; only
    the coincident-time merge runs per point.  Each returned timeline is
    bit-identical to :func:`job_power_timeline` on that point's
    :class:`~repro.simulator.engine.SimulationResult` (the tests assert
    this).
    """
    if slack_mode not in ("task", "idle"):
        raise ValueError(f"slack_mode must be 'task' or 'idle', got {slack_mode!r}")
    if len(power_models) != len(starts):
        raise ValueError("one power model per rank required")
    n_points = len(makespans)
    end = np.asarray(makespans)
    time_parts: list[np.ndarray] = []
    delta_parts: list[np.ndarray] = []
    for rank, rank_starts in enumerate(starts):
        idle = power_models[rank].idle_power()
        n = len(rank_starts)
        times = np.empty((2 * n + 2, n_points))
        deltas = np.empty((2 * n + 2, n_points))
        times[0] = 0.0
        times[1] = end
        deltas[0] = idle
        deltas[1] = -idle
        if n:
            ends = rank_starts + durations[rank]
            if slack_mode == "task":
                # Task power holds until the next task starts (or makespan).
                stop = np.empty((n, n_points))
                stop[:-1] = rank_starts[1:]
                stop[-1] = end
                stop = np.maximum(stop, ends)  # overlap guard
            else:
                stop = np.minimum(ends, end)
            start = np.minimum(rank_starts, stop)
            delta = powers[rank] - idle
            times[2::2] = start
            times[3::2] = stop
            deltas[2::2] = delta
            deltas[3::2] = -delta
        time_parts.append(times)
        delta_parts.append(deltas)

    if not time_parts:
        empty = PowerTimeline(times=np.array([0.0, 0.0]), power=np.array([]))
        return [empty] * n_points

    times_raw = np.concatenate(time_parts)
    deltas = np.concatenate(delta_parts)
    return [
        _merge_step_events(times_raw[:, c], deltas[:, c])
        for c in range(n_points)
    ]


def _merge_step_events(times_raw: np.ndarray, deltas: np.ndarray) -> PowerTimeline:
    """Merge coincident event times, then cumulative-sum the deltas."""
    uniq, inverse = np.unique(times_raw, return_inverse=True)
    merged = np.zeros(len(uniq))
    np.add.at(merged, inverse, deltas)
    levels = np.cumsum(merged)
    # Drop the trailing level (beyond the last breakpoint it is ~0).
    return PowerTimeline(times=uniq, power=levels[:-1])


def _job_power_timeline_reference(
    result: SimulationResult,
    power_models: list[SocketPowerModel],
    slack_mode: str,
) -> PowerTimeline:
    """Per-event reference accumulation (the pre-vectorization oracle)."""
    end = result.makespan_s
    events: list[tuple[float, float]] = []  # (time, delta watts)
    for rank, recs in enumerate(result.records_by_rank()):
        idle = power_models[rank].idle_power()
        # Socket is at idle power from 0 to makespan as a baseline...
        events.append((0.0, idle))
        events.append((end, -idle))
        recs = sorted(recs, key=lambda r: r.start_s)
        for i, rec in enumerate(recs):
            if slack_mode == "task":
                # Task power holds until the next task starts (or makespan).
                stop = recs[i + 1].start_s if i + 1 < len(recs) else end
                stop = max(stop, rec.end_s)  # overlap guard
            else:
                stop = min(rec.end_s, end)
            start = min(rec.start_s, stop)
            events.append((start, rec.power_w - idle))
            events.append((stop, -(rec.power_w - idle)))

    if not events:
        return PowerTimeline(times=np.array([0.0, 0.0]), power=np.array([]))

    events.sort(key=lambda e: e[0])
    return _merge_step_events(
        np.array([e[0] for e in events]), np.array([e[1] for e in events])
    )


def rank_power_timeline(
    result: SimulationResult,
    power_models: list[SocketPowerModel],
    rank: int,
    slack_mode: str = "task",
) -> PowerTimeline:
    """Instantaneous power of a single socket (same conventions as the
    job timeline)."""
    if not (0 <= rank < result.n_ranks):
        raise ValueError(f"rank {rank} out of range [0, {result.n_ranks})")
    # Carry the run's MPI/collective counts through: the sub-result is the
    # same job viewed through one rank's records, not a smaller job.
    sub = SimulationResult(
        app_name=result.app_name,
        makespan_s=result.makespan_s,
        records=[r for r in result.records if r.ref.rank == rank],
        n_ranks=result.n_ranks,
        mpi_call_count=result.mpi_call_count,
        collective_count=result.collective_count,
    )
    # Reuse the job aggregation with only this rank's records; other
    # sockets contribute their idle floor, which we subtract back out.
    timeline = job_power_timeline(sub, power_models, slack_mode)
    other_idle = sum(
        pm.idle_power() for i, pm in enumerate(power_models) if i != rank
    )
    return PowerTimeline(
        times=timeline.times, power=timeline.power - other_idle
    )


def verify_power_cap(
    result: SimulationResult,
    power_models: list[SocketPowerModel],
    cap_w: float,
    slack_mode: str = "task",
    rel_tol: float = 1e-6,
) -> tuple[bool, float]:
    """Check the job-level cap at every instant; returns (ok, max power)."""
    timeline = job_power_timeline(result, power_models, slack_mode)
    peak = timeline.max_power()
    return peak <= cap_w * (1.0 + rel_tol), peak
