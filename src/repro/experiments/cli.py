"""Command-line entry point: regenerate any paper exhibit.

Usage (installed as ``repro-experiments``, with ``repro-exp`` as a short
alias)::

    repro-experiments list
    repro-experiments fig1 fig8 fig9 ... table3 overheads headline
    repro-experiments all [--ranks 32]
    repro-experiments all --quick        # 8 ranks, small fig8 sweep

    repro-exp run --quick --trace trace.json   # one traced comparison
    repro-exp audit [exhibit ...]              # solver audit table
    repro-exp validate-trace trace.json        # schema-check a trace

    repro-exp run --policies static,conductor,adagio,lp --cap 50
    repro-exp sweep --policies static,adagio,lp --caps 30,50,70
    repro-exp run --scenario my_scenario.json  # spec from a JSON file

``--quick`` shrinks rank counts and sweep densities for smoke runs; the
full defaults match the measurement protocol recorded in EXPERIMENTS.md.

N-way scenarios (see ``docs/scenarios.md``): ``--policies`` names any
policies from the scenario registry (``static``, ``conductor``,
``adagio``, ``selection-only``, ``lp``, ``flow-ilp``), ``--scenario``
loads a full declarative spec, and ``--baseline`` picks the policy the
improvement columns compare against.  Without either flag, ``run`` keeps
its historical three-way Static/Conductor/LP output.

Observability (see ``docs/observability.md``): ``--trace FILE`` /
``--trace-dir DIR`` export a Chrome trace-event JSON (Perfetto-loadable)
plus a raw ``.jsonl`` of every event the run emitted; ``--timings`` and
``--timings-json`` additionally surface the solver audit ledger; and
``--save DIR`` stamps a ``manifest.json`` of run provenance next to the
saved artifacts.

Operational telemetry (PR 8): ``--metrics FILE`` / ``--metrics-prom
FILE`` export the typed metrics snapshot as JSON / Prometheus text (and
embed its deterministic subset in saved manifests); ``--progress`` /
``--quiet`` / ``--progress-file FILE`` control the live sweep heartbeat
(TTY-auto by default); ``--profile FILE`` aggregates per-cell cProfile
data into a top-N cumulative-time table; and ``repro-exp report
--journal FILE [--manifest FILE] [--metrics FILE]`` renders a post-hoc
sweep report from the journal, manifest, and metrics artifacts alone.

Service mode (PR 9, see ``docs/execution.md`` "Running as a service")::

    repro-exp submit --queue q/ --policies static,lp --caps 30,50,70
    repro-exp serve  --queue q/ --workers 4 --backend socket \
                     --journal q/sweep.jsonl --drain
    repro-exp status --queue q/ --json
    repro-exp worker --connect tcp://host:7077 --token SECRET

``submit`` enqueues one job per (spec, cap) cell into a persistent,
deduplicating :class:`~repro.service.queue.JobQueue`; ``serve`` drains
it onto the transport picked by ``--backend`` (``process``, ``socket``
— a spawned local worker fleet — or ``inline``), journaling results so
CLI sweeps resume from them byte-identically; ``status`` prints the
schema-versioned queue status (``--json`` for the validated document);
``worker`` runs one externally managed fleet worker.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import ExitStack, contextmanager
from pathlib import Path

from ..core.model import MODEL_LAYER_VERSION
from ..exec.backends import make_backend
from ..exec.faults import FaultInjector
from ..exec.options import (
    ExecutionOptions,
    get_execution_options,
    set_execution_options,
)
from ..exec.parallel import ParallelExecutionError
from ..exec.timing import Telemetry, use_telemetry
from ..obs.audit import SolveAudit, use_audit
from ..obs.export import export_chrome_trace, export_jsonl, validate_trace_file
from ..obs.metrics import Metrics, prometheus_text, use_metrics
from ..obs.profiling import ProfileCollector, use_profile
from ..obs.progress import ProgressReporter, default_progress_stream
from ..obs.provenance import collect_manifest, write_manifest
from ..obs.recorder import TraceRecorder, use_recorder
from ..scenarios.registry import default_registry
from ..scenarios.run import ScenarioCell, run_scenarios
from ..scenarios.spec import PolicySpec, ScenarioSpec
from . import figures, tables
from .runner import (
    DEFAULT_CAPS_W,
    ComparisonResult,
    ExperimentConfig,
    improvement_pct,
    run_comparison,
)

__all__ = ["main", "EXHIBITS"]


def _sensitivity(quick: bool):
    from .sensitivity import sensitivity_analysis

    if quick:
        return sensitivity_analysis(n_ranks=4, exponents=(2.0, 2.8),
                                    sigmas=(0.0, 0.08))
    return sensitivity_analysis()


def _fig8(quick: bool):
    if quick:
        return figures.figure8_flow_vs_fixed(n_caps=12, time_limit_s=20.0)
    return figures.figure8_flow_vs_fixed()


EXHIBITS = {
    "fig1": lambda q, n: figures.figure1_pareto_frontier(),
    "fig8": lambda q, n: _fig8(q),
    "fig9": lambda q, n: figures.figure9_lp_vs_static(n),
    "fig10": lambda q, n: figures.figure10_lp_vs_conductor(n),
    "fig11": lambda q, n: figures.figure11_comd(n),
    "fig12": lambda q, n: figures.figure12_comd_task_scatter(
        n_ranks=n, iterations=4 if q else 8
    ),
    "fig13": lambda q, n: figures.figure13_bt(n),
    "fig14": lambda q, n: figures.figure14_sp(n),
    "fig15": lambda q, n: figures.figure15_lulesh(n),
    "table3": lambda q, n: tables.table3_lulesh_task_characteristics(n_ranks=n),
    "overheads": lambda q, n: tables.overheads_summary(),
    "energy": lambda q, n: tables.energy_comparison(n_ranks=min(n, 8)),
    "frontier": lambda q, n: tables.frontier_table(n_ranks=min(n, 8), quick=q),
    "mincap": lambda q, n: tables.minimum_cap_table(
        n_ranks=min(n, 8), iterations=2 if q else 3
    ),
    "sensitivity": lambda q, n: _sensitivity(q),
    "headline": lambda q, n: figures.headline_summary(n),
    "powershift": lambda q, n: figures.powershift_figure(
        n_ranks=min(n, 8), quick=q
    ),
}

def _run_config(args) -> ExperimentConfig:
    """The comparison config for ``run``/``audit`` from the CLI flags.

    ``--quick`` shrinks the comparison to 4 ranks and a 12-iteration run
    (steady window 6) — small enough for CI smoke, large enough that the
    Conductor exits exploration and reallocates at least once.
    """
    if args.quick:
        ranks = 4 if args.ranks == 32 else args.ranks
        return ExperimentConfig(
            benchmark=args.benchmark, n_ranks=ranks,
            run_iterations=12, lp_iterations=2, steady_window=6,
        )
    return ExperimentConfig(benchmark=args.benchmark, n_ranks=args.ranks)


def _scenario_protocol(args) -> dict:
    """Measurement-protocol fields of a scenario built from CLI flags.

    Mirrors :func:`_run_config`'s ``--quick`` shrink so the N-way path
    and the legacy three-way path measure the same windows.
    """
    if args.quick:
        ranks = 4 if args.ranks == 32 else args.ranks
        return {
            "n_ranks": ranks, "run_iterations": 12, "lp_iterations": 2,
            "steady_window": 6,
        }
    return {"n_ranks": args.ranks}


def _scenario_spec(args, caps: tuple[float, ...] | None, parser) -> ScenarioSpec:
    """The scenario to run, from ``--scenario FILE`` or ``--policies``.

    A spec file carries everything — ``caps`` (when not None) overrides
    its grid, which is how ``run`` pins a file to one ``--cap`` cell and
    ``sweep --caps`` re-grids it; ``--policies`` builds a spec around the
    CLI's benchmark and protocol flags.  Policy names are validated
    against the registry up front so typos fail before any simulation.
    """
    if args.scenario and args.policies:
        parser.error("--scenario and --policies are mutually exclusive")
    if args.scenario:
        try:
            spec = ScenarioSpec.from_json(Path(args.scenario).read_text())
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"--scenario {args.scenario}: {exc}")
        if caps is not None:
            doc = spec.to_doc()
            doc["caps_per_socket_w"] = [float(c) for c in caps]
            spec = ScenarioSpec.from_doc(doc)
    else:
        if caps is None:
            caps = tuple(DEFAULT_CAPS_W)
        names = [p.strip() for p in args.policies.split(",") if p.strip()]
        if not names:
            parser.error("--policies needs at least one policy name")
        registry = default_registry()
        for name in names:
            if name not in registry:
                parser.error(
                    f"unknown policy {name!r}; registered: {registry.names()}"
                )
        spec = ScenarioSpec(
            benchmark=args.benchmark,
            caps_per_socket_w=caps,
            policies=tuple(PolicySpec(n) for n in names),
            **_scenario_protocol(args),
        )
    if args.node is not None:
        from ..machine.device import node_names

        if args.node not in node_names():
            parser.error(
                f"unknown node {args.node!r}; choose from {node_names()}"
            )
        doc = spec.to_doc()
        doc["node"] = args.node
        spec = ScenarioSpec.from_doc(doc)
    if args.baseline is not None and args.baseline not in spec.policy_labels():
        parser.error(
            f"--baseline {args.baseline!r} is not in the scenario; "
            f"policies: {spec.policy_labels()}"
        )
    return spec


def _parse_caps(text: str, parser) -> tuple[float, ...]:
    """Parse ``--caps 30,50,70`` into a cap grid."""
    try:
        caps = tuple(float(c) for c in text.split(",") if c.strip())
    except ValueError:
        parser.error(f"--caps must be comma-separated numbers, got {text!r}")
    if not caps:
        parser.error("--caps needs at least one cap")
    return caps


def _parse_quotas(items, parser) -> dict[str, int]:
    """Parse repeated ``--quota tenant=N`` flags into a quota map."""
    quotas: dict[str, int] = {}
    for item in items or ():
        name, sep, value = item.partition("=")
        try:
            quota = int(value)
        except ValueError:
            quota = -1
        if not sep or not name or quota < 0:
            parser.error(f"--quota must be TENANT=N (N >= 0), got {item!r}")
        quotas[name] = quota
    return quotas


def _scenario_cell_text(cell: ScenarioCell, baseline: str | None) -> str:
    """Human summary of one N-way scenario cell (the ``run`` subcommand).

    A cell whose computation failed outright (``--keep-going``) renders
    as a gap: every policy shows ``failed`` and the failure itself is
    itemized below the cell header.
    """
    width = max(len(n) for n in cell.outcomes)
    lines = [
        f"{cell.benchmark}: {cell.n_ranks} ranks at "
        f"{cell.cap_per_socket_w:g} W/socket ({cell.job_cap_w:g} W job cap)"
    ]
    if cell.failed:
        lines.append(
            f"  cell failed: {cell.failure.error_type} after "
            f"{cell.failure.attempts} attempt(s): {cell.failure.error_message}"
        )
    base_t = cell.outcomes[baseline].time_s if baseline else None
    for name, outcome in cell.outcomes.items():
        t = outcome.time_s
        text = f"{t:.4f} s/iter" if t is not None else (
            "failed" if cell.failed
            else "unschedulable" if not cell.schedulable else "infeasible"
        )
        notes = []
        if outcome.kind == "bound":
            notes.append("bound")
        reallocs = outcome.extra.get("reallocs")
        if reallocs is not None:
            notes.append(f"{reallocs} reallocations")
        if baseline and name != baseline:
            imp = improvement_pct(base_t, t)
            if imp is not None:
                notes.append(f"{imp:+.1f}% vs {baseline}")
        suffix = f"  ({', '.join(notes)})" if notes else ""
        lines.append(f"  {name.ljust(width)}  {text}{suffix}")
    return "\n".join(lines)


def _comparison_text(result: ComparisonResult) -> str:
    """Human summary of one comparison cell (the ``run`` subcommand)."""

    def fmt(value: float | None) -> str:
        return f"{value:.4f} s/iter" if value is not None else "unschedulable"

    lines = [
        f"{result.benchmark}: {result.n_ranks} ranks at "
        f"{result.cap_per_socket_w:g} W/socket ({result.job_cap_w:g} W job cap)",
        f"  static     {fmt(result.static_s)}",
        f"  conductor  {fmt(result.conductor_s)}"
        f"  ({result.conductor_reallocs} reallocations)",
        f"  lp bound   {fmt(result.lp_s)}",
    ]
    if result.lp_vs_static_pct is not None:
        lines.append(f"  lp improves on static by {result.lp_vs_static_pct:.1f}%")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "exhibits", nargs="*", default=["all"],
        help="exhibit names (see 'list'), 'all', or a subcommand: "
             "run, sweep, audit, bench, report, validate-trace, "
             "verify-results, submit, serve, status, worker",
    )
    parser.add_argument("--ranks", type=int, default=32,
                        help="MPI ranks / sockets (default 32, as in the paper)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for a fast smoke run")
    parser.add_argument("--benchmark", default="comd",
                        help="benchmark for the run/audit subcommands")
    parser.add_argument("--cap", type=float, default=50.0,
                        help="per-socket cap (W) for the run/audit subcommands")
    parser.add_argument("--policies", metavar="LIST", default=None,
                        help="comma-separated registry policy names for an "
                             "N-way run/sweep (e.g. static,conductor,adagio,lp)")
    parser.add_argument("--scenario", metavar="FILE", default=None,
                        help="declarative scenario spec (JSON) for run/sweep; "
                             "see docs/scenarios.md")
    parser.add_argument("--caps", metavar="LIST", default=None,
                        help="comma-separated per-socket caps (W) for the "
                             "sweep subcommand (default: the paper's grid)")
    parser.add_argument("--node", metavar="NAME", default=None,
                        help="typed-device node for an N-way run/sweep "
                             "(e.g. cpu-gpu, big-little; default: the "
                             "legacy homogeneous socket — docs/machine.md)")
    parser.add_argument("--baseline", metavar="POLICY", default=None,
                        help="policy the N-way improvement columns compare "
                             "against (default: the first policy)")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each exhibit's text to DIR/<name>.txt "
                             "plus a manifest.json of run provenance")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="also render figure exhibits to DIR/<name>.svg")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for sweep-shaped exhibits "
                             "(1 = serial, 0 = one per CPU core)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed solver cache directory "
                             "(warm entries skip LP solves and replays)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir: solve everything fresh")
    parser.add_argument("--keep-going", action="store_true",
                        help="complete an N-way sweep around failed cells: "
                             "render them as gaps, record them in the "
                             "manifest, exit 1 (see docs/execution.md)")
    parser.add_argument("--journal", metavar="FILE", default=None,
                        help="JSONL sweep journal: checkpoint every settled "
                             "cell; an interrupted sweep resumes from FILE "
                             "with byte-identical final output")
    parser.add_argument("--inject-faults", metavar="SPEC", default=None,
                        help="deterministic fault injection for chaos runs, "
                             "e.g. 'mode=raise,rate=0.3,seed=1' or "
                             "'mode=raise,match=cap=50' (docs/execution.md)")
    parser.add_argument("--task-retries", type=int, default=1,
                        help="retries per sweep task after its first attempt "
                             "(default 1; seeded exponential backoff)")
    parser.add_argument("--task-timeout", type=float, default=None, metavar="S",
                        help="per-task deadline in seconds, measured from "
                             "submission (default: none)")
    parser.add_argument("--batch-size", type=int, default=1, metavar="N",
                        help="sweep cells per worker dispatch (default 1; "
                             "> 1 amortizes per-task IPC overhead when "
                             "cells are cheap)")
    parser.add_argument("--emit-trajectory", action="store_true",
                        help="bench: also write a schema-versioned "
                             "BENCH_<date>_<sha>.json trajectory point "
                             "(see docs/performance.md)")
    parser.add_argument("--check-trajectory", action="store_true",
                        help="bench: gate the run against the best "
                             "historical point in benchmarks/trajectory/")
    parser.add_argument("--bench-full", action="store_true",
                        help="bench: run the whole benchmarks/ suite "
                             "instead of the CI-gated subset")
    parser.add_argument("--bench-json", metavar="FILE", default="fresh.json",
                        help="bench: pytest-benchmark JSON output path "
                             "(default fresh.json)")
    parser.add_argument("--trajectory-dir", metavar="DIR", default=None,
                        help="bench: where --emit-trajectory writes the "
                             "point (default: repo root; CI passes "
                             "benchmarks/trajectory)")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="write the full metrics snapshot (counters, "
                             "gauges, histograms) as JSON; its deterministic "
                             "subset is also embedded in saved manifests. "
                             "For the report subcommand: read this snapshot")
    parser.add_argument("--metrics-prom", metavar="FILE", default=None,
                        help="write the metrics snapshot as Prometheus text "
                             "exposition (docs/observability.md)")
    parser.add_argument("--progress", action="store_true",
                        help="force the live sweep progress line on stderr "
                             "even when it is not a TTY")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the live progress line entirely "
                             "(it is already off when stderr is not a TTY)")
    parser.add_argument("--progress-file", metavar="FILE", default=None,
                        help="append one JSON heartbeat per settled sweep "
                             "cell to FILE (out-of-band: wall-clock fields "
                             "allowed; never embedded in artifacts)")
    parser.add_argument("--profile", metavar="FILE", default=None,
                        help="run cProfile around every sweep cell and write "
                             "the merged top-N cumulative-time table to FILE")
    parser.add_argument("--manifest", metavar="FILE", default=None,
                        help="report: manifest.json to fold into the report")
    parser.add_argument("--top", type=int, default=5, metavar="N",
                        help="report: slowest-cell rows to show (default 5)")
    parser.add_argument("--timings", action="store_true",
                        help="print per-phase timings, cache counters, and "
                             "the solver audit table")
    parser.add_argument("--timings-json", metavar="FILE", default=None,
                        help="also write the timing telemetry (with the "
                             "solver audit ledger) as JSON")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="export a Chrome trace-event JSON (open in "
                             "Perfetto) plus FILE's .jsonl sibling")
    parser.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="like --trace, writing DIR/trace.json[l]")
    parser.add_argument("--backend", default="process",
                        choices=("process", "socket", "inline"),
                        help="task transport for parallel sweeps and serve: "
                             "process (default), socket (a spawned local "
                             "worker fleet), or inline (in-process)")
    parser.add_argument("--queue", metavar="DIR", default=None,
                        help="job-queue directory for the submit/serve/"
                             "status subcommands (docs/execution.md)")
    parser.add_argument("--tenant", default="default",
                        help="submit: tenant the jobs are accounted to "
                             "(default 'default')")
    parser.add_argument("--priority", type=int, default=0,
                        help="submit: job priority — higher drains first; "
                             "resubmitting can only raise it (default 0)")
    parser.add_argument("--quota", metavar="TENANT=N", action="append",
                        default=None,
                        help="submit/serve/status: per-tenant active-job "
                             "quota; repeatable")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="status: print the schema-versioned JSON status "
                             "document instead of the text rendering")
    parser.add_argument("--poll", type=float, default=1.0, metavar="S",
                        help="serve: seconds between queue polls while idle "
                             "(default 1)")
    parser.add_argument("--drain", action="store_true",
                        help="serve: one drain pass over the queue, then exit")
    parser.add_argument("--max-idle", type=float, default=None, metavar="S",
                        help="serve: exit after S seconds with nothing queued "
                             "(default: serve until interrupted)")
    parser.add_argument("--connect", metavar="ADDR", default=None,
                        help="worker: dispatcher socket to dial "
                             "(tcp://host:port or a UNIX socket path)")
    parser.add_argument("--token", default=None,
                        help="worker: shared fleet token for the handshake")
    parser.add_argument("--heartbeat", type=float, default=1.0, metavar="S",
                        help="worker: heartbeat interval (default 1)")
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    if args.task_retries < 0:
        parser.error(f"--task-retries must be >= 0, got {args.task_retries}")
    if args.batch_size < 1:
        parser.error(f"--batch-size must be >= 1, got {args.batch_size}")

    command = args.exhibits[0] if args.exhibits else None

    resilience_flags = args.keep_going or args.inject_faults or (
        # report *reads* a journal; serve *shares* one with CLI sweeps
        args.journal and command not in ("report", "serve")
    )
    if resilience_flags and command not in ("run", "sweep"):
        parser.error("--keep-going/--journal/--inject-faults only apply to "
                     "the run and sweep subcommands")
    if (args.progress or args.quiet or args.progress_file) and command not in (
        "run", "sweep", "serve"
    ):
        parser.error("--progress/--quiet/--progress-file only apply to "
                     "the run, sweep, and serve subcommands")
    if args.node and command not in ("run", "sweep", "submit"):
        parser.error("--node only applies to the run, sweep, and submit "
                     "subcommands")
    faults = None
    if args.inject_faults:
        try:
            faults = FaultInjector.from_string(args.inject_faults)
        except ValueError as exc:
            parser.error(f"--inject-faults: {exc}")

    if command == "list":
        for name in EXHIBITS:
            print(name)
        return 0

    if command == "report":
        # Pure artifact rendering: no computation, no execution options.
        if len(args.exhibits) > 1:
            parser.error("report takes no positional arguments; "
                         "use --journal/--manifest/--metrics")
        if not args.journal:
            parser.error("report needs --journal FILE")
        from .sweep_report import render_sweep_report

        try:
            text = render_sweep_report(
                args.journal,
                manifest_path=args.manifest,
                metrics_path=args.metrics,
                top=args.top,
            )
        except (OSError, ValueError) as exc:
            print(f"error: report: {exc}", file=sys.stderr)
            return 1
        print(text)
        return 0

    if command == "worker":
        # One externally managed fleet worker: dial the dispatcher and
        # run tasks until told to shut down (docs/execution.md).
        if not args.connect or not args.token:
            parser.error("worker needs --connect ADDR and --token TOKEN")
        from ..service import run_worker

        return run_worker(args.connect, args.token,
                          heartbeat_s=args.heartbeat)

    if command == "status":
        # Pure queue introspection: no computation, no execution options.
        if not args.queue:
            parser.error("status needs --queue DIR")
        from ..service import JobQueue, build_status_doc, render_status_text

        queue = JobQueue(args.queue, quotas=_parse_quotas(args.quota, parser))
        doc = build_status_doc(queue)
        if args.as_json:
            print(json.dumps(doc, indent=1, sort_keys=True))
        else:
            print(render_status_text(doc))
        return 0

    if command == "submit":
        if not args.queue:
            parser.error("submit needs --queue DIR")
        if not (args.policies or args.scenario):
            parser.error("submit needs --policies or --scenario")
        from ..service import JobQueue, QuotaExceeded

        caps = _parse_caps(args.caps, parser) if args.caps else None
        spec = _scenario_spec(args, caps, parser)
        queue = JobQueue(args.queue, quotas=_parse_quotas(args.quota, parser))
        try:
            receipt = queue.submit_cells(
                spec, tenant=args.tenant, priority=args.priority
            )
        except QuotaExceeded as exc:
            print(f"error: submit: {exc}", file=sys.stderr)
            return 1
        print(f"[submit (spec {spec.spec_hash()[:12]}): "
              f"{receipt.submitted} new, {receipt.deduped} deduped, "
              f"{receipt.requeued} requeued; queue depth {queue.depth()}]")
        return 0

    if command == "validate-trace":
        if len(args.exhibits) < 2:
            parser.error("validate-trace needs a trace file")
        rc = 0
        for path in args.exhibits[1:]:
            errors = validate_trace_file(path)
            if errors:
                rc = 1
                for err in errors:
                    print(f"{path}: {err}", file=sys.stderr)
                print(f"{path}: INVALID ({len(errors)} error(s))")
            else:
                print(f"{path}: OK")
        return rc

    set_execution_options(ExecutionOptions(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        task_timeout_s=args.task_timeout,
        task_retries=args.task_retries,
        task_batch_size=args.batch_size,
        task_backend=args.backend,
    ))

    telemetry = Telemetry()
    recorder = (
        TraceRecorder() if (args.trace or args.trace_dir) else None
    )
    audit = (
        SolveAudit()
        if (args.timings or args.timings_json or command in ("run", "audit"))
        else None
    )
    metrics = Metrics() if (args.metrics or args.metrics_prom) else None
    profile = ProfileCollector() if args.profile else None

    @contextmanager
    def observe():
        """Activate every requested observability sink for a block."""
        with ExitStack() as stack:
            stack.enter_context(use_telemetry(telemetry))
            if recorder is not None:
                stack.enter_context(use_recorder(recorder))
            if audit is not None:
                stack.enter_context(use_audit(audit))
            if metrics is not None:
                stack.enter_context(use_metrics(metrics))
            if profile is not None:
                stack.enter_context(use_profile(profile))
            yield

    def export_traces() -> None:
        if recorder is None:
            return
        events = recorder.snapshot()
        targets = []
        if args.trace:
            targets.append(Path(args.trace))
        if args.trace_dir:
            targets.append(Path(args.trace_dir) / "trace.json")
        for target in targets:
            export_chrome_trace(events, target)
            export_jsonl(events, target.with_suffix(".jsonl"))
            print(f"[trace: {len(events)} events -> {target}]")
        if recorder.dropped:
            print(f"[trace: {recorder.dropped} events dropped at capacity]",
                  file=sys.stderr)

    def emit_timings() -> None:
        if args.timings:
            print(telemetry.summary())
            if audit is not None:
                print()
                print(audit.table())
        if args.timings_json:
            doc = telemetry.to_dict()
            if audit is not None:
                doc["solve_audit"] = audit.to_dicts()
            out = Path(args.timings_json)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(doc, indent=1) + "\n")

    def export_metrics() -> None:
        if metrics is None:
            return
        if args.metrics:
            out = Path(args.metrics)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(metrics.to_json() + "\n")
            print(f"[metrics -> {out}]")
        if args.metrics_prom:
            out = Path(args.metrics_prom)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(prometheus_text(metrics))
            print(f"[metrics (prometheus) -> {out}]")

    def export_profile() -> None:
        if profile is None:
            return
        out = Path(args.profile)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(profile.table() + "\n")
        print(f"[profile: {profile.blocks} cell(s) -> {out}]")

    def export_obs() -> None:
        """Flush every requested observability artifact, in one place."""
        export_traces()
        export_metrics()
        export_profile()
        emit_timings()

    def metrics_doc() -> dict | None:
        """The manifest-safe (deterministic-only) metrics snapshot."""
        return (
            metrics.to_dict(deterministic_only=True)
            if metrics is not None else None
        )

    def save_manifest(
        save_dir: Path,
        config: object,
        seed: int | None,
        scenario: dict | None = None,
        failures: list[dict] | None = None,
    ) -> None:
        manifest = collect_manifest(
            config, seed=seed, model_layer_version=MODEL_LAYER_VERSION,
            scenario=scenario, failures=failures, metrics=metrics_doc(),
        )
        write_manifest(manifest, save_dir / "manifest.json")

    if command == "serve":
        if not args.queue:
            parser.error("serve needs --queue DIR")
        from ..service import FleetDispatcher, JobQueue

        queue = JobQueue(args.queue, quotas=_parse_quotas(args.quota, parser))
        backend = None if args.backend == "process" else make_backend(
            args.backend
        )
        progress = None
        progress_stream = default_progress_stream(args.progress, args.quiet)
        if progress_stream is not None or args.progress_file:
            progress = ProgressReporter(
                total=queue.depth(),
                label="serve",
                stream=progress_stream,
                jsonl_path=args.progress_file,
                telemetry=telemetry,
                depth_fn=queue.depth,
            )
        dispatcher = FleetDispatcher(
            queue,
            backend=backend,
            workers=args.workers,
            cache=get_execution_options().make_cache(),
            journal=args.journal,
            timeout_s=args.task_timeout,
            retries=args.task_retries,
            progress=progress,
        )
        t0 = time.time()
        totals = None
        try:
            with observe():
                totals = dispatcher.serve(
                    poll_s=args.poll,
                    max_idle_s=args.max_idle,
                    drain_once=args.drain,
                )
        except KeyboardInterrupt:
            print("[serve: interrupted]", file=sys.stderr)
        finally:
            if backend is not None:
                backend.shutdown()
            if progress is not None:
                progress.finish()
        export_obs()
        if totals is None:
            return 130
        print(f"[serve: {totals['claimed']} job(s) claimed — "
              f"{totals['computed']} computed, {totals['resumed']} resumed "
              f"from the journal, {totals['failed']} failed — in "
              f"{time.time() - t0:.1f}s]")
        return 1 if totals["failed"] else 0

    if command in ("run", "sweep"):
        if len(args.exhibits) > 1:
            parser.error(f"{command} takes no positional arguments; "
                         "use --benchmark/--policies/--scenario")
        n_way = bool(args.policies or args.scenario)
        if command == "sweep" and not n_way:
            args.policies = "static,conductor,lp"
            n_way = True
        if resilience_flags and not n_way:
            parser.error("--keep-going/--journal/--inject-faults require an "
                         "N-way run (--policies or --scenario)")
        if args.node and not n_way:
            parser.error("--node requires an N-way run "
                         "(--policies or --scenario)")
        if not n_way:
            # Historical three-way output (byte-stable for CI greps).
            cfg = _run_config(args)
            t0 = time.time()
            with observe():
                result = run_comparison(cfg, args.cap)
            text = _comparison_text(result)
            print(text)
            print(f"[run finished in {time.time() - t0:.1f}s]")
            if args.save:
                save_dir = Path(args.save)
                save_dir.mkdir(parents=True, exist_ok=True)
                (save_dir / "run.txt").write_text(text + "\n")
                save_manifest(
                    save_dir,
                    {"command": "run", "cap_per_socket_w": args.cap,
                     "config": cfg.cache_document()},
                    cfg.seed,
                )
            export_obs()
            return 0

        if command == "run":
            caps = (args.cap,)
        else:
            caps = _parse_caps(args.caps, parser) if args.caps else None
        spec = _scenario_spec(args, caps, parser)
        progress = None
        progress_stream = default_progress_stream(args.progress, args.quiet)
        if progress_stream is not None or args.progress_file:
            progress = ProgressReporter(
                total=len(spec.caps_per_socket_w),
                label=f"{command}:{spec.benchmark}",
                stream=progress_stream,
                jsonl_path=args.progress_file,
                telemetry=telemetry,
            )
        t0 = time.time()
        try:
            with observe():
                result = run_scenarios(
                    spec,
                    keep_going=args.keep_going,
                    journal=args.journal,
                    faults=faults,
                    progress=progress,
                )
        except ParallelExecutionError as exc:
            if progress is not None:
                progress.finish()
            # Without --keep-going a failed cell aborts the sweep; the
            # journal (when given) still holds every settled cell, so a
            # rerun resumes instead of recomputing.
            print(f"error: {exc}", file=sys.stderr)
            if args.journal:
                print(f"[journal {args.journal} keeps completed cells; "
                      "rerun to resume]", file=sys.stderr)
            export_obs()
            return 1
        if progress is not None:
            progress.finish()
        if command == "run":
            text = _scenario_cell_text(result.cells[0], args.baseline)
        else:
            fig = figures.scenario_sweep_figure(result, baseline=args.baseline)
            summary = tables.scenario_summary(result, baseline=args.baseline)
            text = fig.render() + "\n\n" + summary.render()
        print(text)
        print(f"[{command} ({len(spec.policies)}-way, spec "
              f"{spec.spec_hash()[:12]}) finished in {time.time() - t0:.1f}s]")
        failures = result.failure_docs()
        if args.save:
            save_dir = Path(args.save)
            save_dir.mkdir(parents=True, exist_ok=True)
            (save_dir / f"{command}.txt").write_text(text + "\n")
            save_manifest(
                save_dir,
                {"command": command, "scenario": spec.to_doc()},
                spec.seed,
                scenario=spec.to_doc(),
                failures=failures or None,
            )
        export_obs()
        if failures:
            print(f"[keep-going: {len(failures)} of {len(result.cells)} "
                  "cell(s) failed]", file=sys.stderr)
            return 1
        return 0

    if command == "bench":
        # The measured perf surface: run the benchmark harness and
        # (optionally) stamp/gate the perf trajectory.  Everything runs
        # as subprocesses from the checkout so the harness measures the
        # exact environment CI does.
        import subprocess

        bench_dir = Path.cwd() / "benchmarks"
        if not (bench_dir / "trajectory.py").exists():
            parser.error("bench must run from the repository root "
                         "(benchmarks/trajectory.py not found)")
        if args.bench_full:
            targets = ["benchmarks"]
        else:
            # The CI-gated subset (mirrors .github/workflows/ci.yml).
            targets = [
                "benchmarks/test_bench_fig1_pareto.py",
                "benchmarks/test_bench_lp_scaling.py",
                "benchmarks/test_bench_sweep_parametric.py",
                "benchmarks/test_bench_obs_overhead.py",
                "benchmarks/test_bench_metrics_overhead.py",
            ]
        rc = subprocess.call([
            sys.executable, "-m", "pytest", *targets,
            "--benchmark-only", f"--benchmark-json={args.bench_json}", "-q",
        ])
        if rc != 0:
            return rc
        if args.emit_trajectory:
            cmd = [sys.executable, "benchmarks/trajectory.py", "emit",
                   args.bench_json]
            if args.trajectory_dir:
                cmd += ["--out-dir", args.trajectory_dir]
            rc = subprocess.call(cmd)
            if rc != 0:
                return rc
        if args.check_trajectory:
            rc = subprocess.call([
                sys.executable, "benchmarks/trajectory.py", "check",
                args.bench_json,
            ])
            if rc != 0:
                return rc
        return 0

    if command == "audit":
        names = args.exhibits[1:]
        unknown = [n for n in names if n not in EXHIBITS]
        if unknown:
            parser.error(f"unknown exhibits: {unknown}; try 'list'")
        ranks = 8 if args.quick and args.ranks == 32 else args.ranks
        with observe():
            if names:
                for name in names:
                    EXHIBITS[name](args.quick, ranks)
            else:
                run_comparison(_run_config(args), args.cap)
        print(audit.table())
        export_obs()
        return 0

    if command == "verify-results":
        if len(args.exhibits) < 2:
            parser.error("verify-results needs a reference directory")
        from .regression import verify_reference_results

        ref_dir = args.exhibits[1]
        names = args.exhibits[2:] or [
            n for n in EXHIBITS if (Path(ref_dir) / f"{n}.txt").exists()
        ]
        with observe():
            results = {
                n: EXHIBITS[n](args.quick, args.ranks) for n in names
            }
        report = verify_reference_results(ref_dir, results)
        print(report.summary())
        export_obs()
        return 0 if report.ok else 1

    names = list(EXHIBITS) if args.exhibits in (["all"], []) else args.exhibits
    unknown = [n for n in names if n not in EXHIBITS]
    if unknown:
        parser.error(f"unknown exhibits: {unknown}; try 'list'")

    ranks = 8 if args.quick and args.ranks == 32 else args.ranks
    save_dir = None
    if args.save:
        save_dir = Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    svg_dir = None
    if args.svg:
        svg_dir = Path(args.svg)
        svg_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        t0 = time.time()
        with observe():
            result = EXHIBITS[name](args.quick, ranks)
        text = result.render()
        print(text)
        print(f"[{name} regenerated in {time.time() - t0:.1f}s]")
        print()
        if save_dir is not None:
            (save_dir / f"{name}.txt").write_text(text + "\n")
        if svg_dir is not None:
            from .figures_svg import exhibit_to_svg

            svg = exhibit_to_svg(result)
            if svg is not None:
                (svg_dir / f"{name}.svg").write_text(svg)
    if save_dir is not None:
        save_manifest(
            save_dir,
            {"command": "exhibits", "exhibits": names, "ranks": ranks,
             "quick": args.quick},
            None,
        )
    export_obs()
    return 0


if __name__ == "__main__":
    sys.exit(main())
