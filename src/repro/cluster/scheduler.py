"""Machine-level co-scheduling simulation: jobs sharing a power budget.

The paper's related work (§7: Etinski et al., Sarood et al., Patki et al.)
studies scheduling *between* jobs under a machine power bound; the paper
itself fixes the per-job allocation and optimizes within.  This module
closes the loop at small scale: several jobs run concurrently on disjoint
sockets, the machine budget is partitioned across them
(:func:`repro.cluster.partition_power`), and whenever a job finishes its
power is *re-partitioned* among the survivors — each job's progress rate
coming from its per-iteration LP bound (or Static time) as a function of
its current allocation.

The simulation is event-driven over job completions: between events every
running job completes iterations at the rate its current power supports.
Comparing ``repartition=True`` against a frozen initial split quantifies
the throughput value of dynamic machine-level power management.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from ..machine.variability import make_power_models
from ..scenarios.registry import default_registry
from ..scenarios.run import policy_iteration_time
from ..simulator.trace import trace_application
from ..workloads import BENCHMARKS, WorkloadSpec
from .budget import JobRequest, partition_power

__all__ = ["ClusterJob", "JobPerformanceModel", "ClusterOutcome",
           "simulate_cluster"]


@dataclass(frozen=True)
class ClusterJob:
    """A job submitted to the simulated machine."""

    name: str
    benchmark: str
    n_sockets: int
    iterations: int
    min_w_per_socket: float = 25.0
    max_w_per_socket: float = 80.0
    priority: int = 0
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.benchmark not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {self.benchmark!r}; "
                f"choose from {sorted(BENCHMARKS)}"
            )
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    def request(self) -> JobRequest:
        """The facility-facing power request for this job."""
        return JobRequest(
            name=self.name, n_sockets=self.n_sockets,
            min_w_per_socket=self.min_w_per_socket,
            max_w_per_socket=self.max_w_per_socket, priority=self.priority,
        )


class JobPerformanceModel:
    """Per-iteration time of one job as a function of its power bound.

    Evaluates any registered policy (see :func:`repro.scenarios.registry.
    default_registry`) at a few anchor caps and interpolates log-linearly
    between them — iteration time is smooth and convex in the cap, so
    sparse anchors suffice.  ``strategy`` is a registry name: ``"lp"``
    and ``"static"`` reproduce the historical anchors exactly, and any
    other policy (``"conductor"``, ``"adagio"``, ...) now works the same
    way.  Each anchor evaluation runs in a trace scope named after the
    job and strategy, so co-scheduling anchors are attributable in
    exported traces.
    """

    def __init__(
        self,
        job: ClusterJob,
        strategy: str = "lp",
        anchor_caps_per_socket: tuple[float, ...] = (30.0, 40.0, 55.0, 80.0),
        lp_iterations: int = 2,
        efficiency_seed: int = 42,
        policy_config: dict | None = None,
    ) -> None:
        registry = default_registry()
        if strategy not in registry:
            raise ValueError(
                f"strategy must be a registered policy "
                f"{registry.names()}, got {strategy!r}"
            )
        self.job = job
        self.strategy = strategy
        gen = BENCHMARKS[job.benchmark]
        app = gen(WorkloadSpec(n_ranks=job.n_sockets,
                               iterations=lp_iterations, seed=job.seed))
        models = make_power_models(job.n_sockets, efficiency_seed)
        # Bounds re-schedule the same deterministic trace at every anchor;
        # trace once instead of once per cap (identical numbers).
        trace = (
            trace_application(app, models)
            if registry.get(strategy).kind == "bound" else None
        )
        min_cap = app.metadata.get("min_cap_per_socket_w", 0.0)
        caps: list[float] = []
        times: list[float] = []
        for cap in sorted(set(anchor_caps_per_socket)):
            if cap < max(min_cap, job.min_w_per_socket):
                continue
            t = policy_iteration_time(
                strategy,
                app,
                models,
                cap * job.n_sockets,
                lp_iterations,
                config=policy_config,
                trace=trace,
                label=f"anchor {job.name} {strategy} cap={cap:g}W",
            )
            if t is None:  # infeasible bound at this cap
                continue
            times.append(t)
            caps.append(cap)
        if len(caps) < 2:
            raise ValueError(
                f"{job.name}: fewer than 2 feasible anchor caps"
            )
        self._caps = np.array(caps)
        self._times = np.array(times)

    def iteration_time(self, cap_per_socket_w: float) -> float:
        """Interpolated per-iteration time at a cap (clamped to anchors)."""
        c = float(np.clip(cap_per_socket_w, self._caps[0], self._caps[-1]))
        i = min(
            max(bisect.bisect_left(self._caps.tolist(), c), 1),
            len(self._caps) - 1,
        )
        lo_c, hi_c = self._caps[i - 1], self._caps[i]
        lo_t, hi_t = self._times[i - 1], self._times[i]
        if hi_c == lo_c:
            return float(lo_t)
        frac = (c - lo_c) / (hi_c - lo_c)
        return float(lo_t + frac * (hi_t - lo_t))


@dataclass
class ClusterOutcome:
    """Result of a co-scheduling simulation."""

    finish_times_s: dict[str, float]
    allocations_over_time: list[tuple[float, dict[str, float]]]
    makespan_s: float
    rejected: list[str] = field(default_factory=list)

    def mean_turnaround_s(self) -> float:
        """Mean completion time across finished jobs."""
        if not self.finish_times_s:
            return 0.0
        return float(np.mean(list(self.finish_times_s.values())))


def simulate_cluster(
    jobs: list[ClusterJob],
    machine_w: float,
    strategy: str = "lp",
    policy: str = "uniform",
    repartition: bool = True,
    performance_models: dict[str, JobPerformanceModel] | None = None,
) -> ClusterOutcome:
    """Run jobs to completion under a shared machine power budget.

    ``repartition=False`` freezes the initial split (power of finished
    jobs goes unused); ``True`` re-partitions at every completion.
    """
    models = performance_models or {
        j.name: JobPerformanceModel(j, strategy) for j in jobs
    }
    allocs = partition_power(machine_w, [j.request() for j in jobs], policy)
    rejected = [a.request.name for a in allocs if not a.admitted]
    running = {
        a.request.name: {
            "job": j,
            "w_per_socket": a.w_per_socket,
            "remaining": float(j.iterations),
        }
        for j, a in zip(jobs, allocs)
        if a.admitted
    }

    t = 0.0
    finish: dict[str, float] = {}
    history: list[tuple[float, dict[str, float]]] = [
        (0.0, {name: st["w_per_socket"] for name, st in running.items()})
    ]
    while running:
        # Time until each job finishes at its current rate.
        etas = {
            name: st["remaining"]
            * models[name].iteration_time(st["w_per_socket"])
            for name, st in running.items()
        }
        name_done, dt = min(etas.items(), key=lambda kv: kv[1])
        # Advance all jobs by dt.
        for name, st in running.items():
            rate = 1.0 / models[name].iteration_time(st["w_per_socket"])
            st["remaining"] = max(0.0, st["remaining"] - rate * dt)
        t += dt
        finish[name_done] = t
        del running[name_done]
        if running and repartition:
            new_allocs = partition_power(
                machine_w,
                [st["job"].request() for st in running.values()],
                policy,
            )
            for st, alloc in zip(running.values(), new_allocs):
                if alloc.admitted:
                    st["w_per_socket"] = alloc.w_per_socket
            history.append(
                (t, {n: st["w_per_socket"] for n, st in running.items()})
            )

    return ClusterOutcome(
        finish_times_s=finish,
        allocations_over_time=history,
        makespan_s=t,
        rejected=rejected,
    )
