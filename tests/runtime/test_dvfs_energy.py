"""Tests for the slack-driven min-energy DVFS runtime (Guermouche-style)."""

import pytest

from repro.machine import (
    Configuration,
    SocketPowerModel,
    sample_socket_efficiencies,
)
from repro.machine.configuration import ConfigPoint
from repro.machine.cpu import XEON_E5_2670
from repro.runtime import DvfsEnergyPolicy, min_energy_fitting_point
from repro.simulator import Engine, MaxPerformancePolicy, TaskRef
from repro.workloads import imbalanced_collective_app


@pytest.fixture
def models():
    eff = sample_socket_efficiencies(4, seed=9)
    return [SocketPowerModel(efficiency=float(e)) for e in eff]


@pytest.fixture
def app():
    return imbalanced_collective_app(n_ranks=4, iterations=10, spread=1.5)


def point(freq, duration_s, power_w):
    return ConfigPoint(Configuration(freq, 8), duration_s, power_w)


class TestMinEnergyFittingPoint:
    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            min_energy_fitting_point([], 1.0)

    def test_nothing_fits_runs_fastest(self):
        ladder = [point(1.2, 2.0, 40.0), point(2.6, 1.0, 90.0)]
        assert min_energy_fitting_point(ladder, 0.5) is ladder[-1]

    def test_picks_minimum_energy_among_fitting(self):
        # Energies: 2.0*40=80, 1.5*56=84, 1.0*90=90 — the slowest point
        # is cheapest and fits, so it wins even though all three fit.
        ladder = [point(1.2, 2.0, 40.0), point(2.0, 1.5, 56.0),
                  point(2.6, 1.0, 90.0)]
        assert min_energy_fitting_point(ladder, 2.5) is ladder[0]
        # With a tighter budget only the two faster points fit.
        assert min_energy_fitting_point(ladder, 1.6) is ladder[1]

    def test_energy_tie_breaks_to_the_faster_point(self):
        ladder = [point(1.2, 2.0, 40.0), point(2.6, 1.0, 80.0)]
        assert min_energy_fitting_point(ladder, 3.0) is ladder[1]


class TestDvfsEnergyPolicy:
    def test_validation(self, models, app):
        with pytest.raises(ValueError, match="safety"):
            DvfsEnergyPolicy(models, app, safety=1.5)

    def test_first_iteration_runs_fastest(self, models, app, kernel):
        policy = DvfsEnergyPolicy(models, app)
        cfg = policy.configure(TaskRef(0, 0), kernel, 0, None)
        assert cfg.freq_ghz == XEON_E5_2670.fmax_ghz

    def test_frequency_only_scaling(self, models, app):
        """Thread width never moves: the MPI-process model scales the
        clock into slack, it does not throttle concurrency."""
        res = Engine(models).run(app, DvfsEnergyPolicy(models, app))
        assert all(
            r.config.threads == XEON_E5_2670.cores for r in res.records
        )

    def test_saves_energy_with_negligible_slowdown(self, models, app):
        engine = Engine(models)
        base = engine.run(app, MaxPerformancePolicy())
        saved = engine.run(app, DvfsEnergyPolicy(models, app))
        assert saved.total_energy_j() < base.total_energy_j() * 0.99
        assert saved.makespan_s <= base.makespan_s * 1.02

    def test_light_ranks_downshift(self, models, app):
        import numpy as np

        res = Engine(models).run(app, DvfsEnergyPolicy(models, app))
        busy = np.zeros(4)
        for r in res.records:
            busy[r.ref.rank] += r.duration_s
        light = int(np.argmin(busy))
        late = [
            r for r in res.records
            if r.ref.rank == light and r.iteration >= 5
        ]
        assert any(r.config.freq_ghz < XEON_E5_2670.fmax_ghz for r in late)

    def test_short_tasks_do_not_thrash_the_clock(self, models, app, kernel):
        """A switch is skipped when the task is shorter than the
        min-switch threshold — the 145us transition would dominate."""
        policy = DvfsEnergyPolicy(models, app, min_switch_duration_s=1e9)
        slow = Configuration(XEON_E5_2670.pstates[-1], XEON_E5_2670.cores)
        cfg = policy.configure(TaskRef(0, 0), kernel, 1, slow)
        assert cfg == slow

    def test_overhead_hooks(self, models, app):
        policy = DvfsEnergyPolicy(models, app, switch_overhead_s=2e-4)
        assert policy.switch_cost_s() == 2e-4
        assert policy.on_pcontrol(0, []) == 0.0
