"""SolveAudit ledger: recording, merging, the table, solver integration."""

from __future__ import annotations

import pytest

from repro.core.solver import LinearProgram
from repro.obs.audit import (
    SolveAudit,
    SolveRecord,
    current_audit,
    note_cache,
    record_solve,
    use_audit,
)
from repro.obs.recorder import TraceRecorder, use_recorder


def _record(program: str = "lp", source: str = "cold") -> SolveRecord:
    return SolveRecord(
        program=program, backend="highs-direct", source=source,
        rows=10, cols=20, nnz=40, iterations=7, status="optimal",
        objective=1.25, wall_s=0.004,
    )


class TestLedger:
    def test_record_and_totals(self):
        audit = SolveAudit()
        audit.record(_record())
        audit.record(_record(source="resolve"))
        assert len(audit) == 2
        assert audit.total_wall_s() == pytest.approx(0.008)

    def test_snapshot_roundtrip(self):
        audit = SolveAudit()
        audit.record(_record())
        audit.note_cache(True)
        audit.note_cache(False)
        other = SolveAudit()
        other.extend(audit.to_dicts())
        assert other.records == audit.records
        assert (other.cache_hits, other.cache_misses) == (1, 1)

    def test_record_none_fields_survive_roundtrip(self):
        record = SolveRecord(
            program="milp", backend="milp", source="cold", rows=1, cols=1,
            nnz=1, iterations=None, status="infeasible", objective=None,
            wall_s=0.001,
        )
        assert SolveRecord.from_dict(record.to_dict()) == record

    def test_table_lists_solves_and_cache(self):
        audit = SolveAudit()
        audit.record(_record(program="fixed-order-comd"))
        audit.note_cache(True)
        table = audit.table()
        assert "solver audit" in table
        assert "fixed-order-comd" in table
        assert "1 hit(s)" in table

    def test_empty_table(self):
        assert "(no solves recorded)" in SolveAudit().table()


class TestActivation:
    def test_helpers_are_noops_when_disabled(self):
        assert current_audit() is None
        record_solve(_record())
        note_cache(True)

    def test_helpers_target_active_audit(self):
        audit = SolveAudit()
        with use_audit(audit):
            record_solve(_record())
            note_cache(False)
        assert len(audit) == 1 and audit.cache_misses == 1


def _toy_program() -> LinearProgram:
    lp = LinearProgram(name="toy")
    x = lp.add_var("x")
    y = lp.add_var("y")
    lp.add_ge({x: 1.0, y: 1.0}, 1.0, tag="budget")
    lp.set_objective({x: 2.0, y: 3.0})
    return lp


class TestSolverIntegration:
    def test_every_solve_is_audited(self):
        frozen = _toy_program().freeze()
        audit = SolveAudit()
        with use_audit(audit):
            assert frozen.solve().ok
            assert frozen.solve().ok
        assert [r.source for r in audit.records] == ["cold", "resolve"]
        record = audit.records[0]
        assert record.program == "toy"
        assert (record.rows, record.cols) == (1, 2)
        assert record.status == "optimal"
        assert record.objective == pytest.approx(2.0)
        assert record.wall_s >= 0.0

    def test_solve_events_reach_the_recorder(self):
        frozen = _toy_program().freeze()
        rec = TraceRecorder()
        with use_recorder(rec):
            frozen.solve()
        docs = [d for d in rec.snapshot() if d["kind"] == "solve"]
        assert len(docs) == 1
        assert docs[0]["name"] == "solve:toy"
        assert docs[0]["args"]["source"] == "cold"

    def test_unaudited_solve_is_silent(self):
        frozen = _toy_program().freeze()
        assert frozen.solve().ok  # no audit, no recorder: nothing to trip on
