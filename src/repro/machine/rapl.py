"""RAPL (Running Average Power Limit) firmware simulator.

RAPL is the socket-level power-capping mechanism used throughout the paper:
writing a watt limit to a hardware MSR causes firmware to pick DVFS states
(and, when even the lowest P-state exceeds the cap, duty-cycle clock
modulation) such that the running average package power stays under the
limit.  Crucially for the paper's evaluation, RAPL is *blind* to
application structure: it cannot change thread counts, and under a uniform
Static cap it throttles leaky sockets much harder than efficient ones —
the mechanism behind BT's "22% of max clock" pathology at 30 W.

The simulator resolves, per task, the operating point firmware converges
to: the highest P-state whose model power fits under the cap, else the
highest duty cycle at the lowest P-state, else the lowest expressible duty
cycle (real RAPL similarly bottoms out and reports a cap overshoot).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.events import CapExceededEvent
from ..obs.recorder import emit
from .configuration import Configuration, ConfigPoint, measure_task
from .performance import TaskKernel, TaskTimeModel
from .power import SocketPowerModel

__all__ = ["RaplController", "RaplDecision"]


@dataclass(frozen=True)
class RaplDecision:
    """Outcome of the firmware control loop for one task under one cap."""

    config: Configuration
    power_w: float
    cap_w: float
    cap_met: bool

    @property
    def headroom_w(self) -> float:
        """Unused power under the cap (negative when the cap is violated)."""
        return self.cap_w - self.power_w


class RaplController:
    """Per-socket RAPL model.

    Parameters
    ----------
    power_model:
        The socket the controller is capping (its efficiency factor is what
        makes identical caps behave differently across sockets).
    control_noise:
        Fractional conservatism jitter of the firmware's internal power
        estimate; real RAPL leaves a little guard band.  Deterministic
        (applied as a fixed margin) so simulations are reproducible.
    """

    def __init__(self, power_model: SocketPowerModel, control_noise: float = 0.0) -> None:
        if control_noise < 0 or control_noise >= 0.5:
            raise ValueError(f"control_noise must be in [0, 0.5), got {control_noise}")
        self.power_model = power_model
        self.control_noise = control_noise
        self.spec = power_model.spec

    def _fits(self, kernel: TaskKernel, config: Configuration, cap_w: float) -> bool:
        power = self.power_model.power(
            config.freq_ghz,
            config.threads,
            activity=kernel.activity,
            mem_intensity=kernel.mem_intensity,
            duty=config.duty,
        )
        return power * (1.0 + self.control_noise) <= cap_w

    def decide(self, kernel: TaskKernel, threads: int, cap_w: float) -> RaplDecision:
        """Operating point the firmware settles on for a task under a cap.

        The thread count is an input — firmware cannot change it; the
        Static baseline always passes the full core count.
        """
        if cap_w <= 0:
            raise ValueError(f"cap must be positive, got {cap_w}")
        chosen: Configuration | None = None
        for freq in self.spec.pstates:  # descending: pick the fastest that fits
            cfg = Configuration(freq, threads)
            if self._fits(kernel, cfg, cap_w):
                chosen = cfg
                break
        if chosen is None:
            for duty in self.spec.duty_cycles:  # descending duty
                cfg = Configuration(self.spec.fmin_ghz, threads, duty)
                if self._fits(kernel, cfg, cap_w):
                    chosen = cfg
                    break
        cap_met = chosen is not None
        if chosen is None:
            # Even the deepest modulation exceeds the cap: firmware bottoms
            # out at the lowest expressible duty cycle.
            duties = self.spec.duty_cycles
            floor = duties[-1] if duties else 1.0
            chosen = Configuration(self.spec.fmin_ghz, threads, floor)
        power = self.power_model.power(
            chosen.freq_ghz,
            chosen.threads,
            activity=kernel.activity,
            mem_intensity=kernel.mem_intensity,
            duty=chosen.duty,
        )
        if not cap_met:
            # The trace records every overshoot: this is the mechanism
            # behind the paper's "22% of max clock" pathology, and a
            # throttled-to-the-floor socket is the first thing to look
            # for when a run underperforms its bound.
            emit(CapExceededEvent(cap_w=cap_w, power_w=power))
        return RaplDecision(config=chosen, power_w=power, cap_w=cap_w, cap_met=cap_met)

    def measure(
        self,
        kernel: TaskKernel,
        threads: int,
        cap_w: float,
        time_model: TaskTimeModel | None = None,
    ) -> ConfigPoint:
        """Duration/power of a task run under this controller at a cap."""
        decision = self.decide(kernel, threads, cap_w)
        return measure_task(kernel, decision.config, self.power_model, time_model)
