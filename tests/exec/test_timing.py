"""Telemetry: spans, counters, merging, and the disabled fast path."""

from __future__ import annotations

import json

import pytest

from repro.exec.timing import (
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
    count,
    current_telemetry,
    span,
    use_telemetry,
)


def test_span_accumulates_into_active_telemetry():
    tel = Telemetry()
    with use_telemetry(tel):
        with span("solve"):
            pass
        with span("solve"):
            pass
        with span("trace"):
            pass
    assert tel.phases["solve"].calls == 2
    assert tel.phases["trace"].calls == 1
    assert tel.phase_seconds("solve") >= 0.0
    assert tel.phase_seconds("absent") == 0.0


def test_span_and_count_are_noops_when_disabled():
    assert current_telemetry() is None
    with span("anything"):
        count("anything")
    assert current_telemetry() is None


def test_counters():
    tel = Telemetry()
    with use_telemetry(tel):
        count("cache.hit")
        count("cache.hit", 3)
    assert tel.counter("cache.hit") == 4
    assert tel.counter("cache.miss") == 0


def test_use_telemetry_restores_previous():
    outer, inner = Telemetry(), Telemetry()
    with use_telemetry(outer):
        with use_telemetry(inner):
            count("c")
        count("c")
    assert inner.counter("c") == 1
    assert outer.counter("c") == 1


def test_to_dict_round_trip_and_merge():
    tel = Telemetry()
    with use_telemetry(tel):
        with span("solve"):
            pass
        count("cache.hit", 2)
    snapshot = json.loads(tel.to_json())

    other = Telemetry()
    other.merge(snapshot)
    other.merge(snapshot)
    assert other.phases["solve"].calls == 2
    assert other.counter("cache.hit") == 4


def test_summary_mentions_phases_and_counters():
    tel = Telemetry()
    with use_telemetry(tel):
        with span("replay"):
            pass
        count("cache.miss")
    text = tel.summary()
    assert "replay" in text
    assert "cache.miss" in text
    assert "(no phases recorded)" in Telemetry().summary()


def test_nested_spans_record_both():
    tel = Telemetry()
    with use_telemetry(tel):
        with span("outer"):
            with span("inner"):
                pass
    assert tel.phases["outer"].calls == 1
    assert tel.phases["inner"].calls == 1
    assert tel.phases["outer"].total_s >= tel.phases["inner"].total_s


def test_snapshot_carries_schema_version():
    assert Telemetry().to_dict()["version"] == TELEMETRY_SCHEMA_VERSION


def test_merge_rejects_mismatched_schema_version():
    snapshot = Telemetry().to_dict()
    snapshot["version"] = TELEMETRY_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="does not match"):
        Telemetry().merge(snapshot)


def test_merge_rejects_versionless_snapshot():
    # Pre-versioning snapshots must not be silently folded in either.
    with pytest.raises(ValueError, match="None"):
        Telemetry().merge({"phases": {}, "counters": {}})
