"""Table 3 and the §6.2 overheads summary.

Table 3 characterizes one steady iteration of LULESH under an average of
50 W per socket: Static is pinned at 8 threads with a reduced median
frequency; Conductor and the LP drop to 4-5 threads at (near-)maximum
frequency and spread power nonuniformly (visible as the jump in the
standard deviation of task power).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.fixed_order_lp import solve_fixed_order_lp
from ..machine.cpu import XEON_E5_2670
from ..runtime.conductor import ConductorPolicy
from ..runtime.static import StaticPolicy
from ..simulator.engine import Engine, TaskRecord
from ..simulator.trace import trace_application
from ..workloads import WorkloadSpec, make_lulesh
from .report import render_kv, render_table
from ..scenarios.run import ScenarioResult, run_scenarios
from ..scenarios.spec import PolicySpec, ScenarioSpec
from .runner import ExperimentConfig, improvement_pct, make_power_models

__all__ = ["Table3Result", "table3_lulesh_task_characteristics", "OverheadsResult",
           "overheads_summary", "EnergyComparisonResult", "energy_comparison",
           "MinimumCapResult", "minimum_cap_table",
           "ScenarioSummaryResult", "scenario_summary",
           "FrontierResult", "frontier_table"]


@dataclass(frozen=True)
class MethodRow:
    method: str
    median_time_s: float
    power_stddev_rel: float
    threads: str
    median_freq_rel: float


@dataclass
class Table3Result:
    cap_per_socket_w: float
    rows: list[MethodRow]
    long_task_cutoff_s: float

    def row(self, method: str) -> MethodRow:
        for r in self.rows:
            if r.method == method:
                return r
        raise KeyError(method)

    def render(self) -> str:
        return render_table(
            ["method", "median time (s)", "std.dev power (rel)", "threads",
             "median freq (rel fmax)"],
            [[r.method, r.median_time_s, r.power_stddev_rel, r.threads,
              r.median_freq_rel] for r in self.rows],
            title=(
                "Table 3: LULESH long-task characteristics at "
                f"{self.cap_per_socket_w:.0f} W/socket (one steady iteration)"
            ),
        )


def _method_row(
    method: str,
    durations: np.ndarray,
    powers: np.ndarray,
    threads: list[int],
    freqs: np.ndarray,
) -> MethodRow:
    fmax = XEON_E5_2670.fmax_ghz
    t_lo, t_hi = int(np.min(threads)), int(np.max(threads))
    return MethodRow(
        method=method,
        median_time_s=float(np.median(durations)),
        power_stddev_rel=float(np.std(powers) / np.mean(powers)),
        threads=str(t_lo) if t_lo == t_hi else f"{t_lo}-{t_hi}",
        median_freq_rel=float(np.median(freqs) / fmax),
    )


def _records_row(method: str, records: list[TaskRecord], cutoff: float) -> MethodRow:
    longs = [r for r in records if r.duration_s >= cutoff]
    if not longs:
        raise ValueError(f"{method}: no long-running tasks above {cutoff}s")
    return _method_row(
        method,
        np.array([r.duration_s for r in longs]),
        np.array([r.power_w for r in longs]),
        [r.config.threads for r in longs],
        np.array([r.config.effective_freq_ghz for r in longs]),
    )


def table3_lulesh_task_characteristics(
    cap_per_socket_w: float = 50.0,
    n_ranks: int = 32,
    iteration: int = 18,
    long_task_cutoff_s: float = 1.0,
    seed: int = 2015,
    efficiency_seed: int = 42,
) -> Table3Result:
    """Reproduce Table 3 on one steady iteration of LULESH."""
    cfg = ExperimentConfig(
        benchmark="lulesh", n_ranks=n_ranks, lp_iterations=3, seed=seed,
        efficiency_seed=efficiency_seed,
    )
    app = make_lulesh(
        WorkloadSpec(n_ranks=n_ranks, iterations=cfg.run_iterations, seed=seed)
    )
    pm = make_power_models(n_ranks, efficiency_seed)
    job_cap = cap_per_socket_w * n_ranks
    engine = Engine(pm)

    res_static = engine.run(app, StaticPolicy(pm, job_cap))
    static_row = _records_row(
        "Static", res_static.records_for_iteration(iteration), long_task_cutoff_s
    )

    conductor = ConductorPolicy(pm, job_cap, app, config=cfg.conductor)
    res_cond = engine.run(app, conductor)
    cond_row = _records_row(
        "Conductor", res_cond.records_for_iteration(iteration), long_task_cutoff_s
    )

    app_lp = make_lulesh(
        WorkloadSpec(n_ranks=n_ranks, iterations=cfg.lp_iterations, seed=seed)
    )
    trace = trace_application(app_lp, pm)
    lp = solve_fixed_order_lp(trace, job_cap)
    if not lp.feasible:
        raise RuntimeError(f"LP infeasible at {cap_per_socket_w} W/socket")
    longs = [
        a for a in lp.schedule.assignments.values()
        if a.duration_s >= long_task_cutoff_s
    ]
    freqs = []
    threads = []
    for a in longs:
        freqs.append(
            sum(p.config.effective_freq_ghz * f for p, f in a.mixture)
        )
        threads.append(a.dominant.config.threads)
    lp_row = _method_row(
        "LP",
        np.array([a.duration_s for a in longs]),
        np.array([a.power_w for a in longs]),
        threads,
        np.array(freqs),
    )
    return Table3Result(
        cap_per_socket_w=cap_per_socket_w,
        rows=[static_row, cond_row, lp_row],
        long_task_cutoff_s=long_task_cutoff_s,
    )


# ----------------------------------------------------------------------
@dataclass
class OverheadsResult:
    """§6.2: instrumentation and control overheads, constants vs measured."""

    tracing_per_call_s: float
    dvfs_switch_s: float
    realloc_per_invocation_s: float
    measured_tracing_fraction: float
    measured_switches: int
    measured_reallocs: int

    def render(self) -> str:
        return render_kv(
            {
                "profiler overhead per MPI call (paper: 34 us)":
                    f"{self.tracing_per_call_s * 1e6:.0f} us",
                "DVFS transition per task (paper: 145 us)":
                    f"{self.dvfs_switch_s * 1e6:.0f} us",
                "power reallocation per invocation (paper: 566 us)":
                    f"{self.realloc_per_invocation_s * 1e6:.0f} us",
                "measured tracing time fraction (paper: <0.05%)":
                    f"{self.measured_tracing_fraction * 100:.4f}%",
                "DVFS switches observed": self.measured_switches,
                "reallocation invocations observed": self.measured_reallocs,
            },
            title="Section 6.2: overheads",
        )


def overheads_summary(
    n_ranks: int = 16,
    iterations: int = 12,
    cap_per_socket_w: float = 50.0,
    seed: int = 2015,
) -> OverheadsResult:
    """Measure the modeled overheads on a CoMD run."""
    from ..workloads import make_comd

    tracing_s = 34e-6
    app = make_comd(WorkloadSpec(n_ranks=n_ranks, iterations=iterations, seed=seed))
    pm = make_power_models(n_ranks)
    job_cap = cap_per_socket_w * n_ranks

    plain = Engine(pm).run(app, StaticPolicy(pm, job_cap))
    traced_engine = Engine(pm, tracing_overhead_s=tracing_s)
    traced = traced_engine.run(app, StaticPolicy(pm, job_cap))
    frac = (traced.makespan_s - plain.makespan_s) / plain.makespan_s

    from ..runtime.conductor import ConductorConfig

    ccfg = ConductorConfig(realloc_period=4, step_w=2.5, measurement_noise=0.01)
    conductor = ConductorPolicy(pm, job_cap, app, config=ccfg)
    res = Engine(pm).run(app, conductor)
    return OverheadsResult(
        tracing_per_call_s=tracing_s,
        dvfs_switch_s=ccfg.switch_overhead_s,
        realloc_per_invocation_s=ccfg.realloc_overhead_s,
        measured_tracing_fraction=frac,
        measured_switches=res.dvfs_switch_count,
        measured_reallocs=conductor.realloc_count,
    )


# ----------------------------------------------------------------------
@dataclass
class EnergyComparisonResult:
    """Related-work contrast (§7): energy-saving runtimes vs the bounds.

    Rows: run-to-completion time and task energy for MaxPerformance (no
    power management), standalone Adagio (slack reclamation, uncapped),
    the energy-LP bound at zero slowdown, and the paper's power-capped LP
    at a mid sweep cap — showing that bounding energy and bounding power
    are different problems.
    """

    rows: list[tuple[str, float, float]]  # (label, time s, energy J)
    cap_per_socket_w: float

    def row(self, label: str) -> tuple[str, float, float]:
        for r in self.rows:
            if r[0] == label:
                return r
        raise KeyError(label)

    def render(self) -> str:
        return render_table(
            ["strategy", "time (s)", "task energy (J)"],
            [list(r) for r in self.rows],
            title=(
                "Energy vs power objectives (CoMD; power-capped LP at "
                f"{self.cap_per_socket_w:.0f} W/socket)"
            ),
        )


# ----------------------------------------------------------------------
@dataclass
class MinimumCapResult:
    """Smallest feasible job cap per benchmark (facility `min_w` requests).

    Each row bisects :func:`repro.core.sweep.minimum_feasible_cap` over one
    parametric solver: the LP is assembled once per benchmark and re-solved
    per probe, with the ambient solver cache serving repeated probes.
    """

    rows: list[tuple[str, float, float, int]]
    # (benchmark, min cap W/socket, unconstrained makespan s, probe solves)
    tol_w: float
    n_ranks: int

    def row(self, benchmark: str) -> tuple[str, float, float, int]:
        for r in self.rows:
            if r[0] == benchmark:
                return r
        raise KeyError(benchmark)

    def render(self) -> str:
        return render_table(
            ["benchmark", "min cap (W/socket)", "unconstrained time (s)",
             "LP solves"],
            [list(r) for r in self.rows],
            title=(
                f"Minimum feasible power caps ({self.n_ranks} ranks, "
                f"bisection tol {self.tol_w:g} W)"
            ),
        )


def minimum_cap_table(
    n_ranks: int = 8,
    iterations: int = 3,
    tol_w: float = 0.5,
    seed: int = 2015,
) -> MinimumCapResult:
    """Bisect the minimum feasible cap for each of the paper's benchmarks."""
    from ..core.model import build_problem_instance
    from ..core.sweep import ParametricCapSolver, minimum_feasible_cap
    from ..exec.options import get_execution_options
    from ..workloads import BENCHMARKS

    cache = get_execution_options().make_cache()
    rows: list[tuple[str, float, float, int]] = []
    for name, make in BENCHMARKS.items():
        app = make(WorkloadSpec(n_ranks=n_ranks, iterations=iterations,
                                seed=seed))
        pm = make_power_models(n_ranks)
        trace = trace_application(app, pm)
        instance = build_problem_instance(trace)
        # At most n_ranks tasks run concurrently, so this cap is feasible.
        pmax = max(f.powers.max() for f in instance.convex.values())
        hi_w = float(pmax) * n_ranks
        solver = ParametricCapSolver(trace, instance=instance)
        min_w = minimum_feasible_cap(
            trace, lo_w=1.0, hi_w=hi_w, tol_w=tol_w * n_ranks,
            cache=cache, instance=instance, solver=solver,
        )
        if min_w is None:
            raise RuntimeError(f"{name}: no feasible cap below {hi_w} W")
        rows.append((
            name,
            min_w / n_ranks,
            instance.unconstrained_makespan_s(),
            solver.n_solves,
        ))
    return MinimumCapResult(rows=rows, tol_w=tol_w, n_ranks=n_ranks)


def energy_comparison(
    n_ranks: int = 8,
    iterations: int = 8,
    cap_per_socket_w: float = 35.0,
    seed: int = 2015,
) -> EnergyComparisonResult:
    """Compare MaxPerformance, Adagio, the energy LP, and the power LP."""
    from ..core.energy_lp import solve_energy_lp
    from ..runtime.adagio_policy import AdagioPolicy
    from ..simulator.engine import MaxPerformancePolicy
    from ..workloads import make_comd

    app = make_comd(WorkloadSpec(n_ranks=n_ranks, iterations=iterations,
                                 seed=seed))
    pm = make_power_models(n_ranks)
    engine = Engine(pm)

    res_max = engine.run(app, MaxPerformancePolicy())
    res_adagio = engine.run(app, AdagioPolicy(pm, app))

    trace = trace_application(app, pm)
    energy_lp = solve_energy_lp(trace, slowdown=0.0)
    power_lp_res = solve_fixed_order_lp(trace, cap_per_socket_w * n_ranks)

    rows = [
        ("MaxPerformance", res_max.makespan_s, res_max.total_energy_j()),
        ("Adagio", res_adagio.makespan_s, res_adagio.total_energy_j()),
        ("Energy LP (0% slowdown)", energy_lp.makespan_s,
         energy_lp.energy_j),
    ]
    if power_lp_res.feasible:
        power_energy = sum(
            a.duration_s * a.power_w
            for a in power_lp_res.schedule.assignments.values()
        )
        rows.append(
            (f"Power LP ({cap_per_socket_w:.0f} W/socket)",
             power_lp_res.makespan_s, power_energy)
        )
    return EnergyComparisonResult(rows=rows, cap_per_socket_w=cap_per_socket_w)


@dataclass
class ScenarioSummaryResult:
    """Per-policy summary of one N-way scenario sweep.

    One row per policy instance: kind, best per-iteration time with the
    cap it occurred at, how many caps the policy won outright, and the
    mean improvement over the baseline across caps where both are
    defined.
    """

    result: ScenarioResult
    baseline: str

    def rows(self) -> list[list]:
        """The summary rows, one per policy instance in spec order."""
        res = self.result
        base = res.series(self.baseline)
        names = res.policy_names()
        # A policy "wins" a cap when it has the strictly fastest defined
        # time among all policies at that cap.
        wins = {n: 0 for n in names}
        for cell in res.cells:
            timed = {
                n: o.time_s for n, o in cell.outcomes.items()
                if o.time_s is not None
            }
            if timed:
                best = min(timed.values())
                for n, t in timed.items():
                    if t == best:
                        wins[n] += 1
        rows = []
        for name in names:
            outcome = res.cells[0].outcomes[name]
            series = res.series(name)
            defined = [
                (t, cap) for t, cap in zip(series, res.spec.caps_per_socket_w)
                if t is not None
            ]
            best_t, best_cap = min(defined, default=(None, None))
            imps = [
                improvement_pct(b, t)
                for b, t in zip(base, series)
                if b is not None and t is not None
            ]
            mean_imp = (
                None if name == self.baseline or not imps
                else sum(imps) / len(imps)
            )
            rows.append([
                name, outcome.kind, best_t, best_cap, wins[name],
                None if mean_imp is None else round(mean_imp, 1),
            ])
        return rows

    def render(self) -> str:
        spec = self.result.spec
        return render_table(
            ["policy", "kind", "best (s/iter)", "at cap (W)", "caps won",
             f"mean vs {self.baseline} (%)"],
            self.rows(),
            title=(
                f"Scenario summary: {spec.benchmark}, {spec.n_ranks} ranks, "
                f"caps {', '.join(f'{c:g}' for c in spec.caps_per_socket_w)} "
                "W/socket"
            ),
            digits=4,
        )


# ----------------------------------------------------------------------
@dataclass
class FrontierResult:
    """Energy-vs-runtime Pareto frontier of an N-way sweep.

    One row per (cap, policy instance): per-iteration time, per-iteration
    task energy, the mean task power they imply, and performance per watt
    (iterations per kilojoule — throughput divided by mean power).  A row
    is marked Pareto-optimal (``*``) when no other policy at the *same*
    cap is at least as fast and at least as frugal with one strict;
    undefined outcomes (infeasible bounds, unschedulable caps) never
    dominate anything and render as gaps.

    The capped min-energy LP bound (``energy-lp``) anchors its deadline
    to the capped fixed-order optimum, so its row should carry the ``*``
    at every feasible cap — no runtime policy can dominate it.
    """

    result: ScenarioResult

    def energy_series(self, name: str) -> list[float | None]:
        """One policy's per-iteration energies across the cap grid."""
        return [cell.outcomes[name].energy_j for cell in self.result.cells]

    def pareto_optimal(self, cap_per_socket_w: float) -> list[str]:
        """Labels of the non-dominated policies at one cap, in spec order."""
        cell = self.result.cell_at(cap_per_socket_w)
        points = {
            n: (o.time_s, o.energy_j)
            for n, o in cell.outcomes.items()
            if o.time_s is not None and o.energy_j is not None
        }
        return [
            name
            for name in self.result.policy_names()
            if name in points and not self._dominated(name, points)
        ]

    #: Relative tolerance for domination: differences below solver float
    #: noise (a binding cap can leave two formulations one ulp apart)
    #: count as ties, never as a strict improvement.
    _REL_TOL = 1e-9

    @staticmethod
    def _dominated(name: str, points: dict[str, tuple[float, float]]) -> bool:
        """True when another point is no worse on both axes (within float
        noise) and materially better on at least one."""
        rel = FrontierResult._REL_TOL
        t, e = points[name]
        return any(
            t2 <= t * (1 + rel) and e2 <= e * (1 + rel)
            and (t2 < t * (1 - rel) or e2 < e * (1 - rel))
            for n2, (t2, e2) in points.items()
            if n2 != name
        )

    def rows(self) -> list[list]:
        """The frontier rows: cap-major, spec policy order within a cap."""
        rows = []
        for cell in self.result.cells:
            points = {
                n: (o.time_s, o.energy_j)
                for n, o in cell.outcomes.items()
                if o.time_s is not None and o.energy_j is not None
            }
            for name in self.result.policy_names():
                outcome = cell.outcomes[name]
                t, e = outcome.time_s, outcome.energy_j
                if t is None or e is None:
                    rows.append([
                        cell.cap_per_socket_w, name, outcome.kind,
                        None, None, None, None, "",
                    ])
                    continue
                rows.append([
                    cell.cap_per_socket_w, name, outcome.kind, t, e,
                    e / t, 1000.0 / e,
                    "" if self._dominated(name, points) else "*",
                ])
        return rows

    def render(self) -> str:
        """The frontier as a titled text table, one row per (cap, policy)."""
        spec = self.result.spec
        return render_table(
            ["cap (W/skt)", "policy", "kind", "time (s/iter)",
             "energy (J/iter)", "mean power (W)", "perf/W (iter/kJ)",
             "pareto"],
            self.rows(),
            title=(
                f"Energy-runtime frontier: {spec.benchmark}, "
                f"{spec.n_ranks} ranks, caps "
                f"{', '.join(f'{c:g}' for c in spec.caps_per_socket_w)} "
                "W/socket"
            ),
            digits=4,
        )


def frontier_table(
    n_ranks: int = 8,
    caps: tuple[float, ...] = (35.0, 50.0, 65.0),
    policies: tuple[str, ...] = (
        "static", "dvfs-energy", "config-search", "lp", "energy-lp",
    ),
    benchmark: str = "comd",
    quick: bool = False,
    seed: int = 2015,
) -> FrontierResult:
    """Sweep energy-aware policies against the bounds; build the frontier.

    The default scenario pits the paper's capped LP bound and the Static
    baseline against the energy-objective runtimes (``dvfs-energy``,
    ``config-search``) and the capped min-energy LP bound across a small
    cap grid.  ``quick`` shrinks the measurement protocol to the CI smoke
    windows (12 run iterations, steady window 6, 2 LP iterations).
    """
    protocol = (
        {"run_iterations": 12, "lp_iterations": 2, "steady_window": 6}
        if quick else {}
    )
    spec = ScenarioSpec(
        benchmark=benchmark,
        caps_per_socket_w=tuple(caps),
        policies=tuple(PolicySpec(p) for p in policies),
        n_ranks=n_ranks,
        seed=seed,
        **protocol,
    )
    return FrontierResult(result=run_scenarios(spec))


def scenario_summary(
    result: ScenarioResult, baseline: str | None = None
) -> ScenarioSummaryResult:
    """Summarize an N-way scenario result (baseline: first policy)."""
    names = result.policy_names()
    if baseline is None:
        baseline = names[0]
    if baseline not in names:
        raise ValueError(
            f"baseline {baseline!r} is not in the scenario; policies: {names}"
        )
    return ScenarioSummaryResult(result=result, baseline=baseline)
