"""Unit tests for workload generator machinery."""

import numpy as np
import pytest

from repro.workloads import WorkloadSpec, dynamic_jitter, static_imbalance
from repro.workloads.base import WorkloadBuilder


class TestWorkloadSpec:
    def test_defaults_match_paper(self):
        spec = WorkloadSpec()
        assert spec.n_ranks == 32  # 32 processes x 8 cores = 256 cores

    @pytest.mark.parametrize(
        "kwargs", [{"n_ranks": 0}, {"iterations": 0}, {"scale": 0.0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


class TestStaticImbalance:
    def test_mean_one(self):
        rng = np.random.default_rng(0)
        f = static_imbalance(32, 2.0, rng)
        assert f.mean() == pytest.approx(1.0)

    def test_spread_realized(self):
        rng = np.random.default_rng(0)
        f = static_imbalance(32, 3.0, rng)
        assert f.max() / f.min() == pytest.approx(3.0, rel=0.05)

    def test_unit_spread_uniform(self):
        rng = np.random.default_rng(0)
        np.testing.assert_allclose(static_imbalance(8, 1.0, rng), 1.0)

    def test_invalid_spread(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            static_imbalance(8, 0.5, rng)

    def test_deterministic(self):
        a = static_imbalance(16, 2.0, np.random.default_rng(7))
        b = static_imbalance(16, 2.0, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestDynamicJitter:
    def test_zero_sigma(self):
        rng = np.random.default_rng(0)
        np.testing.assert_allclose(dynamic_jitter(8, 0.0, rng), 1.0)

    def test_spread_scales(self):
        tight = dynamic_jitter(1000, 0.01, np.random.default_rng(1))
        wide = dynamic_jitter(1000, 0.1, np.random.default_rng(1))
        assert wide.std() > tight.std()

    def test_invalid(self):
        with pytest.raises(ValueError):
            dynamic_jitter(8, -0.1, np.random.default_rng(0))


class TestWorkloadBuilder:
    def test_builds_application(self, kernel):
        from repro.simulator import ComputeOp

        b = WorkloadBuilder(name="x", n_ranks=2)
        b.add(0, ComputeOp(kernel))
        b.add_all(lambda r: ComputeOp(kernel))
        app = b.finish(iterations=1)
        assert app.n_ranks == 2
        assert len(app.programs[0]) == 2
        assert len(app.programs[1]) == 1
