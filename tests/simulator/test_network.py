"""Unit tests for the interconnect model."""

import math

import pytest

from repro.simulator import IB_QDR, NetworkModel


class TestPointToPoint:
    def test_zero_size_is_latency(self):
        assert IB_QDR.message_time(0) == pytest.approx(IB_QDR.latency_s)

    def test_linear_in_size(self):
        """The paper weighs message edges by a linear function of size."""
        t1 = IB_QDR.message_time(1 << 20)
        t2 = IB_QDR.message_time(2 << 20)
        assert (t2 - IB_QDR.latency_s) == pytest.approx(
            2 * (t1 - IB_QDR.latency_s)
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            IB_QDR.message_time(-1)

    def test_qdr_magnitudes(self):
        # A 1 MiB message on QDR takes a few hundred microseconds.
        t = IB_QDR.message_time(1 << 20)
        assert 1e-4 < t < 1e-3


class TestCollectives:
    def test_single_rank_free(self):
        assert IB_QDR.collective_time("allreduce", 1) == 0.0

    def test_logarithmic_scaling(self):
        t8 = IB_QDR.collective_time("barrier", 8)
        t64 = IB_QDR.collective_time("barrier", 64)
        assert t64 == pytest.approx(t8 * 2)  # log2(64)/log2(8)

    def test_allreduce_twice_bcast(self):
        assert IB_QDR.collective_time("allreduce", 16, 64) == pytest.approx(
            2 * IB_QDR.collective_time("bcast", 16, 64)
        )

    def test_alltoall_linear_in_ranks(self):
        t4 = IB_QDR.collective_time("alltoall", 4, 8)
        t8 = IB_QDR.collective_time("alltoall", 8, 8)
        assert t8 == pytest.approx(t4 * 7 / 3)

    def test_non_power_of_two_rounds_up(self):
        t9 = IB_QDR.collective_time("barrier", 9)
        assert t9 == pytest.approx(math.ceil(math.log2(9)) * IB_QDR.latency_s)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            IB_QDR.collective_time("gossip", 8)

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            IB_QDR.collective_time("barrier", 0)


class TestValidation:
    def test_negative_latency(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1.0)

    def test_zero_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_Bps=0.0)

    def test_custom_model(self):
        slow = NetworkModel(latency_s=1e-3, bandwidth_Bps=1e6)
        assert slow.message_time(1000) == pytest.approx(2e-3)
