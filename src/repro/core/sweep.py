"""Efficient LP cap sweeps: assemble the model once, re-solve per cap.

The paper's Figures 9-15 solve the same trace under many power caps.  The
cap appears only in the RHS of the event-power rows, so the entire model
— variables, precedence, the hundreds of thousands of event-power
nonzeros — is cap-invariant: :class:`ParametricCapSolver` compiles and
freezes it once and re-solves with an updated RHS per cap.  The matrix
handed to HiGHS is identical to a from-scratch build at that cap, so the
results match the rebuild path exactly (see
``benchmarks/test_bench_sweep_parametric.py`` for the speedup and the
byte-identity assertion).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..simulator.trace import Trace
from .events import EventStructure
from .fixed_order_lp import (
    FixedOrderLpResult,
    compile_fixed_order,
    solve_fixed_order_lp,
)
from .model import CAP_ROW_TAG, ProblemInstance, build_problem_instance, extract_schedule
from .solver import LpStatus

__all__ = [
    "CapSweepResult",
    "ParametricCapSolver",
    "solve_cap_sweep",
    "minimum_feasible_cap",
]


@dataclass
class CapSweepResult:
    """Solutions of one trace across many caps."""

    trace: Trace
    results: dict[float, FixedOrderLpResult]

    def makespans(self) -> dict[float, float | None]:
        """cap -> makespan (None where infeasible)."""
        return {
            cap: (res.makespan_s if res.feasible else None)
            for cap, res in self.results.items()
        }

    def feasible_caps(self) -> list[float]:
        return sorted(c for c, r in self.results.items() if r.feasible)

    def saturation_cap(self, tol: float = 1e-6) -> float | None:
        """Smallest tested cap whose makespan matches the loosest cap's
        (beyond it, power is no longer the constraint)."""
        feas = self.feasible_caps()
        if not feas:
            return None
        best = self.results[feas[-1]].makespan_s
        for cap in feas:
            if self.results[cap].makespan_s <= best * (1 + tol):
                return cap
        return feas[-1]


class ParametricCapSolver:
    """The fixed-order LP assembled once, solvable at any cap.

    Compiles the model from the shared IR at a placeholder cap, freezes
    the sparse matrix, and answers each :meth:`solve` by overriding the
    RHS of the :data:`~.model.CAP_ROW_TAG` rows — skipping model build
    and matrix assembly entirely.  Optionally consults/feeds a
    :class:`repro.exec.SolverCache` with the same keys as
    :func:`~repro.exec.cache.cached_solve_fixed_order_lp`, so parametric
    and per-cap callers share warm entries.
    """

    def __init__(
        self,
        trace: Trace,
        events: EventStructure | None = None,
        power_tiebreak: float = 1e-9,
        instance: ProblemInstance | None = None,
    ) -> None:
        if instance is None:
            instance = build_problem_instance(trace, events=events)
        self.instance = instance
        self.power_tiebreak = float(power_tiebreak)
        # The placeholder cap never reaches the solver: every solve
        # overrides the tagged rows' RHS with its own cap.
        self._compiled = compile_fixed_order(
            instance, cap_w=1.0, power_tiebreak=power_tiebreak
        )
        self._frozen = self._compiled.freeze()

    @property
    def events(self) -> EventStructure:
        return self.instance.events

    @property
    def n_solves(self) -> int:
        """LP solves actually performed (cache hits excluded)."""
        return self._frozen.n_solves

    def solve(
        self,
        cap_w: float,
        cache=None,
        time_limit_s: float | None = None,
    ) -> FixedOrderLpResult:
        """Solve the frozen model at ``cap_w`` (cache-aware)."""
        if cap_w <= 0:
            raise ValueError(f"cap must be positive, got {cap_w}")
        key = None
        if cache is not None:
            # Imported here: repro.exec sits above repro.core in the
            # layering (it imports this package's siblings).
            from ..exec.cache import lp_result_from_payload, lp_result_payload
            from ..exec.keys import fixed_order_lp_key

            key = fixed_order_lp_key(
                self.instance.trace,
                cap_w,
                power_tiebreak=self.power_tiebreak,
                time_limit_s=time_limit_s,
            )
            payload = cache.get(key)
            if payload is not None:
                return lp_result_from_payload(payload, self.instance.events)
        solution = self._frozen.solve(
            time_limit_s=time_limit_s, rhs={CAP_ROW_TAG: float(cap_w)}
        )
        if solution.status is LpStatus.OPTIMAL:
            schedule = extract_schedule(
                self._compiled, solution, cap_w=float(cap_w)
            )
        else:
            schedule = None
        result = FixedOrderLpResult(
            schedule=schedule, solution=solution, events=self.instance.events
        )
        if key is not None:
            cache.put(key, lp_result_payload(result))
        return result


def solve_cap_sweep(
    trace: Trace,
    caps_w: list[float] | tuple[float, ...],
    events: EventStructure | None = None,
    power_tiebreak: float = 1e-9,
    cache=None,
    instance: ProblemInstance | None = None,
    parametric: bool = True,
) -> CapSweepResult:
    """Solve the fixed-order LP at every cap from one assembled model.

    ``cache`` (a :class:`repro.exec.SolverCache`) memoizes each cap's
    solution on disk by content address, so repeated sweeps over
    overlapping cap grids skip already-solved caps entirely.

    ``parametric=False`` falls back to a full per-cap rebuild — every cap
    pays trace -> events -> IR -> LP compilation -> matrix assembly again
    (unless the caller hands in ``events``/``instance``, which are then
    shared as given).  The results are identical (the benchmark asserts
    it); the flag exists as the comparison baseline and as an escape
    hatch.
    """
    if not caps_w:
        raise ValueError("need at least one cap")
    if parametric:
        solver = ParametricCapSolver(
            trace, events=events, power_tiebreak=power_tiebreak,
            instance=instance,
        )
        results = {
            float(cap): solver.solve(float(cap), cache=cache) for cap in caps_w
        }
        return CapSweepResult(trace=trace, results=results)

    if cache is not None:
        from ..exec.cache import cached_solve_fixed_order_lp

        solve = functools.partial(cached_solve_fixed_order_lp, cache=cache)
    else:
        solve = solve_fixed_order_lp
    results = {
        float(cap): solve(
            trace,
            float(cap),
            events=events,
            power_tiebreak=power_tiebreak,
            instance=instance,
        )
        for cap in caps_w
    }
    return CapSweepResult(trace=trace, results=results)


def minimum_feasible_cap(
    trace: Trace,
    lo_w: float,
    hi_w: float,
    tol_w: float = 0.25,
    events: EventStructure | None = None,
    cache=None,
    instance: ProblemInstance | None = None,
    solver: ParametricCapSolver | None = None,
) -> float | None:
    """Bisect for the smallest feasible job cap in [lo, hi].

    Returns None when even ``hi_w`` is infeasible.  Used by facility
    tooling to derive a job's ``min_w`` request from its trace.  The
    bisection re-solves one frozen model per probe and consults ``cache``
    (when given) before each solve, so a sweep's warm cache serves the
    bisection's endpoints for free.  Pass ``solver`` to reuse an already
    assembled :class:`ParametricCapSolver` (and observe its
    :attr:`~ParametricCapSolver.n_solves` afterwards).
    """
    if lo_w <= 0 or hi_w < lo_w or tol_w <= 0:
        raise ValueError("need 0 < lo <= hi and tol > 0")
    if solver is None:
        solver = ParametricCapSolver(trace, events=events, instance=instance)
    if not solver.solve(hi_w, cache=cache).feasible:
        return None
    if solver.solve(lo_w, cache=cache).feasible:
        return lo_w
    lo, hi = lo_w, hi_w  # lo infeasible, hi feasible
    while hi - lo > tol_w:
        mid = 0.5 * (lo + hi)
        if solver.solve(mid, cache=cache).feasible:
            hi = mid
        else:
            lo = mid
    return hi
