"""Experiment orchestration: Static vs Conductor vs LP comparisons.

The measurement protocol mirrors the paper's (§5.3, §6):

* Static and Conductor execute ``run_iterations`` time steps; the first
  ``discard_iterations`` (Conductor's configuration-exploration phase) are
  dropped.  Conductor's steady state is taken from the trailing window,
  where its reallocation loop has converged — the paper amortizes the
  adaptation over hundreds of iterations, which the window stands in for.
* The LP schedules a shorter trace (iterations are statistically
  identical), and its per-iteration bound is compared against the measured
  per-iteration times of the runtimes.

Improvements are reported the way the paper states them: "A improves on B
by x%" means ``t_B / t_A - 1`` in per-iteration time.

Since the scenario layer landed, this module is a *view*: the paper's
three-way comparison is one particular :class:`~repro.scenarios.spec.
ScenarioSpec` (see :func:`comparison_spec`), executed by
:func:`~repro.scenarios.run.run_scenarios` like any other N-way scenario
and then projected onto the historical :class:`ComparisonResult` shape.
Caching, parallel fan-out, and trace scopes all come from that layer;
the numbers are bit-identical to the pre-scenario implementation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..exec.cache import SolverCache
from ..machine.variability import make_power_models
from ..runtime.conductor import ConductorConfig
from ..scenarios.run import (
    ScenarioCell,
    reset_cap_solvers,
    run_scenario_cell,
    run_scenarios,
)
from ..scenarios.spec import PolicySpec, ScenarioSpec
from ..workloads import BENCHMARKS

__all__ = [
    "ExperimentConfig",
    "ComparisonResult",
    "make_power_models",
    "comparison_spec",
    "run_comparison",
    "sweep_caps",
    "improvement_pct",
    "DEFAULT_CAPS_W",
]

#: The paper's per-socket cap sweep (Figures 9-15).
DEFAULT_CAPS_W = (30.0, 40.0, 50.0, 60.0, 70.0, 80.0)


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared parameters of a benchmark comparison."""

    benchmark: str
    n_ranks: int = 32
    run_iterations: int = 24
    lp_iterations: int = 4
    discard_iterations: int = 3
    steady_window: int = 12
    seed: int = 2015
    efficiency_seed: int = 42
    efficiency_sigma: float = 0.04
    conductor: ConductorConfig = field(
        default_factory=lambda: ConductorConfig(
            realloc_period=4, measurement_noise=0.01, step_w=2.5
        )
    )

    def __post_init__(self) -> None:
        if self.benchmark not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {self.benchmark!r}; "
                f"choose from {sorted(BENCHMARKS)}"
            )
        if self.run_iterations <= self.discard_iterations:
            raise ValueError("run_iterations must exceed discard_iterations")
        if self.steady_window > self.run_iterations - self.discard_iterations:
            raise ValueError("steady_window larger than the measured region")
        if self.efficiency_sigma < 0:
            raise ValueError("efficiency_sigma must be >= 0")

    def cache_document(self) -> dict:
        """Canonical JSON-safe dictionary of every field (cache keying)."""
        return dataclasses.asdict(self)


@dataclass
class ComparisonResult:
    """Per-iteration times of the three strategies under one cap.

    All three times are None when the benchmark is not schedulable at the
    cap (the paper's missing lowest-power bars for SP and LULESH).
    """

    benchmark: str
    cap_per_socket_w: float
    n_ranks: int
    static_s: float | None
    conductor_s: float | None
    lp_s: float | None  # None when the LP is infeasible at this cap
    lp_discrete_s: float | None = None
    conductor_reallocs: int = 0
    schedulable: bool = True

    @property
    def job_cap_w(self) -> float:
        """Total job power budget: per-socket cap times rank count."""
        return self.cap_per_socket_w * self.n_ranks

    @property
    def feasible(self) -> bool:
        """Whether the LP found a schedule at this cap."""
        return self.lp_s is not None

    @property
    def lp_vs_static_pct(self) -> float | None:
        """LP bound's improvement over Static, in percent."""
        return improvement_pct(self.static_s, self.lp_s)

    @property
    def lp_vs_conductor_pct(self) -> float | None:
        """LP bound's improvement over Conductor, in percent."""
        return improvement_pct(self.conductor_s, self.lp_s)

    @property
    def conductor_vs_static_pct(self) -> float | None:
        """Conductor's improvement over Static, in percent."""
        return improvement_pct(self.static_s, self.conductor_s)


def improvement_pct(slower: float | None, faster: float | None) -> float | None:
    """Potential speedup of ``faster`` over ``slower`` as the paper reports
    it: positive when ``faster`` wins."""
    if slower is None or faster is None:
        return None
    return (slower / faster - 1.0) * 100.0


# ----------------------------------------------------------------------
def comparison_spec(
    cfg: ExperimentConfig,
    caps_per_socket_w: tuple[float, ...] = DEFAULT_CAPS_W,
    include_discrete: bool = False,
) -> ScenarioSpec:
    """The paper's three-way comparison expressed as a scenario spec.

    This is the single source of truth for what ``run_comparison`` and
    ``sweep_caps`` evaluate: a ``{static, conductor, lp}`` policy list
    with the experiment's Conductor tunables and measurement protocol
    carried over verbatim.
    """
    return ScenarioSpec(
        benchmark=cfg.benchmark,
        caps_per_socket_w=tuple(caps_per_socket_w),
        policies=(
            PolicySpec("static"),
            PolicySpec("conductor", config=dataclasses.asdict(cfg.conductor)),
            PolicySpec("lp", config={"include_discrete": include_discrete}),
        ),
        n_ranks=cfg.n_ranks,
        run_iterations=cfg.run_iterations,
        lp_iterations=cfg.lp_iterations,
        discard_iterations=cfg.discard_iterations,
        steady_window=cfg.steady_window,
        seed=cfg.seed,
        efficiency_seed=cfg.efficiency_seed,
        efficiency_sigma=cfg.efficiency_sigma,
    )


def _cell_to_comparison(cell: ScenarioCell) -> ComparisonResult:
    """Project one three-policy scenario cell onto the historical shape."""
    static = cell.outcomes["static"]
    conductor = cell.outcomes["conductor"]
    lp = cell.outcomes["lp"]
    return ComparisonResult(
        benchmark=cell.benchmark,
        cap_per_socket_w=cell.cap_per_socket_w,
        n_ranks=cell.n_ranks,
        static_s=static.time_s,
        conductor_s=conductor.time_s,
        lp_s=lp.time_s,
        lp_discrete_s=lp.extra.get("discrete_s"),
        conductor_reallocs=int(conductor.extra.get("reallocs") or 0),
        schedulable=cell.schedulable,
    )


def run_comparison(
    cfg: ExperimentConfig,
    cap_per_socket_w: float,
    include_discrete: bool = False,
    cache: SolverCache | None = None,
) -> ComparisonResult:
    """Run Static, Conductor, and the LP for one benchmark and cap.

    ``cache`` memoizes the whole comparison cell (both simulator replays
    and the LP solution) by content address; None falls back to the
    ambient :class:`~repro.exec.options.ExecutionOptions` (whose default
    is no caching).  A warm cell skips tracing, both engine runs, and the
    LP solve entirely.  Cell keys are derived from the scenario spec's
    hash, so the same cell is warm for ``sweep_caps`` and for any N-way
    scenario with identical protocol and policy list.
    """
    spec = comparison_spec(cfg, (cap_per_socket_w,), include_discrete)
    # Top-level single-cell entry: start from a cold solver pool so the
    # solve audit (cold vs re-solve) does not depend on earlier runs in
    # this process, mirroring run_scenarios.
    reset_cap_solvers(spec)
    cell = run_scenario_cell(spec, cap_per_socket_w, cache=cache)
    return _cell_to_comparison(cell)


def sweep_caps(
    cfg: ExperimentConfig,
    caps_per_socket_w: tuple[float, ...] = DEFAULT_CAPS_W,
    workers: int | None = None,
    cache: SolverCache | None = None,
) -> list[ComparisonResult]:
    """Run the full cap sweep for one benchmark (one paper figure line).

    Every cap is an independent, fully seeded cell; with ``workers > 1``
    the cells fan out over a process pool with results in cap order —
    bit-identical to the serial sweep.  ``workers``/``cache`` default to
    the ambient :class:`~repro.exec.options.ExecutionOptions` (serial,
    uncached), which is also the benchmark harness's measured path.
    """
    spec = comparison_spec(cfg, tuple(caps_per_socket_w))
    result = run_scenarios(spec, workers=workers, cache=cache)
    return [_cell_to_comparison(cell) for cell in result.cells]
