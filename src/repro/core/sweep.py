"""Efficient LP cap sweeps: share the trace-derived structure across caps.

The paper's Figures 9-15 solve the same trace under many power caps.  The
event order and activity sets depend only on the trace (the initial
schedule is power-unconstrained), so they are computed once; each cap then
only rebuilds and re-solves the LP.  For dense sweeps (Figure 8's 106
caps) this saves the dominant share of the harness's Python-side time.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..machine.cpu import XEON_E5_2670
from ..machine.performance import TaskTimeModel
from ..simulator.trace import Trace
from .events import EventStructure, build_event_structure
from .fixed_order_lp import FixedOrderLpResult, solve_fixed_order_lp

__all__ = ["CapSweepResult", "solve_cap_sweep", "minimum_feasible_cap"]


@dataclass
class CapSweepResult:
    """Solutions of one trace across many caps."""

    trace: Trace
    results: dict[float, FixedOrderLpResult]

    def makespans(self) -> dict[float, float | None]:
        """cap -> makespan (None where infeasible)."""
        return {
            cap: (res.makespan_s if res.feasible else None)
            for cap, res in self.results.items()
        }

    def feasible_caps(self) -> list[float]:
        return sorted(c for c, r in self.results.items() if r.feasible)

    def saturation_cap(self, tol: float = 1e-6) -> float | None:
        """Smallest tested cap whose makespan matches the loosest cap's
        (beyond it, power is no longer the constraint)."""
        feas = self.feasible_caps()
        if not feas:
            return None
        best = self.results[feas[-1]].makespan_s
        for cap in feas:
            if self.results[cap].makespan_s <= best * (1 + tol):
                return cap
        return feas[-1]


def solve_cap_sweep(
    trace: Trace,
    caps_w: list[float] | tuple[float, ...],
    events: EventStructure | None = None,
    power_tiebreak: float = 1e-9,
    cache=None,
) -> CapSweepResult:
    """Solve the fixed-order LP at every cap, reusing the event structure.

    ``cache`` (a :class:`repro.exec.SolverCache`) memoizes each cap's
    solution on disk by content address, so repeated sweeps over
    overlapping cap grids skip already-solved caps entirely.
    """
    if not caps_w:
        raise ValueError("need at least one cap")
    if cache is not None:
        # Imported here: repro.exec.cache sits above repro.core in the
        # layering (it imports this package's siblings).
        from ..exec.cache import cached_solve_fixed_order_lp

        solve = functools.partial(cached_solve_fixed_order_lp, cache=cache)
    else:
        solve = solve_fixed_order_lp
    if events is None:
        events = build_event_structure(trace.graph, TaskTimeModel(XEON_E5_2670))
    results = {
        float(cap): solve(
            trace, float(cap), events=events, power_tiebreak=power_tiebreak
        )
        for cap in caps_w
    }
    return CapSweepResult(trace=trace, results=results)


def minimum_feasible_cap(
    trace: Trace,
    lo_w: float,
    hi_w: float,
    tol_w: float = 0.25,
    events: EventStructure | None = None,
) -> float | None:
    """Bisect for the smallest feasible job cap in [lo, hi].

    Returns None when even ``hi_w`` is infeasible.  Used by facility
    tooling to derive a job's ``min_w`` request from its trace.
    """
    if lo_w <= 0 or hi_w < lo_w or tol_w <= 0:
        raise ValueError("need 0 < lo <= hi and tol > 0")
    if events is None:
        events = build_event_structure(trace.graph, TaskTimeModel(XEON_E5_2670))
    if not solve_fixed_order_lp(trace, hi_w, events=events).feasible:
        return None
    if solve_fixed_order_lp(trace, lo_w, events=events).feasible:
        return lo_w
    lo, hi = lo_w, hi_w  # lo infeasible, hi feasible
    while hi - lo > tol_w:
        mid = 0.5 * (lo + hi)
        if solve_fixed_order_lp(trace, mid, events=events).feasible:
            hi = mid
        else:
            lo = mid
    return hi
