"""Solver-scaling benchmarks: the LP's practical-tractability claim.

Paper §3.3: the fixed-order LP "could be applied to thousands of processes
and hundreds of edges per process" where flow-ILP instances stall beyond
~30 edges.  These benchmarks measure LP assembly+solve time as the trace
grows, and pin the asymmetry against the flow ILP on identical input.
"""

import pytest

from repro.core import solve_fixed_order_lp, solve_flow_ilp
from repro.experiments.runner import make_power_models
from repro.simulator import trace_application
from repro.workloads import WorkloadSpec, make_comd, two_rank_exchange


def _comd_trace(n_ranks, iterations):
    app = make_comd(WorkloadSpec(n_ranks=n_ranks, iterations=iterations, seed=1))
    return trace_application(app, make_power_models(n_ranks))


@pytest.mark.parametrize("n_ranks,iterations", [(8, 4), (16, 4), (32, 4)])
def test_lp_scaling_in_ranks(benchmark, n_ranks, iterations):
    trace = _comd_trace(n_ranks, iterations)
    cap = 40.0 * n_ranks
    result = benchmark.pedantic(
        solve_fixed_order_lp, args=(trace, cap), rounds=2, iterations=1
    )
    assert result.feasible


def test_lp_scaling_in_iterations(benchmark):
    trace = _comd_trace(8, 16)  # 256 tasks
    result = benchmark.pedantic(
        solve_fixed_order_lp, args=(trace, 320.0), rounds=2, iterations=1
    )
    assert result.feasible


def test_flow_ilp_on_small_instance(benchmark):
    trace = trace_application(
        two_rank_exchange(phases=2), make_power_models(2, 7, sigma=0.02)
    )
    result = benchmark.pedantic(
        solve_flow_ilp, args=(trace, 60.0), rounds=2, iterations=1
    )
    assert result.feasible


def test_trace_construction_speed(benchmark):
    app = make_comd(WorkloadSpec(n_ranks=16, iterations=8, seed=1))
    models = make_power_models(16)
    trace = benchmark.pedantic(
        trace_application, args=(app, models), rounds=2, iterations=1
    )
    assert len(trace.task_edges) == app.n_tasks()
