"""Power-allocation runtimes evaluated against the LP bound."""

from .adagio import SlackEstimator, slowest_fitting_point, task_key
from .adagio_policy import AdagioPolicy
from .conductor import ConductorConfig, ConductorPolicy
from .config_search import ConfigSearchPolicy, energy_optimal_point
from .dvfs_energy import DvfsEnergyPolicy, min_energy_fitting_point
from .explorer import ExplorationPlan, exploration_rounds_for_full_coverage
from .selection_only import SelectionOnlyPolicy
from .static import StaticPolicy

__all__ = [
    "AdagioPolicy",
    "ConductorConfig",
    "ConductorPolicy",
    "ConfigSearchPolicy",
    "DvfsEnergyPolicy",
    "ExplorationPlan",
    "SelectionOnlyPolicy",
    "SlackEstimator",
    "StaticPolicy",
    "energy_optimal_point",
    "exploration_rounds_for_full_coverage",
    "min_energy_fitting_point",
    "slowest_fitting_point",
    "task_key",
]
