"""Schedule replay: execute an application under an LP/ILP-derived schedule.

The paper validates its offline schedules by replaying them on the real
benchmarks — "as the application encounters each MPI call, our replay
mechanism changes the configuration appropriately for the next computation
task" (§6.1), skipping the change when the upcoming task is too short to
amortize the ~145 µs DVFS transition (threshold 1 ms).

:class:`ReplayPolicy` implements exactly that against the simulator, and
:func:`replay_schedule` wraps the engine run plus an instantaneous-power
verification, returning the replayed makespan and the observed power peak.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from ..machine.configuration import Configuration
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.performance import TaskKernel, TaskTimeModel
from ..machine.power import SocketPowerModel
from .engine import (
    Engine,
    RunPlan,
    SimulationResult,
    SweepRankPlan,
    SweepRunPlan,
    TaskRecord,
    batch_task_durations,
    batch_task_powers,
    kernel_arrays_as_columns,
    plan_from_configs,
    rank_kernel_arrays,
)
from .network import IB_QDR, NetworkModel
from .program import Application, TaskRef
from .telemetry import job_power_timelines_sweep, verify_power_cap

__all__ = [
    "ReplayPolicy",
    "ReplayOutcome",
    "replay_schedule",
    "build_replay_sweep_plan",
    "replay_schedule_sweep",
]


class ReplayPolicy:
    """Replays a per-task configuration assignment.

    Parameters
    ----------
    assignment:
        Configuration per :class:`TaskRef`; tasks absent from the map run
        at the rank's current configuration (first task of a rank must be
        present).
    min_switch_duration_s:
        Do not switch configurations for tasks shorter than this (the
        paper's 1 ms threshold): the rank's current configuration is kept.
    """

    def __init__(
        self,
        assignment: dict[TaskRef, Configuration],
        spec: CpuSpec = XEON_E5_2670,
        switch_overhead_s: float = 145e-6,
        min_switch_duration_s: float = 1e-3,
    ) -> None:
        self.assignment = dict(assignment)
        self.time_model = TaskTimeModel(spec)
        self.switch_overhead_s = switch_overhead_s
        self.min_switch_duration_s = min_switch_duration_s

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """The scheduled configuration, subject to the 1 ms switch rule."""
        target = self.assignment.get(ref, current)
        if target is None:
            raise KeyError(
                f"replay schedule has no configuration for first task {ref}"
            )
        if current is not None and target != current:
            planned = self.time_model.duration(
                kernel, target.freq_ghz, target.threads, target.duty
            )
            if planned < self.min_switch_duration_s:
                return current  # too short to amortize the transition
        return target

    def plan_run(self, app: Application, engine: Engine) -> RunPlan:
        """Whole-run plan: vectorized evaluation of the schedule replay.

        Per rank, the assigned targets' 1 ms-rule durations are batch
        evaluated up front (the rule depends only on the static
        assignment), then a cheap sequential pass applies the
        carry-current semantics of :meth:`configure`; the chosen
        configurations' durations and powers are batch evaluated with
        the engine's machine models.  Bit-identical to the scalar path.
        """
        arrays = rank_kernel_arrays(app)
        per_rank = []
        for rank in range(app.n_ranks):
            ka = arrays[rank]
            n_tasks = len(ka.kernels)
            targets: list[Configuration | None] = [None] * n_tasks
            freq = np.ones(n_tasks)
            thr = np.ones(n_tasks, dtype=np.int64)
            duty = np.ones(n_tasks)
            for i in range(n_tasks):
                target = self.assignment.get(TaskRef(rank, i))
                if target is not None:
                    targets[i] = target
                    freq[i] = target.freq_ghz
                    thr[i] = target.threads
                    duty[i] = target.duty
            planned = batch_task_durations(
                self.time_model, ka, freq, thr, duty
            ).tolist()
            configs: list[Configuration] = []
            current: Configuration | None = None
            for i in range(n_tasks):
                target = targets[i]
                if target is None:
                    if current is None:
                        raise KeyError(
                            "replay schedule has no configuration for "
                            f"first task {TaskRef(rank, i)}"
                        )
                    target = current
                elif (
                    current is not None
                    and target != current
                    and planned[i] < self.min_switch_duration_s
                ):
                    target = current  # too short to amortize the transition
                configs.append(target)
                current = target
            per_rank.append(configs)
        return plan_from_configs(app, engine, per_rank)

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        return 0.0

    def switch_cost_s(self) -> float:
        return self.switch_overhead_s


@dataclass(frozen=True)
class ReplayOutcome:
    """Replayed schedule execution plus its power verification."""

    result: SimulationResult
    cap_w: float
    peak_power_w: float
    cap_respected: bool

    @property
    def makespan_s(self) -> float:
        return self.result.makespan_s


def replay_schedule(
    app: Application,
    assignment: dict[TaskRef, Configuration],
    power_models: list[SocketPowerModel],
    cap_w: float,
    network: NetworkModel = IB_QDR,
    spec: CpuSpec = XEON_E5_2670,
    slack_mode: str = "task",
    cap_rel_tol: float = 5e-3,
    switch_overhead_s: float = 145e-6,
    min_switch_duration_s: float = 1e-3,
    label: str | None = None,
) -> ReplayOutcome:
    """Run ``app`` under a schedule and verify the job power constraint.

    ``cap_rel_tol`` allows the small overshoot inherent to discrete
    rounding (the paper's replayed schedules are "within their power
    constraints" after the same rounding).  ``label``, when given, wraps
    the replay in a trace-recorder run scope (the scenario layer passes
    its policy-instance labels here), so replays land in their own
    Perfetto process group; None leaves the ambient scope untouched.
    """
    from ..obs.recorder import current_recorder

    engine = Engine(power_models, network=network, spec=spec)
    policy = ReplayPolicy(
        assignment,
        spec=spec,
        switch_overhead_s=switch_overhead_s,
        min_switch_duration_s=min_switch_duration_s,
    )
    rec = current_recorder() if label is not None else None
    with rec.run_scope(label) if rec is not None else nullcontext():
        result = engine.run(app, policy)
    ok, peak = verify_power_cap(
        result, power_models, cap_w, slack_mode=slack_mode, rel_tol=cap_rel_tol
    )
    return ReplayOutcome(
        result=result, cap_w=cap_w, peak_power_w=peak, cap_respected=ok
    )


def build_replay_sweep_plan(
    app: Application,
    engine: Engine,
    assignments: list[dict[TaskRef, Configuration]],
    spec: CpuSpec = XEON_E5_2670,
    switch_overhead_s: float = 145e-6,
    min_switch_duration_s: float = 1e-3,
) -> SweepRunPlan:
    """Plan every sweep point's schedule replay in one batch.

    Column ``c`` replicates exactly what
    :meth:`ReplayPolicy.plan_run` would produce for ``assignments[c]``:
    the 1 ms-rule durations of the assigned targets are evaluated for all
    points with one broadcast per rank, a sequential pass applies the
    carry-current semantics per point, and the chosen configurations'
    durations and powers are batch evaluated ``[n_tasks, n_points]`` at
    once.  Bit-identical per point (the tests assert this).
    """
    time_model = TaskTimeModel(spec)
    arrays = rank_kernel_arrays(app)
    n_points = len(assignments)
    rank_plans = []
    for rank in range(app.n_ranks):
        ka = arrays[rank]
        ka_cols = kernel_arrays_as_columns(ka)
        n_tasks = len(ka.kernels)
        targets = [[None] * n_points for _ in range(n_tasks)]
        freq = np.ones((n_tasks, n_points))
        thr = np.ones((n_tasks, n_points), dtype=np.int64)
        duty = np.ones((n_tasks, n_points))
        for i in range(n_tasks):
            ref = TaskRef(rank, i)
            row_t = targets[i]
            for c, assignment in enumerate(assignments):
                target = assignment.get(ref)
                if target is not None:
                    row_t[c] = target
                    freq[i, c] = target.freq_ghz
                    thr[i, c] = target.threads
                    duty[i, c] = target.duty
        planned = batch_task_durations(time_model, ka_cols, freq, thr, duty)
        # Carry-current pass, per point (cheap python over a small table;
        # the float work above and below is batched).
        configs: list[list[Configuration]] = []
        current: list[Configuration | None] = [None] * n_points
        switch_add = np.zeros((n_tasks, n_points))
        for i in range(n_tasks):
            row_t = targets[i]
            row: list[Configuration] = []
            for c in range(n_points):
                target = row_t[c]
                cur = current[c]
                if target is None:
                    if cur is None:
                        raise KeyError(
                            "replay schedule has no configuration for "
                            f"first task {TaskRef(rank, i)}"
                        )
                    target = cur
                elif (
                    cur is not None
                    and target != cur
                    and planned[i, c] < min_switch_duration_s
                ):
                    target = cur  # too short to amortize the transition
                if cur is not None and target != cur:
                    switch_add[i, c] = switch_overhead_s
                row.append(target)
                current[c] = target
            configs.append(row)
        for i in range(n_tasks):
            row = configs[i]
            for c in range(n_points):
                cfg = row[c]
                freq[i, c] = cfg.freq_ghz
                thr[i, c] = cfg.threads
                duty[i, c] = cfg.duty
        durations = batch_task_durations(
            engine.time_models[rank], ka_cols, freq, thr, duty
        )
        powers = batch_task_powers(
            engine.power_models[rank], ka_cols, freq, thr, duty
        )
        rank_plans.append(SweepRankPlan(
            configs=configs,
            durations=durations,
            powers=powers,
            switch_add=switch_add,
            n_switches=np.count_nonzero(switch_add, axis=0),
        ))
    return SweepRunPlan(ranks=rank_plans, n_points=n_points)


def replay_schedule_sweep(
    app: Application,
    assignments: list[dict[TaskRef, Configuration]],
    power_models: list[SocketPowerModel],
    caps_w: list[float],
    network: NetworkModel = IB_QDR,
    spec: CpuSpec = XEON_E5_2670,
    slack_mode: str = "task",
    cap_rel_tol: float = 5e-3,
    switch_overhead_s: float = 145e-6,
    min_switch_duration_s: float = 1e-3,
) -> list[ReplayOutcome]:
    """Replay one schedule per cap in a single vectorized DAG walk.

    The sweep analogue of :func:`replay_schedule`: ``assignments[c]`` is
    verified against ``caps_w[c]``, and every outcome is bit-identical to
    the corresponding per-cap :func:`replay_schedule` call (one
    application walk with vector clocks instead of ``len(caps_w)``
    walks; the tests assert identity).  Falls back to per-cap scalar
    runs when a trace recorder is active, since per-event emission needs
    scalar timestamps.
    """
    from ..obs.recorder import current_recorder

    if len(assignments) != len(caps_w):
        raise ValueError(
            f"{len(assignments)} assignments but {len(caps_w)} caps"
        )
    if current_recorder() is not None:
        return [
            replay_schedule(
                app, assignment, power_models, cap_w,
                network=network, spec=spec, slack_mode=slack_mode,
                cap_rel_tol=cap_rel_tol,
                switch_overhead_s=switch_overhead_s,
                min_switch_duration_s=min_switch_duration_s,
            )
            for assignment, cap_w in zip(assignments, caps_w)
        ]
    engine = Engine(power_models, network=network, spec=spec)
    policy = ReplayPolicy(
        {},
        spec=spec,
        switch_overhead_s=switch_overhead_s,
        min_switch_duration_s=min_switch_duration_s,
    )
    plan = build_replay_sweep_plan(
        app, engine, assignments,
        spec=spec,
        switch_overhead_s=switch_overhead_s,
        min_switch_duration_s=min_switch_duration_s,
    )
    sweep = engine.run_sweep(app, policy, plan)
    # Cap verification straight from the sweep arrays: same timelines as
    # verify_power_cap would compute per materialized result.
    timelines = job_power_timelines_sweep(
        sweep.starts,
        [rp.durations for rp in plan.ranks],
        [rp.powers for rp in plan.ranks],
        sweep.makespans,
        power_models,
        slack_mode=slack_mode,
    )
    outcomes = []
    for c, cap_w in enumerate(caps_w):
        peak = timelines[c].max_power()
        outcomes.append(ReplayOutcome(
            result=sweep.result(c),
            cap_w=cap_w,
            peak_power_w=peak,
            cap_respected=peak <= cap_w * (1.0 + cap_rel_tol),
        ))
    return outcomes
