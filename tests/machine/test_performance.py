"""Unit tests for the task time model."""

import pytest

from repro.machine import TaskKernel, XEON_E5_2670

FMAX = XEON_E5_2670.fmax_ghz
FMIN = XEON_E5_2670.fmin_ghz


class TestTaskKernel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskKernel(cpu_seconds=-1.0)
        with pytest.raises(ValueError):
            TaskKernel(cpu_seconds=0.0, mem_seconds=0.0)
        with pytest.raises(ValueError):
            TaskKernel(cpu_seconds=1.0, parallel_fraction=1.5)
        with pytest.raises(ValueError):
            TaskKernel(cpu_seconds=1.0, contention_penalty=-0.1)
        with pytest.raises(ValueError):
            TaskKernel(cpu_seconds=1.0, bw_saturation_threads=0)

    def test_scaled(self, kernel):
        big = kernel.scaled(2.0)
        assert big.cpu_seconds == pytest.approx(2 * kernel.cpu_seconds)
        assert big.mem_seconds == pytest.approx(2 * kernel.mem_seconds)
        assert big.parallel_fraction == kernel.parallel_fraction
        with pytest.raises(ValueError):
            kernel.scaled(0.0)

    def test_kernels_hashable_for_caching(self, kernel):
        assert hash(kernel) == hash(kernel)
        assert kernel != kernel.scaled(1.5)
        assert len({kernel, kernel, kernel.scaled(2.0)}) == 2

    def test_total_reference_seconds(self, kernel):
        assert kernel.total_reference_seconds == pytest.approx(1.2)


class TestDuration:
    def test_frequency_scaling_affects_cpu_only(self, time_model):
        pure_cpu = TaskKernel(cpu_seconds=1.0, parallel_fraction=0.0)
        pure_mem = TaskKernel(cpu_seconds=0.0, mem_seconds=1.0,
                              mem_parallel_fraction=0.0)
        assert time_model.duration(pure_cpu, FMIN, 1) == pytest.approx(
            time_model.duration(pure_cpu, FMAX, 1) * FMAX / FMIN
        )
        assert time_model.duration(pure_mem, FMIN, 1) == pytest.approx(
            time_model.duration(pure_mem, FMAX, 1)
        )

    def test_monotone_decreasing_in_frequency(self, time_model, kernel):
        durs = [time_model.duration(kernel, f, 8) for f in XEON_E5_2670.pstates]
        assert all(a < b for a, b in zip(durs, durs[1:]))  # pstates descend

    def test_amdahl_limits_thread_scaling(self, time_model):
        k = TaskKernel(cpu_seconds=1.0, parallel_fraction=0.5)
        t1 = time_model.duration(k, FMAX, 1)
        t8 = time_model.duration(k, FMAX, 8)
        assert t8 > t1 / 2  # serial half cannot shrink
        assert t8 < t1

    def test_bandwidth_saturation(self, time_model):
        k = TaskKernel(cpu_seconds=0.0, mem_seconds=1.0,
                       mem_parallel_fraction=1.0, bw_saturation_threads=4)
        t4 = time_model.duration(k, FMAX, 4)
        t8 = time_model.duration(k, FMAX, 8)
        assert t8 == pytest.approx(t4)  # no contention term -> flat beyond 4

    def test_cache_contention_slows_wide_configs(self, time_model, memory_kernel):
        t5 = time_model.duration(memory_kernel, FMAX, 5)
        t8 = time_model.duration(memory_kernel, FMAX, 8)
        assert t8 > t5  # the Table-3 mechanism: 8 threads lose to contention

    def test_duty_stretches_everything(self, time_model, kernel):
        full = time_model.duration(kernel, FMIN, 8, duty=1.0)
        half = time_model.duration(kernel, FMIN, 8, duty=0.5)
        assert half == pytest.approx(2 * full)

    def test_invalid_inputs(self, time_model, kernel):
        with pytest.raises(ValueError):
            time_model.duration(kernel, FMAX, 0)
        with pytest.raises(ValueError):
            time_model.duration(kernel, FMAX, 99)
        with pytest.raises(ValueError):
            time_model.duration(kernel, 0.0, 4)
        with pytest.raises(ValueError):
            time_model.duration(kernel, FMAX, 4, duty=1.5)


class TestBestConfiguration:
    def test_best_threads_compute_bound_is_all_cores(self, time_model, kernel):
        assert time_model.best_threads(kernel) == 8

    def test_best_threads_contended_is_fewer(self, time_model, memory_kernel):
        assert time_model.best_threads(memory_kernel) == 5

    def test_best_duration_is_minimum(self, time_model, kernel):
        best = time_model.best_duration(kernel)
        for n in range(1, 9):
            assert best <= time_model.duration(kernel, FMAX, n) + 1e-12
