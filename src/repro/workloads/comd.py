"""CoMD proxy: molecular dynamics with collective-only communication.

CoMD (§5.2) is unique among the paper's benchmarks in that *all* MPI
communication is collectives, so the only optimization opportunity is
power reallocation across ranks at every collective — the paper finds
modest LP gains (2.4-12.6%, median 4.6%) that shrink as the cap rises.

Structure per time step: a dominant force-computation task, a global
energy allreduce, a smaller atom-redistribution task, a second allreduce,
and the Pcontrol boundary.  Load imbalance is mild and mostly dynamic
(atoms migrate between domains), matching CoMD's near-balanced behaviour.
"""

from __future__ import annotations

import numpy as np

from ..machine.performance import TaskKernel
from ..simulator.program import Application, CollectiveOp, ComputeOp, PcontrolOp
from .base import WorkloadBuilder, WorkloadSpec, dynamic_jitter, static_imbalance

__all__ = ["FORCE_KERNEL", "REDISTRIBUTE_KERNEL", "make_comd"]

#: The embedded-atom force loop: compute-dominant, moderate memory traffic,
#: excellent thread scaling (neighbor lists parallelize cleanly) — which is
#: why 8 threads stay Pareto-efficient except at the lowest frequency
#: (paper Table 1 / Figure 1).
FORCE_KERNEL = TaskKernel(
    cpu_seconds=6.0,
    mem_seconds=0.9,
    parallel_fraction=0.995,
    mem_parallel_fraction=0.92,
    bw_saturation_threads=6,
    contention_threshold=8,
    contention_penalty=0.0,
    activity=1.0,
    mem_intensity=0.30,
    name="comd-force",
)

#: Atom redistribution bookkeeping between halo exchanges: small, slightly
#: more memory-bound.
REDISTRIBUTE_KERNEL = TaskKernel(
    cpu_seconds=0.5,
    mem_seconds=0.25,
    parallel_fraction=0.96,
    mem_parallel_fraction=0.9,
    bw_saturation_threads=5,
    contention_threshold=8,
    contention_penalty=0.0,
    activity=0.95,
    mem_intensity=0.40,
    name="comd-redistribute",
)

#: Static imbalance across domains (uniform lattice => tiny) and dynamic
#: per-step jitter from atom migration.
STATIC_SPREAD = 1.15
DYNAMIC_SIGMA = 0.008
ALLREDUCE_BYTES = 64


def make_comd(spec: WorkloadSpec = WorkloadSpec()) -> Application:
    """Generate the CoMD proxy application."""
    rng = np.random.default_rng(spec.seed)
    factors = static_imbalance(spec.n_ranks, STATIC_SPREAD, rng)
    b = WorkloadBuilder(name="comd", n_ranks=spec.n_ranks)
    b.metadata.update(
        {
            "benchmark": "CoMD",
            "communication": "collectives-only",
            "static_spread": STATIC_SPREAD,
            "dynamic_sigma": DYNAMIC_SIGMA,
        }
    )
    for it in range(spec.iterations):
        jitter = dynamic_jitter(spec.n_ranks, DYNAMIC_SIGMA, rng)
        for r in range(spec.n_ranks):
            work = factors[r] * jitter[r] * spec.scale
            b.add(r, ComputeOp(FORCE_KERNEL.scaled(work), it, label="force"))
            b.add(r, CollectiveOp("allreduce", ALLREDUCE_BYTES, iteration=it))
            b.add(
                r,
                ComputeOp(
                    REDISTRIBUTE_KERNEL.scaled(work), it, label="redistribute"
                ),
            )
            b.add(r, CollectiveOp("allreduce", ALLREDUCE_BYTES, iteration=it))
            b.add(r, PcontrolOp(it))
    return b.finish(spec.iterations)
