"""LULESH 2.0 proxy: shock hydrodynamics with point-to-point halo bursts.

LULESH (§5.2) differs from CoMD by relying on "a multitude of
point-to-point messages between collective calls".  Each time step runs
three solver phases — stress, hourglass-force, and position/velocity
update — separated by face-neighbor halo exchanges over a 3D domain
decomposition, and ends with the global dt allreduce.

The kernels are markedly memory-bound with shared-cache contention above
five threads: the paper's Table 3 shows that under a 50 W cap both the LP
and Conductor pick 4-5 threads at high frequency while Static's firmware-
forced 8 threads lose to cache contention — that behaviour comes from the
``contention_threshold=5`` / ``bw_saturation_threads=4`` parameters here.
"""

from __future__ import annotations

import numpy as np

from ..machine.performance import TaskKernel
from ..simulator.program import (
    Application,
    CollectiveOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    PcontrolOp,
    WaitOp,
)
from .base import WorkloadBuilder, WorkloadSpec, dynamic_jitter, static_imbalance

__all__ = ["STRESS_KERNEL", "HOURGLASS_KERNEL", "UPDATE_KERNEL", "make_lulesh",
           "neighbors_3d"]


def _kernel(cpu: float, mem: float, name: str) -> TaskKernel:
    return TaskKernel(
        cpu_seconds=cpu,
        mem_seconds=mem,
        parallel_fraction=0.99,
        mem_parallel_fraction=0.97,
        bw_saturation_threads=4,
        contention_threshold=5,
        contention_penalty=0.28,
        activity=1.05,
        mem_intensity=0.55,
        name=name,
    )


#: Element-centered stress integration (largest phase).
STRESS_KERNEL = _kernel(10.0, 9.0, "lulesh-stress")
#: Hourglass-mode force correction.
HOURGLASS_KERNEL = _kernel(7.0, 6.5, "lulesh-hourglass")
#: Node position/velocity update + EOS evaluation.
UPDATE_KERNEL = _kernel(4.0, 3.5, "lulesh-update")

STATIC_SPREAD = 1.22
DYNAMIC_SIGMA = 0.015
HALO_BYTES = 6 * 48 * 48 * 8  # one face of a ~48^3 local domain, 8B/value
DT_ALLREDUCE_BYTES = 8


def domain_dims(n_ranks: int) -> tuple[int, int, int]:
    """Near-cubic 3D factorization of the rank count (e.g. 32 -> 4x4x2)."""
    best = (n_ranks, 1, 1)
    best_score = float("inf")
    for x in range(1, n_ranks + 1):
        if n_ranks % x:
            continue
        rem = n_ranks // x
        for y in range(1, rem + 1):
            if rem % y:
                continue
            z = rem // y
            score = max(x, y, z) / min(x, y, z)
            if score < best_score:
                best, best_score = (x, y, z), score
    return best


def neighbors_3d(rank: int, dims: tuple[int, int, int]) -> list[int]:
    """Face neighbors of a rank in a non-periodic 3D grid, sorted."""
    nx, ny, nz = dims
    x, y, z = rank % nx, (rank // nx) % ny, rank // (nx * ny)
    out = []
    for dx, dy, dz in (
        (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)
    ):
        xx, yy, zz = x + dx, y + dy, z + dz
        if 0 <= xx < nx and 0 <= yy < ny and 0 <= zz < nz:
            out.append(xx + nx * (yy + ny * zz))
    return sorted(out)


def _halo_exchange(
    b: WorkloadBuilder, neighbor_map: dict[int, list[int]], it: int, phase: int
) -> None:
    """Nonblocking exchange with every face neighbor, then wait-all.

    Requests are tagged by phase so LULESH's three exchanges per iteration
    never alias; the same (irecv-all, isend-all, wait-all) order on every
    rank is deadlock-free by construction.
    """
    base_req = phase * 100
    for r, neighbors in neighbor_map.items():
        for i, nb in enumerate(neighbors):
            b.add(r, IrecvOp(src=nb, request=base_req + i, tag=phase, iteration=it))
        for i, nb in enumerate(neighbors):
            b.add(
                r,
                IsendOp(
                    dst=nb, size_bytes=HALO_BYTES, request=base_req + 50 + i,
                    tag=phase, iteration=it,
                ),
            )
        for i in range(len(neighbors)):
            b.add(r, WaitOp(base_req + i, iteration=it))
        for i in range(len(neighbors)):
            b.add(r, WaitOp(base_req + 50 + i, iteration=it))


def make_lulesh(spec: WorkloadSpec = WorkloadSpec()) -> Application:
    """Generate the LULESH proxy application."""
    rng = np.random.default_rng(spec.seed)
    dims = domain_dims(spec.n_ranks)
    neighbor_map = {r: neighbors_3d(r, dims) for r in range(spec.n_ranks)}
    factors = static_imbalance(spec.n_ranks, STATIC_SPREAD, rng)

    b = WorkloadBuilder(name="lulesh", n_ranks=spec.n_ranks)
    b.metadata.update(
        {
            "benchmark": "LULESH 2.0",
            "communication": "p2p halos + dt allreduce",
            "dims": dims,
            "static_spread": STATIC_SPREAD,
            "dynamic_sigma": DYNAMIC_SIGMA,
            # LULESH would not run under the paper's lowest cap (Fig. 15
            # starts at 40 W/socket); see DESIGN.md on unschedulability.
            "min_cap_per_socket_w": 40.0,
        }
    )
    phases = (
        ("stress", STRESS_KERNEL),
        ("hourglass", HOURGLASS_KERNEL),
        ("update", UPDATE_KERNEL),
    )
    for it in range(spec.iterations):
        jitter = dynamic_jitter(spec.n_ranks, DYNAMIC_SIGMA, rng)
        for phase_idx, (label, kernel) in enumerate(phases):
            for r in range(spec.n_ranks):
                work = factors[r] * jitter[r] * spec.scale
                b.add(r, ComputeOp(kernel.scaled(work), it, label=label))
            _halo_exchange(b, neighbor_map, it, phase_idx)
        for r in range(spec.n_ranks):
            b.add(
                r,
                CollectiveOp("allreduce", DT_ALLREDUCE_BYTES, iteration=it),
            )
            b.add(r, PcontrolOp(it))
    return b.finish(spec.iterations)
