"""Golden metrics determinism: serial == parallel, byte for byte.

The acceptance property of the metrics layer: the *deterministic* subset
of a sweep's metric snapshot is a pure function of what was computed —
so a serial sweep and the same sweep fanned out over two workers
produce byte-identical deterministic snapshots, while wall-clock and
scheduling-dependent numbers stay quarantined in the operational set.
"""

from __future__ import annotations

import json

from repro.exec.cache import SolverCache
from repro.obs.metrics import Metrics, use_metrics, validate_metrics_doc
from repro.obs.progress import ProgressReporter
from repro.scenarios.run import run_scenarios
from repro.scenarios.spec import PolicySpec, ScenarioSpec

POLICIES = (PolicySpec("static"), PolicySpec("lp"))


def small_spec(caps=(40.0, 60.0), **overrides) -> ScenarioSpec:
    kwargs = dict(
        benchmark="synthetic",
        caps_per_socket_w=caps,
        policies=POLICIES,
        n_ranks=4,
        run_iterations=8,
        lp_iterations=2,
        discard_iterations=2,
        steady_window=4,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def deterministic_bytes(metrics: Metrics) -> str:
    return json.dumps(metrics.to_dict(deterministic_only=True), sort_keys=True)


def sweep_metrics(spec: ScenarioSpec, workers: int, cache=None) -> Metrics:
    metrics = Metrics()
    with use_metrics(metrics):
        run_scenarios(spec, workers=workers, cache=cache)
    return metrics


class TestGoldenSerialVsParallel:
    def test_deterministic_snapshot_is_byte_identical(self):
        spec = small_spec(caps=(35.0, 45.0, 55.0))
        serial = sweep_metrics(spec, workers=1)
        parallel = sweep_metrics(spec, workers=2)
        assert deterministic_bytes(serial) == deterministic_bytes(parallel)
        assert validate_metrics_doc(serial.to_dict()) == []
        assert validate_metrics_doc(parallel.to_dict()) == []

    def test_deterministic_snapshot_is_byte_identical_with_cache(self, tmp_path):
        spec = small_spec()
        serial = sweep_metrics(spec, workers=1, cache=SolverCache(tmp_path / "a"))
        parallel = sweep_metrics(
            spec, workers=2, cache=SolverCache(tmp_path / "b")
        )
        assert deterministic_bytes(serial) == deterministic_bytes(parallel)
        assert serial.counter("cache.miss") > 0
        assert serial.counter("cache.store") > 0

    def test_expected_names_land_on_each_side_of_the_contract(self):
        metrics = sweep_metrics(small_spec(), workers=1)
        doc = metrics.to_dict(deterministic_only=True)
        for name in ("cells.computed", "solve.total", "sim.tasks"):
            assert doc["counters"].get(name, 0) > 0, name
        assert doc["gauges"]["sweep.cells_total"] == 2
        # Wall-clock histograms exist in the full snapshot but are
        # operational, never in the deterministic view.
        assert "cell.wall_s" in metrics.histograms
        assert "cell.wall_s" in metrics.operational
        assert "cell.wall_s" not in doc["histograms"]
        assert "solve.wall_s" in metrics.operational

    def test_warm_cells_count_as_cached_not_computed(self, tmp_path):
        spec = small_spec()
        cache = SolverCache(tmp_path)
        cold = sweep_metrics(spec, workers=1, cache=cache)
        warm = sweep_metrics(spec, workers=1, cache=cache)
        assert cold.counter("cells.computed") == 2
        assert cold.counter("cells.cached") == 0
        assert warm.counter("cells.computed") == 0
        assert warm.counter("cells.cached") == 2

    def test_results_unchanged_by_metrics_collection(self):
        spec = small_spec()
        bare = run_scenarios(spec)
        with use_metrics(Metrics()):
            observed = run_scenarios(spec)
        for a, b in zip(bare.cells, observed.cells):
            for name in spec.policy_labels():
                assert a.outcomes[name].time_s == b.outcomes[name].time_s


class TestProgressIntegration:
    def test_progress_sees_every_cell_serial_and_parallel(self):
        spec = small_spec(caps=(35.0, 45.0, 55.0))
        for workers in (1, 2):
            progress = ProgressReporter(total=3)
            run_scenarios(spec, workers=workers, progress=progress)
            assert progress.done == 3
            assert progress.failed == 0

    def test_journal_resume_counts_resumed_cells(self, tmp_path):
        spec = small_spec()
        journal = tmp_path / "journal.jsonl"
        run_scenarios(spec, journal=journal)
        metrics = Metrics()
        progress = ProgressReporter(total=2)
        with use_metrics(metrics):
            run_scenarios(spec, journal=journal, progress=progress)
        assert metrics.counter("journal.resumed") == 2
        assert "journal.resumed" in metrics.operational
        assert progress.done == 2
        assert metrics.counter("cells.computed") == 0
