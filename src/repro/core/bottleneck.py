"""Bottleneck analysis of LP schedules: what binds the makespan?

Given a solved schedule, answer the question a user asks next: *why* is
the bound what it is — which constraints are tight?  Three binding modes:

* **critical tasks** — tasks with zero scheduled slack (the makespan path);
* **power-bound events** — events whose active-task power sits at the cap
  (adding power there would speed the schedule);
* **structure-bound** — no event at the cap: the makespan is limited by
  dependencies alone (the cap is no longer the constraint; more power
  would change nothing).

The report mirrors the paper's §6.3 analysis ("the advantage of the LP is
due to non-uniform power allocation and optimal configuration selection")
by quantifying, per schedule, how much of the timeline is power-bound.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..simulator.program import TaskRef
from ..simulator.trace import Trace
from .events import EventStructure
from .fixed_order_lp import FixedOrderLpResult

__all__ = ["BottleneckReport", "analyze_bottlenecks"]


@dataclass
class BottleneckReport:
    """Tight-constraint summary of one solved schedule."""

    cap_w: float
    makespan_s: float
    critical_tasks: list[TaskRef]
    power_bound_events: list[int]          # vertex ids at the cap
    power_bound_time_fraction: float       # share of makespan at the cap
    rank_on_critical_path: dict[int, float]  # rank -> critical seconds

    @property
    def is_power_bound(self) -> bool:
        return bool(self.power_bound_events)

    def dominant_rank(self) -> int | None:
        """Rank carrying the most critical-path seconds (None if none)."""
        if not self.rank_on_critical_path:
            return None
        return max(self.rank_on_critical_path,
                   key=self.rank_on_critical_path.get)

    def summary(self) -> str:
        """One-line human-readable diagnosis."""
        mode = "power-bound" if self.is_power_bound else "structure-bound"
        frac = self.power_bound_time_fraction * 100
        dom = self.dominant_rank()
        return (
            f"{mode}: {len(self.critical_tasks)} critical tasks, "
            f"{len(self.power_bound_events)} events at the cap "
            f"({frac:.0f}% of the timeline), heaviest critical rank: {dom}"
        )


def analyze_bottlenecks(
    trace: Trace,
    result: FixedOrderLpResult,
    slack_tol_s: float = 1e-6,
    power_tol_rel: float = 1e-4,
) -> BottleneckReport:
    """Classify the tight constraints of a solved fixed-order LP."""
    if not result.feasible:
        raise ValueError("cannot analyze an infeasible result")
    sched = result.schedule
    graph = trace.graph
    v = sched.vertex_times

    # Critical tasks: zero slack between scheduled duration and vertex gap.
    critical: list[TaskRef] = []
    rank_crit: dict[int, float] = {}
    for ref, a in sched.assignments.items():
        e = graph.edges[a.edge_id]
        gap = float(v[e.dst] - v[e.src]) - a.duration_s
        if gap <= slack_tol_s:
            critical.append(ref)
            rank_crit[ref.rank] = rank_crit.get(ref.rank, 0.0) + a.duration_s

    # Power-bound events: active power within tolerance of the cap.
    events: EventStructure = result.events
    tight_events: list[int] = []
    tight_time = 0.0
    groups = events.groups
    for gi, group in enumerate(groups):
        rep = group[0]
        act = events.active[rep]
        if not act:
            continue
        total = sum(
            sched.assignments[trace.edge_refs[e]].power_w for e in act
        )
        if total >= sched.cap_w * (1 - power_tol_rel):
            tight_events.append(rep)
            # Charge the interval from this event to the next one.
            t0 = float(v[rep])
            t1 = (
                float(v[groups[gi + 1][0]])
                if gi + 1 < len(groups)
                else sched.objective_s
            )
            tight_time += max(0.0, t1 - t0)

    frac = tight_time / sched.objective_s if sched.objective_s > 0 else 0.0
    return BottleneckReport(
        cap_w=sched.cap_w,
        makespan_s=sched.objective_s,
        critical_tasks=sorted(critical, key=lambda r: (r.rank, r.seq)),
        power_bound_events=tight_events,
        power_bound_time_fraction=min(1.0, frac),
        rank_on_critical_path=rank_crit,
    )
