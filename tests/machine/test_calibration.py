"""Unit tests for power-model calibration."""

import pytest

from repro.machine import (
    CpuSpec,
    PowerModelParams,
    PowerSample,
    SocketPowerModel,
    fit_power_model,
    sample_power_model,
)


class TestPowerSample:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerSample(freq_ghz=0.0, threads=4, power_w=10.0)
        with pytest.raises(ValueError):
            PowerSample(freq_ghz=2.0, threads=0, power_w=10.0)
        with pytest.raises(ValueError):
            PowerSample(freq_ghz=2.0, threads=4, power_w=-1.0)


class TestFit:
    def test_needs_enough_samples(self):
        s = PowerSample(2.0, 4, 30.0)
        with pytest.raises(ValueError, match="at least 5"):
            fit_power_model([s] * 4)

    def test_exact_recovery_from_clean_samples(self):
        truth = PowerModelParams(
            p_uncore_idle=8.5, p_uncore_mem=5.0, p_core_leak=0.6,
            p_core_dyn_max=5.5, freq_exponent=2.2,
        )
        model = SocketPowerModel(params=truth)
        res = fit_power_model(sample_power_model(model))
        assert res.rmse_w < 1e-6
        assert res.params.p_uncore_idle == pytest.approx(8.5, abs=1e-4)
        assert res.params.freq_exponent == pytest.approx(2.2, abs=1e-4)

    def test_noisy_fit_close(self):
        model = SocketPowerModel()
        samples = sample_power_model(model, noise=0.02, seed=3)
        res = fit_power_model(samples)
        assert res.rmse_w < 1.5
        assert res.params.freq_exponent == pytest.approx(2.4, abs=0.4)

    def test_fitted_model_predicts(self):
        model = SocketPowerModel()
        res = fit_power_model(sample_power_model(model))
        fitted = res.model()
        for f in (1.2, 2.0, 2.6):
            assert fitted.power(f, 8, 1.0, 0.3) == pytest.approx(
                model.power(f, 8, 1.0, 0.3), rel=1e-4
            )

    def test_custom_spec(self):
        spec = CpuSpec(name="other", cores=12, fmin_ghz=1.0, fmax_ghz=3.0,
                       fstep_ghz=0.2)
        model = SocketPowerModel(spec=spec)
        samples = sample_power_model(model, thread_counts=(1, 6, 12))
        res = fit_power_model(samples, spec=spec)
        assert res.rmse_w < 1e-6

    def test_result_counts(self):
        model = SocketPowerModel()
        samples = sample_power_model(model)
        res = fit_power_model(samples)
        assert res.n_samples == len(samples)
        assert res.max_abs_error_w >= 0
