"""Static: fixed, uniform power allocation (paper §4.1).

The de-facto production baseline: job power divided equally across
sockets, enforced by RAPL, thread count pinned at the full core count
(firmware cannot change concurrency).  All of Static's behaviour under
tight caps — including leaky sockets being clock-modulated far below
nominal frequency — comes from the RAPL controller model.
"""

from __future__ import annotations

from ..machine.configuration import Configuration
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.performance import TaskKernel
from ..machine.power import SocketPowerModel
from ..machine.rapl import RaplController
from ..simulator.engine import (
    Engine,
    RunPlan,
    TaskRecord,
    plan_from_configs,
    rank_kernel_arrays,
)
from ..simulator.program import Application, TaskRef

__all__ = ["StaticPolicy"]


class StaticPolicy:
    """Uniform per-socket RAPL caps; full-width OpenMP; no adaptation.

    Parameters
    ----------
    power_models:
        One per rank; their efficiency spread is what differentiates the
        sockets' RAPL outcomes under the identical cap.
    job_cap_w:
        Total job power constraint; each socket gets an equal share.
    threads:
        Fixed concurrency (defaults to all cores, as in the paper).
    """

    def __init__(
        self,
        power_models: list[SocketPowerModel],
        job_cap_w: float,
        spec: CpuSpec = XEON_E5_2670,
        threads: int | None = None,
    ) -> None:
        if job_cap_w <= 0:
            raise ValueError(f"job cap must be positive, got {job_cap_w}")
        self.spec = spec
        # None = the full core count of each rank's own socket
        # (heterogeneous machines may differ per rank).
        self.threads = threads
        if threads is not None and not (1 <= threads <= spec.cores):
            raise ValueError(f"threads must be in [1, {spec.cores}]")
        self.cap_per_socket_w = job_cap_w / len(power_models)
        self.controllers = [RaplController(pm) for pm in power_models]

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """Whatever RAPL firmware settles on under the uniform cap."""
        threads = (
            self.threads
            if self.threads is not None
            else self.controllers[ref.rank].spec.cores
        )
        decision = self.controllers[ref.rank].decide(
            kernel, threads, self.cap_per_socket_w
        )
        return decision.config

    def plan_run(self, app: Application, engine: Engine) -> RunPlan:
        """Whole-run plan: RAPL decisions are history-free, so each
        rank's decision per distinct kernel is computed once and the
        machine models are batch evaluated.  Bit-identical to the
        scalar per-task path."""
        per_rank = []
        for rank, ka in enumerate(rank_kernel_arrays(app)):
            threads = (
                self.threads
                if self.threads is not None
                else self.controllers[rank].spec.cores
            )
            memo: dict[TaskKernel, Configuration] = {}
            configs = []
            for kernel in ka.kernels:
                cfg = memo.get(kernel)
                if cfg is None:
                    cfg = self.controllers[rank].decide(
                        kernel, threads, self.cap_per_socket_w
                    ).config
                    memo[kernel] = cfg
                configs.append(cfg)
            per_rank.append(configs)
        return plan_from_configs(app, engine, per_rank)

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        return 0.0  # no software agency: RAPL is firmware

    def switch_cost_s(self) -> float:
        return 0.0  # DVFS changes are made by firmware, asynchronously
