"""Typed devices and heterogeneous nodes.

The paper's machine is one homogeneous Xeon socket per rank; the machine
layer above generalizes that to a *node* — a set of typed devices (big-core
CPU, efficiency-core CPU, GPU, fixed-function accelerator) sharing one
node-level power cap.  Each device carries its own operating-point table
(DVFS states x thread counts for CPUs, DVFS states for GPUs, fixed points
for accelerators) and its own power/performance model, and tags the
:class:`~repro.machine.configuration.Configuration` points it emits with
its ``device_id``.  Everything downstream — frontiers, the LP, the
simulator — consumes device-qualified ``ConfigPoint``s, so a task's
frontier on a heterogeneous node simply merges the per-device scatters and
the LP's per-task choice becomes a (device, freq, threads) triple.

The legacy homogeneous machine is the one-device node built by
:func:`single_socket_node`: its CPU device keeps the reserved empty
``device_id``, so the configurations it emits compare equal to the
pre-refactor ones and every legacy code path is bit-identical.

EcoShift-style CPU<->GPU power shifting (arXiv:2604.17635) is the headline
consumer: under one aggregate node cap the LP is free to move watts between
devices per task, whereas a static split pins each device group to a fixed
share (see :mod:`repro.core.device_split`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, replace
from functools import cached_property
from typing import Protocol, runtime_checkable

from .configuration import ConfigPoint, Configuration, enumerate_configurations
from .cpu import CpuSpec, XEON_E5_2670
from .performance import TaskKernel, TaskTimeModel
from .power import DEFAULT_POWER_PARAMS, PowerModelParams, SocketPowerModel

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "CpuDevice",
    "GpuDevice",
    "AcceleratorDevice",
    "NodeSpec",
    "LEGACY_DEVICE_ID",
    "LEGACY_NODE",
    "EFFICIENCY_CORE_CLUSTER",
    "single_socket_node",
    "node_registry",
    "node_names",
    "get_node",
    "rank_nodes",
    "device_power_groups",
    "measure_device_task_space",
]

#: The reserved device id of the legacy homogeneous socket.  Configurations
#: tagged with it are exactly the pre-refactor ``Configuration(f, n)``
#: literals, which is what keeps one-device nodes bit-identical to the
#: original ``FrontierStore`` / engine paths.
LEGACY_DEVICE_ID = ""


class DeviceKind(str, enum.Enum):
    """The four device archetypes a node may compose."""

    CPU_BIG = "cpu-big"
    CPU_EFFICIENCY = "cpu-efficiency"
    GPU = "gpu"
    ACCELERATOR = "accelerator"


_CPU_KINDS = (DeviceKind.CPU_BIG, DeviceKind.CPU_EFFICIENCY)


@runtime_checkable
class DeviceSpec(Protocol):
    """What every typed device must expose.

    A device is a pure model: it enumerates its admissible operating
    points (each tagged with its ``device_id``) and evaluates any task
    kernel's (duration, power) at any of them.  Frontier construction,
    the LP, and the simulator never look past this surface.
    """

    device_id: str

    @property
    def kind(self) -> DeviceKind: ...

    def operating_points(self) -> list[Configuration]: ...

    def supports(self, kernel: TaskKernel) -> bool: ...

    def duration(self, kernel: TaskKernel, config: Configuration) -> float: ...

    def power(self, kernel: TaskKernel, config: Configuration) -> float: ...

    def idle_power(self) -> float: ...

    def to_doc(self) -> dict: ...


def _spec_doc(obj) -> dict:
    """A frozen dataclass as a plain field dict (canonical-json friendly)."""
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


@dataclass(frozen=True)
class CpuDevice:
    """A CPU device: a socket (or core cluster) with DVFS and OpenMP threads.

    Delegates timing to :class:`TaskTimeModel` and power to
    :class:`SocketPowerModel`, the exact models of the legacy homogeneous
    path, so a ``CpuDevice`` wrapping ``XEON_E5_2670`` with the reserved
    empty ``device_id`` reproduces the original measurements bit for bit.
    Efficiency-core clusters are the same shape with a smaller
    :class:`CpuSpec`, cheaper power constants, and ``time_scale > 1``
    (lower IPC at equal clocks).
    """

    device_id: str = LEGACY_DEVICE_ID
    kind: DeviceKind = DeviceKind.CPU_BIG
    spec: CpuSpec = XEON_E5_2670
    params: PowerModelParams = DEFAULT_POWER_PARAMS
    efficiency: float = 1.0
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _CPU_KINDS:
            raise ValueError(f"CpuDevice kind must be a CPU kind, got {self.kind}")
        if self.efficiency <= 0:
            raise ValueError(f"efficiency must be positive, got {self.efficiency}")
        if self.time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {self.time_scale}")

    @cached_property
    def power_model(self) -> SocketPowerModel:
        return SocketPowerModel(
            spec=self.spec, params=self.params, efficiency=self.efficiency
        )

    @cached_property
    def time_model(self) -> TaskTimeModel:
        return TaskTimeModel(self.spec)

    def operating_points(self) -> list[Configuration]:
        """Every (freq, threads, duty) point, tagged with this device id."""
        return [
            replace(cfg, device=self.device_id)
            for cfg in enumerate_configurations(self.spec)
        ]

    def supports(self, kernel: TaskKernel) -> bool:
        """CPUs run everything."""
        return True

    def duration(self, kernel: TaskKernel, config: Configuration) -> float:
        """Task time at ``config``: the legacy CPU model times ``time_scale``."""
        base = self.time_model.duration(
            kernel, config.freq_ghz, config.threads, config.duty
        )
        return base * self.time_scale

    def power(self, kernel: TaskKernel, config: Configuration) -> float:
        """Socket power at ``config`` under this kernel's activity."""
        return self.power_model.power(
            config.freq_ghz,
            config.threads,
            activity=kernel.activity,
            mem_intensity=kernel.mem_intensity,
            duty=config.duty,
        )

    def idle_power(self) -> float:
        """Socket idle floor (all cores parked)."""
        return self.power_model.idle_power()

    def to_doc(self) -> dict:
        """Canonical JSON-safe description (cache keys, manifests)."""
        return {
            "type": "cpu",
            "device_id": self.device_id,
            "kind": self.kind.value,
            "spec": _spec_doc(self.spec),
            "params": _spec_doc(self.params),
            "efficiency": self.efficiency,
            "time_scale": self.time_scale,
        }


@dataclass(frozen=True)
class GpuDevice:
    """A GPU: its own DVFS ladder, one logical "configuration" per state.

    The analytic model mirrors the CPU one in shape but with GPU physics:
    the parallel fraction of a kernel runs ``throughput_factor`` times
    faster than one CPU thread at ``fmax`` while the serial remainder
    crawls at ``serial_penalty`` times single-thread CPU time; the memory
    portion rides HBM at ``mem_speedup``.  Power has a high idle floor
    plus dynamic power scaling as ``f^gamma`` and an HBM term.  The net
    effect is the interesting one for power shifting: highly parallel
    kernels are faster per watt on the GPU at generous budgets, while
    serial-heavy kernels and starvation-level budgets favor the CPU.
    """

    device_id: str = "gpu0"
    name: str = "HPC GPU"
    fmin_ghz: float = 0.6
    fmax_ghz: float = 1.4
    fstep_ghz: float = 0.1
    serial_penalty: float = 6.0
    throughput_factor: float = 24.0
    mem_speedup: float = 4.0
    p_idle: float = 14.0
    p_dyn_max: float = 90.0
    p_mem: float = 20.0
    freq_exponent: float = 2.2
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.fmin_ghz <= self.fmax_ghz):
            raise ValueError(
                f"need 0 < fmin <= fmax, got {self.fmin_ghz}..{self.fmax_ghz}"
            )
        if self.fstep_ghz <= 0:
            raise ValueError("fstep must be positive")
        if min(self.serial_penalty, self.throughput_factor, self.mem_speedup) <= 0:
            raise ValueError("speed factors must be positive")
        if min(self.p_idle, self.p_dyn_max, self.p_mem) < 0:
            raise ValueError("power terms must be >= 0")
        if self.efficiency <= 0:
            raise ValueError(f"efficiency must be positive, got {self.efficiency}")

    @property
    def kind(self) -> DeviceKind:
        return DeviceKind.GPU

    @property
    def pstates(self) -> tuple[float, ...]:
        """GPU clock states in GHz, descending (mirrors ``CpuSpec.pstates``)."""
        n = int(round((self.fmax_ghz - self.fmin_ghz) / self.fstep_ghz)) + 1
        freqs = [self.fmax_ghz - self.fstep_ghz * k for k in range(n)]
        freqs[-1] = self.fmin_ghz
        return tuple(float(round(f, 6)) for f in freqs)

    def operating_points(self) -> list[Configuration]:
        """One point per DVFS state (threads=1: the GPU is one offload
        target, not a thread pool)."""
        return [Configuration(f, 1, device=self.device_id) for f in self.pstates]

    def supports(self, kernel: TaskKernel) -> bool:
        """GPUs run everything (badly, when the kernel is serial-heavy)."""
        return True

    def duration(self, kernel: TaskKernel, config: Configuration) -> float:
        """Task time at one GPU clock: Amdahl on throughput cores + HBM."""
        if config.freq_ghz <= 0:
            raise ValueError(f"freq_ghz must be positive, got {config.freq_ghz}")
        rel = self.fmax_ghz / config.freq_ghz
        pf = kernel.parallel_fraction
        cpu = (
            kernel.cpu_seconds
            * ((1.0 - pf) * self.serial_penalty + pf / self.throughput_factor)
            * rel
        )
        pm = kernel.mem_parallel_fraction
        mem = kernel.mem_seconds * (
            (1.0 - pm) * self.serial_penalty + pm / self.mem_speedup
        )
        return (cpu + mem) / config.duty

    def power(self, kernel: TaskKernel, config: Configuration) -> float:
        """Board power: idle floor + f^gamma dynamic + HBM activity."""
        rel = config.freq_ghz / self.fmax_ghz
        dyn = kernel.activity * self.p_dyn_max * rel**self.freq_exponent
        mem = self.p_mem * kernel.mem_intensity
        return self.efficiency * (self.p_idle + (dyn + mem) * config.duty)

    def idle_power(self) -> float:
        """Board idle floor."""
        return self.efficiency * self.p_idle

    def to_doc(self) -> dict:
        """Canonical JSON-safe description (cache keys, manifests)."""
        doc = _spec_doc(self)
        doc["type"] = "gpu"
        doc["kind"] = self.kind.value
        return doc


@dataclass(frozen=True)
class AcceleratorDevice:
    """A fixed-function accelerator: no DVFS, one operating point.

    Runs a kernel's whole work at a fixed ``speedup`` over single-thread
    CPU time for a flat ``p_active`` watts.  When ``supported`` names
    specific kernels, everything else is rejected (``supports`` is False)
    and the node frontier simply omits the accelerator for those tasks.
    """

    device_id: str = "acc0"
    name: str = "Fixed-function accelerator"
    speedup: float = 12.0
    p_active: float = 25.0
    p_idle: float = 2.0
    supported: tuple[str, ...] = ()
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.speedup <= 0:
            raise ValueError(f"speedup must be positive, got {self.speedup}")
        if self.p_active <= 0 or self.p_idle < 0:
            raise ValueError("accelerator power terms must be sensible")
        if self.efficiency <= 0:
            raise ValueError(f"efficiency must be positive, got {self.efficiency}")

    @property
    def kind(self) -> DeviceKind:
        return DeviceKind.ACCELERATOR

    def operating_points(self) -> list[Configuration]:
        """The single fixed point (the nominal 1.0 GHz is a placeholder —
        the accelerator has exactly one speed, identified by device id)."""
        return [Configuration(1.0, 1, device=self.device_id)]

    def supports(self, kernel: TaskKernel) -> bool:
        """Only kernels named in ``supported`` (empty tuple: everything)."""
        return not self.supported or kernel.name in self.supported

    def duration(self, kernel: TaskKernel, config: Configuration) -> float:
        """Whole-kernel time at the fixed ``speedup`` over 1-thread CPU."""
        return kernel.total_reference_seconds / self.speedup / config.duty

    def power(self, kernel: TaskKernel, config: Configuration) -> float:
        """Flat active power (no DVFS), scaled by duty."""
        return self.efficiency * (self.p_idle + self.p_active * config.duty)

    def idle_power(self) -> float:
        """Idle floor."""
        return self.efficiency * self.p_idle

    def to_doc(self) -> dict:
        """Canonical JSON-safe description (cache keys, manifests)."""
        doc = _spec_doc(self)
        doc["type"] = "accelerator"
        doc["kind"] = self.kind.value
        doc["supported"] = list(self.supported)
        return doc


@dataclass(frozen=True)
class NodeSpec:
    """A set of typed devices sharing one node-level power cap.

    The node is the new unit the scenario layer hands around: frontiers
    are built per (rank, kernel) across all of a rank's node's devices,
    and the LP's cap rows sum power over whatever devices the chosen
    configurations live on.
    """

    name: str
    devices: tuple[DeviceSpec, ...]

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a node needs at least one device")
        ids = [d.device_id for d in self.devices]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate device ids on node {self.name!r}: {ids}")
        if LEGACY_DEVICE_ID in ids and len(ids) > 1:
            raise ValueError(
                "the empty device id is reserved for the legacy "
                "single-device node; name every device of a multi-device node"
            )

    @property
    def device_ids(self) -> tuple[str, ...]:
        return tuple(d.device_id for d in self.devices)

    def device(self, device_id: str) -> DeviceSpec:
        """The device with ``device_id`` (KeyError lists what the node has)."""
        for d in self.devices:
            if d.device_id == device_id:
                return d
        raise KeyError(
            f"node {self.name!r} has no device {device_id!r} "
            f"(has {list(self.device_ids)})"
        )

    @property
    def is_heterogeneous(self) -> bool:
        """True unless this is the legacy one-socket wrapper."""
        return len(self.devices) > 1 or self.devices[0].device_id != LEGACY_DEVICE_ID

    def idle_power(self) -> float:
        """Node idle floor: the sum over all devices."""
        return sum(d.idle_power() for d in self.devices)

    def with_cpu_efficiency(self, efficiency: float) -> "NodeSpec":
        """This node with its CPU devices at a given silicon efficiency.

        Manufacturing variability is modeled per socket (paper §2); on a
        node it lands on the CPU devices so the wrapped legacy node's
        power model matches ``make_power_models`` exactly.  Non-CPU
        devices keep their own efficiency.
        """
        return replace(
            self,
            devices=tuple(
                replace(d, efficiency=float(efficiency))
                if d.kind in _CPU_KINDS
                else d
                for d in self.devices
            ),
        )

    def to_doc(self) -> dict:
        """Canonical JSON-safe description (cache keys, manifests)."""
        return {
            "name": self.name,
            "devices": [d.to_doc() for d in self.devices],
        }


# ----------------------------------------------------------------------
# Named nodes


#: A small efficiency-core cluster: fewer, slower, cheaper cores.
EFFICIENCY_CORE_CLUSTER = CpuSpec(
    name="Efficiency cores",
    cores=4,
    fmin_ghz=0.8,
    fmax_ghz=2.0,
    fstep_ghz=0.1,
    modulation_levels=0,
)

_EFFICIENCY_CORE_PARAMS = PowerModelParams(
    p_uncore_idle=3.0,
    p_uncore_mem=4.0,
    p_core_leak=0.3,
    p_core_dyn_max=2.2,
    freq_exponent=2.2,
    p_idle_socket=2.0,
)

#: Registry name of the legacy homogeneous node.
LEGACY_NODE = "xeon-e5-2670"


def single_socket_node(
    spec: CpuSpec = XEON_E5_2670,
    params: PowerModelParams = DEFAULT_POWER_PARAMS,
    efficiency: float = 1.0,
    name: str = LEGACY_NODE,
) -> NodeSpec:
    """The legacy machine wrapped as a one-device node.

    Its CPU device keeps the reserved empty device id, so configurations,
    frontiers, schedules, and traces produced through it are bit-identical
    to the pre-node code path.
    """
    return NodeSpec(
        name=name,
        devices=(
            CpuDevice(
                device_id=LEGACY_DEVICE_ID,
                kind=DeviceKind.CPU_BIG,
                spec=spec,
                params=params,
                efficiency=efficiency,
            ),
        ),
    )


def node_registry() -> dict[str, NodeSpec]:
    """All named nodes selectable from the CLI via ``--node``."""
    big = CpuDevice(device_id="cpu0", kind=DeviceKind.CPU_BIG)
    gpu = GpuDevice(device_id="gpu0")
    little = CpuDevice(
        device_id="ecpu0",
        kind=DeviceKind.CPU_EFFICIENCY,
        spec=EFFICIENCY_CORE_CLUSTER,
        params=_EFFICIENCY_CORE_PARAMS,
        time_scale=1.3,
    )
    acc = AcceleratorDevice(device_id="acc0")
    return {
        LEGACY_NODE: single_socket_node(),
        "cpu-gpu": NodeSpec(name="cpu-gpu", devices=(big, gpu)),
        "big-little": NodeSpec(name="big-little", devices=(big, little)),
        "cpu-gpu-acc": NodeSpec(name="cpu-gpu-acc", devices=(big, gpu, acc)),
    }


def node_names() -> tuple[str, ...]:
    """Names of every registered node, in registry order."""
    return tuple(node_registry())


def get_node(name: str) -> NodeSpec:
    """The registered node named ``name`` (KeyError lists the choices)."""
    registry = node_registry()
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown node {name!r}; available: {', '.join(sorted(registry))}"
        ) from None


def rank_nodes(node: NodeSpec, power_models: list[SocketPowerModel]) -> list[NodeSpec]:
    """One node instance per rank, with per-rank CPU silicon efficiency.

    Takes the already-sampled per-rank :class:`SocketPowerModel` list so
    the efficiency spread (and therefore the wrapped legacy node's power
    numbers) is exactly the one the rest of the scenario uses.
    """
    return [node.with_cpu_efficiency(pm.efficiency) for pm in power_models]


def device_power_groups(node: NodeSpec) -> dict[str, tuple[str, ...]]:
    """Device ids grouped into the two sides of a static CPU/offload split.

    The EcoShift-style baseline pins a fraction of the node cap on the CPU
    group and the rest on everything else; this is the grouping both the
    split LP and its reporting use.
    """
    cpu = tuple(d.device_id for d in node.devices if d.kind in _CPU_KINDS)
    offload = tuple(d.device_id for d in node.devices if d.kind not in _CPU_KINDS)
    return {"cpu": cpu, "offload": offload}


def measure_device_task_space(
    kernel: TaskKernel, device: DeviceSpec
) -> list[ConfigPoint]:
    """Measure a task across one device's entire operating-point table."""
    return [
        ConfigPoint(
            config=cfg,
            duration_s=device.duration(kernel, cfg),
            power_w=device.power(kernel, cfg),
        )
        for cfg in device.operating_points()
    ]
