"""Tests for the sensitivity-analysis exhibit."""

import math

import pytest

from repro.experiments import sensitivity_analysis


@pytest.fixture(scope="module")
def result():
    return sensitivity_analysis(
        n_ranks=4, exponents=(2.0, 2.4, 2.8), sigmas=(0.0, 0.08)
    )


class TestSensitivity:
    def test_all_variants_computed(self, result):
        assert len(result.rows) == 5
        assert all(not math.isnan(pct) for _, _, pct in result.rows)

    def test_headline_sign_robust(self, result):
        """The core conclusion — LP materially beats Static on BT at a
        tight cap — holds across every model variant."""
        for _, _, pct in result.rows:
            assert pct > 15.0

    def test_variability_increases_gain(self, result):
        """Manufacturing variability is one of the LP's two levers: with
        zero spread the gain is smaller than with the default spread."""
        sig = result.values_for("variability_sigma")
        assert sig[0] <= max(sig) + 1e-9
        # Even with NO variability the gain persists (load imbalance is
        # the dominant lever for BT).
        assert sig[0] > 15.0

    def test_exponent_monotone_effect(self, result):
        """A lower power-law exponent means frequency is cheaper in power,
        so Static's uniform throttling costs more speed — the gain grows."""
        exps = result.values_for("freq_exponent")
        assert exps[0] >= exps[-1] - 1e-9

    def test_render(self, result):
        text = result.render()
        assert "Sensitivity" in text and "freq_exponent" in text
