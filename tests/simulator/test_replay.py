"""Unit tests for LP-schedule replay."""

import pytest

from repro.machine import Configuration, TaskKernel
from repro.simulator import (
            ReplayPolicy,
    TaskRef,
    replay_schedule,
)

from .. import conftest


def full_assignment(app, config):
    return {
        TaskRef(r, s): config
        for r in range(app.n_ranks)
        for s in range(len(app.compute_ops(r)))
    }


class TestReplayPolicy:
    def test_missing_first_task_raises(self, kernel):
        policy = ReplayPolicy({})
        with pytest.raises(KeyError):
            policy.configure(TaskRef(0, 0), kernel, 0, None)

    def test_assigned_config_used(self, kernel):
        cfg = Configuration(1.8, 6)
        policy = ReplayPolicy({TaskRef(0, 0): cfg})
        assert policy.configure(TaskRef(0, 0), kernel, 0, None) == cfg

    def test_short_task_keeps_current(self):
        """The paper's 1 ms threshold: don't pay 145 us to switch for a
        task shorter than 1 ms."""
        tiny = TaskKernel(cpu_seconds=1e-4, name="tiny")
        current = Configuration(2.6, 8)
        target = Configuration(1.2, 8)
        policy = ReplayPolicy({TaskRef(0, 1): target})
        assert policy.configure(TaskRef(0, 1), tiny, 0, current) == current

    def test_long_task_switches(self, kernel):
        current = Configuration(2.6, 8)
        target = Configuration(1.2, 8)
        policy = ReplayPolicy({TaskRef(0, 1): target})
        assert policy.configure(TaskRef(0, 1), kernel, 0, current) == target

    def test_unassigned_task_inherits(self, kernel):
        current = Configuration(2.0, 4)
        policy = ReplayPolicy({TaskRef(0, 0): current})
        assert policy.configure(TaskRef(0, 5), kernel, 0, current) == current

    def test_switch_cost(self):
        assert ReplayPolicy({}).switch_cost_s() == pytest.approx(145e-6)


class TestReplaySchedule:
    def test_cap_verification(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel)
        asg = full_assignment(app, Configuration(2.6, 8))
        out = replay_schedule(app, asg, two_rank_models, cap_w=1000.0)
        assert out.cap_respected
        assert out.makespan_s > 0
        tight = replay_schedule(
            app, asg, two_rank_models, cap_w=out.peak_power_w * 0.5
        )
        assert not tight.cap_respected

    def test_lower_power_schedule_is_slower(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel)
        fast = replay_schedule(
            app, full_assignment(app, Configuration(2.6, 8)),
            two_rank_models, cap_w=1000.0,
        )
        slow = replay_schedule(
            app, full_assignment(app, Configuration(1.2, 8)),
            two_rank_models, cap_w=1000.0,
        )
        assert slow.makespan_s > fast.makespan_s
        assert slow.peak_power_w < fast.peak_power_w

    def test_switch_overhead_counted(self, kernel, two_rank_models):
        app = conftest.make_p2p_app(kernel)
        asg = full_assignment(app, Configuration(2.6, 8))
        # Alternate configurations per task to force switches.
        for ref in asg:
            if ref.seq % 2 == 1:
                asg[ref] = Configuration(2.0, 8)
        out = replay_schedule(app, asg, two_rank_models, cap_w=1000.0)
        assert out.result.dvfs_switch_count > 0
