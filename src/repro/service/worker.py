"""The fleet worker entry point (``repro-exp worker``).

A worker is a plain process that dials the dispatcher's socket,
authenticates with the shared token, and runs tasks until told to shut
down — the loop itself lives in
:func:`repro.exec.backends.sockets.run_worker` (the exec layer owns the
wire protocol).  This module is the service-level door to it, so
deployment scripts depend on ``repro.service``/the CLI rather than on
exec-layer module paths.

Workers are usually *spawned by the backend* (``SocketWorkerBackend``
with ``spawn=True`` launches and respawns its own fleet); run this entry
point directly only for externally managed workers — e.g. one worker
per container, connecting to ``tcp://host:port`` with ``spawn=False``
on the dispatcher side.
"""

from __future__ import annotations

from ..exec.backends.sockets import run_worker

__all__ = ["run_worker"]
