"""The policy registry: name -> factory + typed per-policy configuration.

Every power-allocation policy the repo implements — the runtimes under
:mod:`repro.runtime` and the LP/ILP schedulability bounds under
:mod:`repro.core` — is registered here under a stable name, with a
default configuration document and a factory/solver callable.  Scenario
specs (:mod:`repro.scenarios.spec`) reference policies purely by name +
config overrides, which is what makes experiments *data*: adding a policy
to the registry makes it reachable from the CLI, sweeps, caching, traces,
and the cluster co-scheduler with no further plumbing.

Two kinds of entry:

* ``runtime`` — builds a simulator policy object (``build(ctx, cfg)``);
  the executor runs it through the :class:`~repro.simulator.engine.Engine`
  and measures the per-iteration time over the entry's window
  (``measure``: ``"discard"`` drops the first ``discard_iterations``,
  ``"steady"`` keeps the trailing ``steady_window`` — the protocol the
  paper uses for non-adaptive vs adaptive systems).
* ``bound`` — solves an offline formulation (``solve(ctx, cfg, scope)``)
  and reports the scheduled per-iteration bound; ``scope`` is the trace
  scope factory so only the solve proper lands inside the policy's span.

A layering guard (``tests/test_layering.py``) asserts every ``*Policy``
exported from ``repro.runtime.__all__`` is registered, so new runtimes
cannot silently stay unreachable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable

from ..core.device_split import best_static_split
from ..core.fixed_order_lp import FixedOrderLpResult
from ..core.flow_ilp import solve_flow_ilp
from ..core.model import ProblemInstance, build_problem_instance
from ..core.rounding import round_schedule
from ..core.sweep import ParametricCapSolver
from ..exec.cache import (
    SolverCache,
    cached_solve_energy_lp,
    cached_solve_fixed_order_lp,
)
from ..machine.device import NodeSpec, device_power_groups
from ..machine.frontiers import FrontierStore, NodeFrontierStore
from ..machine.power import SocketPowerModel
from ..runtime.adagio_policy import AdagioPolicy
from ..runtime.conductor import ConductorConfig, ConductorPolicy
from ..runtime.config_search import ConfigSearchPolicy
from ..runtime.dvfs_energy import DvfsEnergyPolicy
from ..runtime.selection_only import SelectionOnlyPolicy
from ..runtime.static import StaticPolicy
from ..simulator.program import Application
from ..simulator.trace import Trace

__all__ = [
    "PolicyContext",
    "BoundResult",
    "PolicyEntry",
    "PolicyRegistry",
    "default_registry",
]


@dataclass
class PolicyContext:
    """Everything a policy factory or bound solver may consume for one cell.

    Built once per (benchmark, cap) cell by the executor; the fields a
    given entry actually reads depend on its kind (runtime policies use
    the application/machine state, bounds use the trace/IR/cache).
    """

    power_models: list[SocketPowerModel]
    job_cap_w: float
    app: Application | None = None
    frontier_store: FrontierStore | NodeFrontierStore | None = None
    trace: Trace | None = None
    #: Per-rank typed-device nodes; None on the legacy homogeneous machine.
    nodes: list[NodeSpec] | None = None
    instance: ProblemInstance | None = None
    cache: SolverCache | None = None
    lp_iterations: int = 1
    #: Shared ``power_tiebreak -> ParametricCapSolver`` pool, scoped to the
    #: benchmark (the trace).  The scenario executor passes the same dict
    #: into every cell's context, so the frozen LP model — and its
    #: persistent HiGHS handle — is assembled once per (trace, tiebreak)
    #: and re-solved across the whole cap grid with only RHS updates.
    cap_solvers: dict[float, ParametricCapSolver] | None = None


@dataclass(frozen=True)
class BoundResult:
    """What a bound entry reports: per-iteration time (None = infeasible)
    plus formulation-specific extras (e.g. the rounded discrete time).

    ``energy_j`` is the schedule's per-iteration task energy where the
    formulation yields one (the energy axis of frontier exhibits); bounds
    without a schedule leave it None."""

    time_s: float | None
    extra: dict = field(default_factory=dict)
    energy_j: float | None = None


@dataclass(frozen=True)
class PolicyEntry:
    """One registered policy: identity, defaults, and evaluation hooks."""

    name: str
    kind: str  # "runtime" | "bound"
    summary: str
    default_config: dict
    measure: str = "discard"  # runtime entries: "discard" | "steady"
    policy_class: type | None = None
    build: Callable[[PolicyContext, dict], Any] | None = None
    solve: Callable[[PolicyContext, dict, Callable[[], Any]], BoundResult] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("runtime", "bound"):
            raise ValueError(f"kind must be 'runtime' or 'bound', got {self.kind!r}")
        if self.measure not in ("discard", "steady"):
            raise ValueError(
                f"measure must be 'discard' or 'steady', got {self.measure!r}"
            )
        if self.kind == "runtime" and self.build is None:
            raise ValueError(f"runtime entry {self.name!r} needs a build callable")
        if self.kind == "bound" and self.solve is None:
            raise ValueError(f"bound entry {self.name!r} needs a solve callable")

    def resolve_config(self, overrides: dict | None) -> dict:
        """Defaults merged with ``overrides``; unknown keys are an error."""
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(self.default_config))
        if unknown:
            raise ValueError(
                f"policy {self.name!r}: unknown config keys {unknown}; "
                f"valid keys: {sorted(self.default_config)}"
            )
        merged = dict(self.default_config)
        merged.update(overrides)
        return merged


class PolicyRegistry:
    """Name-unique collection of :class:`PolicyEntry` objects."""

    def __init__(self) -> None:
        self._entries: dict[str, PolicyEntry] = {}

    def register(self, entry: PolicyEntry) -> PolicyEntry:
        """Add an entry; a duplicate name is a hard error."""
        if entry.name in self._entries:
            raise ValueError(f"policy {entry.name!r} is already registered")
        self._entries[entry.name] = entry
        return entry

    def get(self, name: str) -> PolicyEntry:
        """Look up an entry, with a helpful error naming the registry."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown policy {name!r}; registered: {sorted(self._entries)}"
            ) from None

    def names(self) -> list[str]:
        """Registered policy names, sorted."""
        return sorted(self._entries)

    def entries(self) -> list[PolicyEntry]:
        """All entries, in registration order."""
        return list(self._entries.values())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# Built-in entries.

def _build_static(ctx: PolicyContext, cfg: dict) -> StaticPolicy:
    return StaticPolicy(ctx.power_models, ctx.job_cap_w, threads=cfg["threads"])


def _build_conductor(ctx: PolicyContext, cfg: dict) -> ConductorPolicy:
    return ConductorPolicy(
        ctx.power_models,
        ctx.job_cap_w,
        ctx.app,
        config=ConductorConfig(**cfg),
        frontier_store=ctx.frontier_store,
    )


def _build_adagio(ctx: PolicyContext, cfg: dict) -> AdagioPolicy:
    return AdagioPolicy(
        ctx.power_models,
        ctx.app,
        safety=cfg["safety"],
        switch_overhead_s=cfg["switch_overhead_s"],
        min_switch_duration_s=cfg["min_switch_duration_s"],
        frontier_store=ctx.frontier_store,
    )


def _build_dvfs_energy(ctx: PolicyContext, cfg: dict) -> DvfsEnergyPolicy:
    return DvfsEnergyPolicy(
        ctx.power_models,
        ctx.app,
        safety=cfg["safety"],
        switch_overhead_s=cfg["switch_overhead_s"],
        min_switch_duration_s=cfg["min_switch_duration_s"],
    )


def _build_config_search(ctx: PolicyContext, cfg: dict) -> ConfigSearchPolicy:
    return ConfigSearchPolicy(
        ctx.power_models,
        ctx.job_cap_w if cfg["capped"] else None,
        max_slowdown=cfg["max_slowdown"],
    )


def _build_selection_only(ctx: PolicyContext, cfg: dict) -> SelectionOnlyPolicy:
    return SelectionOnlyPolicy(
        ctx.power_models,
        ctx.job_cap_w,
        ctx.app,
        adagio_safety=cfg["adagio_safety"],
        switch_overhead_s=cfg["switch_overhead_s"],
        min_switch_duration_s=cfg["min_switch_duration_s"],
        frontier_store=ctx.frontier_store,
    )


def _fixed_order_at_cap(
    ctx: PolicyContext, power_tiebreak: float, time_limit_s: float | None
) -> FixedOrderLpResult:
    """The fixed-order LP at this cell's cap, through the shared pool.

    Cross-cell reuse: one frozen model (and HiGHS handle) per (trace,
    tiebreak), re-solved at this cell's cap via an RHS update.  Cache
    keys match cached_solve_fixed_order_lp, so warm entries are shared
    either way.  Shared by the ``lp`` bound and by ``energy-lp``'s
    capped-deadline anchor.
    """
    if ctx.cap_solvers is not None:
        tiebreak = float(power_tiebreak)
        solver = ctx.cap_solvers.get(tiebreak)
        if solver is None:
            solver = ParametricCapSolver(
                ctx.trace, power_tiebreak=tiebreak, instance=ctx.instance
            )
            ctx.cap_solvers[tiebreak] = solver
        return solver.solve(
            ctx.job_cap_w, cache=ctx.cache, time_limit_s=time_limit_s
        )
    return cached_solve_fixed_order_lp(
        ctx.trace,
        ctx.job_cap_w,
        cache=ctx.cache,
        instance=ctx.instance,
        power_tiebreak=power_tiebreak,
        time_limit_s=time_limit_s,
    )


def _solve_lp(ctx: PolicyContext, cfg: dict, scope: Callable[[], Any]) -> BoundResult:
    with scope():
        lp = _fixed_order_at_cap(ctx, cfg["power_tiebreak"], cfg["time_limit_s"])
    if not lp.feasible:
        return BoundResult(time_s=None, extra={"feasible": False})
    extra: dict = {"feasible": True}
    if cfg["include_discrete"]:
        # Rounding replays outside the solver's trace scope, exactly as
        # the legacy comparison did.
        disc = round_schedule(ctx.trace, lp.schedule)
        extra["discrete_s"] = disc.objective_s / ctx.lp_iterations
    return BoundResult(
        time_s=lp.makespan_s / ctx.lp_iterations,
        extra=extra,
        energy_j=lp.schedule.total_energy_j() / ctx.lp_iterations,
    )


def _solve_energy_lp(
    ctx: PolicyContext, cfg: dict, scope: Callable[[], Any]
) -> BoundResult:
    with scope():
        deadline_s = None
        if cfg["capped"]:
            # Under a cap no schedule can reach the unconstrained
            # makespan, so the deadline anchors to the *capped*
            # fixed-order optimum: min-energy among schedules matching
            # the cap's own best achievable time (plus the slowdown
            # allowance).  Warm when the cell also evaluates ``lp``.
            anchor = _fixed_order_at_cap(ctx, 1e-9, cfg["time_limit_s"])
            if not anchor.feasible:
                return BoundResult(time_s=None, extra={"feasible": False})
            deadline_s = anchor.makespan_s
        result = cached_solve_energy_lp(
            ctx.trace,
            slowdown=cfg["slowdown"],
            cache=ctx.cache,
            time_limit_s=cfg["time_limit_s"],
            instance=ctx.instance,
            cap_w=ctx.job_cap_w if cfg["capped"] else None,
            deadline_s=deadline_s,
        )
    if not result.feasible:
        return BoundResult(time_s=None, extra={"feasible": False})
    return BoundResult(
        time_s=result.makespan_s / ctx.lp_iterations,
        extra={
            "feasible": True,
            "time_budget_s": result.time_budget_s / ctx.lp_iterations,
        },
        energy_j=result.energy_j / ctx.lp_iterations,
    )


def _solve_lp_split(
    ctx: PolicyContext, cfg: dict, scope: Callable[[], Any]
) -> BoundResult:
    if not ctx.nodes or not ctx.nodes[0].is_heterogeneous:
        raise ValueError(
            "lp-split models a fixed per-device cap partition; it needs a "
            "heterogeneous node (run with --node cpu-gpu or similar)"
        )
    groups = device_power_groups(ctx.nodes[0])
    if not groups["offload"]:
        raise ValueError(
            f"node {ctx.nodes[0].name!r} has no offload device to split against"
        )
    instance = (
        ctx.instance
        if ctx.instance is not None
        else build_problem_instance(ctx.trace)
    )
    with scope():
        result = best_static_split(
            instance,
            ctx.job_cap_w,
            groups,
            cpu_shares=tuple(float(s) for s in cfg["cpu_shares"]),
            power_tiebreak=cfg["power_tiebreak"],
            time_limit_s=cfg["time_limit_s"],
        )
    if not result.feasible:
        return BoundResult(time_s=None, extra={"feasible": False})
    per_share = {
        f"{share:g}": None if t is None else t / ctx.lp_iterations
        for share, t in result.per_share.items()
    }
    return BoundResult(
        time_s=result.makespan_s / ctx.lp_iterations,
        extra={
            "feasible": True,
            "best_cpu_share": result.best_share,
            "per_share_s": per_share,
        },
    )


def _solve_flow_ilp(
    ctx: PolicyContext, cfg: dict, scope: Callable[[], Any]
) -> BoundResult:
    with scope():
        ilp = solve_flow_ilp(
            ctx.trace,
            ctx.job_cap_w,
            time_limit_s=cfg["time_limit_s"],
            instance=ctx.instance,
        )
    if not ilp.feasible:
        return BoundResult(time_s=None, extra={"feasible": False})
    return BoundResult(
        time_s=ilp.makespan_s / ctx.lp_iterations, extra={"feasible": True}
    )


def _build_default_registry() -> PolicyRegistry:
    reg = PolicyRegistry()
    reg.register(PolicyEntry(
        name="static",
        kind="runtime",
        summary="uniform per-socket RAPL caps, full-width threads (paper §4.1)",
        default_config={"threads": None},
        measure="discard",
        policy_class=StaticPolicy,
        build=_build_static,
    ))
    reg.register(PolicyEntry(
        name="conductor",
        kind="runtime",
        summary="adaptive selection + power reallocation (paper §4.2)",
        default_config=asdict(ConductorConfig()),
        measure="steady",
        policy_class=ConductorPolicy,
        build=_build_conductor,
    ))
    reg.register(PolicyEntry(
        name="adagio",
        kind="runtime",
        summary="uncapped slack reclamation (Rountree et al., ICS'09; §7)",
        default_config={
            "safety": 0.9,
            "switch_overhead_s": 145e-6,
            "min_switch_duration_s": 1e-3,
        },
        measure="steady",
        policy_class=AdagioPolicy,
        build=_build_adagio,
    ))
    reg.register(PolicyEntry(
        name="selection-only",
        kind="runtime",
        summary="Pareto selection under immovable uniform budgets (§6 ablation)",
        default_config={
            "adagio_safety": 0.9,
            "switch_overhead_s": 145e-6,
            "min_switch_duration_s": 1e-3,
        },
        measure="steady",
        policy_class=SelectionOnlyPolicy,
        build=_build_selection_only,
    ))
    reg.register(PolicyEntry(
        name="dvfs-energy",
        kind="runtime",
        summary="slack-driven min-energy DVFS for MPI (Guermouche et al.)",
        default_config={
            "safety": 0.9,
            "switch_overhead_s": 145e-6,
            "min_switch_duration_s": 1e-3,
        },
        measure="steady",
        policy_class=DvfsEnergyPolicy,
        build=_build_dvfs_energy,
    ))
    reg.register(PolicyEntry(
        name="config-search",
        kind="runtime",
        summary="energy-optimal (freq, threads) search (Silva et al.)",
        default_config={"capped": True, "max_slowdown": 0.1},
        measure="discard",
        policy_class=ConfigSearchPolicy,
        build=_build_config_search,
    ))
    reg.register(PolicyEntry(
        name="lp",
        kind="bound",
        summary="fixed-vertex-order LP performance bound (paper §3)",
        default_config={
            "include_discrete": False,
            "power_tiebreak": 1e-9,
            "time_limit_s": None,
        },
        solve=_solve_lp,
    ))
    reg.register(PolicyEntry(
        name="energy-lp",
        kind="bound",
        summary="min-energy LP subject to deadline and cap (§7 comparator)",
        default_config={
            "slowdown": 0.0,
            "capped": True,
            "time_limit_s": None,
        },
        solve=_solve_energy_lp,
    ))
    reg.register(PolicyEntry(
        name="lp-split",
        kind="bound",
        summary="best static CPU/offload cap split (EcoShift-style baseline)",
        default_config={
            "cpu_shares": [0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            "power_tiebreak": 1e-9,
            "time_limit_s": None,
        },
        solve=_solve_lp_split,
    ))
    reg.register(PolicyEntry(
        name="flow-ilp",
        kind="bound",
        summary="flow ILP bound (paper §3.3; practical below ~30 task edges)",
        default_config={"time_limit_s": 60.0},
        solve=_solve_flow_ilp,
    ))
    return reg


_default: PolicyRegistry | None = None


def default_registry() -> PolicyRegistry:
    """The process-wide registry of built-in policies (built once)."""
    global _default
    if _default is None:
        _default = _build_default_registry()
    return _default
