#!/usr/bin/env python
"""Evaluate a runtime power-allocation system against the LP bound.

The paper's stated purpose is *not* to ship the LP as a runtime, but to
give runtime-system designers a quantitative optimization target.  This
example does exactly that for a *custom* policy you might be developing:
it implements a simple "greedy rebalancer" runtime, then scores it —
alongside Static and Conductor — against the LP bound on the imbalanced
BT-MZ proxy, where nonuniform power allocation matters most.

Run:  python examples/evaluate_runtime_system.py
"""

import numpy as np

from repro import (
    ConductorConfig,
    ConductorPolicy,
    Engine,
    StaticPolicy,
    WorkloadSpec,
    make_bt,
    make_power_models,
    solve_fixed_order_lp,
    trace_application,
)
from repro.machine import RaplController

N_RANKS = 16
CAP_PER_SOCKET_W = 34.0
JOB_CAP_W = N_RANKS * CAP_PER_SOCKET_W
ITERATIONS = 20
MEASURE_FROM = 12  # compare converged steady state


class GreedyRebalancer:
    """A deliberately simple contender: every Pcontrol it moves one watt
    from the earliest-finishing rank to the latest-finishing rank, and
    otherwise behaves like Static (8 threads, RAPL under its allocation).

    Implements the engine's ConfigPolicy protocol — any object with
    configure / on_pcontrol / switch_cost_s can be evaluated this way.
    """

    def __init__(self, sockets, job_cap_w, step_w=1.0):
        self.alloc = np.full(len(sockets), job_cap_w / len(sockets))
        self.rapl = [RaplController(pm) for pm in sockets]
        self.cores = sockets[0].spec.cores
        self.step = step_w

    def configure(self, ref, kernel, iteration, current):
        return self.rapl[ref.rank].decide(
            kernel, self.cores, float(self.alloc[ref.rank])
        ).config

    def on_pcontrol(self, iteration, records):
        if not records:
            return 0.0
        ends = {}
        for r in records:
            ends[r.ref.rank] = max(ends.get(r.ref.rank, 0.0), r.end_s)
        first = min(ends, key=ends.get)
        last = max(ends, key=ends.get)
        if first != last:
            self.alloc[first] -= self.step
            self.alloc[last] += self.step
        return 100e-6  # its (cheap) decision cost

    def switch_cost_s(self):
        return 0.0


def steady_per_iteration(result, first_iteration, n):
    start = min(
        r.start_s for r in result.records if r.iteration >= first_iteration
    )
    return (result.makespan_s - start) / n


def main() -> None:
    app = make_bt(WorkloadSpec(n_ranks=N_RANKS, iterations=ITERATIONS, seed=3))
    sockets = make_power_models(N_RANKS, efficiency_seed=42)
    engine = Engine(sockets)
    window = ITERATIONS - MEASURE_FROM

    # The optimization target: LP bound per iteration.
    lp_app = make_bt(WorkloadSpec(n_ranks=N_RANKS, iterations=4, seed=3))
    lp = solve_fixed_order_lp(trace_application(lp_app, sockets), JOB_CAP_W)
    t_lp = lp.makespan_s / 4
    print(f"LP bound           : {t_lp:.3f} s/iteration (the target)")

    contenders = {
        "Static": StaticPolicy(sockets, JOB_CAP_W),
        "GreedyRebalancer": GreedyRebalancer(sockets, JOB_CAP_W),
        "Conductor": ConductorPolicy(
            sockets, JOB_CAP_W, app,
            config=ConductorConfig(realloc_period=2, step_w=4.0,
                                   measurement_noise=0.01),
        ),
    }
    for name, policy in contenders.items():
        res = engine.run(app, policy)
        t = steady_per_iteration(res, MEASURE_FROM, window)
        gap = (t / t_lp - 1) * 100
        print(f"{name:<19}: {t:.3f} s/iteration  "
              f"(trails the bound by {gap:.1f}%)")


if __name__ == "__main__":
    main()
