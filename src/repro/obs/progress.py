"""Live sweep progress: heartbeat records, out-of-band by design.

Long, fault-injected sweeps need an answer to "is it still making
progress?" *while running* — not a trace file afterwards.  A
:class:`ProgressReporter` turns per-cell completions into heartbeat
records carrying cells done/total, elapsed wall time, an ETA, failure
and retry counts, and the cache hit rate, and streams them to two sinks:

* a single in-place stderr status line (carriage-return rewritten on a
  TTY, one plain line per heartbeat otherwise), and
* an append-only ``progress.jsonl`` file, one JSON object per heartbeat,
  for dashboards and post-hoc reports.

**Out-of-band means out-of-band**: every field here may be wall-clock
and scheduling dependent.  Nothing from this stream is ever embedded in
manifests, caches, journaled payloads, or any artifact with a
byte-determinism guarantee — that is the other half of the determinism
contract in :mod:`repro.obs.metrics`.  The reporter writes to *stderr*
(never stdout) so golden diffs of captured stdout stay clean, and the
CLI suppresses the status line entirely when stderr is not a TTY unless
explicitly forced (``--progress``), keeping CI logs readable.

Stdlib-only, like every ``repro.obs`` module.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

__all__ = [
    "PROGRESS_SCHEMA_VERSION",
    "ProgressReporter",
    "default_progress_stream",
]

#: Version stamped on every heartbeat record; bump on layout changes.
PROGRESS_SCHEMA_VERSION = 1


class ProgressReporter:
    """Streams sweep heartbeats to a status line and/or a JSONL file.

    Parameters
    ----------
    total:
        Number of cells the sweep will settle.
    label:
        Short prefix for the status line (e.g. the benchmark name).
    stream:
        Text stream for the live status line, or None to disable it.
        Defaults to None; the CLI passes ``sys.stderr`` after its
        TTY/``--quiet`` decision.
    jsonl_path:
        Heartbeat JSONL file, or None to disable the file sink.
    telemetry:
        An optional :class:`~repro.exec.timing.Telemetry` to read
        ``cache.hit``/``cache.miss``/``task.retry`` counters from at
        each heartbeat (the CLI passes its active telemetry; parents
        merge worker snapshots in submission order, so the counters are
        current whenever a cell settles).
    min_interval_s:
        Minimum seconds between *intermediate* heartbeats; the first
        and last cells always emit.  Keeps a thousand-cell sweep from
        writing a thousand lines.
    clock:
        Monotonic time source (injectable for tests).
    depth_fn:
        Optional zero-argument callable returning the current job-queue
        depth; when given, every heartbeat carries a ``queue_depth``
        field (the service dispatcher passes its queue's pending count).
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream=None,
        jsonl_path: str | Path | None = None,
        telemetry=None,
        min_interval_s: float = 0.0,
        clock=time.monotonic,
        depth_fn=None,
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.label = label
        self.stream = stream
        self.jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self.telemetry = telemetry
        self.min_interval_s = min_interval_s
        self._clock = clock
        self.depth_fn = depth_fn
        self._t0 = clock()
        self._last_emit: float | None = None
        self._line_open = False
        self.done = 0
        self.failed = 0
        self.resumed = 0
        self.records_emitted = 0

    # ------------------------------------------------------------------
    def _counters(self) -> dict[str, int]:
        if self.telemetry is None:
            return {}
        return {
            "cache_hits": self.telemetry.counter("cache.hit"),
            "cache_misses": self.telemetry.counter("cache.miss"),
            "retries": self.telemetry.counter("task.retry"),
        }

    def _record(self) -> dict:
        elapsed = self._clock() - self._t0
        # Journal-resumed cells count toward done (the bar reaches 100%)
        # but settle in microseconds — folding them into the throughput
        # estimate would make the ETA wildly optimistic right after a
        # resume.  Rate is computed over *computed* cells only.
        computed = self.done - self.resumed
        eta = None
        if 0 < self.done < self.total and computed > 0:
            eta = elapsed / computed * (self.total - self.done)
        doc = {
            "schema": PROGRESS_SCHEMA_VERSION,
            "kind": "progress",
            "done": self.done,
            "total": self.total,
            "failed": self.failed,
            "resumed": self.resumed,
            "elapsed_s": round(elapsed, 3),
            "eta_s": round(eta, 3) if eta is not None else None,
        }
        if self.depth_fn is not None:
            doc["queue_depth"] = int(self.depth_fn())
        counters = self._counters()
        if counters:
            doc.update(counters)
            lookups = counters["cache_hits"] + counters["cache_misses"]
            doc["cache_hit_rate"] = (
                round(counters["cache_hits"] / lookups, 4) if lookups else None
            )
        return doc

    def _line(self, doc: dict) -> str:
        pct = 100.0 * doc["done"] / doc["total"] if doc["total"] else 100.0
        parts = [
            f"[{self.label}] {doc['done']}/{doc['total']} cells ({pct:.0f}%)"
        ]
        if doc["failed"]:
            parts.append(f"{doc['failed']} failed")
        if doc.get("resumed"):
            parts.append(f"{doc['resumed']} resumed")
        if doc.get("queue_depth") is not None:
            parts.append(f"queue {doc['queue_depth']}")
        if doc.get("retries"):
            parts.append(f"{doc['retries']} retries")
        if doc.get("cache_hit_rate") is not None:
            parts.append(f"cache {100.0 * doc['cache_hit_rate']:.0f}%")
        if doc.get("eta_s") is not None:
            parts.append(f"eta {doc['eta_s']:.0f}s")
        parts.append(f"{doc['elapsed_s']:.1f}s elapsed")
        return " · ".join(parts)

    def _emit(self, doc: dict, final: bool) -> None:
        self.records_emitted += 1
        if self.jsonl_path is not None:
            self.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
            with self.jsonl_path.open("a") as fh:
                fh.write(json.dumps(doc, sort_keys=True) + "\n")
        if self.stream is None:
            return
        line = self._line(doc)
        if self._is_tty():
            # Rewrite one status line in place; pad to clear leftovers.
            self.stream.write("\r" + line.ljust(79))
            self._line_open = True
            if final:
                self.stream.write("\n")
                self._line_open = False
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def _is_tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        try:
            return bool(isatty()) if isatty is not None else False
        except (ValueError, OSError):
            return False

    # ------------------------------------------------------------------
    def update(self, ok: bool = True, resumed: bool = False) -> None:
        """Record one settled cell (called in submission order).

        ``resumed`` marks a cell rehydrated from a journal rather than
        computed: it counts toward ``done`` (and the 100% bar) but is
        excluded from the throughput behind the ETA, and reported
        separately in the heartbeat.
        """
        self.done += 1
        if not ok:
            self.failed += 1
        if resumed:
            self.resumed += 1
        now = self._clock()
        final = self.done >= self.total
        if (
            not final
            and self._last_emit is not None
            and now - self._last_emit < self.min_interval_s
        ):
            return
        self._last_emit = now
        self._emit(self._record(), final)

    def finish(self) -> None:
        """Close the status line (idempotent; safe when nothing emitted)."""
        if self._line_open and self.stream is not None:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False


def default_progress_stream(force: bool, quiet: bool):
    """The CLI's status-line stream decision: TTY-aware, overridable.

    ``quiet`` always wins; ``force`` (``--progress``) enables the line
    even into a pipe; otherwise the line appears only when stderr is a
    real TTY, so CI logs and redirected runs stay clean.
    """
    if quiet:
        return None
    if force:
        return sys.stderr
    try:
        if sys.stderr.isatty():
            return sys.stderr
    except (ValueError, OSError, AttributeError):
        pass
    return None
