"""A persistent, deduplicating job queue for scenario cells.

One job is one (spec, cap) cell, identified by the same content address
the solver cache and sweep journal use
(:func:`~repro.exec.keys.scenario_cell_key`).  That shared identity is
the dedup contract: submitting a cell that is already pending attaches
the submission to the existing job instead of enqueueing a duplicate,
and a cell some earlier sweep already journaled completes without
computing anything (the dispatcher's journal fast path).

Durability follows :class:`~repro.exec.checkpoint.SweepJournal`: the
queue is an append-only JSONL event log (``queue.jsonl``), one fsynced
event per state transition (``submit``/``claim``/``complete``/``fail``/
``release``), replayed on open.  Torn trailing lines from a crash
mid-append are ignored; jobs found ``running`` after replay were claimed
by a dispatcher that died, and are released back to ``pending`` in
memory so the next dispatcher retries them.

Ordering is priority-then-FIFO: :meth:`JobQueue.claim_next` hands out
the highest-priority pending job, ties broken by submission order.
Re-submitting a job can only *raise* its priority (max-merge), never
lower it — a tenant cannot deprioritize another tenant's work.

Per-tenant quotas bound *active* (pending + running) jobs.  A submission
that would exceed its tenant's quota is rejected whole
(:class:`QuotaExceeded`) before any event is written: no partial
enqueue.  Deduplicated attachments are free — they add no active job.

The queue object assumes a single owning process per queue directory
(one dispatcher); submissions from other processes go through the CLI,
which opens, submits, and closes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..exec.keys import scenario_cell_key
from ..exec.timing import count
from ..obs.metrics import inc as metric_inc
from ..scenarios.spec import SCENARIO_LAYER_VERSION, ScenarioSpec

__all__ = [
    "QUEUE_SCHEMA_VERSION",
    "Job",
    "JobQueue",
    "QuotaExceeded",
    "SubmitReceipt",
]

#: Version stamped on every queue event; replay ignores foreign versions.
QUEUE_SCHEMA_VERSION = 1

#: Job lifecycle states.
_STATES = ("pending", "running", "done", "failed")


class QuotaExceeded(RuntimeError):
    """A submission would push a tenant past its active-job quota."""

    def __init__(self, tenant: str, active: int, adding: int, quota: int):
        super().__init__(
            f"tenant {tenant!r}: {active} active job(s) + {adding} new "
            f"would exceed quota {quota}"
        )
        self.tenant = tenant
        self.active = active
        self.adding = adding
        self.quota = quota


@dataclass
class Job:
    """One queued scenario cell (see the module docstring for identity)."""

    job_id: str
    spec_json: str
    cap_per_socket_w: float
    tenant: str
    priority: int
    seq: int
    state: str = "pending"
    submissions: int = 1
    failure: dict | None = None


@dataclass(frozen=True)
class SubmitReceipt:
    """What one submission did: new jobs, dedup attachments, requeues."""

    submitted: int
    deduped: int
    requeued: int
    job_ids: tuple[str, ...] = field(default=())


class JobQueue:
    """The event-logged queue; see the module docstring.

    Parameters
    ----------
    root:
        Queue directory (created if missing); holds ``queue.jsonl``.
    quotas:
        ``{tenant: max_active_jobs}``.  Tenants absent from the map are
        unbounded.
    """

    def __init__(
        self, root: str | Path, quotas: dict[str, int] | None = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "queue.jsonl"
        self.quotas = dict(quotas or {})
        self.jobs: dict[str, Job] = {}
        self.deduped = 0
        self.released_on_load = 0
        self._seq = 0
        self._replay()

    # ------------------------------------------------------------------
    # Event log
    def _append(self, doc: dict) -> None:
        doc = {"schema": QUEUE_SCHEMA_VERSION, **doc}
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with self.path.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _replay(self) -> None:
        if not self.path.exists():
            return
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    # Torn trailing line from a crash mid-append.
                    continue
                if (
                    not isinstance(doc, dict)
                    or doc.get("schema") != QUEUE_SCHEMA_VERSION
                ):
                    continue
                self._apply(doc)
        # Jobs a dead dispatcher left claimed: retry them.
        for job in self.jobs.values():
            if job.state == "running":
                job.state = "pending"
                self.released_on_load += 1

    def _apply(self, doc: dict) -> None:
        kind = doc.get("kind")
        job_id = doc.get("job_id")
        if not isinstance(job_id, str):
            return
        if kind == "submit":
            self._apply_submit(doc, job_id)
            return
        job = self.jobs.get(job_id)
        if job is None:
            return
        if kind == "claim" and job.state == "pending":
            job.state = "running"
        elif kind == "complete" and job.state == "running":
            job.state = "done"
            job.failure = None
        elif kind == "fail" and job.state == "running":
            job.state = "failed"
            failure = doc.get("failure")
            job.failure = failure if isinstance(failure, dict) else None
        elif kind == "release" and job.state == "running":
            job.state = "pending"

    def _apply_submit(self, doc: dict, job_id: str) -> None:
        job = self.jobs.get(job_id)
        priority = int(doc.get("priority", 0))
        tenant = str(doc.get("tenant", "default"))
        if job is None:
            self.jobs[job_id] = Job(
                job_id=job_id,
                spec_json=str(doc.get("spec_json", "")),
                cap_per_socket_w=float(doc.get("cap_w", 0.0)),
                tenant=tenant,
                priority=priority,
                seq=self._seq,
            )
            self._seq += 1
            return
        job.submissions += 1
        job.priority = max(job.priority, priority)
        if job.state == "failed":
            # Resubmitting a failed cell is an explicit retry.
            job.state = "pending"
            job.failure = None
        else:
            # pending/running/done: the existing job (or its journaled
            # result) serves this submission too.
            self.deduped += 1

    # ------------------------------------------------------------------
    # Submission
    def submit_cells(
        self,
        spec: ScenarioSpec,
        caps: list[float] | None = None,
        tenant: str = "default",
        priority: int = 0,
    ) -> SubmitReceipt:
        """Enqueue one job per cap of ``spec`` (default: its whole grid).

        Atomic with respect to quotas: either every cell of the
        submission is accepted, or :class:`QuotaExceeded` is raised
        before any event is written.  Returns a receipt splitting the
        cells into genuinely new jobs, dedup attachments, and requeues
        of previously failed jobs.
        """
        grid = [float(c) for c in (caps if caps is not None else
                                   spec.caps_per_socket_w)]
        cell_hash = spec.cell_hash()
        spec_json = spec.to_json()
        # Within-submission dedup first: the same cap twice is one job.
        ids: dict[str, float] = {}
        for cap in grid:
            key = scenario_cell_key(cell_hash, cap, SCENARIO_LAYER_VERSION)
            ids.setdefault(key, cap)
        new, attach, requeue = [], [], []
        for key, cap in ids.items():
            job = self.jobs.get(key)
            if job is None:
                new.append((key, cap))
            elif job.state == "failed":
                requeue.append((key, cap))
            else:
                attach.append((key, cap))
        quota = self.quotas.get(tenant)
        if quota is not None:
            active = self.active_count(tenant)
            adding = len(new) + len(requeue)
            if active + adding > quota:
                raise QuotaExceeded(tenant, active, adding, quota)
        for key, cap in new + requeue + attach:
            self._apply_submit(
                {
                    "tenant": tenant,
                    "priority": priority,
                    "spec_json": spec_json,
                    "cap_w": cap,
                },
                key,
            )
            self._append(
                {
                    "kind": "submit",
                    "job_id": key,
                    "tenant": tenant,
                    "priority": priority,
                    "spec_json": spec_json,
                    "cap_w": cap,
                }
            )
        n_dedup = len(attach) + (len(grid) - len(ids))
        count("queue.submitted", len(new) + len(requeue))
        if n_dedup:
            count("queue.deduped", n_dedup)
            # Dedup depends on what earlier submissions queued: operational.
            metric_inc("queue.deduped", n_dedup, operational=True)
        return SubmitReceipt(
            submitted=len(new),
            deduped=n_dedup,
            requeued=len(requeue),
            job_ids=tuple(ids),
        )

    # ------------------------------------------------------------------
    # Claim / settle
    def claim_next(self) -> Job | None:
        """The highest-priority pending job (FIFO within a priority)."""
        best: Job | None = None
        for job in self.jobs.values():
            if job.state != "pending":
                continue
            if best is None or (-job.priority, job.seq) < (-best.priority,
                                                           best.seq):
                best = job
        if best is None:
            return None
        best.state = "running"
        self._append({"kind": "claim", "job_id": best.job_id})
        return best

    def complete(self, job_id: str) -> None:
        self._settle(job_id, "done", {"kind": "complete", "job_id": job_id})

    def fail(self, job_id: str, failure: dict | None = None) -> None:
        if self._settle(
            job_id, "failed",
            {"kind": "fail", "job_id": job_id, "failure": failure},
        ):
            self.jobs[job_id].failure = failure

    def release(self, job_id: str) -> None:
        """Return a claimed job to pending (dispatcher giving it up)."""
        job = self.jobs.get(job_id)
        if job is None or job.state != "running":
            return
        job.state = "pending"
        self._append({"kind": "release", "job_id": job_id})

    def _settle(self, job_id: str, state: str, event: dict) -> bool:
        """Settle a *running* job; returns whether the settle took effect.

        Only the dispatcher that currently owns a claim may settle it: a
        stale dispatcher calling :meth:`complete`/:meth:`fail` on a job
        already released back to ``pending`` (or settled by someone
        else) must not flip queue state or append a misleading event.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if job.state != "running":
            return False
        job.state = state
        if state == "done":
            job.failure = None
        self._append(event)
        return True

    # ------------------------------------------------------------------
    # Introspection
    def depth(self) -> int:
        """Pending jobs (the queue-depth heartbeat gauge)."""
        return sum(1 for j in self.jobs.values() if j.state == "pending")

    def active_count(self, tenant: str) -> int:
        return sum(
            1
            for j in self.jobs.values()
            if j.tenant == tenant and j.state in ("pending", "running")
        )

    def stats(self) -> dict:
        """Counters for the status document (see ``service.status``)."""
        by_state = {state: 0 for state in _STATES}
        tenants: dict[str, dict] = {}
        for job in self.jobs.values():
            by_state[job.state] += 1
            entry = tenants.setdefault(
                job.tenant,
                {
                    "active": 0,
                    "submitted": 0,
                    "quota": self.quotas.get(job.tenant),
                },
            )
            entry["submitted"] += job.submissions
            if job.state in ("pending", "running"):
                entry["active"] += 1
        by_state["total"] = len(self.jobs)
        return {
            "jobs": by_state,
            "deduped": self.deduped,
            "tenants": tenants,
        }
