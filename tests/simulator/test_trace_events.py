"""Engine trace-event emission and simulator telemetry counters."""

from __future__ import annotations

from repro.exec.timing import Telemetry, use_telemetry
from repro.obs.recorder import TraceRecorder, use_recorder
from repro.simulator import Application, ComputeOp, Engine

from ..conftest import make_p2p_app


class FixedPolicy:
    def __init__(self, config=None):
        from repro.machine import Configuration

        self.config = config or Configuration(2.6, 8)

    def configure(self, ref, kernel, iteration, current):
        return self.config

    def on_pcontrol(self, iteration, records):
        return 0.0

    def switch_cost_s(self):
        return 0.0


class TestEventEmission:
    def test_every_task_record_has_a_task_event(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=2)
        rec = TraceRecorder()
        with use_recorder(rec):
            res = Engine(two_rank_models).run(app, FixedPolicy())
        tasks = [d for d in rec.snapshot() if d["kind"] == "task"]
        assert len(tasks) == len(res.records)
        sample = tasks[0]
        assert sample["args"]["freq_ghz"] == 2.6
        assert sample["args"]["power_w"] > 0.0

    def test_collectives_emit_one_span_per_rank(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=1)
        rec = TraceRecorder()
        with use_recorder(rec):
            Engine(two_rank_models).run(app, FixedPolicy())
        names = [d["name"] for d in rec.snapshot() if d["kind"] == "collective"]
        # One allreduce and one pcontrol barrier, each spanning both ranks.
        assert names.count("allreduce") == 2
        assert names.count("pcontrol") == 2

    def test_mpi_waits_emitted_only_when_blocked(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=1)
        rec = TraceRecorder()
        with use_recorder(rec):
            Engine(two_rank_models).run(app, FixedPolicy())
        for doc in rec.snapshot():
            if doc["kind"] == "mpi_wait":
                assert doc["dur_s"] > 0.0
                assert doc["name"] in ("recv", "wait")

    def test_untraced_run_is_identical(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=1)
        engine = Engine(two_rank_models)
        bare = engine.run(app, FixedPolicy())
        with use_recorder(TraceRecorder()):
            traced = engine.run(app, FixedPolicy())
        assert traced.makespan_s == bare.makespan_s
        assert traced.records == bare.records


class TestSimulatorCounters:
    def test_run_bumps_sim_counters(self, kernel, two_rank_models):
        app = make_p2p_app(kernel, iterations=2)
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            res = Engine(two_rank_models).run(app, FixedPolicy())
        assert telemetry.counter("sim.tasks") == len(res.records)
        assert telemetry.counter("sim.collectives") == res.collective_count
        assert telemetry.counter("sim.mpi_waits") > 0

    def test_compute_only_app_counts_zero_waits(self, kernel, two_rank_models):
        app = Application(
            "t", [[ComputeOp(kernel)], [ComputeOp(kernel)]]
        )
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            Engine(two_rank_models).run(app, FixedPolicy())
        assert telemetry.counter("sim.tasks") == 2
        assert telemetry.counter("sim.mpi_waits") == 0
        assert telemetry.counter("sim.collectives") == 0
