"""Schedule replay: execute an application under an LP/ILP-derived schedule.

The paper validates its offline schedules by replaying them on the real
benchmarks — "as the application encounters each MPI call, our replay
mechanism changes the configuration appropriately for the next computation
task" (§6.1), skipping the change when the upcoming task is too short to
amortize the ~145 µs DVFS transition (threshold 1 ms).

:class:`ReplayPolicy` implements exactly that against the simulator, and
:func:`replay_schedule` wraps the engine run plus an instantaneous-power
verification, returning the replayed makespan and the observed power peak.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from ..machine.configuration import Configuration
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.performance import TaskKernel, TaskTimeModel
from ..machine.power import SocketPowerModel
from .engine import Engine, SimulationResult, TaskRecord
from .network import IB_QDR, NetworkModel
from .program import Application, TaskRef
from .telemetry import verify_power_cap

__all__ = ["ReplayPolicy", "ReplayOutcome", "replay_schedule"]


class ReplayPolicy:
    """Replays a per-task configuration assignment.

    Parameters
    ----------
    assignment:
        Configuration per :class:`TaskRef`; tasks absent from the map run
        at the rank's current configuration (first task of a rank must be
        present).
    min_switch_duration_s:
        Do not switch configurations for tasks shorter than this (the
        paper's 1 ms threshold): the rank's current configuration is kept.
    """

    def __init__(
        self,
        assignment: dict[TaskRef, Configuration],
        spec: CpuSpec = XEON_E5_2670,
        switch_overhead_s: float = 145e-6,
        min_switch_duration_s: float = 1e-3,
    ) -> None:
        self.assignment = dict(assignment)
        self.time_model = TaskTimeModel(spec)
        self.switch_overhead_s = switch_overhead_s
        self.min_switch_duration_s = min_switch_duration_s

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """The scheduled configuration, subject to the 1 ms switch rule."""
        target = self.assignment.get(ref, current)
        if target is None:
            raise KeyError(
                f"replay schedule has no configuration for first task {ref}"
            )
        if current is not None and target != current:
            planned = self.time_model.duration(
                kernel, target.freq_ghz, target.threads, target.duty
            )
            if planned < self.min_switch_duration_s:
                return current  # too short to amortize the transition
        return target

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        return 0.0

    def switch_cost_s(self) -> float:
        return self.switch_overhead_s


@dataclass(frozen=True)
class ReplayOutcome:
    """Replayed schedule execution plus its power verification."""

    result: SimulationResult
    cap_w: float
    peak_power_w: float
    cap_respected: bool

    @property
    def makespan_s(self) -> float:
        return self.result.makespan_s


def replay_schedule(
    app: Application,
    assignment: dict[TaskRef, Configuration],
    power_models: list[SocketPowerModel],
    cap_w: float,
    network: NetworkModel = IB_QDR,
    spec: CpuSpec = XEON_E5_2670,
    slack_mode: str = "task",
    cap_rel_tol: float = 5e-3,
    switch_overhead_s: float = 145e-6,
    min_switch_duration_s: float = 1e-3,
    label: str | None = None,
) -> ReplayOutcome:
    """Run ``app`` under a schedule and verify the job power constraint.

    ``cap_rel_tol`` allows the small overshoot inherent to discrete
    rounding (the paper's replayed schedules are "within their power
    constraints" after the same rounding).  ``label``, when given, wraps
    the replay in a trace-recorder run scope (the scenario layer passes
    its policy-instance labels here), so replays land in their own
    Perfetto process group; None leaves the ambient scope untouched.
    """
    from ..obs.recorder import current_recorder

    engine = Engine(power_models, network=network, spec=spec)
    policy = ReplayPolicy(
        assignment,
        spec=spec,
        switch_overhead_s=switch_overhead_s,
        min_switch_duration_s=min_switch_duration_s,
    )
    rec = current_recorder() if label is not None else None
    with rec.run_scope(label) if rec is not None else nullcontext():
        result = engine.run(app, policy)
    ok, peak = verify_power_cap(
        result, power_models, cap_w, slack_mode=slack_mode, rel_tol=cap_rel_tol
    )
    return ReplayOutcome(
        result=result, cap_w=cap_w, peak_power_w=peak, cap_respected=ok
    )
