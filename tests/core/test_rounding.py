"""Unit tests for continuous -> discrete schedule rounding."""

import pytest

from repro.core import round_schedule, solve_fixed_order_lp
from repro.machine import SocketPowerModel, TaskKernel
from repro.simulator import trace_application

from ..conftest import make_p2p_app

CAP = 58.0


@pytest.fixture(scope="module")
def lp_and_trace():
    kernel = TaskKernel(cpu_seconds=1.0, mem_seconds=0.2,
                        parallel_fraction=0.98, mem_parallel_fraction=0.9,
                        bw_saturation_threads=4, mem_intensity=0.3)
    models = [SocketPowerModel(efficiency=1.0), SocketPowerModel(efficiency=1.05)]
    trace = trace_application(make_p2p_app(kernel, iterations=2), models)
    res = solve_fixed_order_lp(trace, CAP)
    assert res.feasible
    return res.schedule, trace


class TestRounding:
    def test_discrete_kind_and_singleton_mixtures(self, lp_and_trace):
        sched, trace = lp_and_trace
        disc = round_schedule(trace, sched)
        assert disc.kind == "discrete"
        for a in disc.assignments.values():
            assert a.is_discrete
            assert len(a.mixture) == 1

    def test_configs_on_frontier(self, lp_and_trace):
        sched, trace = lp_and_trace
        disc = round_schedule(trace, sched, mode="nearest")
        for a in disc.assignments.values():
            frontier_cfgs = {p.config for p in trace.frontiers[a.edge_id]}
            assert a.configuration in frontier_cfgs

    def test_nearest_picks_closest_power(self, lp_and_trace):
        sched, trace = lp_and_trace
        disc = round_schedule(trace, sched, mode="nearest")
        for ref, a in disc.assignments.items():
            target = sched.assignments[ref].power_w
            best_gap = min(
                abs(p.power_w - target) for p in trace.frontiers[a.edge_id]
            )
            assert abs(a.power_w - target) == pytest.approx(best_gap)

    def test_floor_never_exceeds_lp_power(self, lp_and_trace):
        sched, trace = lp_and_trace
        disc = round_schedule(trace, sched, mode="floor")
        for ref, a in disc.assignments.items():
            cont = sched.assignments[ref]
            lowest = min(p.power_w for p in trace.frontiers[a.edge_id])
            assert (
                a.power_w <= cont.power_w + 1e-9
                or a.power_w == pytest.approx(lowest)
            )

    def test_dominant_picks_biggest_fraction(self, lp_and_trace):
        sched, trace = lp_and_trace
        disc = round_schedule(trace, sched, mode="dominant")
        for ref, a in disc.assignments.items():
            assert a.configuration == sched.assignments[ref].dominant.config

    def test_retimed_makespan_close_to_lp(self, lp_and_trace):
        sched, trace = lp_and_trace
        disc = round_schedule(trace, sched, mode="nearest")
        # Rounding moves each task at most one hull segment: small change.
        assert disc.objective_s == pytest.approx(sched.objective_s, rel=0.1)

    def test_floor_slower_than_continuous(self, lp_and_trace):
        sched, trace = lp_and_trace
        disc = round_schedule(trace, sched, mode="floor")
        assert disc.objective_s >= sched.objective_s - 1e-9

    def test_unknown_mode(self, lp_and_trace):
        sched, trace = lp_and_trace
        with pytest.raises(ValueError):
            round_schedule(trace, sched, mode="bogus")

    def test_rejects_discrete_input(self, lp_and_trace):
        sched, trace = lp_and_trace
        disc = round_schedule(trace, sched)
        with pytest.raises(ValueError):
            round_schedule(trace, disc)

    def test_solver_info_kept(self, lp_and_trace):
        sched, trace = lp_and_trace
        disc = round_schedule(trace, sched, mode="floor")
        assert disc.solver_info["rounding"] == "floor"
        assert disc.solver_info["continuous_objective_s"] == pytest.approx(
            sched.objective_s
        )
