"""The queue-status document: schema-versioned, validated, renderable.

``repro-exp status --json`` prints exactly :func:`build_status_doc`'s
output; anything consuming it (dashboards, CI gates) can hold it to
:func:`validate_status_doc`, which mirrors the
:func:`~repro.obs.metrics.validate_metrics_doc` contract — it returns a
list of human-readable problems, empty when the document is valid, so a
test can assert ``validate_status_doc(doc) == []`` and see every
violation at once.
"""

from __future__ import annotations

from .queue import JobQueue

__all__ = [
    "STATUS_SCHEMA_VERSION",
    "build_status_doc",
    "render_status_text",
    "validate_status_doc",
]

#: Version stamped on every status document; bump on layout changes.
STATUS_SCHEMA_VERSION = 1

_JOB_FIELDS = ("pending", "running", "done", "failed", "total")


def build_status_doc(queue: JobQueue) -> dict:
    """The status document for one queue (see the module docstring)."""
    stats = queue.stats()
    return {
        "schema": STATUS_SCHEMA_VERSION,
        "kind": "queue-status",
        "queue_dir": str(queue.root),
        "jobs": stats["jobs"],
        "deduped": stats["deduped"],
        "tenants": stats["tenants"],
    }


def _is_count(value) -> bool:
    """A non-negative int that is not a bool (True would count as 1)."""
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate_status_doc(doc) -> list[str]:
    """Every problem in ``doc``; an empty list means it is valid."""
    if not isinstance(doc, dict):
        return ["status doc is not an object"]
    problems: list[str] = []
    if doc.get("schema") != STATUS_SCHEMA_VERSION:
        problems.append(
            f"schema is {doc.get('schema')!r}, "
            f"expected {STATUS_SCHEMA_VERSION}"
        )
    if doc.get("kind") != "queue-status":
        problems.append(f"kind is {doc.get('kind')!r}, expected 'queue-status'")
    if not isinstance(doc.get("queue_dir"), str):
        problems.append("queue_dir is not a string")
    jobs = doc.get("jobs")
    if not isinstance(jobs, dict):
        problems.append("jobs is not an object")
    else:
        for name in _JOB_FIELDS:
            if not _is_count(jobs.get(name)):
                problems.append(
                    f"jobs.{name} is {jobs.get(name)!r}, "
                    "expected a non-negative int"
                )
        if all(_is_count(jobs.get(name)) for name in _JOB_FIELDS):
            states_sum = sum(jobs[name] for name in _JOB_FIELDS[:-1])
            if states_sum != jobs["total"]:
                problems.append(
                    f"jobs.total is {jobs['total']}, but the states sum "
                    f"to {states_sum}"
                )
    if not _is_count(doc.get("deduped")):
        problems.append(
            f"deduped is {doc.get('deduped')!r}, expected a non-negative int"
        )
    tenants = doc.get("tenants")
    if not isinstance(tenants, dict):
        problems.append("tenants is not an object")
    else:
        for name, entry in tenants.items():
            if not isinstance(entry, dict):
                problems.append(f"tenants[{name!r}] is not an object")
                continue
            for key in ("active", "submitted"):
                if not _is_count(entry.get(key)):
                    problems.append(
                        f"tenants[{name!r}].{key} is {entry.get(key)!r}, "
                        "expected a non-negative int"
                    )
            quota = entry.get("quota")
            if quota is not None and not _is_count(quota):
                problems.append(
                    f"tenants[{name!r}].quota is {quota!r}, "
                    "expected a non-negative int or null"
                )
    return problems


def render_status_text(doc: dict) -> str:
    """The human rendering of a status doc (``repro-exp status``)."""
    jobs = doc["jobs"]
    lines = [
        f"queue {doc['queue_dir']}",
        (
            f"  jobs: {jobs['pending']} pending, {jobs['running']} running, "
            f"{jobs['done']} done, {jobs['failed']} failed "
            f"({jobs['total']} total, {doc['deduped']} deduped)"
        ),
    ]
    for name in sorted(doc["tenants"]):
        entry = doc["tenants"][name]
        quota = "unbounded" if entry["quota"] is None else str(entry["quota"])
        lines.append(
            f"  tenant {name}: {entry['active']} active / quota {quota}, "
            f"{entry['submitted']} submission(s)"
        )
    return "\n".join(lines)
