"""Typed operational metrics: counters, gauges, fixed-bucket histograms.

Where :mod:`repro.exec.timing` answers "where did the seconds go" and the
trace recorder answers "what happened, in order", this module answers the
fleet operator's question: *how much, how fast, how healthy* — as
aggregable numbers that merge deterministically across workers and
export to standard tooling (a JSON snapshot, Prometheus text
exposition).

Three metric types, all name-addressed:

* **counters** — monotone integer totals (``cache.hit``,
  ``task.retry``, ``solve.total``);
* **gauges** — last-written values (``sweep.cells_total``);
* **histograms** — fixed upper-bound buckets with exact ``count`` /
  ``sum`` / ``min`` / ``max``, Prometheus-shaped (``solve.wall_s``,
  ``cell.wall_s``, ``solve.iterations``).

Activation mirrors :class:`~repro.exec.timing.Telemetry`: instrumented
code calls :func:`inc` / :func:`observe` / :func:`set_gauge`, which are
no-ops unless a :class:`Metrics` object is active in the current context
via :func:`use_metrics` — with metrics off, each site costs one
contextvar read.  Parallel workers activate fresh :class:`Metrics`, ship
:meth:`Metrics.to_dict` snapshots back, and the parent folds them with
:meth:`Metrics.merge` in submission order.

**The determinism contract.**  Every metric is either *deterministic* —
a pure function of what was computed (task counts, solve totals, cache
traffic, histogram bucket counts over integer observations) — or
*operational* (``operational=True`` at the recording site): wall-clock
seconds, ETA-style gauges, anything that depends on scheduling or
machine speed.  Counter addition and integer histogram merges are
commutative and exact, so the deterministic subset of a snapshot
(:meth:`Metrics.to_dict` with ``deterministic_only=True``) is
byte-identical between a serial sweep and the same sweep fanned out over
workers — the property the golden tests assert.  Operational metrics
live in the same snapshot but are excluded from the deterministic view
and from run manifests; wall-clock truth belongs to the out-of-band
progress stream (:mod:`repro.obs.progress`) and the full snapshot file.

Stdlib-only, like every ``repro.obs`` module.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "TIME_BUCKETS_S",
    "ITERATION_BUCKETS",
    "COUNT_BUCKETS",
    "Histogram",
    "Metrics",
    "current_metrics",
    "use_metrics",
    "inc",
    "set_gauge",
    "observe",
    "timed",
    "prometheus_text",
    "validate_metrics_doc",
]

#: Version of the :meth:`Metrics.to_dict` snapshot layout.  Bump on any
#: layout change; :meth:`Metrics.merge` rejects mismatched snapshots so
#: a parent never silently folds in a stale worker's numbers.
METRICS_SCHEMA_VERSION = 1

#: Default wall-time buckets (seconds), Prometheus-style upper bounds.
TIME_BUCKETS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Buckets for solver iteration counts (integer observations).
ITERATION_BUCKETS = (
    0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10_000,
)

#: Buckets for generic event counts per unit of work (integer observations).
COUNT_BUCKETS = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10_000,
)


class Histogram:
    """A fixed-bucket histogram with exact summary fields.

    ``bounds`` are strictly increasing bucket *upper* bounds; an
    implicit ``+Inf`` bucket catches everything above the last bound
    (``counts`` therefore has one more entry than ``bounds``).
    ``count``/``min``/``max`` are exact; ``sum`` is exact — and its
    merge order-insensitive — whenever every observation is an integer
    (Python int addition is associative), which is why deterministic
    histograms observe integers and wall-clock histograms are marked
    operational.
    """

    def __init__(self, bounds: tuple[float, ...]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum: int | float = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def observe(self, value: int | float) -> None:
        """Record one observation into its bucket and the summary fields."""
        if isinstance(value, float) and value.is_integer():
            value = int(value)  # keep integer sums exact across merges
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe snapshot of this histogram."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(tuple(doc["bounds"]))
        hist.merge(doc)
        return hist

    def merge(self, doc: dict) -> None:
        """Fold a :meth:`to_dict` snapshot in (bucket-wise addition).

        Raises :class:`ValueError` on mismatched bounds — numbers from a
        differently-shaped histogram must never be silently summed.
        """
        if tuple(float(b) for b in doc["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {doc['bounds']} vs {self.bounds}"
            )
        self.counts = [a + int(b) for a, b in zip(self.counts, doc["counts"])]
        self.count += int(doc["count"])
        self.sum += doc["sum"]
        for other, pick in ((doc["min"], min), (doc["max"], max)):
            if other is None:
                continue
            ours = self.min if pick is min else self.max
            merged = other if ours is None else pick(ours, other)
            if pick is min:
                self.min = merged
            else:
                self.max = merged

    def mean(self) -> float | None:
        """Mean observation (None when empty)."""
        return self.sum / self.count if self.count else None


class Metrics:
    """A named registry of counters, gauges, and histograms.

    One instance per run (or per worker, merged back).  Metric names are
    dotted strings (``cache.hit``); names recorded with
    ``operational=True`` are tracked in :attr:`operational` and excluded
    from the deterministic snapshot view (see the module docstring for
    the contract).
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, int | float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.operational: set[str] = set()

    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1, operational: bool = False) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n
        if operational:
            self.operational.add(name)

    def set_gauge(
        self, name: str, value: int | float, operational: bool = False
    ) -> None:
        """Set gauge ``name`` to ``value`` (last write wins on merge)."""
        self.gauges[name] = value
        if operational:
            self.operational.add(name)

    def observe(
        self,
        name: str,
        value: int | float,
        buckets: tuple[float, ...] = TIME_BUCKETS_S,
        operational: bool = False,
    ) -> None:
        """Record ``value`` into histogram ``name`` (created on first use).

        ``buckets`` shapes the histogram at creation; later calls must
        agree (the bounds are part of the metric's identity).
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(buckets)
        hist.observe(value)
        if operational:
            self.operational.add(name)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------
    def to_dict(self, deterministic_only: bool = False) -> dict:
        """JSON-safe snapshot; sorted keys, stable across runs.

        With ``deterministic_only`` every operational metric (and the
        ``operational`` name list itself) is dropped, leaving exactly
        the byte-stable subset that run manifests embed and the golden
        serial-vs-parallel tests diff.
        """

        def keep(name: str) -> bool:
            return not deterministic_only or name not in self.operational

        doc = {
            "version": METRICS_SCHEMA_VERSION,
            "counters": {
                k: v for k, v in sorted(self.counters.items()) if keep(k)
            },
            "gauges": {k: v for k, v in sorted(self.gauges.items()) if keep(k)},
            "histograms": {
                k: h.to_dict()
                for k, h in sorted(self.histograms.items())
                if keep(k)
            },
        }
        if not deterministic_only:
            doc["operational"] = sorted(self.operational)
        return doc

    def to_json(self, indent: int | None = 1) -> str:
        """The full snapshot as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dict` snapshot (e.g. from a worker) in.

        Counters and histograms add; gauges take the snapshot's value
        (so merging worker snapshots in submission order is
        deterministic).  Raises :class:`ValueError` when the snapshot's
        ``version`` is missing or differs from
        :data:`METRICS_SCHEMA_VERSION`.
        """
        version = snapshot.get("version")
        if version != METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"metrics snapshot version {version!r} does not match "
                f"schema version {METRICS_SCHEMA_VERSION}"
            )
        for name, n in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(n)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = value
        for name, doc in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = Histogram.from_dict(doc)
            else:
                hist.merge(doc)
        self.operational.update(snapshot.get("operational", []))

    def summary(self) -> str:
        """Human-readable metrics table (counters, gauges, histograms)."""
        lines = ["metrics", "-------"]
        if not (self.counters or self.gauges or self.histograms):
            lines.append("(no metrics recorded)")
            return "\n".join(lines)
        names = list(self.counters) + list(self.gauges) + list(self.histograms)
        width = max(len(n) for n in names)
        for name in sorted(self.counters):
            lines.append(f"{name:<{width}}  {self.counters[name]}")
        for name in sorted(self.gauges):
            lines.append(f"{name:<{width}}  {self.gauges[name]:g}")
        for name in sorted(self.histograms):
            h = self.histograms[name]
            mean = h.mean()
            lines.append(
                f"{name:<{width}}  n={h.count}"
                + (
                    f" mean={mean:.6g} min={h.min:g} max={h.max:g}"
                    if h.count
                    else ""
                )
            )
        return "\n".join(lines)


#: The active metrics registry (None = metrics disabled).
_current: ContextVar[Metrics | None] = ContextVar("repro_metrics", default=None)


def current_metrics() -> Metrics | None:
    """The metrics active in this context, or None when disabled."""
    return _current.get()


@contextmanager
def use_metrics(metrics: Metrics):
    """Activate ``metrics`` for the duration of the with-block."""
    token = _current.set(metrics)
    try:
        yield metrics
    finally:
        _current.reset(token)


def inc(name: str, n: int = 1, operational: bool = False) -> None:
    """Bump a counter on the active metrics (no-op when disabled)."""
    metrics = _current.get()
    if metrics is not None:
        metrics.inc(name, n, operational=operational)


def set_gauge(name: str, value: int | float, operational: bool = False) -> None:
    """Set a gauge on the active metrics (no-op when disabled)."""
    metrics = _current.get()
    if metrics is not None:
        metrics.set_gauge(name, value, operational=operational)


def observe(
    name: str,
    value: int | float,
    buckets: tuple[float, ...] = TIME_BUCKETS_S,
    operational: bool = False,
) -> None:
    """Record a histogram observation (no-op when disabled)."""
    metrics = _current.get()
    if metrics is not None:
        metrics.observe(name, value, buckets=buckets, operational=operational)


@contextmanager
def timed(name: str, buckets: tuple[float, ...] = TIME_BUCKETS_S):
    """Time a block into wall-clock histogram ``name`` (always operational).

    No-op (beyond one contextvar read) when metrics are disabled.
    """
    metrics = _current.get()
    if metrics is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        metrics.observe(
            name, time.perf_counter() - start, buckets=buckets, operational=True
        )


# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """A metric name as a Prometheus identifier (``repro_`` namespace)."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}"


def _prom_value(value: int | float) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        # The text exposition grammar spells infinities +Inf/-Inf;
        # Python's repr ("inf"/"-inf") does not parse.
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return repr(value)
    return str(value)


def _prom_identifiers(doc: dict) -> dict[tuple[str, str], str]:
    """Collision-free Prometheus identifiers for every metric in ``doc``.

    :func:`_prom_name` sanitization is lossy (``cell.wall_s`` and
    ``cell_wall_s`` both map to ``repro_cell_wall_s``), which would emit
    duplicate ``# TYPE`` lines and merge distinct series.  Colliding
    metrics are disambiguated deterministically: members of a collision
    group are ordered by original name (then family), the first keeps
    the sanitized base, and each later one gets the lowest free numeric
    suffix (``_2``, ``_3``, ...).
    """
    families = ("counters", "gauges", "histograms")
    by_base: dict[str, list[tuple[str, str]]] = {}
    for family in families:
        section = doc.get(family, {})
        if not isinstance(section, dict):
            continue
        for name in section:
            by_base.setdefault(_prom_name(name), []).append((family, name))
    ids: dict[tuple[str, str], str] = {}
    taken = set(by_base)
    for base in sorted(by_base):
        members = by_base[base]
        if len(members) == 1:
            ids[members[0]] = base
            continue
        members.sort(key=lambda fn: (fn[1], families.index(fn[0])))
        ids[members[0]] = base
        n = 2
        for member in members[1:]:
            candidate = f"{base}_{n}"
            while candidate in taken:
                n += 1
                candidate = f"{base}_{n}"
            taken.add(candidate)
            ids[member] = candidate
            n += 1
    return ids


def prometheus_text(metrics: "Metrics | dict") -> str:
    """Render a metrics object (or snapshot dict) as Prometheus text.

    The `text exposition format
    <https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
    counters get a ``_total`` suffix, histograms emit cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``.  Output is
    sorted by metric name, so it is byte-stable for identical inputs.
    Distinct metric names whose sanitized identifiers collide are
    disambiguated deterministically (see :func:`_prom_identifiers`).
    """
    doc = metrics.to_dict() if isinstance(metrics, Metrics) else metrics
    ids = _prom_identifiers(doc)
    lines: list[str] = []
    for name, value in sorted(doc.get("counters", {}).items()):
        pname = ids[("counters", name)]
        lines.append(f"# TYPE {pname}_total counter")
        lines.append(f"{pname}_total {_prom_value(value)}")
    for name, value in sorted(doc.get("gauges", {}).items()):
        pname = ids[("gauges", name)]
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_prom_value(value)}")
    for name, hist in sorted(doc.get("histograms", {}).items()):
        pname = ids[("histograms", name)]
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{pname}_bucket{{le="{_prom_value(float(bound))}"}} {cumulative}'
            )
        lines.append(f'{pname}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{pname}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{pname}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
def validate_metrics_doc(doc: object) -> list[str]:
    """Schema-check a metrics snapshot; returns a list of problems.

    The structural contract the tests and the CI smoke job rely on:
    the schema version, integer counters, numeric gauges, and
    internally consistent histograms (one more count than bound, bucket
    counts summing to ``count``, ``min <= max``).  An empty list means
    the snapshot is valid.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not an object"]
    if doc.get("version") != METRICS_SCHEMA_VERSION:
        errors.append(
            f"version {doc.get('version')!r} != {METRICS_SCHEMA_VERSION}"
        )
    counters = doc.get("counters", {})
    if not isinstance(counters, dict):
        errors.append("counters missing or not an object")
        counters = {}
    for name, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"counter {name}: non-integer value {value!r}")
    gauges = doc.get("gauges", {})
    if not isinstance(gauges, dict):
        errors.append("gauges missing or not an object")
        gauges = {}
    for name, value in gauges.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"gauge {name}: non-numeric value {value!r}")
    hists = doc.get("histograms", {})
    if not isinstance(hists, dict):
        errors.append("histograms missing or not an object")
        hists = {}
    for name, hist in hists.items():
        if not isinstance(hist, dict):
            errors.append(f"histogram {name}: not an object")
            continue
        bounds = hist.get("bounds")
        counts = hist.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            errors.append(f"histogram {name}: bounds/counts missing")
            continue
        if len(counts) != len(bounds) + 1:
            errors.append(
                f"histogram {name}: {len(counts)} counts for "
                f"{len(bounds)} bounds (want bounds+1)"
            )
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            errors.append(f"histogram {name}: bounds not strictly increasing")
        total = hist.get("count")
        if sum(counts) != total:
            errors.append(
                f"histogram {name}: bucket counts sum to {sum(counts)}, "
                f"count says {total}"
            )
        lo, hi = hist.get("min"), hist.get("max")
        if total:
            if lo is None or hi is None:
                errors.append(f"histogram {name}: min/max missing with count>0")
            elif lo > hi:
                errors.append(f"histogram {name}: min {lo} > max {hi}")
    operational = doc.get("operational", [])
    if not isinstance(operational, list):
        errors.append("operational is not a list")
    return errors
