"""Application JSON import/export — bring-your-own-trace workflows.

Users porting this library to their own codes will usually have *traces*
of real applications (op sequences per rank with measured task
characteristics) rather than our synthetic generators.  This module
defines a JSON interchange format for :class:`Application` objects so such
traces can be authored externally and loaded for simulation, LP bounding,
and runtime evaluation.

The format is one op list per rank; each op is a tagged object, e.g.::

    {"op": "compute", "cpu_seconds": 1.2, "mem_seconds": 0.3,
     "iteration": 0, "label": "stress", ...}
    {"op": "isend", "dst": 3, "size_bytes": 65536, "request": 1, "tag": 0}
    {"op": "collective", "kind": "allreduce", "size_bytes": 8}
    {"op": "pcontrol", "iteration": 0}

Compute ops accept every :class:`TaskKernel` field; omitted fields take
the kernel defaults.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from ..machine.performance import TaskKernel
from .program import (
    Application,
    CollectiveOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    Op,
    PcontrolOp,
    RecvOp,
    SendOp,
    WaitOp,
)

__all__ = ["application_to_dict", "application_from_dict", "save_application",
           "load_application"]

_FORMAT_VERSION = 1

_KERNEL_FIELDS = {f.name for f in dataclasses.fields(TaskKernel)}


def _op_to_dict(op: Op) -> dict:
    if isinstance(op, ComputeOp):
        data = {"op": "compute", "iteration": op.iteration, "label": op.label}
        data.update(dataclasses.asdict(op.kernel))
        return data
    if isinstance(op, SendOp):
        return {"op": "send", "dst": op.dst, "size_bytes": op.size_bytes,
                "tag": op.tag, "iteration": op.iteration}
    if isinstance(op, RecvOp):
        return {"op": "recv", "src": op.src, "tag": op.tag,
                "iteration": op.iteration}
    if isinstance(op, IsendOp):
        return {"op": "isend", "dst": op.dst, "size_bytes": op.size_bytes,
                "request": op.request, "tag": op.tag,
                "iteration": op.iteration}
    if isinstance(op, IrecvOp):
        return {"op": "irecv", "src": op.src, "request": op.request,
                "tag": op.tag, "iteration": op.iteration}
    if isinstance(op, WaitOp):
        return {"op": "wait", "request": op.request, "iteration": op.iteration}
    if isinstance(op, CollectiveOp):
        return {
            "op": "collective", "kind": op.kind, "size_bytes": op.size_bytes,
            "participants": list(op.participants) if op.participants else None,
            "iteration": op.iteration,
        }
    if isinstance(op, PcontrolOp):
        return {"op": "pcontrol", "iteration": op.iteration}
    raise TypeError(f"cannot serialize op {op!r}")


def _op_from_dict(data: dict) -> Op:
    kind = data.get("op")
    if kind == "compute":
        kernel_kwargs = {k: v for k, v in data.items() if k in _KERNEL_FIELDS}
        return ComputeOp(
            kernel=TaskKernel(**kernel_kwargs),
            iteration=data.get("iteration", -1),
            label=data.get("label", ""),
        )
    if kind == "send":
        return SendOp(dst=data["dst"], size_bytes=data["size_bytes"],
                      tag=data.get("tag", 0),
                      iteration=data.get("iteration", -1))
    if kind == "recv":
        return RecvOp(src=data["src"], tag=data.get("tag", 0),
                      iteration=data.get("iteration", -1))
    if kind == "isend":
        return IsendOp(dst=data["dst"], size_bytes=data["size_bytes"],
                       request=data["request"], tag=data.get("tag", 0),
                       iteration=data.get("iteration", -1))
    if kind == "irecv":
        return IrecvOp(src=data["src"], request=data["request"],
                       tag=data.get("tag", 0),
                       iteration=data.get("iteration", -1))
    if kind == "wait":
        return WaitOp(request=data["request"],
                      iteration=data.get("iteration", -1))
    if kind == "collective":
        parts = data.get("participants")
        return CollectiveOp(
            kind=data.get("kind", "allreduce"),
            size_bytes=data.get("size_bytes", 8),
            participants=tuple(parts) if parts else None,
            iteration=data.get("iteration", -1),
        )
    if kind == "pcontrol":
        return PcontrolOp(iteration=data["iteration"])
    raise ValueError(f"unknown op kind {kind!r}")


def application_to_dict(app: Application) -> dict:
    """JSON-safe dictionary for an application."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": app.name,
        "iterations": app.iterations,
        "metadata": {
            k: v
            for k, v in app.metadata.items()
            if isinstance(v, (str, int, float, bool, list, tuple))
        },
        "programs": [
            [_op_to_dict(op) for op in prog] for prog in app.programs
        ],
    }


def application_from_dict(data: dict) -> Application:
    """Rebuild (and validate) an application from its dictionary form."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported application format version {version!r}"
        )
    app = Application(
        name=data["name"],
        programs=[
            [_op_from_dict(op) for op in prog] for prog in data["programs"]
        ],
        iterations=data.get("iterations", 1),
        metadata=dict(data.get("metadata", {})),
    )
    app.validate()
    return app


def save_application(app: Application, path: str | Path) -> None:
    """Write an application to a JSON file."""
    Path(path).write_text(json.dumps(application_to_dict(app)))


def load_application(path: str | Path) -> Application:
    """Read an application from a JSON file."""
    return application_from_dict(json.loads(Path(path).read_text()))
