"""repro — reproduction of "Finding the Limits of Power-Constrained
Application Performance" (Bailey et al., SC 2015).

The package computes near-optimal upper bounds on the performance of
hybrid MPI + OpenMP applications under a job-level power constraint, via
the paper's fixed-vertex-order LP and flow-ILP formulations, and evaluates
two runtime power-allocation systems (Static, Conductor) against those
bounds on a fully simulated cluster substrate.

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro import (
        make_comd, WorkloadSpec, make_power_models,
        trace_application, solve_fixed_order_lp,
    )

    app = make_comd(WorkloadSpec(n_ranks=8, iterations=4))
    models = make_power_models(8)
    trace = trace_application(app, models)
    result = solve_fixed_order_lp(trace, cap_w=8 * 40.0)
    print(result.makespan_s)

Subpackages
-----------
``repro.machine``
    Socket power/performance models, Pareto frontiers, RAPL simulator.
``repro.dag``
    Application task graphs (vertices = MPI events, edges = tasks/messages).
``repro.simulator``
    Discrete-event MPI engine, tracing library, schedule replay.
``repro.core``
    The LP and flow-ILP formulations (the paper's contribution).
``repro.runtime``
    Static, Adagio, and Conductor power-allocation runtimes.
``repro.workloads``
    CoMD / LULESH / NAS-MZ BT / NAS-MZ SP proxy generators.
``repro.scenarios``
    Declarative N-way experiment scenarios over a policy registry.
``repro.experiments``
    Harness regenerating every table and figure of the paper.
"""

from .core import (
    InfeasibleError,
    PowerSchedule,
    load_schedule,
    round_schedule,
    save_schedule,
    solve_energy_lp,
    solve_fixed_order_lp,
    solve_flow_ilp,
)
from .experiments import (
    ExperimentConfig,
    make_power_models,
    run_comparison,
    sweep_caps,
)
from .machine import (
    XEON_E5_2670,
    ConfigPoint,
    Configuration,
    CpuSpec,
    RaplController,
    SocketPowerModel,
    TaskKernel,
    TaskTimeModel,
    convex_frontier,
    pareto_frontier,
    sample_socket_efficiencies,
)
from .cluster import (
    ClusterJob,
    JobAllocation,
    JobRequest,
    partition_power,
    simulate_cluster,
)
from .runtime import (
    AdagioPolicy,
    ConductorConfig,
    ConductorPolicy,
    SelectionOnlyPolicy,
    StaticPolicy,
)
from .scenarios import (
    PolicyRegistry,
    PolicySpec,
    ScenarioResult,
    ScenarioSpec,
    default_registry,
    run_scenarios,
)
from .simulator import (
    Application,
    Engine,
    MaxPerformancePolicy,
    NetworkModel,
    TaskRef,
    Trace,
    replay_schedule,
    trace_application,
)
from .workloads import (
    BENCHMARKS,
    WorkloadSpec,
    make_bt,
    make_comd,
    make_lulesh,
    make_sp,
    two_rank_exchange,
)

__version__ = "1.0.0"

__all__ = [
    "AdagioPolicy",
    "Application",
    "BENCHMARKS",
    "ClusterJob",
    "ConductorConfig",
    "ConductorPolicy",
    "ConfigPoint",
    "Configuration",
    "CpuSpec",
    "Engine",
    "ExperimentConfig",
    "InfeasibleError",
    "JobAllocation",
    "JobRequest",
    "MaxPerformancePolicy",
    "NetworkModel",
    "PolicyRegistry",
    "PolicySpec",
    "PowerSchedule",
    "RaplController",
    "ScenarioResult",
    "ScenarioSpec",
    "SocketPowerModel",
    "SelectionOnlyPolicy",
    "StaticPolicy",
    "TaskKernel",
    "TaskRef",
    "TaskTimeModel",
    "Trace",
    "WorkloadSpec",
    "XEON_E5_2670",
    "__version__",
    "convex_frontier",
    "default_registry",
    "make_bt",
    "make_comd",
    "make_lulesh",
    "make_power_models",
    "make_sp",
    "pareto_frontier",
    "replay_schedule",
    "load_schedule",
    "partition_power",
    "round_schedule",
    "save_schedule",
    "solve_energy_lp",
    "run_comparison",
    "run_scenarios",
    "sample_socket_efficiencies",
    "solve_fixed_order_lp",
    "solve_flow_ilp",
    "simulate_cluster",
    "sweep_caps",
    "trace_application",
    "two_rank_exchange",
]
