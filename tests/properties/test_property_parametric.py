"""Property: parametric re-solve is indistinguishable from rebuilding.

The parametric cap sweep freezes one matrix and swaps the cap into the
tagged rows' RHS; the rebuild path assembles a fresh model per cap.  For
any random application and any cap grid the two must agree — same
feasibility verdicts, same makespans, same primal vectors (HiGHS is
deterministic on identical inputs, and the inputs are identical by
construction).
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core import ParametricCapSolver, solve_cap_sweep, solve_fixed_order_lp
from repro.machine import SocketPowerModel
from repro.simulator import trace_application
from repro.workloads import random_application

apps = st.builds(
    random_application,
    n_ranks=st.integers(2, 3),
    iterations=st.integers(1, 2),
    seed=st.integers(0, 5_000),
    p_p2p=st.floats(0.0, 1.0),
)

cap_grids = st.lists(st.floats(15.0, 120.0), min_size=1, max_size=4,
                     unique=True)


def trace_for(app):
    models = [
        SocketPowerModel(efficiency=1.0 + 0.03 * r) for r in range(app.n_ranks)
    ]
    return trace_application(app, models)


class TestParametricEquivalence:
    @given(app=apps, caps_per_rank=cap_grids)
    @settings(max_examples=20, deadline=None)
    def test_solver_matches_independent_solves(self, app, caps_per_rank):
        trace = trace_for(app)
        solver = ParametricCapSolver(trace)
        for cap_per_rank in caps_per_rank:
            cap = cap_per_rank * app.n_ranks
            para = solver.solve(cap)
            fresh = solve_fixed_order_lp(trace, cap)
            assert para.feasible == fresh.feasible
            if not para.feasible:
                continue
            assert para.makespan_s == fresh.makespan_s  # exact, not approx
            assert np.array_equal(para.solution.x, fresh.solution.x)

    @given(app=apps, caps_per_rank=cap_grids)
    @settings(max_examples=10, deadline=None)
    def test_sweep_paths_identical(self, app, caps_per_rank):
        trace = trace_for(app)
        caps = [c * app.n_ranks for c in caps_per_rank]
        fast = solve_cap_sweep(trace, caps, parametric=True)
        slow = solve_cap_sweep(trace, caps, parametric=False)
        assert fast.makespans() == slow.makespans()

    @given(app=apps, cap_per_rank=st.floats(25.0, 90.0))
    @settings(max_examples=10, deadline=None)
    def test_repeat_solve_is_stable(self, app, cap_per_rank):
        trace = trace_for(app)
        solver = ParametricCapSolver(trace)
        cap = cap_per_rank * app.n_ranks
        first = solver.solve(cap)
        second = solver.solve(cap)
        assert first.feasible == second.feasible
        if first.feasible:
            assert first.makespan_s == second.makespan_s
        assert solver.n_solves == 2
