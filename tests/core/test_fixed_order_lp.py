"""Unit and invariant tests for the fixed-vertex-order LP."""

import numpy as np
import pytest

from repro.core import build_event_structure, solve_fixed_order_lp
from repro.dag import unconstrained_schedule
from repro.simulator import TaskRef, trace_application

from .. import conftest

CAP_HIGH = 400.0
CAP_MID = 62.0
CAP_LOW = 40.0


@pytest.fixture(scope="module")
def trace():
    from repro.machine import SocketPowerModel, TaskKernel

    kernel = TaskKernel(cpu_seconds=1.0, mem_seconds=0.2,
                        parallel_fraction=0.98, mem_parallel_fraction=0.9,
                        bw_saturation_threads=4, mem_intensity=0.3)
    models = [SocketPowerModel(efficiency=1.0), SocketPowerModel(efficiency=1.05)]
    return trace_application(conftest.make_p2p_app(kernel, iterations=2), models)


class TestFeasibility:
    def test_generous_cap_matches_unconstrained(self, trace, time_model):
        res = solve_fixed_order_lp(trace, CAP_HIGH)
        assert res.feasible
        best = unconstrained_schedule(trace.graph, time_model).makespan
        assert res.makespan_s == pytest.approx(best, rel=1e-4)

    def test_infeasible_below_floor(self, trace):
        res = solve_fixed_order_lp(trace, 5.0)
        assert not res.feasible
        with pytest.raises(Exception):
            _ = res.makespan_s

    def test_monotone_in_cap(self, trace):
        caps = [45.0, 55.0, 70.0, 100.0, 200.0]
        spans = []
        for c in caps:
            r = solve_fixed_order_lp(trace, c)
            assert r.feasible
            spans.append(r.makespan_s)
        assert all(b <= a + 1e-9 for a, b in zip(spans, spans[1:]))

    def test_objective_at_least_critical_path(self, trace, time_model):
        best = unconstrained_schedule(trace.graph, time_model).makespan
        for cap in (CAP_LOW, CAP_MID, CAP_HIGH):
            r = solve_fixed_order_lp(trace, cap)
            if r.feasible:
                assert r.makespan_s >= best - 1e-9

    def test_invalid_cap(self, trace):
        with pytest.raises(ValueError):
            solve_fixed_order_lp(trace, 0.0)


class TestScheduleStructure:
    def test_every_task_assigned(self, trace):
        res = solve_fixed_order_lp(trace, CAP_MID)
        assert set(res.schedule.assignments) == set(trace.task_edges)

    def test_fractions_sum_to_one(self, trace):
        res = solve_fixed_order_lp(trace, CAP_MID)
        for a in res.schedule.assignments.values():
            assert sum(f for _, f in a.mixture) == pytest.approx(1.0)

    def test_mixture_uses_at_most_adjacent_points(self, trace):
        """Continuous optima lie between two neighboring hull points."""
        res = solve_fixed_order_lp(trace, CAP_MID)
        for a in res.schedule.assignments.values():
            assert 1 <= len(a.mixture) <= 3  # LP vertices: usually 1-2

    def test_durations_match_mixture(self, trace):
        res = solve_fixed_order_lp(trace, CAP_MID)
        for a in res.schedule.assignments.values():
            d = sum(p.duration_s * f for p, f in a.mixture)
            w = sum(p.power_w * f for p, f in a.mixture)
            assert a.duration_s == pytest.approx(d)
            assert a.power_w == pytest.approx(w)

    def test_vertex_times_respect_precedence(self, trace):
        res = solve_fixed_order_lp(trace, CAP_MID)
        v = res.schedule.vertex_times
        for e in trace.graph.edges:
            if e.is_compute:
                d = res.schedule.assignments[trace.edge_refs[e.id]].duration_s
            else:
                d = e.duration_s
            assert v[e.dst] >= v[e.src] + d - 1e-6

    def test_event_power_within_cap(self, trace):
        """At every event, the sum of active task powers obeys PC."""
        res = solve_fixed_order_lp(trace, CAP_MID)
        ev = res.events
        for vid, act in ev.active.items():
            total = sum(
                res.schedule.assignments[trace.edge_refs[e]].power_w
                for e in act
            )
            assert total <= CAP_MID * (1 + 1e-6)

    def test_makespan_is_finalize_vertex(self, trace):
        res = solve_fixed_order_lp(trace, CAP_MID)
        assert res.makespan_s == pytest.approx(
            float(np.max(res.schedule.vertex_times)), rel=1e-6
        )


class TestEventReuse:
    def test_shared_event_structure(self, trace, time_model):
        ev = build_event_structure(trace.graph, time_model)
        r1 = solve_fixed_order_lp(trace, CAP_MID, events=ev)
        r2 = solve_fixed_order_lp(trace, CAP_MID)
        assert r1.makespan_s == pytest.approx(r2.makespan_s, rel=1e-9)

    def test_tighter_cap_forces_lower_power(self, trace):
        loose = solve_fixed_order_lp(trace, CAP_HIGH)
        tight = solve_fixed_order_lp(trace, CAP_LOW)
        assert (
            tight.schedule.total_average_power()
            < loose.schedule.total_average_power()
        )


class TestPowerTiebreak:
    def test_no_gold_plating_at_high_cap(self, trace):
        """With the tiebreak, slack tasks choose low-power configurations
        rather than arbitrary same-makespan vertices."""
        res = solve_fixed_order_lp(trace, CAP_HIGH)
        # The light overlap task (rank 0, seq 1) has slack; its power must
        # be below the maximum configuration power of its frontier.
        a = res.schedule.assignments[TaskRef(0, 1)]
        frontier = trace.frontiers[a.edge_id]
        assert a.power_w < frontier[-1].power_w - 1e-6

    def test_disabled_tiebreak_still_optimal(self, trace):
        r0 = solve_fixed_order_lp(trace, CAP_MID, power_tiebreak=0.0)
        r1 = solve_fixed_order_lp(trace, CAP_MID)
        assert r0.makespan_s == pytest.approx(r1.makespan_s, rel=1e-6)
