"""Tests for cap sweeps and the minimum-feasible-cap bisection."""

import pytest

from repro.core import (
    minimum_feasible_cap,
    solve_cap_sweep,
    solve_fixed_order_lp,
)
from repro.experiments import make_power_models
from repro.simulator import trace_application
from repro.workloads import imbalanced_collective_app


@pytest.fixture(scope="module")
def trace():
    app = imbalanced_collective_app(n_ranks=4, iterations=2, spread=1.4)
    return trace_application(app, make_power_models(4, 11))


class TestCapSweep:
    def test_matches_individual_solves(self, trace):
        caps = (90.0, 130.0, 240.0)
        sweep = solve_cap_sweep(trace, caps)
        for cap in caps:
            single = solve_fixed_order_lp(trace, cap)
            assert sweep.results[cap].makespan_s == pytest.approx(
                single.makespan_s, rel=1e-9
            )

    def test_makespans_mapping(self, trace):
        sweep = solve_cap_sweep(trace, (20.0, 130.0))
        spans = sweep.makespans()
        assert spans[20.0] is None  # infeasible floor
        assert spans[130.0] is not None

    def test_feasible_caps_sorted(self, trace):
        sweep = solve_cap_sweep(trace, (240.0, 20.0, 130.0))
        assert sweep.feasible_caps() == [130.0, 240.0]

    def test_saturation_cap(self, trace):
        sweep = solve_cap_sweep(trace, (100.0, 150.0, 250.0, 400.0, 800.0))
        sat = sweep.saturation_cap()
        assert sat is not None
        # At and beyond saturation the makespan is flat.
        best = sweep.results[800.0].makespan_s
        assert sweep.results[sat].makespan_s == pytest.approx(best, rel=1e-6)
        assert sat < 800.0

    def test_empty_caps_rejected(self, trace):
        with pytest.raises(ValueError):
            solve_cap_sweep(trace, ())


class TestMinimumFeasibleCap:
    def test_bisection_brackets_floor(self, trace):
        # The analytic floor: the busiest event's sum of active-task
        # minimum powers (tasks from different iterations never overlap,
        # so summing over *all* tasks would overestimate).
        from repro.core import build_event_structure

        ev = build_event_structure(trace.graph)
        floor = max(
            sum(min(p.power_w for p in trace.frontiers[e]) for e in act)
            for act in ev.active.values()
            if act
        )
        found = minimum_feasible_cap(trace, 10.0, 400.0, tol_w=0.2)
        assert found is not None
        assert found == pytest.approx(floor, abs=0.5)
        assert solve_fixed_order_lp(trace, found).feasible

    def test_none_when_hi_infeasible(self, trace):
        assert minimum_feasible_cap(trace, 1.0, 5.0) is None

    def test_lo_already_feasible(self, trace):
        found = minimum_feasible_cap(trace, 300.0, 400.0)
        assert found == 300.0

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            minimum_feasible_cap(trace, 0.0, 100.0)
        with pytest.raises(ValueError):
            minimum_feasible_cap(trace, 100.0, 50.0)

    def test_cache_threaded_through_bisection(self, trace, tmp_path):
        from repro.core import ParametricCapSolver
        from repro.exec import SolverCache

        cache = SolverCache(tmp_path)
        first = minimum_feasible_cap(trace, 10.0, 400.0, cache=cache)
        # Replaying the identical bisection hits the cache at every probe:
        # the second solver never calls HiGHS at all.
        solver = ParametricCapSolver(trace)
        second = minimum_feasible_cap(
            trace, 10.0, 400.0, cache=cache, solver=solver
        )
        assert second == first
        assert solver.n_solves == 0

    def test_sweep_warms_bisection_endpoints(self, trace, tmp_path):
        from repro.core import ParametricCapSolver
        from repro.exec import SolverCache

        cache = SolverCache(tmp_path)
        solve_cap_sweep(trace, (10.0, 400.0), cache=cache)
        solver = ParametricCapSolver(trace)
        minimum_feasible_cap(trace, 10.0, 400.0, cache=cache, solver=solver)
        # Both endpoints came from the sweep's cache; only interior
        # bisection probes hit the solver.
        assert solver.n_solves <= 11  # log2(390 / 0.25) ~ 10.6

    def test_shared_solver_reused(self, trace):
        from repro.core import ParametricCapSolver

        solver = ParametricCapSolver(trace)
        found = minimum_feasible_cap(trace, 10.0, 400.0, solver=solver)
        assert found is not None
        assert solver.n_solves >= 3  # endpoints + at least one bisection probe
