"""Schedule transforms: the paper's slack reduction (§3.3).

The initial schedule feeding the LP "has been modified to reduce slack
time.  The modification does not change the overall time to solution, but
slows tasks off the critical path as much as possible."  This module
implements that transform: compute tasks are stretched into their *float*
(the classic CPM latest-finish minus earliest-start margin), bounded by
each task's slowest admissible configuration, leaving the makespan
untouched.

Float is shared along a rank's chain, so tasks are processed in
topological order with the ASAP times refreshed after every stretch —
greedy, earliest-first, which is exactly "a task executes and then waits"
(the paper's slack-follows-task convention) inverted into "a task absorbs
the wait it would otherwise do".

The event machinery in :mod:`repro.core.events` achieves the same power
attribution through activity windows, so the LP does not require this
transform; it exists because (a) it is the paper's stated construction and
tests verify the two views agree, and (b) the stretched durations are the
offline analogue of Adagio (how slow can each task run for free?).
"""

from __future__ import annotations

import numpy as np

from ..machine.configuration import ConfigPoint
from .analysis import DagSchedule, schedule_fixed_durations
from .graph import TaskGraph

__all__ = ["reduce_slack", "stretch_limits", "latest_finish_times"]


def stretch_limits(
    graph: TaskGraph, frontiers: dict[int, list[ConfigPoint]]
) -> np.ndarray:
    """Per-edge maximum admissible duration.

    Compute edges are bounded by the slowest (lowest-power) configuration
    on their frontier; message edges cannot stretch (wire time is wire
    time).
    """
    limits = np.empty(graph.n_edges)
    for e in graph.edges:
        if e.is_compute:
            limits[e.id] = max(p.duration_s for p in frontiers[e.id])
        else:
            limits[e.id] = e.duration_s
    return limits


def latest_finish_times(
    graph: TaskGraph, durations: np.ndarray, makespan: float
) -> np.ndarray:
    """CPM backward pass: latest each vertex may occur without extending
    the makespan."""
    lf = np.full(graph.n_vertices, makespan)
    for vid in reversed(graph.topological_order()):
        outs = graph.out_edges(vid)
        if outs:
            lf[vid] = min(lf[e.dst] - durations[e.id] for e in outs)
    return lf


def reduce_slack(
    graph: TaskGraph,
    schedule: DagSchedule,
    frontiers: dict[int, list[ConfigPoint]] | None = None,
) -> DagSchedule:
    """Slow off-critical-path tasks into their float (paper §3.3).

    Returns a new schedule with the same makespan: compute durations grow
    up to ``min(stretch limit, latest-finish(dst) − earliest-start(src))``,
    applied greedily in topological order so shared float along a chain is
    consumed once.
    """
    d = schedule.edge_durations.copy()
    limits = (
        stretch_limits(graph, frontiers)
        if frontiers is not None
        else np.full(graph.n_edges, np.inf)
    )
    makespan = schedule.makespan

    topo_pos = {v: i for i, v in enumerate(graph.topological_order())}
    compute_order = sorted(
        graph.compute_edges(), key=lambda e: (topo_pos[e.src], e.id)
    )
    for e in compute_order:
        asap = schedule_fixed_durations(graph, d)
        lf = latest_finish_times(graph, d, makespan)
        room = float(lf[e.dst] - asap.vertex_times[e.src])
        new = min(limits[e.id], room)
        if new > d[e.id]:
            d[e.id] = new

    final = schedule_fixed_durations(graph, d)
    if final.makespan > makespan * (1 + 1e-9) + 1e-12:
        raise AssertionError(
            "slack reduction changed the makespan: "
            f"{makespan} -> {final.makespan}"
        )
    return final
