"""Benchmark proxies: CoMD, LULESH 2.0, NAS-MZ BT/SP, and synthetics."""

from .base import WorkloadBuilder, WorkloadSpec, dynamic_jitter, static_imbalance
from .comd import FORCE_KERNEL, REDISTRIBUTE_KERNEL, make_comd
from .lulesh import (
    HOURGLASS_KERNEL,
    STRESS_KERNEL,
    UPDATE_KERNEL,
    make_lulesh,
    neighbors_3d,
)
from .nasmz import BT_KERNEL, SP_KERNEL, make_bt, make_sp
from .synthetic import (
    imbalanced_collective_app,
    phased_offload_app,
    random_application,
    two_rank_exchange,
)

#: Name -> generator for the paper's four evaluated benchmarks.
BENCHMARKS = {
    "comd": make_comd,
    "lulesh": make_lulesh,
    "bt": make_bt,
    "sp": make_sp,
}

__all__ = [
    "BENCHMARKS",
    "BT_KERNEL",
    "FORCE_KERNEL",
    "HOURGLASS_KERNEL",
    "REDISTRIBUTE_KERNEL",
    "SP_KERNEL",
    "STRESS_KERNEL",
    "UPDATE_KERNEL",
    "WorkloadBuilder",
    "WorkloadSpec",
    "dynamic_jitter",
    "imbalanced_collective_app",
    "make_bt",
    "make_comd",
    "make_lulesh",
    "make_sp",
    "neighbors_3d",
    "phased_offload_app",
    "random_application",
    "static_imbalance",
    "two_rank_exchange",
]
