"""Configuration selection *without* power reallocation (paper §6).

    "If only the configuration selection is performed (but not power
    reallocation), there is less overhead than Conductor, but also lower
    performance due to the use of uniform power allocation."

This policy is that ablation: per-task Pareto-optimal configuration
selection under a fixed uniform per-socket budget, with Adagio slack
reclamation, but the budgets never move between ranks.  It isolates how
much of Conductor's gain comes from selection vs from reallocation —
virtually all of LULESH's (thread-count mismatch) and almost none of BT's
(load imbalance).
"""

from __future__ import annotations

from ..machine.configuration import ConfigPoint, Configuration
from ..machine.cpu import CpuSpec, XEON_E5_2670
from ..machine.frontiers import FrontierStore, NodeFrontierStore
from ..machine.performance import TaskKernel
from ..machine.power import SocketPowerModel
from ..machine.rapl import RaplController
from ..simulator.engine import TaskRecord
from ..simulator.program import Application, ComputeOp, TaskRef
from .adagio import SlackEstimator, slowest_fitting_point
from .conductor import task_key_for

__all__ = ["SelectionOnlyPolicy"]


class SelectionOnlyPolicy:
    """Pareto configuration selection under uniform, immovable budgets."""

    def __init__(
        self,
        power_models: list[SocketPowerModel],
        job_cap_w: float,
        app: Application,
        spec: CpuSpec = XEON_E5_2670,
        adagio_safety: float = 0.9,
        switch_overhead_s: float = 145e-6,
        min_switch_duration_s: float = 1e-3,
        frontier_store: FrontierStore | NodeFrontierStore | None = None,
    ) -> None:
        if job_cap_w <= 0:
            raise ValueError(f"job cap must be positive, got {job_cap_w}")
        self.power_models = power_models
        self.spec = spec
        self.budget_w = job_cap_w / len(power_models)
        self.rapl = [RaplController(pm) for pm in power_models]
        self.adagio_safety = adagio_safety
        self.switch_overhead_s = switch_overhead_s
        self.min_switch_duration_s = min_switch_duration_s
        tpi = {
            r: max(
                1,
                sum(
                    1
                    for op in app.programs[r]
                    if isinstance(op, ComputeOp) and op.iteration == 0
                ),
            )
            for r in range(len(power_models))
        }
        self.tasks_per_iteration = tpi
        self.slack = SlackEstimator(tpi)
        self.frontiers = (
            frontier_store
            if frontier_store is not None
            else FrontierStore(power_models)
        )

    def _frontier(self, rank: int, kernel: TaskKernel) -> list[ConfigPoint]:
        return self.frontiers.convex(rank, kernel)

    def configure(
        self,
        ref: TaskRef,
        kernel: TaskKernel,
        iteration: int,
        current: Configuration | None,
    ) -> Configuration:
        """Fastest frontier point under the fixed uniform budget (with
        Adagio slack absorption and the 1 ms switch rule)."""
        frontier = self._frontier(ref.rank, kernel)
        admissible = [p for p in frontier if p.power_w <= self.budget_w]
        if not admissible:
            threads = frontier[0].config.threads
            return self.rapl[ref.rank].decide(
                kernel, threads, self.budget_w
            ).config
        chosen = admissible[-1]
        slack_s = self.slack.slack_estimate(
            task_key_for(ref, self.tasks_per_iteration[ref.rank])
        )
        if slack_s is not None:
            chosen = slowest_fitting_point(
                admissible, chosen.duration_s + self.adagio_safety * slack_s
            )
        if (
            current is not None
            and chosen.config != current
            and chosen.duration_s < self.min_switch_duration_s
        ):
            return current
        return chosen.config

    def on_pcontrol(self, iteration: int, records: list[TaskRecord]) -> float:
        self.slack.update(records)
        return 0.0  # no reallocation step, no 566 us

    def switch_cost_s(self) -> float:
        return self.switch_overhead_s
