"""Golden equivalence: the scenario layer reproduces the legacy three-way
comparison bit-for-bit.

``run_comparison``/``sweep_caps`` are thin wrappers over a
``{static, conductor, lp}`` scenario spec; this file re-implements the
pre-scenario evaluation loop inline (direct policy construction, direct
engine runs, direct LP solve, the same measurement windows) and asserts
exact float equality against the registry-driven path — cold cache, warm
cache, serial, and two workers.
"""

import dataclasses

from repro.core.model import build_problem_instance
from repro.core.rounding import round_schedule
from repro.exec.cache import SolverCache, cached_solve_fixed_order_lp
from repro.experiments.runner import (
    ExperimentConfig,
    comparison_spec,
    run_comparison,
    sweep_caps,
)
from repro.machine.frontiers import FrontierStore
from repro.machine.variability import make_power_models
from repro.runtime.conductor import ConductorPolicy
from repro.runtime.static import StaticPolicy
from repro.simulator.engine import Engine
from repro.simulator.trace import trace_application
from repro.workloads import BENCHMARKS, WorkloadSpec

CFG = ExperimentConfig(
    benchmark="comd", n_ranks=4, run_iterations=10, lp_iterations=2,
    discard_iterations=2, steady_window=5,
)
CAPS = (30.0, 50.0, 70.0)


def _steady(result, first_iteration, n_iterations):
    start = min(
        r.start_s for r in result.records if r.iteration >= first_iteration
    )
    return (result.makespan_s - start) / n_iterations


def legacy_comparison(cfg: ExperimentConfig, cap: float, include_discrete=False):
    """The pre-scenario evaluation loop, verbatim."""
    gen = BENCHMARKS[cfg.benchmark]
    app_run = gen(WorkloadSpec(n_ranks=cfg.n_ranks,
                               iterations=cfg.run_iterations, seed=cfg.seed))
    app_lp = gen(WorkloadSpec(n_ranks=cfg.n_ranks,
                              iterations=cfg.lp_iterations, seed=cfg.seed))
    pm = make_power_models(cfg.n_ranks, cfg.efficiency_seed,
                           sigma=cfg.efficiency_sigma)
    store = FrontierStore(pm)
    trace = trace_application(app_lp, pm, frontier_store=store)
    instance = build_problem_instance(trace)
    engine = Engine(pm)
    job_cap = cap * cfg.n_ranks

    min_cap = app_run.metadata.get("min_cap_per_socket_w")
    if min_cap is not None and cap < min_cap:
        return {"schedulable": False}

    res_static = engine.run(app_run, StaticPolicy(pm, job_cap))
    t_static = _steady(res_static, cfg.discard_iterations,
                       cfg.run_iterations - cfg.discard_iterations)

    conductor = ConductorPolicy(pm, job_cap, app_run, config=cfg.conductor,
                                frontier_store=store)
    res_cond = engine.run(app_run, conductor)
    t_cond = _steady(res_cond, cfg.run_iterations - cfg.steady_window,
                     cfg.steady_window)

    lp = cached_solve_fixed_order_lp(trace, job_cap, instance=instance)
    t_lp = lp.makespan_s / cfg.lp_iterations if lp.feasible else None
    t_disc = None
    if include_discrete and lp.feasible:
        t_disc = round_schedule(trace, lp.schedule).objective_s / cfg.lp_iterations

    return {
        "schedulable": True,
        "static_s": t_static,
        "conductor_s": t_cond,
        "lp_s": t_lp,
        "lp_discrete_s": t_disc,
        "conductor_reallocs": conductor.realloc_count,
    }


def assert_matches(result, golden):
    __tracebackhide__ = True
    if not golden["schedulable"]:
        assert not result.schedulable
        assert result.static_s is None
        assert result.conductor_s is None
        assert result.lp_s is None
        return
    assert result.schedulable
    assert result.static_s == golden["static_s"]
    assert result.conductor_s == golden["conductor_s"]
    assert result.lp_s == golden["lp_s"]
    assert result.lp_discrete_s == golden["lp_discrete_s"]
    assert result.conductor_reallocs == golden["conductor_reallocs"]


class TestGoldenEquivalence:
    def test_run_comparison_matches_legacy(self):
        for cap in CAPS:
            assert_matches(run_comparison(CFG, cap), legacy_comparison(CFG, cap))

    def test_include_discrete_matches_legacy(self):
        assert_matches(
            run_comparison(CFG, 50.0, include_discrete=True),
            legacy_comparison(CFG, 50.0, include_discrete=True),
        )

    def test_sweep_serial_matches_legacy(self):
        golden = [legacy_comparison(CFG, cap) for cap in CAPS]
        for result, g in zip(sweep_caps(CFG, CAPS), golden):
            assert_matches(result, g)

    def test_sweep_two_workers_matches_legacy(self):
        golden = [legacy_comparison(CFG, cap) for cap in CAPS]
        for result, g in zip(sweep_caps(CFG, CAPS, workers=2), golden):
            assert_matches(result, g)

    def test_cold_and_warm_cache_match_legacy(self, tmp_path):
        cache = SolverCache(tmp_path)
        golden = legacy_comparison(CFG, 50.0)
        assert_matches(run_comparison(CFG, 50.0, cache=cache), golden)  # cold
        hits_before = cache.hits
        assert_matches(run_comparison(CFG, 50.0, cache=cache), golden)  # warm
        assert cache.hits > hits_before

    def test_unschedulable_cap_matches_legacy(self):
        cfg = dataclasses.replace(CFG, benchmark="sp")
        cap = 10.0  # below SP's minimum per-socket cap
        assert_matches(run_comparison(cfg, cap), legacy_comparison(cfg, cap))

    def test_wrapper_uses_the_documented_spec(self):
        spec = comparison_spec(CFG, CAPS)
        assert spec.policy_labels() == ["static", "conductor", "lp"]
        assert spec.benchmark == CFG.benchmark
        assert spec.caps_per_socket_w == CAPS
        conductor_cfg = spec.policies[1].config
        assert conductor_cfg == dataclasses.asdict(CFG.conductor)
