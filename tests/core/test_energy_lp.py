"""Unit tests for the energy-bounding LP (related-work comparator)."""

import pytest

from repro.core import solve_energy_lp, solve_fixed_order_lp
from repro.dag import unconstrained_schedule
from repro.machine import SocketPowerModel, TaskKernel
from repro.simulator import trace_application

from ..conftest import make_p2p_app


@pytest.fixture(scope="module")
def trace():
    kernel = TaskKernel(cpu_seconds=1.0, mem_seconds=0.2,
                        parallel_fraction=0.98, mem_parallel_fraction=0.9,
                        bw_saturation_threads=4, mem_intensity=0.3)
    models = [SocketPowerModel(), SocketPowerModel(efficiency=1.05)]
    return trace_application(make_p2p_app(kernel, iterations=2), models)


class TestEnergyLp:
    def test_zero_slowdown_keeps_best_time(self, trace, time_model):
        res = solve_energy_lp(trace, slowdown=0.0)
        assert res.feasible
        best = unconstrained_schedule(trace.graph, time_model).makespan
        assert res.makespan_s <= best * (1 + 1e-6)
        assert res.time_budget_s == pytest.approx(best)

    def test_energy_monotone_in_slowdown(self, trace):
        energies = [
            solve_energy_lp(trace, slowdown=s).energy_j
            for s in (0.0, 0.05, 0.15, 0.5)
        ]
        assert all(b <= a + 1e-6 for a, b in zip(energies, energies[1:]))

    def test_slack_reclaimed_even_at_zero_slowdown(self, trace):
        """Energy drops below all-tasks-fastest without touching the
        makespan — the Adagio/Jitter effect the related work formalizes."""
        res = solve_energy_lp(trace, slowdown=0.0)
        fastest_energy = sum(
            trace.frontiers[eid][-1].duration_s
            * trace.frontiers[eid][-1].power_w
            for eid in trace.task_edges.values()
        )
        assert res.energy_j < fastest_energy

    def test_objectives_differ_from_power_lp(self, trace):
        """The paper's §7 distinction: energy-optimal schedules are not
        power-cap-optimal and vice versa."""
        energy = solve_energy_lp(trace, slowdown=0.0)
        capped = solve_fixed_order_lp(trace, 58.0)
        assert capped.feasible
        # Power-capped runs longer but can use less energy than the
        # no-slowdown energy optimum (it is allowed to be slow).
        assert capped.makespan_s > energy.makespan_s
        # And the energy optimum's *peak* concurrent power exceeds the cap.
        peak_energy_sched = max(
            sum(
                energy.schedule.assignments[trace.edge_refs[e]].power_w
                for e in act
            )
            for act in solve_fixed_order_lp(trace, 1000.0).events.active.values()
            if act
        )
        assert peak_energy_sched > 58.0

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            solve_energy_lp(trace, slowdown=-0.1)
        with pytest.raises(ValueError):
            solve_energy_lp(trace, cap_w=0.0)
        with pytest.raises(ValueError):
            solve_energy_lp(trace, deadline_s=-1.0)

    def test_fraction_structure(self, trace):
        res = solve_energy_lp(trace, slowdown=0.1)
        for a in res.schedule.assignments.values():
            assert sum(f for _, f in a.mixture) == pytest.approx(1.0)
        assert res.schedule.solver_info["formulation"] == "energy-lp"


class TestCappedEnergyLp:
    """Min-energy subject to deadline *and* an event-power cap."""

    CAP_W = 58.0

    def test_generous_cap_matches_uncapped_solve(self, trace):
        plain = solve_energy_lp(trace, slowdown=0.1)
        roomy = solve_energy_lp(trace, slowdown=0.1, cap_w=1e6)
        assert roomy.feasible
        assert roomy.energy_j == pytest.approx(plain.energy_j)
        assert roomy.schedule.solver_info["cap_w"] == 1e6
        assert plain.schedule.solver_info["cap_w"] is None

    def test_binding_cap_needs_a_deadline_extension(self, trace):
        # Under a binding cap no schedule reaches the unconstrained
        # makespan (the capped fixed-order optimum is strictly slower),
        # so the default zero-slowdown deadline is infeasible...
        tight = solve_energy_lp(trace, slowdown=0.0, cap_w=self.CAP_W)
        assert not tight.feasible
        # ...and anchoring the deadline at the capped time optimum
        # restores feasibility.
        capped = solve_fixed_order_lp(trace, self.CAP_W)
        assert capped.feasible
        res = solve_energy_lp(
            trace, cap_w=self.CAP_W, deadline_s=capped.makespan_s
        )
        assert res.feasible
        assert res.time_budget_s == pytest.approx(capped.makespan_s)
        assert res.makespan_s <= capped.makespan_s * (1 + 1e-6)

    def test_energy_bound_dominates_time_optimum_at_same_cap(self, trace):
        """The frontier invariant: the time-optimal capped schedule is a
        feasible point of the capped energy LP at its own makespan, so
        the energy LP's energy can never exceed it."""
        capped = solve_fixed_order_lp(trace, self.CAP_W)
        res = solve_energy_lp(
            trace, cap_w=self.CAP_W, deadline_s=capped.makespan_s
        )
        lp_energy = sum(
            a.duration_s * a.power_w
            for a in capped.schedule.assignments.values()
        )
        assert res.energy_j <= lp_energy * (1 + 1e-6)
        assert res.schedule.total_energy_j() == pytest.approx(res.energy_j)

    def test_capped_schedule_respects_the_cap(self, trace):
        capped = solve_fixed_order_lp(trace, self.CAP_W)
        res = solve_energy_lp(
            trace, cap_w=self.CAP_W, deadline_s=capped.makespan_s
        )
        peak = max(
            sum(
                res.schedule.assignments[trace.edge_refs[e]].power_w
                for e in act
            )
            for act in capped.events.active.values()
            if act
        )
        assert peak <= self.CAP_W * (1 + 1e-6)

    def test_energy_monotone_in_deadline(self, trace):
        capped = solve_fixed_order_lp(trace, self.CAP_W)
        snug = solve_energy_lp(
            trace, cap_w=self.CAP_W, deadline_s=capped.makespan_s
        )
        roomy = solve_energy_lp(
            trace, cap_w=self.CAP_W, deadline_s=capped.makespan_s * 1.5
        )
        assert roomy.feasible
        assert roomy.energy_j <= snug.energy_j + 1e-6
