"""End-to-end acceptance: a quick traced run exports a valid, reproducible
Chrome trace with per-rank tracks, power counters, and Conductor decisions."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.obs.export import validate_trace_file


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One quick traced comparison; the module's tests share its output."""
    out = tmp_path_factory.mktemp("trace")
    path = out / "trace.json"
    assert main(["run", "--quick", "--trace", str(path)]) == 0
    return path


class TestRoundTrip:
    def test_trace_passes_schema_validation(self, traced_run):
        assert validate_trace_file(traced_run) == []
        assert main(["validate-trace", str(traced_run)]) == 0

    def test_trace_is_byte_identical_across_runs(self, traced_run, tmp_path):
        again = tmp_path / "trace.json"
        assert main(["run", "--quick", "--trace", str(again)]) == 0
        assert again.read_bytes() == traced_run.read_bytes()
        jsonl = traced_run.with_suffix(".jsonl")
        assert jsonl.read_bytes() == again.with_suffix(".jsonl").read_bytes()

    def test_per_rank_task_tracks(self, traced_run):
        doc = json.loads(traced_run.read_text())
        events = doc["traceEvents"]
        track_names = {e["args"]["name"] for e in events
                       if e["ph"] == "M" and e["name"] == "thread_name"}
        # --quick runs 4 ranks; each must have its own named track.
        assert {f"rank {r}" for r in range(4)} <= track_names
        task_tids = {e["tid"] for e in events if e.get("cat") == "task"}
        assert task_tids == {0, 1, 2, 3}

    def test_job_power_and_cap_counter_tracks(self, traced_run):
        doc = json.loads(traced_run.read_text())
        counters = {e["name"] for e in doc["traceEvents"] if e["ph"] == "C"}
        assert {"job_power_w", "cap_w"} <= counters

    def test_conductor_reallocation_present(self, traced_run):
        doc = json.loads(traced_run.read_text())
        reallocs = [e for e in doc["traceEvents"] if e.get("cat") == "realloc"]
        assert len(reallocs) >= 1
        args = reallocs[0]["args"]
        assert len(args["alloc_before_w"]) == 4
        assert args["moved_w"] >= 0.0

    def test_static_and_conductor_runs_are_separate_processes(self, traced_run):
        doc = json.loads(traced_run.read_text())
        procs = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert any(p.startswith("static ") for p in procs)
        assert any(p.startswith("conductor ") for p in procs)

    def test_validate_trace_flags_corruption(self, traced_run, tmp_path, capsys):
        doc = json.loads(traced_run.read_text())
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                del event["name"]
                break
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        assert main(["validate-trace", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
