"""Unit tests for bottleneck analysis of LP schedules."""

import pytest

from repro.core import analyze_bottlenecks, solve_fixed_order_lp
from repro.experiments import make_power_models
from repro.simulator import trace_application
from repro.workloads import WorkloadSpec, imbalanced_collective_app, make_bt


@pytest.fixture(scope="module")
def trace():
    app = imbalanced_collective_app(n_ranks=4, iterations=2, spread=1.6)
    return trace_application(app, make_power_models(4, 11))


class TestBottleneckModes:
    def test_tight_cap_is_power_bound(self, trace):
        res = solve_fixed_order_lp(trace, 4 * 26.0)
        report = analyze_bottlenecks(trace, res)
        assert report.is_power_bound
        assert report.power_bound_time_fraction > 0.3
        assert "power-bound" in report.summary()

    def test_loose_cap_is_structure_bound(self, trace):
        res = solve_fixed_order_lp(trace, 4 * 200.0)
        report = analyze_bottlenecks(trace, res)
        assert not report.is_power_bound
        assert report.power_bound_time_fraction == 0.0
        assert "structure-bound" in report.summary()

    def test_infeasible_rejected(self, trace):
        res = solve_fixed_order_lp(trace, 4.0)
        assert not res.feasible
        with pytest.raises(ValueError):
            analyze_bottlenecks(trace, res)


class TestCriticalPathAttribution:
    def test_heavy_rank_dominates_structure_bound(self):
        """With plenty of power, the statically heaviest rank carries the
        critical path."""
        app = make_bt(WorkloadSpec(n_ranks=6, iterations=2, seed=4))
        models = make_power_models(6, 11)
        trace = trace_application(app, models)
        res = solve_fixed_order_lp(trace, 6 * 200.0)
        report = analyze_bottlenecks(trace, res)
        import numpy as np

        work = np.zeros(6)
        for ref, eid in trace.task_edges.items():
            work[ref.rank] += trace.graph.edges[eid].kernel.cpu_seconds
        assert report.dominant_rank() == int(np.argmax(work))

    def test_critical_tasks_nonempty_and_sorted(self, trace):
        res = solve_fixed_order_lp(trace, 4 * 30.0)
        report = analyze_bottlenecks(trace, res)
        assert report.critical_tasks
        keys = [(r.rank, r.seq) for r in report.critical_tasks]
        assert keys == sorted(keys)

    def test_power_bound_fraction_monotone_in_cap(self, trace):
        """Tighter caps keep more of the timeline at the power limit."""
        fr = []
        for cap in (4 * 26.0, 4 * 40.0, 4 * 200.0):
            res = solve_fixed_order_lp(trace, cap)
            fr.append(
                analyze_bottlenecks(trace, res).power_bound_time_fraction
            )
        assert fr[0] >= fr[1] >= fr[2]
