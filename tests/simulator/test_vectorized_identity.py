"""Vectorized replay paths against the scalar reference oracle.

The engine's ``vectorized=True`` default, the sweep-batched DAG walk
(:meth:`Engine.run_sweep` / :func:`replay_schedule_sweep`), and the
array-built power timelines all promise *bit* identity with the scalar
per-event path, not approximate equality.  This file holds the promise
to exact float comparison on real workloads; the hypothesis suite
(``tests/properties/test_property_vectorized.py``) does the same over
random DAGs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParametricCapSolver, round_schedule
from repro.experiments.runner import make_power_models
from repro.obs.recorder import TraceRecorder, use_recorder
from repro.simulator import (
    Engine,
    ReplayPolicy,
    job_power_timeline,
    replay_schedule,
    replay_schedule_sweep,
    trace_application,
)
from repro.simulator.replay import build_replay_sweep_plan
from repro.workloads import WorkloadSpec, make_bt, make_comd, make_lulesh

N_CAPS = 6


def sweep_fixture(make, n_ranks, run_iters=3):
    """LP-derived assignments at a small cap grid, plus the replay app."""
    app_lp = make(WorkloadSpec(n_ranks=n_ranks, iterations=2, seed=1))
    app_run = make(WorkloadSpec(n_ranks=n_ranks, iterations=run_iters, seed=1))
    pms = make_power_models(n_ranks)
    trace = trace_application(app_lp, pms)
    solver = ParametricCapSolver(trace)
    asgs, caps = [], []
    for cap in np.linspace(25.0, 70.0, N_CAPS) * n_ranks:
        lp = solver.solve(float(cap))
        if not lp.feasible:
            continue
        disc = round_schedule(trace, lp.schedule)
        asgs.append({
            ref: a.mixture[0][0].config for ref, a in disc.assignments.items()
        })
        caps.append(float(cap))
    assert len(caps) >= 2  # the grid must exercise several sweep points
    return app_run, pms, asgs, caps


def assert_results_identical(ref, vec):
    """Exact equality of everything a SimulationResult exposes."""
    assert ref.makespan_s == vec.makespan_s
    assert ref.mpi_call_count == vec.mpi_call_count
    assert ref.collective_count == vec.collective_count
    assert ref.dvfs_switch_count == vec.dvfs_switch_count
    assert ref.pcontrol_overhead_s == vec.pcontrol_overhead_s
    assert len(ref.records) == len(vec.records)
    for a, b in zip(ref.records, vec.records):
        assert a.ref == b.ref
        assert a.iteration == b.iteration
        assert a.label == b.label
        assert a.config == b.config
        assert a.start_s == b.start_s
        assert a.duration_s == b.duration_s
        assert a.power_w == b.power_w


class TestEngineVectorizedDefault:
    def test_vectorized_run_matches_scalar_bitwise(self):
        app_run, pms, asgs, _ = sweep_fixture(make_bt, 4)
        policy = ReplayPolicy(asgs[0])
        vec = Engine(pms).run(app_run, policy)  # vectorized default
        ref = Engine(pms, vectorized=False).run(app_run, policy)
        assert_results_identical(ref, vec)

    def test_per_run_override_beats_engine_default(self):
        app_run, pms, asgs, _ = sweep_fixture(make_bt, 4)
        policy = ReplayPolicy(asgs[0])
        engine = Engine(pms, vectorized=True)
        ref = engine.run(app_run, policy, vectorized=False)
        vec = engine.run(app_run, policy)
        assert_results_identical(ref, vec)


class TestSweepReplayIdentity:
    @pytest.mark.parametrize(
        "make,n_ranks",
        [(make_bt, 4), (make_lulesh, 4), (make_comd, 4)],
        ids=["bt", "lulesh", "comd"],
    )
    def test_sweep_matches_per_cap_replay_bitwise(self, make, n_ranks):
        app_run, pms, asgs, caps = sweep_fixture(make, n_ranks)
        ref = [
            replay_schedule(app_run, a, pms, c) for a, c in zip(asgs, caps)
        ]
        vec = replay_schedule_sweep(app_run, asgs, pms, caps)
        assert len(ref) == len(vec)
        for a, b in zip(ref, vec):
            assert a.cap_w == b.cap_w
            assert a.peak_power_w == b.peak_power_w
            assert a.cap_respected == b.cap_respected
            assert_results_identical(a.result, b.result)

    def test_sweep_timelines_match_reference_accounting(self):
        """Timelines built from the sweep arrays == the per-event scalar
        reference accumulation, breakpoint for breakpoint."""
        app_run, pms, asgs, caps = sweep_fixture(make_bt, 4)
        ref = [
            replay_schedule(app_run, a, pms, c) for a, c in zip(asgs, caps)
        ]
        vec = replay_schedule_sweep(app_run, asgs, pms, caps)
        for a, b in zip(ref, vec):
            ta = job_power_timeline(a.result, pms, reference=True)
            tb = job_power_timeline(b.result, pms)
            assert np.array_equal(ta.times, tb.times)
            assert np.array_equal(ta.power, tb.power)

    def test_sweep_records_materialize_lazily(self):
        app_run, pms, asgs, caps = sweep_fixture(make_bt, 4)
        outcome = replay_schedule_sweep(app_run, asgs, pms, caps)[0]
        result = outcome.result
        assert result._records is None  # nothing built yet
        first = result.records
        assert first is result.records  # materialized once, then cached
        assert len(first) == app_run.n_tasks()

    def test_length_mismatch_raises(self):
        app_run, pms, asgs, caps = sweep_fixture(make_bt, 4)
        with pytest.raises(ValueError, match="assignments but"):
            replay_schedule_sweep(app_run, asgs, pms, caps[:-1])


class TestRecorderInteraction:
    def test_run_sweep_rejects_active_recorder(self):
        app_run, pms, asgs, _ = sweep_fixture(make_bt, 4)
        engine = Engine(pms)
        plan = build_replay_sweep_plan(app_run, engine, asgs)
        with use_recorder(TraceRecorder()):
            with pytest.raises(RuntimeError, match="per-event traces"):
                engine.run_sweep(app_run, ReplayPolicy({}), plan)

    def test_replay_sweep_falls_back_and_still_traces(self):
        """Under a recorder the sweep quietly takes the per-cap scalar
        path — same outcomes, and the trace actually has events."""
        app_run, pms, asgs, caps = sweep_fixture(make_bt, 4)
        plain = replay_schedule_sweep(app_run, asgs, pms, caps)
        rec = TraceRecorder()
        with use_recorder(rec):
            traced = replay_schedule_sweep(app_run, asgs, pms, caps)
        assert rec.snapshot()  # the scalar path emitted per-event spans
        for a, b in zip(plain, traced):
            assert a.peak_power_w == b.peak_power_w
            assert a.cap_respected == b.cap_respected
            assert_results_identical(a.result, b.result)
