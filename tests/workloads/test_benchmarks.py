"""Tests for the four benchmark proxies: structure, determinism, character."""

import numpy as np
import pytest

from repro.dag import deep_validate
from repro.machine import SocketPowerModel
from repro.simulator import (
    CollectiveOp,
    ComputeOp,
    IsendOp,
    PcontrolOp,
    build_dag,
)
from repro.workloads import (
    BENCHMARKS,
    WorkloadSpec,
    make_bt,
    make_comd,
    make_lulesh,
    make_sp,
    neighbors_3d,
)

SMALL = WorkloadSpec(n_ranks=8, iterations=2, seed=3)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestCommonProperties:
    def test_validates_and_traces(self, name):
        app = BENCHMARKS[name](SMALL)
        app.validate()
        graph, task_edges = build_dag(app)
        deep_validate(graph)
        assert len(task_edges) == app.n_tasks()

    def test_deterministic(self, name):
        a = BENCHMARKS[name](SMALL)
        b = BENCHMARKS[name](SMALL)
        for pa, pb in zip(a.programs, b.programs):
            assert pa == pb

    def test_seed_changes_work(self, name):
        a = BENCHMARKS[name](SMALL)
        b = BENCHMARKS[name](WorkloadSpec(n_ranks=8, iterations=2, seed=4))
        ka = [op.kernel for op in a.programs[0] if isinstance(op, ComputeOp)]
        kb = [op.kernel for op in b.programs[0] if isinstance(op, ComputeOp)]
        assert ka != kb

    def test_pcontrol_every_iteration(self, name):
        app = BENCHMARKS[name](SMALL)
        for prog in app.programs:
            iters = [op.iteration for op in prog if isinstance(op, PcontrolOp)]
            assert iters == [0, 1]

    def test_scale_knob(self, name):
        small = BENCHMARKS[name](SMALL)
        big = BENCHMARKS[name](
            WorkloadSpec(n_ranks=8, iterations=2, seed=3, scale=2.0)
        )
        k_small = next(
            op.kernel for op in small.programs[0] if isinstance(op, ComputeOp)
        )
        k_big = next(
            op.kernel for op in big.programs[0] if isinstance(op, ComputeOp)
        )
        assert k_big.cpu_seconds == pytest.approx(2 * k_small.cpu_seconds)


def rank_work(app, rank):
    return sum(
        op.kernel.total_reference_seconds
        for op in app.programs[rank]
        if isinstance(op, ComputeOp)
    )


class TestCoMD:
    def test_collectives_only(self):
        """CoMD's defining property (§5.2): no point-to-point messages."""
        app = make_comd(SMALL)
        for prog in app.programs:
            assert not any(isinstance(op, IsendOp) for op in prog)
            assert any(isinstance(op, CollectiveOp) for op in prog)

    def test_mild_imbalance(self):
        app = make_comd(WorkloadSpec(n_ranks=16, iterations=1, seed=1))
        work = np.array([rank_work(app, r) for r in range(16)])
        assert work.max() / work.min() < 1.35


class TestLulesh:
    def test_halo_neighbors(self):
        dims = (4, 4, 2)
        assert neighbors_3d(0, dims) == [1, 4, 16]
        assert len(neighbors_3d(5, dims)) == 5
        corner = neighbors_3d(31, dims)
        assert len(corner) == 3

    def test_p2p_between_collectives(self):
        app = make_lulesh(SMALL)
        prog = app.programs[0]
        assert any(isinstance(op, IsendOp) for op in prog)
        assert any(isinstance(op, CollectiveOp) for op in prog)

    def test_contention_makes_five_threads_best(self, time_model):
        app = make_lulesh(SMALL)
        k = next(op.kernel for op in app.programs[0]
                 if isinstance(op, ComputeOp))
        assert time_model.best_threads(k) in (4, 5)

    def test_min_cap_metadata(self):
        app = make_lulesh(SMALL)
        assert app.metadata["min_cap_per_socket_w"] == 40.0


class TestNasMz:
    def test_bt_strong_imbalance(self):
        app = make_bt(WorkloadSpec(n_ranks=16, iterations=1, seed=1))
        work = np.array([rank_work(app, r) for r in range(16)])
        assert work.max() / work.min() > 2.5

    def test_sp_balanced(self):
        app = make_sp(WorkloadSpec(n_ranks=16, iterations=1, seed=1))
        work = np.array([rank_work(app, r) for r in range(16)])
        assert work.max() / work.min() < 1.06

    def test_bt_power_hungry(self):
        """BT must overflow a 30 W cap at fmin/8t on leaky sockets — the
        clock-modulation pathology of §6.4."""
        app = make_bt(SMALL)
        k = next(op.kernel for op in app.programs[0]
                 if isinstance(op, ComputeOp))
        leaky = SocketPowerModel(efficiency=1.10)
        assert leaky.power(1.2, 8, k.activity, k.mem_intensity) > 27.0

    def test_sp_min_cap_metadata(self):
        assert make_sp(SMALL).metadata["min_cap_per_socket_w"] == 40.0
        assert "min_cap_per_socket_w" not in make_bt(SMALL).metadata

    def test_chain_communication(self):
        app = make_sp(SMALL)
        sends = [op for op in app.programs[0] if isinstance(op, IsendOp)]
        assert {op.dst for op in sends} == {1}  # rank 0 talks to rank 1 only
        sends_mid = [op for op in app.programs[3] if isinstance(op, IsendOp)]
        assert {op.dst for op in sends_mid} == {2, 4}
