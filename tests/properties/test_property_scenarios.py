"""Property-based tests for scenario specs and the policy registry."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.scenarios.registry import default_registry
from repro.scenarios.spec import (
    SCENARIO_BENCHMARKS,
    PolicySpec,
    ScenarioSpec,
)

registry_names = st.sampled_from(default_registry().names())

policy_specs = st.builds(
    PolicySpec,
    policy=registry_names,
    name=st.one_of(
        st.none(),
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            min_size=1, max_size=12,
        ),
    ),
    config=st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.one_of(st.integers(-10, 10), st.floats(0.1, 9.9), st.booleans()),
        max_size=2,
    ),
)


@st.composite
def scenario_specs(draw):
    """Valid scenario specs: distinct labels, coherent windows."""
    policies = draw(
        st.lists(policy_specs, min_size=1, max_size=4,
                 unique_by=lambda p: p.label)
    )
    run_iters = draw(st.integers(4, 24))
    discard = draw(st.integers(0, run_iters - 1))
    steady = draw(st.integers(1, run_iters - discard))
    return ScenarioSpec(
        benchmark=draw(st.sampled_from(sorted(SCENARIO_BENCHMARKS))),
        caps_per_socket_w=tuple(
            draw(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=5,
                          unique=True))
        ),
        policies=tuple(policies),
        n_ranks=draw(st.integers(1, 16)),
        run_iterations=run_iters,
        lp_iterations=draw(st.integers(1, 8)),
        discard_iterations=discard,
        steady_window=steady,
        seed=draw(st.integers(0, 2**31 - 1)),
        efficiency_seed=draw(st.integers(0, 2**31 - 1)),
        efficiency_sigma=draw(st.floats(0.0, 0.2)),
    )


class TestSpecProperties:
    @given(spec=scenario_specs())
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_is_identity(self, spec):
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()

    @given(spec=scenario_specs())
    @settings(max_examples=60, deadline=None)
    def test_hashes_deterministic_and_consistent(self, spec):
        again = ScenarioSpec.from_json(spec.to_json())
        assert again.spec_hash() == spec.spec_hash()
        assert again.cell_hash() == spec.cell_hash()

    @given(spec=scenario_specs(), extra_cap=st.floats(101.0, 200.0))
    @settings(max_examples=60, deadline=None)
    def test_cell_hash_invariant_under_grid_extension(self, spec, extra_cap):
        doc = spec.to_doc()
        doc["caps_per_socket_w"] = doc["caps_per_socket_w"] + [extra_cap]
        wider = ScenarioSpec.from_doc(doc)
        assert wider.cell_hash() == spec.cell_hash()
        assert wider.spec_hash() != spec.spec_hash()

    @given(spec=scenario_specs())
    @settings(max_examples=60, deadline=None)
    def test_labels_unique_and_ordered(self, spec):
        labels = spec.policy_labels()
        assert len(labels) == len(set(labels))
        assert labels == [p.label for p in spec.policies]


class TestRegistryProperties:
    def test_names_unique(self):
        reg = default_registry()
        names = [e.name for e in reg.entries()]
        assert len(names) == len(set(names))
        assert sorted(names) == reg.names()

    @given(name=registry_names)
    def test_every_entry_resolvable_with_defaults(self, name):
        entry = default_registry().get(name)
        cfg = entry.resolve_config(None)
        assert set(cfg) == set(entry.default_config)

    @given(name=registry_names)
    def test_default_config_is_json_safe(self, name):
        import json

        entry = default_registry().get(name)
        assert json.loads(json.dumps(entry.default_config)) == entry.default_config
